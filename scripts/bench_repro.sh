#!/usr/bin/env bash
# Times the full repro pipeline serial (--jobs 1) vs parallel (all cores)
# and writes the results to BENCH_repro.json in the repo root. The
# per-target wall-clock breakdown comes from repro's own --timings-json
# self-profiling, so the benchmark records which targets dominate.
#
# Usage: scripts/bench_repro.sh [scale] [seed]
set -euo pipefail

cd "$(dirname "$0")/.."

SCALE="${1:-0.05}"
SEED="${2:-1994}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"

cargo build --release --workspace >/dev/null
REPRO=target/release/repro

now_ms() { date +%s%3N; }

run() { # run <jobs> <outfile> <timingsfile> -> prints elapsed ms
    local jobs="$1" out="$2" timings="$3"
    local t0 t1
    t0=$(now_ms)
    "$REPRO" --scale "$SCALE" --seed "$SEED" --jobs "$jobs" \
        --timings-json "$timings" >"$out" 2>/dev/null
    t1=$(now_ms)
    echo $((t1 - t0))
}

echo "benching repro --scale $SCALE --seed $SEED (parallel jobs=$JOBS)..." >&2

SERIAL_OUT="$(mktemp)"
PARALLEL_OUT="$(mktemp)"
SERIAL_TIMINGS="$(mktemp)"
PARALLEL_TIMINGS="$(mktemp)"
SERIAL_MS=$(run 1 "$SERIAL_OUT" "$SERIAL_TIMINGS")
PARALLEL_MS=$(run "$JOBS" "$PARALLEL_OUT" "$PARALLEL_TIMINGS")

if cmp -s "$SERIAL_OUT" "$PARALLEL_OUT"; then
    IDENTICAL=true
else
    IDENTICAL=false
fi
rm -f "$SERIAL_OUT" "$PARALLEL_OUT"

SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $SERIAL_MS / $PARALLEL_MS }")

if command -v jq >/dev/null; then
    # Embed repro's own per-target profiles (mobistore-timings/1).
    jq -n \
        --arg bench "repro --scale $SCALE --seed $SEED" \
        --argjson cores "$JOBS" \
        --argjson serial_ms "$SERIAL_MS" \
        --argjson parallel_ms "$PARALLEL_MS" \
        --argjson speedup "$SPEEDUP" \
        --argjson identical "$IDENTICAL" \
        --slurpfile serial "$SERIAL_TIMINGS" \
        --slurpfile parallel "$PARALLEL_TIMINGS" \
        '{benchmark: $bench, cores: $cores, serial_ms: $serial_ms,
          parallel_ms: $parallel_ms, speedup: $speedup,
          output_identical: $identical,
          serial_profile: $serial[0], parallel_profile: $parallel[0]}' \
        > BENCH_repro.json
else
    cat > BENCH_repro.json <<EOF
{
  "benchmark": "repro --scale $SCALE --seed $SEED",
  "cores": $JOBS,
  "serial_ms": $SERIAL_MS,
  "parallel_ms": $PARALLEL_MS,
  "speedup": $SPEEDUP,
  "output_identical": $IDENTICAL
}
EOF
fi
rm -f "$SERIAL_TIMINGS" "$PARALLEL_TIMINGS"

cat BENCH_repro.json
