//! Parallel execution must not change results: every experiment is a pure
//! function evaluated at independent points, and `parallel_map` preserves
//! input order, so a `--jobs 4` run must be indistinguishable from
//! `--jobs 1`.
//!
//! This is one `#[test]` on purpose: `exec::set_jobs` is process-global,
//! and the default test harness runs tests concurrently — splitting the
//! serial and parallel halves into separate tests would race on the
//! worker-count override.

use mobistore::experiments::{figure4, table4, Scale};
use mobistore::sim::exec;

#[test]
fn parallel_runs_match_serial_runs() {
    let scale = Scale::quick();

    exec::set_jobs(1);
    let fig4_serial = figure4::run(scale);
    let tab4_serial = table4::run(scale);

    exec::set_jobs(4);
    let fig4_parallel = figure4::run(scale);
    let tab4_parallel = table4::run(scale);

    // Rendered output is the acceptance surface of `repro` — it must be
    // byte-identical.
    assert_eq!(fig4_serial.to_string(), fig4_parallel.to_string());
    assert_eq!(tab4_serial.to_string(), tab4_parallel.to_string());

    // And the underlying floats must match exactly, not just after
    // formatting truncates them.
    for (s, p) in fig4_serial.curves.iter().zip(&fig4_parallel.curves) {
        assert_eq!(s.label, p.label);
        for (a, b) in s.points.iter().zip(&p.points) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.energy.get(), b.energy.get(), "{}", s.label);
            assert_eq!(a.read_response_ms.mean, b.read_response_ms.mean);
        }
    }
    for (s, p) in tab4_serial.parts.iter().zip(&tab4_parallel.parts) {
        for (a, b) in s.rows.iter().zip(&p.rows) {
            assert_eq!(a.energy.get(), b.energy.get(), "{}", a.name);
            assert_eq!(a.write_response_ms.mean, b.write_response_ms.mean);
        }
    }
}
