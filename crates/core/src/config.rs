//! Storage-system configurations.
//!
//! A [`SystemConfig`] describes one simulated storage organisation: the
//! DRAM buffer cache (§2: every organisation has one, §4.2: write-through
//! by default, possibly zero-sized), and a non-volatile backend — magnetic
//! disk with optional SRAM write buffer and a spin-down policy, flash disk
//! emulator, or flash memory card. The constructors default to the paper's
//! Table 4 configuration (2-Mbyte DRAM, 5 s spin-down, 32-Kbyte SRAM,
//! flash 80% utilized) so each Table 4 row is one builder call.

use mobistore_cache::dram::WritePolicy;
use mobistore_device::array::ChildClass;
use mobistore_device::disk::{SeekModel, SpinDownPolicy};
use mobistore_device::params::{
    dram_nec, sram_nec, DiskParams, DramParams, FlashCardParams, FlashDiskParams, SramParams,
};
use mobistore_device::QueueDiscipline;
use mobistore_flash::store::{CleanerMode, VictimPolicy};
use mobistore_sim::fault::FaultConfig;
use mobistore_sim::integrity::IntegrityConfig;
use mobistore_sim::time::SimDuration;
use mobistore_sim::units::MIB;

/// The non-volatile backend of a storage system.
#[derive(Debug, Clone)]
pub enum BackendConfig {
    /// A magnetic hard disk (§2).
    Disk {
        /// Disk parameters from [`mobistore_device::params`].
        params: DiskParams,
        /// The spin-down policy (fixed threshold, adaptive, or never).
        spin_down: SpinDownPolicy,
        /// Seek model: the paper's same-file-average assumption, or the
        /// pessimistic distance-based alternative (§5.1's divergence).
        seek_model: SeekModel,
    },
    /// A flash disk emulator (§2).
    FlashDisk {
        /// Flash-disk parameters (including its erase policy).
        params: FlashDiskParams,
    },
    /// A byte-accessible flash memory card (§2).
    FlashCard {
        /// Card timing/power parameters.
        params: FlashCardParams,
        /// Card capacity in bytes.
        capacity_bytes: u64,
        /// Initial storage utilization in `[0, 1)`: the card is preloaded
        /// with live data to this fraction of capacity (§5.2). `None`
        /// preloads only the trace's own working set.
        utilization: Option<f64>,
        /// Cleaner scheduling (§4.2).
        mode: CleanerMode,
        /// Victim selection policy.
        victim_policy: VictimPolicy,
    },
    /// An erasure-coded `k + m` array over child device profiles (the
    /// durability study).
    Array {
        /// Data shards per stripe.
        k: usize,
        /// Parity shards per stripe (losses tolerated).
        m: usize,
        /// The `k + m` children, in child order.
        children: Vec<ChildClass>,
        /// Hot spares available for background rebuilds.
        spares: u32,
        /// Rebuild pace in stripes per second.
        rebuild_rate: f64,
    },
}

impl BackendConfig {
    /// Stable lowercase backend name, used in diagnostics and exports.
    pub fn kind(&self) -> &'static str {
        match self {
            BackendConfig::Disk { .. } => "magnetic-disk",
            BackendConfig::FlashDisk { .. } => "flash-disk",
            BackendConfig::FlashCard { .. } => "flash-card",
            BackendConfig::Array { .. } => "ec-array",
        }
    }
}

/// A complete storage-system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Label used in result tables (Table 4 row name).
    pub name: String,
    /// DRAM buffer-cache size in bytes; 0 simulates no cache (the `hp`
    /// trace, §4.1).
    pub dram_bytes: u64,
    /// DRAM chip parameters.
    pub dram_params: DramParams,
    /// Write-through (paper default) or write-back (ablation).
    pub write_policy: WritePolicy,
    /// Request handling at a busy device: open-loop (the paper's
    /// independent-operation model, the default) or FIFO queueing (the
    /// ablation).
    pub queueing: QueueDiscipline,
    /// Battery-backed SRAM write-buffer size in bytes; 0 disables it.
    ///
    /// In front of a disk this is the §5.5 deferred-spin-up buffer
    /// (Table 4's disks default to 32 Kbytes). In front of a flash device
    /// it is the §7 extension ("adding SRAM to flash should dramatically
    /// improve performance"); the flash configurations default to none,
    /// as in the paper.
    pub sram_bytes: u64,
    /// SRAM chip parameters.
    pub sram_params: SramParams,
    /// Fault-injection configuration (the reliability study); defaults to
    /// [`FaultConfig::none`], which injects nothing and reproduces the
    /// fault-free simulator byte for byte.
    pub fault: FaultConfig,
    /// Bit-error/ECC configuration (the data-integrity study); defaults
    /// to [`IntegrityConfig::none`], which draws nothing and reproduces
    /// the integrity-free simulator byte for byte. Applies to the flash
    /// backends (card and disk); the magnetic disk ignores it.
    pub integrity: IntegrityConfig,
    /// The non-volatile backend.
    pub backend: BackendConfig,
}

/// Table 4's spin-down threshold: "a good compromise between energy
/// consumption and response time" (§5.1, citing [5, 13]).
pub const DEFAULT_SPIN_DOWN: SimDuration = SimDuration::from_secs(5);
/// Table 4's DRAM buffer size for the `mac` and `dos` traces.
pub const DEFAULT_DRAM_BYTES: u64 = 2 * MIB;
/// §5.5's baseline SRAM write-buffer size ("a 32-Kbyte SRAM write buffer
/// costs only a few dollars").
pub const DEFAULT_SRAM_BYTES: u64 = 32 * 1024;
/// Table 4's flash storage utilization ("simulations using the flash card
/// were done with the card 80% full").
pub const DEFAULT_FLASH_UTILIZATION: f64 = 0.80;
/// The simulated flash card / flash disk capacity: the paper treats the
/// flash devices as 40-Mbyte parts to match the Caviar Ultralite (§3).
pub const DEFAULT_FLASH_CAPACITY: u64 = 40 * MIB;

impl SystemConfig {
    /// A magnetic-disk system with the Table 4 defaults (2-Mbyte DRAM,
    /// write-through, 5 s spin-down, 32-Kbyte SRAM write buffer).
    pub fn disk(params: DiskParams) -> Self {
        SystemConfig {
            name: params.name.to_owned(),
            dram_bytes: DEFAULT_DRAM_BYTES,
            dram_params: dram_nec(),
            write_policy: WritePolicy::WriteThrough,
            queueing: QueueDiscipline::OpenLoop,
            sram_bytes: DEFAULT_SRAM_BYTES,
            sram_params: sram_nec(),
            fault: FaultConfig::none(),
            integrity: IntegrityConfig::none(),
            backend: BackendConfig::Disk {
                params,
                spin_down: SpinDownPolicy::Fixed(DEFAULT_SPIN_DOWN),
                seek_model: SeekModel::SameFileAverage,
            },
        }
    }

    /// A flash-disk system with the Table 4 defaults.
    pub fn flash_disk(params: FlashDiskParams) -> Self {
        SystemConfig {
            name: params.name.to_owned(),
            dram_bytes: DEFAULT_DRAM_BYTES,
            dram_params: dram_nec(),
            write_policy: WritePolicy::WriteThrough,
            queueing: QueueDiscipline::OpenLoop,
            sram_bytes: 0,
            sram_params: sram_nec(),
            fault: FaultConfig::none(),
            integrity: IntegrityConfig::none(),
            backend: BackendConfig::FlashDisk { params },
        }
    }

    /// A flash-card system with the Table 4 defaults (40-Mbyte card, 80%
    /// utilized, background cleaning, greedy victim selection).
    pub fn flash_card(params: FlashCardParams) -> Self {
        SystemConfig {
            name: params.name.to_owned(),
            dram_bytes: DEFAULT_DRAM_BYTES,
            dram_params: dram_nec(),
            write_policy: WritePolicy::WriteThrough,
            queueing: QueueDiscipline::OpenLoop,
            sram_bytes: 0,
            sram_params: sram_nec(),
            fault: FaultConfig::none(),
            integrity: IntegrityConfig::none(),
            backend: BackendConfig::FlashCard {
                params,
                capacity_bytes: DEFAULT_FLASH_CAPACITY,
                utilization: Some(DEFAULT_FLASH_UTILIZATION),
                mode: CleanerMode::Background,
                victim_policy: VictimPolicy::GreedyMinLive,
            },
        }
    }

    /// An erasure-coded `k + m` array over `children` device profiles,
    /// with the flash-disk-style defaults (2-Mbyte DRAM, write-through,
    /// no SRAM buffer), one hot spare, and a 128-stripe/s rebuild pace.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (`k == 0`, `m == 0`) or
    /// `children.len() != k + m` (the same guards as
    /// [`mobistore_device::ArrayDevice::new`]).
    pub fn array(k: usize, m: usize, children: Vec<ChildClass>) -> Self {
        assert!(k >= 1 && m >= 1, "array geometry {k}+{m} is invalid");
        assert_eq!(
            children.len(),
            k + m,
            "array geometry {k}+{m} needs exactly {} children, got {}",
            k + m,
            children.len()
        );
        SystemConfig {
            name: format!("array-{k}+{m}"),
            dram_bytes: DEFAULT_DRAM_BYTES,
            dram_params: dram_nec(),
            write_policy: WritePolicy::WriteThrough,
            queueing: QueueDiscipline::OpenLoop,
            sram_bytes: 0,
            sram_params: sram_nec(),
            fault: FaultConfig::none(),
            integrity: IntegrityConfig::none(),
            backend: BackendConfig::Array {
                k,
                m,
                children,
                spares: 1,
                rebuild_rate: 128.0,
            },
        }
    }

    /// Overrides the configuration label.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the DRAM buffer-cache size (0 disables the cache, as the `hp`
    /// simulations require).
    pub fn with_dram(mut self, bytes: u64) -> Self {
        self.dram_bytes = bytes;
        self
    }

    /// Sets the cache write policy.
    pub fn with_write_policy(mut self, policy: WritePolicy) -> Self {
        self.write_policy = policy;
        self
    }

    /// Sets the queue discipline (open-loop reproduces the paper; FIFO is
    /// the queueing ablation).
    pub fn with_queueing(mut self, discipline: QueueDiscipline) -> Self {
        self.queueing = discipline;
        self
    }

    /// Sets the SRAM write-buffer size for any backend (0 disables).
    pub fn with_sram(mut self, bytes: u64) -> Self {
        self.sram_bytes = bytes;
        self
    }

    /// Sets the fault-injection configuration (applies to any backend;
    /// write/erase faults only affect the flash card, power failures
    /// affect the flash card and the magnetic disk).
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Sets the bit-error/ECC configuration (applies to the flash card and
    /// the flash disk; the magnetic disk ignores it).
    pub fn with_integrity(mut self, integrity: IntegrityConfig) -> Self {
        self.integrity = integrity;
        self
    }

    /// Sets the disk spin-down threshold (`None` never spins down).
    ///
    /// # Panics
    ///
    /// Panics on non-disk backends.
    pub fn with_spin_down(self, threshold: Option<SimDuration>) -> Self {
        let policy = match threshold {
            Some(t) => SpinDownPolicy::Fixed(t),
            None => SpinDownPolicy::Never,
        };
        self.with_spin_down_policy(policy)
    }

    /// Sets the full disk spin-down policy (fixed, adaptive, or never).
    ///
    /// # Panics
    ///
    /// Panics on non-disk backends.
    pub fn with_spin_down_policy(mut self, policy: SpinDownPolicy) -> Self {
        match &mut self.backend {
            BackendConfig::Disk { spin_down, .. } => *spin_down = policy,
            other => panic!(
                "config '{}': spin-down applies only to magnetic-disk backends, \
                 not the {} backend",
                self.name,
                other.kind()
            ),
        }
        self
    }

    /// Sets the disk seek model (the §5.1 seek-assumption ablation).
    ///
    /// # Panics
    ///
    /// Panics on non-disk backends.
    pub fn with_seek_model(mut self, model: SeekModel) -> Self {
        match &mut self.backend {
            BackendConfig::Disk { seek_model, .. } => *seek_model = model,
            other => panic!(
                "config '{}': seek model applies only to magnetic-disk backends, \
                 not the {} backend",
                self.name,
                other.kind()
            ),
        }
        self
    }

    /// Sets the flash-card storage utilization (§5.2's sweep variable).
    ///
    /// # Panics
    ///
    /// Panics on non-flash-card backends or a fraction outside `[0, 1)`.
    pub fn with_utilization(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "utilization out of range: {fraction}"
        );
        match &mut self.backend {
            BackendConfig::FlashCard { utilization, .. } => *utilization = Some(fraction),
            other => panic!(
                "config '{}': utilization applies only to flash-card backends, \
                 not the {} backend",
                self.name,
                other.kind()
            ),
        }
        self
    }

    /// Sets the flash-card capacity (Figure 4's sweep variable).
    ///
    /// # Panics
    ///
    /// Panics on non-flash-card backends.
    pub fn with_flash_capacity(mut self, bytes: u64) -> Self {
        match &mut self.backend {
            BackendConfig::FlashCard { capacity_bytes, .. } => *capacity_bytes = bytes,
            other => panic!(
                "config '{}': flash capacity applies only to flash-card backends, \
                 not the {} backend",
                self.name,
                other.kind()
            ),
        }
        self
    }

    /// Sets the flash-card cleaner scheduling mode.
    ///
    /// # Panics
    ///
    /// Panics on non-flash-card backends.
    pub fn with_cleaner_mode(mut self, new_mode: CleanerMode) -> Self {
        match &mut self.backend {
            BackendConfig::FlashCard { mode, .. } => *mode = new_mode,
            other => panic!(
                "config '{}': cleaner mode applies only to flash-card backends, \
                 not the {} backend",
                self.name,
                other.kind()
            ),
        }
        self
    }

    /// Sets the flash-card victim-selection policy.
    ///
    /// # Panics
    ///
    /// Panics on non-flash-card backends.
    pub fn with_victim_policy(mut self, policy: VictimPolicy) -> Self {
        match &mut self.backend {
            BackendConfig::FlashCard { victim_policy, .. } => *victim_policy = policy,
            other => panic!(
                "config '{}': victim policy applies only to flash-card backends, \
                 not the {} backend",
                self.name,
                other.kind()
            ),
        }
        self
    }

    /// Sets the number of hot spares available for array rebuilds.
    ///
    /// # Panics
    ///
    /// Panics on non-array backends.
    pub fn with_spares(mut self, count: u32) -> Self {
        match &mut self.backend {
            BackendConfig::Array { spares, .. } => *spares = count,
            other => panic!(
                "config '{}': spares apply only to ec-array backends, \
                 not the {} backend",
                self.name,
                other.kind()
            ),
        }
        self
    }

    /// Sets the array rebuild pace in stripes per second.
    ///
    /// # Panics
    ///
    /// Panics on non-array backends or a non-finite/non-positive rate.
    pub fn with_rebuild_rate(mut self, stripes_per_sec: f64) -> Self {
        assert!(
            stripes_per_sec.is_finite() && stripes_per_sec > 0.0,
            "rebuild rate out of range: {stripes_per_sec}"
        );
        match &mut self.backend {
            BackendConfig::Array { rebuild_rate, .. } => *rebuild_rate = stripes_per_sec,
            other => panic!(
                "config '{}': rebuild rate applies only to ec-array backends, \
                 not the {} backend",
                self.name,
                other.kind()
            ),
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobistore_device::params::{cu140_datasheet, intel_datasheet, sdp5_datasheet};

    #[test]
    fn disk_defaults_match_table4() {
        let cfg = SystemConfig::disk(cu140_datasheet());
        assert_eq!(cfg.dram_bytes, 2 * MIB);
        assert_eq!(cfg.write_policy, WritePolicy::WriteThrough);
        assert_eq!(cfg.sram_bytes, 32 * 1024);
        match cfg.backend {
            BackendConfig::Disk { spin_down, .. } => {
                assert_eq!(spin_down, SpinDownPolicy::Fixed(SimDuration::from_secs(5)));
            }
            _ => panic!("expected disk backend"),
        }
    }

    #[test]
    fn flash_card_defaults_match_table4() {
        let cfg = SystemConfig::flash_card(intel_datasheet());
        match cfg.backend {
            BackendConfig::FlashCard {
                capacity_bytes,
                utilization,
                mode,
                ..
            } => {
                assert_eq!(capacity_bytes, 40 * MIB);
                assert_eq!(utilization, Some(0.80));
                assert_eq!(mode, CleanerMode::Background);
            }
            _ => panic!("expected flash card backend"),
        }
    }

    #[test]
    fn builders_chain() {
        let cfg = SystemConfig::flash_card(intel_datasheet())
            .named("custom")
            .with_dram(0)
            .with_utilization(0.95)
            .with_flash_capacity(10 * MIB);
        assert_eq!(cfg.name, "custom");
        assert_eq!(cfg.dram_bytes, 0);
        match cfg.backend {
            BackendConfig::FlashCard {
                utilization,
                capacity_bytes,
                ..
            } => {
                assert_eq!(utilization, Some(0.95));
                assert_eq!(capacity_bytes, 10 * MIB);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn sram_applies_to_any_backend() {
        // §7's extension: SRAM can front the flash devices too.
        let cfg = SystemConfig::flash_disk(sdp5_datasheet()).with_sram(1024);
        assert_eq!(cfg.sram_bytes, 1024);
        let cfg = SystemConfig::flash_card(intel_datasheet()).with_sram(64 * 1024);
        assert_eq!(cfg.sram_bytes, 64 * 1024);
        // And the flash defaults have none, as in the paper's Table 4.
        assert_eq!(SystemConfig::flash_disk(sdp5_datasheet()).sram_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn utilization_must_be_fraction() {
        let _ = SystemConfig::flash_card(intel_datasheet()).with_utilization(1.5);
    }

    #[test]
    fn backend_kinds_are_stable() {
        assert_eq!(
            SystemConfig::disk(cu140_datasheet()).backend.kind(),
            "magnetic-disk"
        );
        assert_eq!(
            SystemConfig::flash_disk(sdp5_datasheet()).backend.kind(),
            "flash-disk"
        );
        assert_eq!(
            SystemConfig::flash_card(intel_datasheet()).backend.kind(),
            "flash-card"
        );
        assert_eq!(
            SystemConfig::array(2, 1, vec![ChildClass::FlashDisk; 3])
                .backend
                .kind(),
            "ec-array"
        );
    }

    #[test]
    fn array_defaults() {
        let cfg = SystemConfig::array(
            4,
            2,
            vec![
                ChildClass::FlashCard,
                ChildClass::FlashCard,
                ChildClass::FlashDisk,
                ChildClass::FlashDisk,
                ChildClass::HardDisk,
                ChildClass::HardDisk,
            ],
        )
        .with_spares(2)
        .with_rebuild_rate(64.0);
        assert_eq!(cfg.name, "array-4+2");
        assert_eq!(cfg.sram_bytes, 0);
        match cfg.backend {
            BackendConfig::Array {
                k,
                m,
                ref children,
                spares,
                rebuild_rate,
            } => {
                assert_eq!((k, m), (4, 2));
                assert_eq!(children.len(), 6);
                assert_eq!(spares, 2);
                assert_eq!(rebuild_rate, 64.0);
            }
            _ => panic!("expected array backend"),
        }
    }

    #[test]
    #[should_panic(expected = "array geometry 0+2 is invalid")]
    fn array_zero_data_shards_panics() {
        let _ = SystemConfig::array(0, 2, vec![ChildClass::FlashDisk; 2]);
    }

    #[test]
    #[should_panic(
        expected = "config 'sdp5': rebuild rate applies only to ec-array backends, not the flash-disk backend"
    )]
    fn rebuild_rate_mismatch_names_field_and_backend() {
        let _ = SystemConfig::flash_disk(sdp5_datasheet())
            .named("sdp5")
            .with_rebuild_rate(64.0);
    }

    #[test]
    #[should_panic(
        expected = "config 'cu140': spares apply only to ec-array backends, not the magnetic-disk backend"
    )]
    fn spares_mismatch_names_field_and_backend() {
        let _ = SystemConfig::disk(cu140_datasheet())
            .named("cu140")
            .with_spares(1);
    }

    #[test]
    #[should_panic(
        expected = "config 'sdp5': spin-down applies only to magnetic-disk backends, not the flash-disk backend"
    )]
    fn spin_down_mismatch_names_field_and_backend() {
        let _ = SystemConfig::flash_disk(sdp5_datasheet())
            .named("sdp5")
            .with_spin_down(None);
    }

    #[test]
    #[should_panic(
        expected = "config 'intel': seek model applies only to magnetic-disk backends, not the flash-card backend"
    )]
    fn seek_model_mismatch_names_field_and_backend() {
        let _ = SystemConfig::flash_card(intel_datasheet())
            .named("intel")
            .with_seek_model(SeekModel::AlwaysAverage);
    }

    #[test]
    #[should_panic(
        expected = "config 'cu140': utilization applies only to flash-card backends, not the magnetic-disk backend"
    )]
    fn utilization_mismatch_names_field_and_backend() {
        let _ = SystemConfig::disk(cu140_datasheet())
            .named("cu140")
            .with_utilization(0.5);
    }

    #[test]
    #[should_panic(
        expected = "config 'cu140': flash capacity applies only to flash-card backends, not the magnetic-disk backend"
    )]
    fn capacity_mismatch_names_field_and_backend() {
        let _ = SystemConfig::disk(cu140_datasheet())
            .named("cu140")
            .with_flash_capacity(MIB);
    }

    #[test]
    #[should_panic(
        expected = "config 'sdp5': cleaner mode applies only to flash-card backends, not the flash-disk backend"
    )]
    fn cleaner_mode_mismatch_names_field_and_backend() {
        let _ = SystemConfig::flash_disk(sdp5_datasheet())
            .named("sdp5")
            .with_cleaner_mode(CleanerMode::OnDemand);
    }

    #[test]
    #[should_panic(
        expected = "config 'sdp5': victim policy applies only to flash-card backends, not the flash-disk backend"
    )]
    fn victim_policy_mismatch_names_field_and_backend() {
        let _ = SystemConfig::flash_disk(sdp5_datasheet())
            .named("sdp5")
            .with_victim_policy(VictimPolicy::GreedyMinLive);
    }
}
