//! A process-wide memoized trace cache.
//!
//! Before this cache existed, each of the ~17 experiment runners
//! independently regenerated the identical `mac`/`dos`/`hp`/`synth`
//! traces via [`Workload::generate_scaled`] — by far the largest share of
//! redundant work in a full `repro` run. [`trace`] generates each distinct
//! `(workload, fraction, seed)` trace exactly once per process and hands
//! every caller a shared [`Arc<Trace>`].
//!
//! Concurrency: the map itself is guarded by a [`Mutex`], but generation
//! happens *outside* that lock, behind a per-key [`OnceLock`] — so two
//! runners racing for the same trace block only each other (the second
//! waits for the first's generation), and runners after different traces
//! generate concurrently.
//!
//! Everything is std-only: `OnceLock` + `Mutex<HashMap>` + `Arc`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use mobistore_trace::record::Trace;

use crate::Workload;

/// Cache key: the workload plus the exact bit patterns of `fraction` and
/// `seed` (bit-exact keying, no float comparison subtleties).
type Key = (Workload, u64, u64);

type Slot = Arc<OnceLock<Arc<Trace>>>;

static CACHE: OnceLock<Mutex<HashMap<Key, Slot>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Hit/miss counters for the process-wide cache (the `repro --timings`
/// summary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSummary {
    /// Lookups served from an already-generated trace.
    pub hits: u64,
    /// Lookups that had to generate (one per distinct key).
    pub misses: u64,
    /// Distinct traces currently held.
    pub entries: u64,
}

impl CacheSummary {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Returns the `(workload, fraction, seed)` trace, generating it on first
/// use and sharing the same allocation with every subsequent caller.
///
/// # Panics
///
/// Panics unless `0 < fraction <= 1` (as [`Workload::generate_scaled`]).
pub fn trace(workload: Workload, fraction: f64, seed: u64) -> Arc<Trace> {
    let key: Key = (workload, fraction.to_bits(), seed);
    let slot: Slot = {
        let mut map = CACHE
            .get_or_init(Mutex::default)
            .lock()
            .expect("trace cache poisoned");
        Arc::clone(map.entry(key).or_default())
    };
    let mut generated = false;
    let trace = slot.get_or_init(|| {
        generated = true;
        MISSES.fetch_add(1, Ordering::Relaxed);
        Arc::new(workload.generate_scaled(fraction, seed))
    });
    if !generated {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    Arc::clone(trace)
}

/// A snapshot of the cache counters.
pub fn summary() -> CacheSummary {
    let entries = CACHE
        .get()
        .map(|m| m.lock().expect("trace cache poisoned").len() as u64)
        .unwrap_or(0);
    CacheSummary {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_lookups_share_one_allocation() {
        let a = trace(Workload::Synth, 0.011, 77);
        let b = trace(Workload::Synth, 0.011, 77);
        assert!(Arc::ptr_eq(&a, &b), "same key must return the same Arc");
        assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn distinct_seeds_get_distinct_traces() {
        let a = trace(Workload::Synth, 0.011, 1);
        let b = trace(Workload::Synth, 0.011, 2);
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.ops, b.ops, "different seeds must differ");
    }

    #[test]
    fn cached_equals_fresh_generation() {
        let cached = trace(Workload::Synth, 0.012, 3);
        let fresh = Workload::Synth.generate_scaled(0.012, 3);
        assert_eq!(cached.ops, fresh.ops);
        assert_eq!(cached.block_size, fresh.block_size);
    }

    #[test]
    fn summary_counts_misses_once_per_key() {
        let before = summary();
        let _ = trace(Workload::Synth, 0.013, 5);
        let _ = trace(Workload::Synth, 0.013, 5);
        let after = summary();
        assert_eq!(after.misses - before.misses, 1);
        assert!(after.hits - before.hits >= 1);
        assert!(after.entries > 0);
    }

    #[test]
    fn concurrent_lookups_generate_once() {
        let results =
            mobistore_sim::exec::parallel_map(&[0u32; 8], |_| trace(Workload::Synth, 0.014, 9));
        let first = &results[0];
        for r in &results {
            assert!(Arc::ptr_eq(first, r));
        }
    }
}
