//! The trace-driven storage simulator (§4.2).
//!
//! [`simulate`] replays a disk-level trace against a [`SystemConfig`]:
//!
//! * reads probe the DRAM buffer cache first; misses go to the SRAM write
//!   buffer (recently-written blocks, §5.5 footnote 3) and then to the
//!   non-volatile backend;
//! * writes go through the write-through cache to the backend — absorbed
//!   by SRAM in front of a disk, remapped and possibly waiting for
//!   cleaning on a flash card;
//! * the first `warm_percent` of operations warm the cache; energy and
//!   response statistics cover only the remainder (§4.2);
//! * response-time means include cache hits, exactly as the paper's
//!   Table 4 means do.

use mobistore_cache::dram::{BufferCache, WritePolicy};
use mobistore_cache::sram::SramWriteBuffer;
use mobistore_device::array::ArrayDevice;
use mobistore_device::disk::MagneticDisk;
use mobistore_device::flashdisk::FlashDisk;
use mobistore_device::{Dir, Service};
use mobistore_flash::store::{FlashCardConfig, FlashCardStore};
use mobistore_sim::fault::{DeathSchedule, PowerFailSchedule};
use mobistore_sim::hist::LatencyRecorder;
use mobistore_sim::obs::{Event, NoopObserver, Observer, OpKind};
use mobistore_sim::span::{Span, SpanKind};
use mobistore_sim::time::{SimDuration, SimTime};
use mobistore_trace::record::{DiskOp, DiskOpKind, Trace};

use crate::config::{BackendConfig, SystemConfig};
use crate::metrics::Metrics;

/// Options controlling a simulation run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Percentage of operations used to warm the cache (§4.2 uses 10).
    pub warm_percent: u32,
    /// Reset per-segment wear counters at the warm-up boundary, so
    /// endurance statistics cover the measured portion only.
    pub reset_wear_at_warm: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            warm_percent: 10,
            reset_wear_at_warm: true,
        }
    }
}

// One instance per simulation; the variant size skew costs nothing.
#[allow(clippy::large_enum_variant)]
enum Backend {
    Disk(MagneticDisk),
    FlashDisk(FlashDisk),
    FlashCard(FlashCardStore),
    Array(ArrayDevice),
}

/// Runs `trace` against `config` with default options (10% warm-up).
///
/// # Examples
///
/// ```
/// use mobistore_core::config::SystemConfig;
/// use mobistore_core::simulator::simulate;
/// use mobistore_device::params::sdp5_datasheet;
/// use mobistore_sim::time::SimTime;
/// use mobistore_trace::record::{DiskOp, DiskOpKind, FileId, Trace};
///
/// let mut trace = Trace::new(1024);
/// for i in 0..20 {
///     trace.push(DiskOp {
///         time: SimTime::from_secs_f64(i as f64),
///         kind: if i % 2 == 0 { DiskOpKind::Write } else { DiskOpKind::Read },
///         lbn: i % 4,
///         blocks: 1,
///         file: FileId(0),
///     });
/// }
/// let metrics = simulate(&SystemConfig::flash_disk(sdp5_datasheet()), &trace);
/// assert!(metrics.energy.get() > 0.0);
/// ```
pub fn simulate(config: &SystemConfig, trace: &Trace) -> Metrics {
    simulate_with(config, trace, RunOptions::default())
}

/// Runs `trace` against `config` with explicit options.
///
/// # Panics
///
/// Panics if a flash-card backend cannot hold the trace's working set at
/// the configured utilization/capacity (§5.2 requires the accessed data to
/// fit within the preallocated bound), or if the warm-up consumes the
/// whole trace. Use [`try_simulate`] for a fallible variant.
pub fn simulate_with(config: &SystemConfig, trace: &Trace, options: RunOptions) -> Metrics {
    simulate_observed(config, trace, options, &mut NoopObserver)
}

/// [`simulate_with`], streaming structured [`Event`]s to `obs` as the
/// simulation progresses.
///
/// The observer is monomorphised into the run: with [`NoopObserver`] this
/// is exactly [`simulate_with`] at zero cost.
///
/// # Panics
///
/// Panics like [`simulate_with`], naming the offending configuration. Use
/// [`try_simulate_observed`] for a fallible variant.
pub fn simulate_observed<O: Observer>(
    config: &SystemConfig,
    trace: &Trace,
    options: RunOptions,
    obs: &mut O,
) -> Metrics {
    match try_simulate_observed(config, trace, options, obs) {
        Ok(metrics) => metrics,
        Err(e) => panic!("cannot simulate configuration '{}': {e}", config.name),
    }
}

/// An invalid simulation configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The trace's working set does not fit the flash card at the
    /// configured utilization.
    FlashOverfull {
        /// Blocks the trace touches.
        working_set_blocks: u64,
        /// The preallocation bound implied by capacity × utilization.
        target_blocks: u64,
    },
    /// `warm_percent` was 100 or more: nothing would be measured.
    NothingToMeasure,
    /// A fleet checkpoint could not be used for this run: unreadable,
    /// malformed, or fingerprint-mismatched against the configuration.
    Checkpoint(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::FlashOverfull {
                working_set_blocks,
                target_blocks,
            } => write!(
                f,
                "trace working set ({working_set_blocks} blocks) exceeds the flash \
                 preallocation bound ({target_blocks} blocks); increase the flash \
                 capacity or the utilization"
            ),
            ConfigError::NothingToMeasure => {
                write!(
                    f,
                    "warm-up must leave something to measure (warm_percent < 100)"
                )
            }
            ConfigError::Checkpoint(reason) => write!(f, "checkpoint: {reason}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Any typed failure a simulation can report, spanning every layer: the
/// configuration itself, the backing device, or the memory hierarchy.
///
/// The `repro` binary maps each variant to a distinct process exit code,
/// so scripted sweeps can tell "bad flags" from "device went read-only"
/// without parsing stderr.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration cannot run the trace at all.
    Config(ConfigError),
    /// A backing device refused an operation (e.g. a flash card at
    /// end of life).
    Device(mobistore_device::DeviceError),
    /// A cache-layer invariant was violated.
    Cache(mobistore_cache::CacheError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "configuration error: {e}"),
            SimError::Device(e) => write!(f, "device error: {e}"),
            SimError::Cache(e) => write!(f, "cache error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Device(e) => Some(e),
            SimError::Cache(e) => Some(e),
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<mobistore_device::DeviceError> for SimError {
    fn from(e: mobistore_device::DeviceError) -> Self {
        SimError::Device(e)
    }
}

impl From<mobistore_cache::CacheError> for SimError {
    fn from(e: mobistore_cache::CacheError) -> Self {
        SimError::Cache(e)
    }
}

/// Runs `trace` against `config`, returning a typed [`SimError`] instead
/// of panicking when the configuration cannot hold the trace.
///
/// A flash card that exhausts its capacity mid-run does *not* abort the
/// simulation: it degrades to read-only, the remaining operations drain
/// with per-op error accounting, and the rejections appear in
/// [`Metrics::rejected_writes`]/[`Metrics::rejected_blocks`].
///
/// # Examples
///
/// ```
/// use mobistore_core::config::SystemConfig;
/// use mobistore_core::simulator::{try_simulate, ConfigError, RunOptions, SimError};
/// use mobistore_device::params::intel_datasheet;
/// use mobistore_sim::time::SimTime;
/// use mobistore_trace::record::{DiskOp, DiskOpKind, FileId, Trace};
///
/// let mut trace = Trace::new(1024);
/// trace.push(DiskOp {
///     time: SimTime::ZERO,
///     kind: DiskOpKind::Write,
///     lbn: 0,
///     blocks: 60_000, // ~59 MB: cannot fit a 40-MB card
///     file: FileId(0),
/// });
/// let cfg = SystemConfig::flash_card(intel_datasheet());
/// assert!(matches!(
///     try_simulate(&cfg, &trace, RunOptions::default()),
///     Err(SimError::Config(ConfigError::FlashOverfull { .. }))
/// ));
/// ```
pub fn try_simulate(
    config: &SystemConfig,
    trace: &Trace,
    options: RunOptions,
) -> Result<Metrics, SimError> {
    try_simulate_observed(config, trace, options, &mut NoopObserver)
}

/// [`try_simulate`], streaming structured [`Event`]s to `obs` as the
/// simulation progresses.
pub fn try_simulate_observed<O: Observer>(
    config: &SystemConfig,
    trace: &Trace,
    options: RunOptions,
    obs: &mut O,
) -> Result<Metrics, SimError> {
    if options.warm_percent >= 100 {
        return Err(ConfigError::NothingToMeasure.into());
    }
    if let BackendConfig::FlashCard {
        params,
        capacity_bytes,
        utilization: Some(frac),
        ..
    } = &config.backend
    {
        let capacity_blocks =
            (capacity_bytes / params.segment_size) * (params.segment_size / trace.block_size);
        let target = (capacity_blocks as f64 * frac).round() as u64;
        let working = working_set(trace);
        if working > target {
            return Err(ConfigError::FlashOverfull {
                working_set_blocks: working,
                target_blocks: target,
            }
            .into());
        }
    }
    Ok(Simulator::new(config, trace, obs).run(trace, options))
}

/// Counts distinct non-trim blocks in the trace.
fn working_set(trace: &Trace) -> u64 {
    let mut blocks: Vec<u64> = trace
        .ops
        .iter()
        .filter(|op| op.kind != DiskOpKind::Trim)
        .flat_map(|op| op.lbn..op.lbn + u64::from(op.blocks))
        .collect();
    blocks.sort_unstable();
    blocks.dedup();
    blocks.len() as u64
}

struct Simulator<'o, O: Observer> {
    dram: Option<BufferCache>,
    sram: Option<SramWriteBuffer>,
    write_policy: WritePolicy,
    queueing: mobistore_device::QueueDiscipline,
    backend: Backend,
    block_size: u64,
    read_ms: LatencyRecorder,
    write_ms: LatencyRecorder,
    all_ms: LatencyRecorder,
    last_completion: SimTime,
    /// Pending power-failure instants (fault injection); `None` when the
    /// configuration disables them.
    power_fails: Option<PowerFailSchedule>,
    /// FAT metadata rescanned by the magnetic disk after a power failure.
    fat_scan_bytes: u64,
    /// Dirty write-back blocks lost to power failures (volatile DRAM).
    lost_dirty_blocks: u64,
    /// Write operations the backend refused in read-only end-of-life
    /// mode; the run drains instead of aborting.
    rejected_writes: u64,
    /// Blocks those refused writes covered.
    rejected_blocks: u64,
    /// Backend read accesses that came back uncorrectable (data-integrity
    /// study): the access still pays its time/energy, but the result is
    /// reported lost and never fills the cache.
    uncorrectable_reads: u64,
    /// Critical-path queueing delay accumulated by the current operation.
    op_queue: SimDuration,
    /// Critical-path device service time accumulated by the current
    /// operation.
    op_service: SimDuration,
    obs: &'o mut O,
}

impl<'o, O: Observer> Simulator<'o, O> {
    fn new(config: &SystemConfig, trace: &Trace, obs: &'o mut O) -> Self {
        let block_size = trace.block_size;
        let dram = if config.dram_bytes >= block_size {
            Some(BufferCache::new(
                config.dram_params.clone(),
                config.dram_bytes,
                block_size,
                config.write_policy,
            ))
        } else {
            None
        };
        let sram = if config.sram_bytes >= block_size {
            Some(SramWriteBuffer::new(
                config.sram_params.clone(),
                config.sram_bytes,
                block_size,
            ))
        } else {
            None
        };
        let backend = match &config.backend {
            BackendConfig::Disk {
                params,
                spin_down,
                seek_model,
            } => {
                let disk = MagneticDisk::with_policy(params.clone(), *spin_down)
                    .with_queueing(config.queueing)
                    .with_seek_model(*seek_model);
                Backend::Disk(disk)
            }
            BackendConfig::FlashDisk { params } => Backend::FlashDisk(
                FlashDisk::new(params.clone())
                    .with_queueing(config.queueing)
                    .with_integrity(config.integrity),
            ),
            BackendConfig::FlashCard {
                params,
                capacity_bytes,
                utilization,
                mode,
                victim_policy,
            } => {
                let mut card = FlashCardStore::new(FlashCardConfig {
                    params: params.clone(),
                    block_size,
                    capacity_bytes: *capacity_bytes,
                    mode: *mode,
                    victim_policy: *victim_policy,
                    queueing: config.queueing,
                })
                .with_faults(config.fault)
                .with_integrity(config.integrity);
                preload_card(&mut card, trace, *utilization);
                Backend::FlashCard(card)
            }
            BackendConfig::Array {
                k,
                m,
                children,
                spares,
                rebuild_rate,
            } => {
                let mut arr = ArrayDevice::new(*k, *m, children, block_size)
                    .with_queueing(config.queueing)
                    .with_deaths(DeathSchedule::new(&config.fault, children.len()))
                    .with_spares(*spares)
                    .with_rebuild_rate(*rebuild_rate);
                preload_array(&mut arr, trace);
                Backend::Array(arr)
            }
        };
        Simulator {
            dram,
            sram,
            write_policy: config.write_policy,
            queueing: config.queueing,
            backend,
            block_size,
            read_ms: LatencyRecorder::new(),
            write_ms: LatencyRecorder::new(),
            all_ms: LatencyRecorder::new(),
            last_completion: SimTime::ZERO,
            power_fails: PowerFailSchedule::from_config(&config.fault),
            fat_scan_bytes: config.fault.fat_scan_bytes,
            lost_dirty_blocks: 0,
            rejected_writes: 0,
            rejected_blocks: 0,
            uncorrectable_reads: 0,
            op_queue: SimDuration::ZERO,
            op_service: SimDuration::ZERO,
            obs,
        }
    }

    fn run(mut self, trace: &Trace, options: RunOptions) -> Metrics {
        assert!(
            options.warm_percent < 100,
            "warm-up must leave something to measure"
        );
        // One relaxed atomic add per run keeps the throughput harness's
        // ops/sec denominator honest without touching the per-op path.
        mobistore_sim::prof::add_ops(trace.ops.len() as u64);
        let warm_count = trace.ops.len() * options.warm_percent as usize / 100;

        let mut measure_start = SimTime::ZERO;
        for (i, op) in trace.ops.iter().enumerate() {
            // Failures due before this operation strike first, so the op
            // sees the post-recovery device (and a cold DRAM cache).
            self.inject_power_failures(op.time);
            if i == warm_count {
                measure_start = op.time;
                self.reset_at_boundary(op.time, options.reset_wear_at_warm);
            }
            let record = i >= warm_count;
            self.step(op, record);
        }

        let end = self
            .last_completion
            .max(trace.ops.last().map_or(SimTime::ZERO, |op| op.time));
        self.finalize(measure_start, end)
    }

    fn step(&mut self, op: &DiskOp, record: bool) {
        let kind = match op.kind {
            DiskOpKind::Read => OpKind::Read,
            DiskOpKind::Write => OpKind::Write,
            DiskOpKind::Trim => OpKind::Trim,
        };
        self.op_queue = SimDuration::ZERO;
        self.op_service = SimDuration::ZERO;
        self.obs.record(&Event::OpIssued {
            t: op.time,
            kind,
            lbn: op.lbn,
            blocks: op.blocks,
        });
        let response = match op.kind {
            DiskOpKind::Read => {
                let response = self.do_read(op);
                if record {
                    self.read_ms.record(response);
                    self.all_ms.record(response);
                }
                response
            }
            DiskOpKind::Write => {
                let response = self.do_write(op);
                if record {
                    self.write_ms.record(response);
                    self.all_ms.record(response);
                }
                response
            }
            DiskOpKind::Trim => {
                self.do_trim(op);
                SimDuration::ZERO
            }
        };
        self.obs.record(&Event::OpCompleted {
            t: op.time + response,
            kind,
            lbn: op.lbn,
            blocks: op.blocks,
            queue: self.op_queue,
            service: self.op_service,
            response,
        });
        self.obs.span(&Span::new(
            SpanKind::Op {
                kind,
                lbn: op.lbn,
                blocks: op.blocks,
            },
            op.time,
            op.time + response,
        ));
    }

    fn do_read(&mut self, op: &DiskOp) -> SimDuration {
        let now = op.time;
        let lbns: Vec<u64> = (op.lbn..op.lbn + u64::from(op.blocks)).collect();
        let bytes = op.bytes(self.block_size);

        let misses = match self.dram.as_mut() {
            Some(cache) => {
                let misses = cache.read_probe_obs(now, &lbns, self.obs);
                cache.charge_access(bytes);
                misses
            }
            None => lbns.clone(),
        };

        let mut response = self
            .dram
            .as_ref()
            .map_or(SimDuration::ZERO, |c| c.access_time(bytes));
        if !misses.is_empty() {
            let (fetch, fill_ok) = self.fetch_from_backend(now, op, &misses);
            response += fetch;
            if let Some(cache) = self.dram.as_mut() {
                if fill_ok {
                    // Fill the cache with what was fetched.
                    let mut flushes = Vec::new();
                    for &lbn in &misses {
                        if let Some(evicted) = cache.insert(lbn, false) {
                            if evicted.dirty {
                                flushes.push(evicted.lbn);
                            }
                        }
                    }
                    self.flush_writeback(now, &flushes, op);
                } else {
                    // The device reported the access uncorrectable: never
                    // cache data it could not deliver intact.
                    cache.note_fill_rejects(misses.len() as u64);
                }
            }
        }
        response
    }

    /// Fetches missed blocks, consulting the SRAM write buffer first
    /// (recently-written blocks are served from it, §5.5 footnote 3);
    /// returns the elapsed response contribution and whether the fetched
    /// data is safe to cache (`false` when the device reported the access
    /// uncorrectable).
    fn fetch_from_backend(
        &mut self,
        now: SimTime,
        op: &DiskOp,
        misses: &[u64],
    ) -> (SimDuration, bool) {
        let block_size = self.block_size;
        let mut device_blocks = 0u64;
        let mut sram_blocks = 0u64;
        for &lbn in misses {
            match self.sram.as_mut() {
                Some(buf) if buf.contains(lbn) => {
                    buf.note_read_hit_obs(now, self.obs);
                    sram_blocks += 1;
                }
                _ => device_blocks += 1,
            }
        }
        let mut resp = SimDuration::ZERO;
        if sram_blocks > 0 {
            let buf = self.sram.as_mut().expect("counted hits imply a buffer");
            let b = sram_blocks * block_size;
            buf.charge_access(b);
            resp += buf.access_time(b);
        }
        if device_blocks == 0 {
            return (resp, true);
        }
        let bytes = device_blocks * block_size;
        let (svc, read) = match &mut self.backend {
            Backend::Disk(disk) => (
                disk.access_at_obs(
                    now,
                    Dir::Read,
                    bytes,
                    Some(op.file.0),
                    Some(op.lbn),
                    self.obs,
                ),
                Ok(()),
            ),
            Backend::FlashDisk(fd) => fd.try_read_obs(now, op.lbn, bytes, self.obs),
            Backend::FlashCard(card) => {
                card.try_read_obs(now, misses[0], device_blocks as u32, self.obs)
            }
            Backend::Array(arr) => arr.try_read_obs(now, misses[0], device_blocks as u32, self.obs),
        };
        if read.is_err() {
            self.uncorrectable_reads += 1;
        }
        self.note_critical_service(now, &svc);
        self.last_completion = self.last_completion.max(svc.end);
        (resp + svc.response(now), read.is_ok())
    }

    /// Folds a critical-path device service interval into the current
    /// operation's queue/service breakdown (reported on
    /// [`Event::OpCompleted`]).
    fn note_critical_service(&mut self, issued: SimTime, svc: &Service) {
        self.op_queue += svc.start.saturating_since(issued);
        self.op_service += svc.end.saturating_since(svc.start);
    }

    fn do_write(&mut self, op: &DiskOp) -> SimDuration {
        let now = op.time;
        let lbns: Vec<u64> = (op.lbn..op.lbn + u64::from(op.blocks)).collect();
        let bytes = op.bytes(self.block_size);

        let mut dram_time = SimDuration::ZERO;
        let mut writeback_evictions = Vec::new();
        if let Some(cache) = self.dram.as_mut() {
            let flushed = cache.write_obs(now, &lbns, self.obs);
            cache.charge_access(bytes);
            dram_time = cache.access_time(bytes);
            writeback_evictions = flushed.into_iter().map(|e| e.lbn).collect();
        }

        match self.write_policy {
            WritePolicy::WriteBack if self.dram.is_some() => {
                // Dirty data stays in DRAM; only evictions reach storage,
                // off the critical path of this write.
                self.flush_writeback(now, &writeback_evictions, op);
                dram_time
            }
            _ => dram_time + self.write_to_backend(now, op, &lbns),
        }
    }

    /// Sends a write through the non-volatile path; returns its response
    /// contribution.
    ///
    /// Writes that fit in the SRAM buffer are absorbed there; the write
    /// that overflows it triggers a flush to the backend. §2/§5.5:
    /// "synchronous writes that fit in SRAM are made asynchronous with
    /// respect to the disk", so under the paper's open-loop model the
    /// flush happens in the background (the device still pays the time
    /// and energy); under FIFO it delays the triggering write.
    fn write_to_backend(&mut self, now: SimTime, op: &DiskOp, lbns: &[u64]) -> SimDuration {
        let block_size = self.block_size;
        let bytes = lbns.len() as u64 * block_size;
        match self.sram.take() {
            Some(mut buf) if lbns.len() <= buf.capacity_blocks() => {
                let mut resp = SimDuration::ZERO;
                if !buf.fits(lbns) {
                    let blocks = buf.drain_blocks_obs(now, self.obs);
                    let svc = self.flush_blocks(now, &blocks);
                    self.last_completion = self.last_completion.max(svc.end);
                    if self.queueing == mobistore_device::QueueDiscipline::Fifo {
                        resp += svc.response(now);
                        self.note_critical_service(now, &svc);
                    }
                }
                buf.absorb_obs(now, lbns, self.obs);
                buf.charge_access(bytes);
                let out = resp + buf.access_time(bytes);
                self.sram = Some(buf);
                out
            }
            other => {
                // No buffer, or the write is bigger than the buffer:
                // straight to the device.
                self.sram = other;
                let svc = match &mut self.backend {
                    Backend::Disk(disk) => disk.access_at_obs(
                        now,
                        Dir::Write,
                        bytes,
                        Some(op.file.0),
                        Some(op.lbn),
                        self.obs,
                    ),
                    Backend::FlashDisk(fd) => fd.access_obs(now, Dir::Write, bytes, self.obs),
                    Backend::FlashCard(card) => {
                        match card.try_write_obs(now, op.lbn, lbns.len() as u32, self.obs) {
                            Ok(svc) => svc,
                            Err(_) => {
                                // Read-only end of life: account for the
                                // refused write and keep draining the
                                // trace instead of aborting.
                                self.rejected_writes += 1;
                                self.rejected_blocks += lbns.len() as u64;
                                return SimDuration::ZERO;
                            }
                        }
                    }
                    Backend::Array(arr) => {
                        match arr.try_write_obs(now, op.lbn, lbns.len() as u32, self.obs) {
                            Ok(svc) => svc,
                            Err(_) => {
                                // Array failed beyond its parity budget:
                                // it is read-only now; drain the trace.
                                self.rejected_writes += 1;
                                self.rejected_blocks += lbns.len() as u64;
                                return SimDuration::ZERO;
                            }
                        }
                    }
                };
                self.note_critical_service(now, &svc);
                self.last_completion = self.last_completion.max(svc.end);
                svc.response(now)
            }
        }
    }

    /// Writes a sorted set of flushed blocks to the backend as one burst
    /// (contiguous runs become single requests on the flash card).
    fn flush_blocks(&mut self, now: SimTime, blocks: &[u64]) -> Service {
        let block_size = self.block_size;
        let bytes = blocks.len() as u64 * block_size;
        match &mut self.backend {
            Backend::Disk(disk) => disk.access_obs(now, Dir::Write, bytes, None, self.obs),
            Backend::FlashDisk(fd) => fd.access_obs(now, Dir::Write, bytes, self.obs),
            Backend::FlashCard(card) => {
                let mut start = None;
                let mut end = now;
                let mut run_start = 0usize;
                for i in 1..=blocks.len() {
                    let run_ends = i == blocks.len() || blocks[i] != blocks[i - 1] + 1;
                    if run_ends {
                        let lbn = blocks[run_start];
                        let count = (i - run_start) as u32;
                        match card.try_write_obs(end, lbn, count, self.obs) {
                            Ok(svc) => {
                                start.get_or_insert(svc.start);
                                end = svc.end;
                            }
                            Err(_) => {
                                // Read-only: the run is dropped but
                                // counted; later runs fail fast too.
                                self.rejected_writes += 1;
                                self.rejected_blocks += u64::from(count);
                            }
                        }
                        run_start = i;
                    }
                }
                Service {
                    start: start.unwrap_or(now),
                    end,
                }
            }
            Backend::Array(arr) => {
                let mut start = None;
                let mut end = now;
                let mut run_start = 0usize;
                for i in 1..=blocks.len() {
                    let run_ends = i == blocks.len() || blocks[i] != blocks[i - 1] + 1;
                    if run_ends {
                        let lbn = blocks[run_start];
                        let count = (i - run_start) as u32;
                        match arr.try_write_obs(end, lbn, count, self.obs) {
                            Ok(svc) => {
                                start.get_or_insert(svc.start);
                                end = svc.end;
                            }
                            Err(_) => {
                                self.rejected_writes += 1;
                                self.rejected_blocks += u64::from(count);
                            }
                        }
                        run_start = i;
                    }
                }
                Service {
                    start: start.unwrap_or(now),
                    end,
                }
            }
        }
    }

    /// Flushes dirty write-back evictions to storage, off the critical
    /// path (the device still becomes busy, delaying later requests).
    fn flush_writeback(&mut self, now: SimTime, lbns: &[u64], op: &DiskOp) {
        if lbns.is_empty() {
            return;
        }
        let block_size = self.block_size;
        let bytes = lbns.len() as u64 * block_size;
        let svc: Service = match &mut self.backend {
            Backend::Disk(disk) => disk.access_obs(now, Dir::Write, bytes, None, self.obs),
            Backend::FlashDisk(fd) => fd.access_obs(now, Dir::Write, bytes, self.obs),
            Backend::FlashCard(card) => {
                let mut end = now;
                let mut start = now;
                for &lbn in lbns {
                    match card.try_write_obs(end, lbn, 1, self.obs) {
                        Ok(svc) => {
                            start = start.min(svc.start);
                            end = svc.end;
                        }
                        Err(_) => {
                            self.rejected_writes += 1;
                            self.rejected_blocks += 1;
                        }
                    }
                }
                Service { start, end }
            }
            Backend::Array(arr) => {
                let mut end = now;
                let mut start = now;
                for &lbn in lbns {
                    match arr.try_write_obs(end, lbn, 1, self.obs) {
                        Ok(svc) => {
                            start = start.min(svc.start);
                            end = svc.end;
                        }
                        Err(_) => {
                            self.rejected_writes += 1;
                            self.rejected_blocks += 1;
                        }
                    }
                }
                Service { start, end }
            }
        };
        let _ = op;
        self.last_completion = self.last_completion.max(svc.end);
    }

    /// Fires every scheduled power failure due at or before `until`.
    fn inject_power_failures(&mut self, until: SimTime) {
        loop {
            let Some(sched) = self.power_fails.as_mut() else {
                return;
            };
            let at = SimTime::from_secs_f64(sched.next_at_secs());
            if at > until {
                return;
            }
            sched.advance();
            self.power_fail(at);
        }
    }

    /// Applies one whole-system power failure at `at`: volatile DRAM
    /// contents are lost (the battery-backed SRAM buffer survives, §5.5),
    /// and the backend runs its recovery scan — synchronous-FAT replay on
    /// the magnetic disk, log scan plus orphaned-segment reclaim on the
    /// flash card, and a spare-pool remap-header rescan on the flash disk
    /// (its controller rebuilds the remap table behind the emulation
    /// layer).
    fn power_fail(&mut self, at: SimTime) {
        let mut lost = 0;
        if let Some(cache) = self.dram.as_mut() {
            lost = cache.power_fail_clear();
            self.lost_dirty_blocks += lost;
        }
        self.obs.record(&Event::PowerFail {
            t: at,
            lost_dirty_blocks: lost,
        });
        let svc = match &mut self.backend {
            Backend::Disk(disk) => Some(disk.power_fail_obs(at, self.fat_scan_bytes, self.obs)),
            Backend::FlashDisk(fd) => Some(fd.power_fail_obs(at, self.obs)),
            Backend::FlashCard(card) => Some(card.power_fail_obs(at, self.obs)),
            Backend::Array(arr) => Some(arr.power_fail_obs(at, self.obs)),
        };
        if let Some(svc) = svc {
            self.obs.record(&Event::RecoveryEnd {
                t: svc.end,
                duration: svc.end.saturating_since(at),
            });
            self.obs
                .span(&Span::new(SpanKind::Recovery, at, svc.end.max(at)));
            self.last_completion = self.last_completion.max(svc.end);
        }
    }

    fn do_trim(&mut self, op: &DiskOp) {
        for lbn in op.lbn..op.lbn + u64::from(op.blocks) {
            if let Some(cache) = self.dram.as_mut() {
                cache.invalidate(lbn);
            }
            if let Some(buf) = self.sram.as_mut() {
                buf.invalidate(lbn);
            }
            match &mut self.backend {
                Backend::FlashCard(card) => card.trim_obs(op.time, lbn, 1, self.obs),
                Backend::Array(arr) => arr.trim(lbn, 1),
                _ => {}
            }
        }
    }

    fn reset_at_boundary(&mut self, at: SimTime, reset_wear: bool) {
        match &mut self.backend {
            Backend::Disk(disk) => {
                disk.finish_obs(at, self.obs);
                disk.reset_metrics();
            }
            Backend::FlashDisk(fd) => {
                fd.finish_obs(at, self.obs);
                fd.reset_metrics();
            }
            Backend::FlashCard(card) => {
                card.finish_obs(at, self.obs);
                card.reset_metrics(reset_wear);
            }
            Backend::Array(arr) => {
                arr.finish_obs(at, self.obs);
                arr.reset_metrics();
            }
        }
        if let Some(buf) = self.sram.as_mut() {
            buf.reset_metrics();
        }
        if let Some(cache) = self.dram.as_mut() {
            cache.reset_metrics();
        }
        self.read_ms = LatencyRecorder::new();
        self.write_ms = LatencyRecorder::new();
        self.all_ms = LatencyRecorder::new();
    }

    fn finalize(mut self, measure_start: SimTime, end: SimTime) -> Metrics {
        // Flush any residual write-back dirt so its energy is accounted.
        if self.write_policy == WritePolicy::WriteBack {
            let dirty = self
                .dram
                .as_mut()
                .map(|c| c.drain_dirty())
                .unwrap_or_default();
            if !dirty.is_empty() {
                let fake = DiskOp {
                    time: end,
                    kind: DiskOpKind::Write,
                    lbn: dirty[0],
                    blocks: dirty.len() as u32,
                    file: mobistore_trace::record::FileId(0),
                };
                self.flush_writeback(end, &dirty, &fake);
            }
        }
        let end = end.max(self.last_completion);
        let span = end.saturating_since(measure_start);

        let mut components: Vec<(&'static str, mobistore_sim::energy::Joules)> = Vec::new();
        let mut backoff = LatencyRecorder::new();
        let mut degraded = LatencyRecorder::new();
        let (disk_c, fd_c, card_c, array_c, wear, backend_states) = match &mut self.backend {
            Backend::Disk(disk) => {
                disk.finish_obs(end, self.obs);
                components.push(("disk", disk.energy()));
                let states = disk.meter().breakdown_timed().collect();
                (Some(disk.counters()), None, None, None, None, states)
            }
            Backend::FlashDisk(fd) => {
                fd.finish_obs(end, self.obs);
                components.push(("flash", fd.energy()));
                let states = fd.meter().breakdown_timed().collect();
                (None, Some(fd.counters()), None, None, None, states)
            }
            Backend::FlashCard(card) => {
                card.finish_obs(end, self.obs);
                components.push(("flash", card.energy()));
                let states = card.meter().breakdown_timed().collect();
                backoff = card.backoff_recorder().clone();
                (
                    None,
                    None,
                    Some(card.counters()),
                    None,
                    Some(card.wear()),
                    states,
                )
            }
            Backend::Array(arr) => {
                arr.finish_obs(end, self.obs);
                components.push(("array", arr.energy()));
                let states = arr.meter().breakdown_timed().collect();
                degraded = arr.degraded_recorder().clone();
                (None, None, None, Some(arr.counters()), None, states)
            }
        };
        if let Some(buf) = self.sram.as_mut() {
            buf.charge_idle_span(span);
            components.push(("sram", buf.energy()));
        }
        if let Some(cache) = self.dram.as_mut() {
            cache.charge_idle_span(span);
            components.push(("dram", cache.energy()));
        }
        let energy = components.iter().map(|(_, j)| *j).sum();

        let sram_stats = self.sram.as_ref().map(|buf| buf.stats());

        Metrics {
            name: String::new(),
            energy,
            energy_by_component: components,
            backend_states,
            read_response_ms: self.read_ms.summary(),
            write_response_ms: self.write_ms.summary(),
            overall_response_ms: self.all_ms.summary(),
            read_latency: std::mem::take(&mut self.read_ms).into_histogram(),
            write_latency: std::mem::take(&mut self.write_ms).into_histogram(),
            overall_latency: std::mem::take(&mut self.all_ms).into_histogram(),
            backoff_ms: backoff.summary(),
            backoff_latency: backoff.into_histogram(),
            degraded_read_ms: degraded.summary(),
            degraded_read_latency: degraded.into_histogram(),
            duration: span,
            cache: self.dram.as_ref().map(|c| c.stats()),
            sram: sram_stats,
            disk: disk_c,
            flash_disk: fd_c,
            flash_card: card_c,
            array: array_c,
            wear,
            lost_dirty_blocks: self.lost_dirty_blocks,
            rejected_writes: self.rejected_writes,
            rejected_blocks: self.rejected_blocks,
            uncorrectable_reads: self.uncorrectable_reads,
        }
    }
}

/// Preloads a flash card with the trace's working set plus filler blocks
/// up to the target utilization (§5.2's experimental setup).
fn preload_card(card: &mut FlashCardStore, trace: &Trace, utilization: Option<f64>) {
    let mut working: Vec<u64> = trace
        .ops
        .iter()
        .filter(|op| op.kind != DiskOpKind::Trim)
        .flat_map(|op| op.lbn..op.lbn + u64::from(op.blocks))
        .collect();
    working.sort_unstable();
    working.dedup();
    let w = working.len() as u64;

    let target = match utilization {
        Some(frac) => {
            let t = (card.capacity_blocks() as f64 * frac).round() as u64;
            assert!(
                t >= w,
                "trace working set ({w} blocks) exceeds {frac:.0}% of a {}-block card; \
                 increase the flash capacity",
                card.capacity_blocks()
            );
            t
        }
        None => w,
    };
    let filler_base = trace
        .blocks_spanned()
        .max(working.last().map_or(0, |l| l + 1));
    let filler = target - w;
    // Aged layout (§5.2): the preallocated data is spread across all
    // segments, so free space exists as cleanable garbage rather than
    // pristine erased segments.
    card.preload_aged(working.into_iter().chain(filler_base..filler_base + filler));
}

/// Preloads an erasure-coded array with the trace's working set, so every
/// block the trace reads has a generation-stamped stripe to decode (the
/// crashcheck oracle preloads the same way).
fn preload_array(arr: &mut ArrayDevice, trace: &Trace) {
    let mut working: Vec<u64> = trace
        .ops
        .iter()
        .filter(|op| op.kind != DiskOpKind::Trim)
        .flat_map(|op| op.lbn..op.lbn + u64::from(op.blocks))
        .collect();
    working.sort_unstable();
    working.dedup();
    arr.preload(working.into_iter());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use mobistore_device::params::{cu140_datasheet, intel_datasheet, sdp5_datasheet};
    use mobistore_sim::units::MIB;
    use mobistore_trace::record::FileId;

    /// A trace alternating writes and re-reads of a small working set.
    fn small_trace(ops: usize, gap_ms: u64) -> Trace {
        let mut t = Trace::new(1024);
        for i in 0..ops {
            t.push(DiskOp {
                time: SimTime::from_nanos(i as u64 * gap_ms * 1_000_000),
                kind: if i % 2 == 0 {
                    DiskOpKind::Write
                } else {
                    DiskOpKind::Read
                },
                lbn: (i as u64 / 2) % 16,
                blocks: 2,
                file: FileId((i as u64 / 8) % 3),
            });
        }
        t
    }

    #[test]
    fn runs_all_three_backends() {
        let trace = small_trace(200, 50);
        for cfg in [
            SystemConfig::disk(cu140_datasheet()),
            SystemConfig::flash_disk(sdp5_datasheet()),
            SystemConfig::flash_card(intel_datasheet()).with_flash_capacity(4 * MIB),
        ] {
            let m = simulate(&cfg, &trace);
            assert!(m.energy.get() > 0.0, "{}", cfg.name);
            assert!(m.read_response_ms.count > 0);
            assert!(m.write_response_ms.count > 0);
        }
    }

    #[test]
    fn array_backend_runs_and_reports_counters() {
        use mobistore_device::array::ChildClass;
        let trace = small_trace(200, 50);
        let cfg = SystemConfig::array(2, 1, vec![ChildClass::FlashDisk; 3]);
        let m = simulate(&cfg, &trace);
        assert!(m.energy.get() > 0.0);
        assert!(m.read_response_ms.count > 0);
        assert!(m.write_response_ms.count > 0);
        let a = m.array.expect("array counters");
        assert!(a.ops > 0);
        assert!(a.parity_updates > 0, "writes must update parity");
        assert_eq!(a.device_deaths, 0);
        assert!(m
            .energy_by_component
            .iter()
            .any(|(name, j)| *name == "array" && j.get() > 0.0));
        // Deterministic: same config, same trace, same joules.
        let again = simulate(&cfg, &trace);
        assert_eq!(m.energy.get(), again.energy.get());
        assert_eq!(m.write_response_ms, again.write_response_ms);
    }

    #[test]
    fn array_deaths_degrade_reads_but_lose_nothing_reported() {
        use mobistore_device::array::ChildClass;
        use mobistore_sim::fault::FaultConfig;
        let trace = miss_trace(400, 1000);
        // No spares and a death rate high enough that a child dies
        // mid-run: later reads of its shards decode from survivors.
        let cfg = SystemConfig::array(2, 1, vec![ChildClass::FlashDisk; 3])
            .with_spares(0)
            .with_dram(0)
            .with_faults(FaultConfig::with_rate(0.0, 9).with_death_rate(20.0));
        let m = simulate(&cfg, &trace);
        let a = m.array.expect("array counters");
        let t = m.fault_totals();
        assert!(t.device_deaths >= 1, "no child died; raise the rate");
        assert!(a.degraded_reads > 0, "no degraded reads observed");
        assert!(m.degraded_read_ms.count > 0, "degraded summary empty");
        // Same seed, same deaths: the run is fully reproducible.
        let again = simulate(&cfg, &trace);
        assert_eq!(m.energy.get(), again.energy.get());
        assert_eq!(m.fault_totals(), again.fault_totals());
    }

    /// A trace whose working set (6 MB) exceeds the 2-MB DRAM cache, so
    /// reads keep hitting the device and the disk never idles long enough
    /// to spin down.
    fn miss_trace(ops: usize, gap_ms: u64) -> Trace {
        let mut t = Trace::new(1024);
        for i in 0..ops {
            t.push(DiskOp {
                time: SimTime::from_nanos(i as u64 * gap_ms * 1_000_000),
                kind: if i % 4 == 0 {
                    DiskOpKind::Write
                } else {
                    DiskOpKind::Read
                },
                lbn: (i as u64 * 97) % 6144,
                blocks: 2,
                file: FileId(i as u64 % 29),
            });
        }
        t
    }

    #[test]
    fn flash_uses_less_energy_than_disk() {
        // The paper's headline: flash reduces energy by about an order of
        // magnitude versus disk, even with spin-down.
        let trace = miss_trace(400, 1000);
        let disk = simulate(&SystemConfig::disk(cu140_datasheet()), &trace);
        let card = simulate(
            &SystemConfig::flash_card(intel_datasheet()).with_flash_capacity(16 * MIB),
            &trace,
        );
        assert!(
            card.energy.get() * 3.0 < disk.energy.get(),
            "card {:?} vs disk {:?}",
            card.energy,
            disk.energy
        );
    }

    #[test]
    fn cache_hits_make_reads_fast() {
        // Re-reads of a tiny working set should mostly hit the 2-MB cache,
        // so mean read response is far below the device's access latency.
        let trace = small_trace(400, 50);
        let m = simulate(&SystemConfig::disk(cu140_datasheet()), &trace);
        assert!(m.read_hit_ratio().expect("cache present") > 0.8);
        assert!(
            m.read_response_ms.mean < 5.0,
            "mean {}",
            m.read_response_ms.mean
        );
    }

    #[test]
    fn no_dram_sends_all_reads_to_device() {
        let trace = small_trace(200, 50);
        let m = simulate(
            &SystemConfig::flash_disk(sdp5_datasheet()).with_dram(0),
            &trace,
        );
        assert!(m.cache.is_none());
        // Every read pays at least the 1.5 ms access latency.
        assert!(
            m.read_response_ms.mean >= 1.5,
            "mean {}",
            m.read_response_ms.mean
        );
    }

    #[test]
    fn sram_absorbs_small_writes() {
        let trace = small_trace(300, 1000);
        let with = simulate(&SystemConfig::disk(cu140_datasheet()), &trace);
        let without = simulate(&SystemConfig::disk(cu140_datasheet()).with_sram(0), &trace);
        assert!(
            with.write_response_ms.mean * 5.0 < without.write_response_ms.mean,
            "with {} vs without {}",
            with.write_response_ms.mean,
            without.write_response_ms.mean
        );
        assert!(with.sram.expect("sram stats").absorbed > 0);
    }

    #[test]
    fn warm_up_excludes_early_ops() {
        let trace = small_trace(100, 50);
        let m = simulate_with(
            &SystemConfig::flash_disk(sdp5_datasheet()),
            &trace,
            RunOptions {
                warm_percent: 50,
                ..RunOptions::default()
            },
        );
        assert_eq!(m.read_response_ms.count + m.write_response_ms.count, 50);
    }

    #[test]
    fn write_back_defers_writes() {
        let trace = small_trace(300, 50);
        let wt = simulate(&SystemConfig::flash_disk(sdp5_datasheet()), &trace);
        let wb = simulate(
            &SystemConfig::flash_disk(sdp5_datasheet()).with_write_policy(WritePolicy::WriteBack),
            &trace,
        );
        assert!(
            wb.write_response_ms.mean < wt.write_response_ms.mean,
            "wb {} vs wt {}",
            wb.write_response_ms.mean,
            wt.write_response_ms.mean
        );
    }

    #[test]
    fn trims_invalidate_cache() {
        let mut trace = Trace::new(1024);
        trace.push(DiskOp {
            time: SimTime::ZERO,
            kind: DiskOpKind::Write,
            lbn: 0,
            blocks: 4,
            file: FileId(1),
        });
        trace.push(DiskOp {
            time: SimTime::from_secs_f64(1.0),
            kind: DiskOpKind::Trim,
            lbn: 0,
            blocks: 4,
            file: FileId(1),
        });
        trace.push(DiskOp {
            time: SimTime::from_secs_f64(2.0),
            kind: DiskOpKind::Read,
            lbn: 0,
            blocks: 4,
            file: FileId(1),
        });
        let m = simulate_with(
            &SystemConfig::flash_card(intel_datasheet()).with_flash_capacity(4 * MIB),
            &trace,
            RunOptions {
                warm_percent: 0,
                ..RunOptions::default()
            },
        );
        let c = m.cache.expect("cache");
        assert_eq!(c.read_misses, 4, "trimmed blocks must miss");
    }

    #[test]
    #[should_panic(expected = "working set")]
    fn overfull_card_is_rejected() {
        let trace = small_trace(100, 10);
        // 16-block working set x 2 blocks... at 1% utilization of a tiny
        // card the target is below the working set.
        let cfg = SystemConfig::flash_card(intel_datasheet())
            .with_flash_capacity(MIB)
            .with_utilization(0.01);
        let _ = simulate(&cfg, &trace);
    }

    #[test]
    #[should_panic(expected = "cannot simulate configuration 'tiny-card'")]
    fn rejection_names_the_configuration() {
        let trace = small_trace(100, 10);
        let cfg = SystemConfig::flash_card(intel_datasheet())
            .named("tiny-card")
            .with_flash_capacity(MIB)
            .with_utilization(0.01);
        let _ = simulate(&cfg, &trace);
    }

    #[test]
    fn observer_sees_ops_and_matches_unobserved_run() {
        use mobistore_sim::obs::CountingObserver;
        let trace = small_trace(300, 50);
        let cfg = SystemConfig::disk(cu140_datasheet());
        let plain = simulate(&cfg, &trace);
        let mut obs = CountingObserver::default();
        let observed = simulate_observed(&cfg, &trace, RunOptions::default(), &mut obs);
        // The observer is passive: results are bit-identical with and
        // without it.
        assert_eq!(plain.energy.get(), observed.energy.get());
        assert_eq!(plain.read_response_ms, observed.read_response_ms);
        // Every trace op produces an issue and a completion.
        let n = trace.ops.len() as u64;
        assert_eq!(obs.counts.get("op_issued"), n);
        assert_eq!(obs.counts.get("op_completed"), n);
        assert!(obs.counts.get("cache_read") > 0);
        assert!(obs.counts.get("cache_write") > 0);
        assert!(obs.counts.get("sram_absorb") > 0);
    }

    #[test]
    fn observed_latency_breakdown_is_consistent() {
        use mobistore_sim::obs::RecordingObserver;
        let trace = miss_trace(200, 100);
        let cfg = SystemConfig::flash_card(intel_datasheet()).with_flash_capacity(16 * MIB);
        let mut obs = RecordingObserver::default();
        let m = simulate_observed(&cfg, &trace, RunOptions::default(), &mut obs);
        let mut completions = 0u64;
        for e in &obs.events {
            if let Event::OpCompleted {
                queue,
                service,
                response,
                ..
            } = e
            {
                completions += 1;
                assert!(
                    *queue + *service <= *response || *response == SimDuration::ZERO,
                    "queue {queue:?} + service {service:?} exceeds response {response:?}"
                );
            }
        }
        assert_eq!(completions, trace.ops.len() as u64);
        // The histograms cover the measured (post-warm-up) ops.
        let measured = m.read_response_ms.count + m.write_response_ms.count;
        assert_eq!(m.overall_latency.count(), measured);
        assert_eq!(m.read_latency.count() + m.write_latency.count(), measured);
    }

    #[test]
    fn deterministic_results() {
        let trace = small_trace(300, 50);
        let cfg = SystemConfig::flash_card(intel_datasheet()).with_flash_capacity(4 * MIB);
        let a = simulate(&cfg, &trace);
        let b = simulate(&cfg, &trace);
        assert_eq!(a.energy.get(), b.energy.get());
        assert_eq!(a.write_response_ms, b.write_response_ms);
    }

    #[test]
    fn power_failures_force_recovery_on_card_and_disk() {
        use mobistore_sim::fault::FaultConfig;
        let trace = small_trace(300, 1000);
        let fault = FaultConfig::with_rate(0.0, 9).with_power_failures(SimDuration::from_secs(30));
        for cfg in [
            SystemConfig::disk(cu140_datasheet()).with_faults(fault),
            SystemConfig::flash_card(intel_datasheet())
                .with_flash_capacity(4 * MIB)
                .with_faults(fault),
        ] {
            let a = simulate(&cfg, &trace);
            let t = a.fault_totals();
            assert!(t.power_failures > 0, "{}: no failures fired", cfg.name);
            assert!(t.recovery_time > SimDuration::ZERO, "{}", cfg.name);
            // Same seed, same schedule: the run is fully reproducible.
            let b = simulate(&cfg, &trace);
            assert_eq!(a.energy.get(), b.energy.get(), "{}", cfg.name);
            assert_eq!(a.fault_totals(), b.fault_totals(), "{}", cfg.name);
        }
    }

    #[test]
    fn zero_rate_faults_change_nothing() {
        use mobistore_sim::fault::FaultConfig;
        let trace = small_trace(300, 50);
        let base = SystemConfig::flash_card(intel_datasheet()).with_flash_capacity(4 * MIB);
        // A quiet plan with a non-zero seed draws nothing, so the run is
        // bit-identical to the fault-free default.
        let quiet = base.clone().with_faults(FaultConfig::with_rate(0.0, 77));
        let a = simulate(&base, &trace);
        let b = simulate(&quiet, &trace);
        assert_eq!(a.energy.get(), b.energy.get());
        assert_eq!(a.write_response_ms, b.write_response_ms);
        assert_eq!(a.fault_totals(), b.fault_totals());
    }

    #[test]
    fn zero_rate_integrity_changes_nothing() {
        use mobistore_sim::integrity::IntegrityConfig;
        let trace = small_trace(300, 50);
        for base in [
            SystemConfig::flash_card(intel_datasheet()).with_flash_capacity(4 * MIB),
            SystemConfig::flash_disk(sdp5_datasheet()),
        ] {
            // A zero-rate plan draws nothing, so the run is bit-identical
            // to the integrity-free default.
            let quiet = base.clone().with_integrity(IntegrityConfig::none());
            let a = simulate(&base, &trace);
            let b = simulate(&quiet, &trace);
            assert_eq!(a.energy.get(), b.energy.get(), "{}", base.name);
            assert_eq!(a.read_response_ms, b.read_response_ms, "{}", base.name);
            assert_eq!(b.uncorrectable_reads, 0, "{}", base.name);
            assert_eq!(b.backoff_ms.count, a.backoff_ms.count, "{}", base.name);
        }
    }

    #[test]
    fn bit_errors_surface_as_reported_loss_not_silent_corruption() {
        use mobistore_sim::integrity::IntegrityConfig;
        let trace = miss_trace(400, 100);
        let cfg = SystemConfig::flash_card(intel_datasheet())
            .with_flash_capacity(16 * MIB)
            .with_dram(0)
            .with_integrity(IntegrityConfig {
                base_errors: 20.0,
                seed: 3,
                ..IntegrityConfig::none()
            });
        let m = simulate(&cfg, &trace);
        let c = m.flash_card.expect("card counters");
        assert!(m.uncorrectable_reads > 0, "no uncorrectable accesses");
        assert!(c.uncorrectable_reads > 0, "no uncorrectable blocks");
        // Every uncorrectable block is reported through the typed path;
        // corrected blocks never surface as errors.
        assert!(
            m.uncorrectable_reads <= c.uncorrectable_reads,
            "sim {} vs card {}",
            m.uncorrectable_reads,
            c.uncorrectable_reads
        );
        // Determinism: same seed, same losses.
        let again = simulate(&cfg, &trace);
        assert_eq!(m.uncorrectable_reads, again.uncorrectable_reads);
        assert_eq!(m.energy.get(), again.energy.get());
    }

    #[test]
    fn uncorrectable_fills_are_rejected_by_the_cache() {
        use mobistore_sim::integrity::IntegrityConfig;
        let trace = miss_trace(400, 100);
        let cfg = SystemConfig::flash_card(intel_datasheet())
            .with_flash_capacity(16 * MIB)
            .with_integrity(IntegrityConfig {
                base_errors: 20.0,
                seed: 3,
                ..IntegrityConfig::none()
            });
        let m = simulate(&cfg, &trace);
        let cache = m.cache.expect("cache stats");
        assert!(m.uncorrectable_reads > 0);
        assert!(
            cache.fill_rejects > 0,
            "uncorrectable reads must refuse the cache fill"
        );
    }

    #[test]
    fn transient_faults_slow_writes_and_count() {
        use mobistore_sim::fault::FaultConfig;
        let trace = miss_trace(400, 100);
        let base = SystemConfig::flash_card(intel_datasheet())
            .with_flash_capacity(16 * MIB)
            .with_dram(0);
        let faulty = base.clone().with_faults(FaultConfig::with_rate(0.2, 5));
        let clean = simulate(&base, &trace);
        let hit = simulate(&faulty, &trace);
        let t = hit.fault_totals();
        assert!(t.write_retries > 0, "retries {t:?}");
        assert!(
            hit.write_response_ms.mean > clean.write_response_ms.mean,
            "faulty {} vs clean {}",
            hit.write_response_ms.mean,
            clean.write_response_ms.mean
        );
    }
}
