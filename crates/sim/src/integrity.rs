//! Deterministic bit-error injection and ECC classification.
//!
//! The paper's endurance story counts erase cycles (§2.3, §5.2); real
//! flash also degrades *silently* between erasures: raw bit errors
//! accumulate with program/erase wear and with retention time, and the
//! host survives them only through ECC, bounded read-retry, scrubbing and
//! remapping. [`IntegrityPlan`] is the seeded source of those raw-error
//! draws, and the pure [`IntegrityConfig::classify`] step turns a raw
//! error count into the controller's verdict.
//!
//! Like [`fault`](crate::fault), the plan is deterministic and
//! parallel-safe by construction: it draws from its own RNG stream, a
//! `(seed, stream)` pair fully determines every error, and a quiet
//! (zero-rate) plan draws no random numbers at all — so a zero-BER
//! configuration is bit-for-bit indistinguishable from a build without
//! the integrity model.
//!
//! The error model: a read of a block in a segment with erase count `e`,
//! last written `r` hours ago, sees a Poisson-distributed number of raw
//! bit errors with mean
//!
//! ```text
//! λ = base_errors + errors_per_erase × e + retention_per_hour × r
//! ```
//!
//! sampled by single-uniform CDF inversion (one draw per classified
//! read). The verdict is then a pure function of the raw count against
//! the ECC budget and retry threshold.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// RNG stream selector for bit-error draws; distinct from the fault
/// streams so error schedules and fault schedules never perturb each
/// other.
const INTEGRITY_STREAM: u64 = 0x000f_a017_0003;

/// Upper bound on raw errors a single draw can report; far beyond any
/// retry threshold, so the cap only stops the inversion loop when λ is
/// enormous.
const MAX_RAW_ERRORS: u32 = 64;

/// Rates and budgets of the bit-error/ECC model. All growth rates
/// default to zero, which injects nothing and reproduces the
/// integrity-free simulator byte for byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegrityConfig {
    /// Expected raw bit errors per block read on a fresh (never-erased,
    /// just-written) block.
    pub base_errors: f64,
    /// Additional expected errors per erase cycle the block's segment
    /// has accumulated (wear coupling).
    pub errors_per_erase: f64,
    /// Additional expected errors per hour since the block's segment was
    /// last written (retention loss).
    pub retention_per_hour: f64,
    /// Raw errors the ECC corrects transparently per block read.
    pub ecc_correctable: u32,
    /// Raw errors recoverable by bounded read-retry; a count in
    /// `(ecc_correctable, retry_threshold]` costs retries, beyond it the
    /// read is uncorrectable.
    pub retry_threshold: u32,
    /// Correctable reads with at least this many raw errors trigger
    /// relocate-and-remap of the block to the write frontier.
    pub relocate_threshold: u32,
    /// Interval between background scrub passes over one segment;
    /// `None` disables scrubbing.
    pub scrub_interval: Option<SimDuration>,
    /// Latency added to a read per block the ECC had to correct.
    pub correction_penalty: SimDuration,
    /// Delay per read-retry attempt (devices without a fault plan, such
    /// as the flash disk, use this; the flash card reuses its fault
    /// plan's `retry_backoff`).
    pub retry_backoff: SimDuration,
    /// Seed for the bit-error stream. Independent of the workload and
    /// fault seeds so the same trace can be replayed under different
    /// error schedules.
    pub seed: u64,
}

impl IntegrityConfig {
    /// A configuration that injects nothing.
    pub fn none() -> Self {
        IntegrityConfig {
            base_errors: 0.0,
            errors_per_erase: 0.0,
            retention_per_hour: 0.0,
            ecc_correctable: 8,
            retry_threshold: 12,
            relocate_threshold: 6,
            scrub_interval: None,
            correction_penalty: SimDuration::from_micros(20),
            retry_backoff: SimDuration::from_micros(250),
            seed: 0,
        }
    }

    /// A wear-coupled configuration: `rate` expected base errors per
    /// read, a quarter of that per erase cycle, an eighth per retention
    /// hour.
    pub fn with_growth(rate: f64, seed: u64) -> Self {
        IntegrityConfig {
            base_errors: rate,
            errors_per_erase: rate / 4.0,
            retention_per_hour: rate / 8.0,
            seed,
            ..IntegrityConfig::none()
        }
    }

    /// Enables background scrubbing with the given pass interval.
    pub fn with_scrub(mut self, interval: SimDuration) -> Self {
        self.scrub_interval = Some(interval);
        self
    }

    /// True if this configuration can never produce a raw bit error.
    /// (Scrubbing may still be enabled: scrub passes over an error-free
    /// card cost idle time and energy but find nothing.)
    pub fn is_quiet(&self) -> bool {
        self.base_errors == 0.0 && self.errors_per_erase == 0.0 && self.retention_per_hour == 0.0
    }

    /// The expected raw error count for a block whose segment has
    /// `erase_count` erasures and was last written `since_write` ago.
    pub fn expected_errors(&self, erase_count: u64, since_write: SimDuration) -> f64 {
        self.base_errors
            + self.errors_per_erase * erase_count as f64
            + self.retention_per_hour * (since_write.as_secs_f64() / 3600.0)
    }

    /// Classifies a raw error count against the ECC budget — a pure
    /// function, so replays and shadow checks agree with the device.
    pub fn classify(&self, errors: u32) -> ReadVerdict {
        if errors == 0 {
            ReadVerdict::Clean
        } else if errors <= self.ecc_correctable {
            ReadVerdict::Corrected { errors }
        } else if errors <= self.retry_threshold {
            ReadVerdict::Retried {
                errors,
                attempts: errors - self.ecc_correctable,
            }
        } else {
            ReadVerdict::Uncorrectable { errors }
        }
    }

    /// True if a block that read back with `errors` raw errors (and was
    /// recoverable) should be relocated to fresh cells.
    pub fn wants_relocation(&self, errors: u32) -> bool {
        errors >= self.relocate_threshold && errors <= self.retry_threshold
    }

    /// Validates rates and budgets; called by plan constructors.
    ///
    /// # Panics
    ///
    /// Panics if any rate is negative or non-finite, or the thresholds
    /// are not ordered `1 ≤ relocate`, `1 ≤ ecc ≤ retry`.
    fn validate(&self) {
        for (name, r) in [
            ("base_errors", self.base_errors),
            ("errors_per_erase", self.errors_per_erase),
            ("retention_per_hour", self.retention_per_hour),
        ] {
            assert!(r.is_finite() && r >= 0.0, "{name} out of range: {r}");
        }
        assert!(self.ecc_correctable >= 1, "ecc_correctable must be >= 1");
        assert!(
            self.retry_threshold >= self.ecc_correctable,
            "retry_threshold {} below ecc_correctable {}",
            self.retry_threshold,
            self.ecc_correctable
        );
        assert!(
            self.relocate_threshold >= 1,
            "relocate_threshold must be >= 1"
        );
        if let Some(interval) = self.scrub_interval {
            assert!(!interval.is_zero(), "scrub_interval must be positive");
        }
    }
}

impl Default for IntegrityConfig {
    fn default() -> Self {
        IntegrityConfig::none()
    }
}

/// The controller's verdict on one block read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadVerdict {
    /// No raw errors.
    Clean,
    /// Raw errors within the ECC budget; corrected transparently at a
    /// fixed latency penalty.
    Corrected {
        /// Raw bit errors corrected.
        errors: u32,
    },
    /// Marginal: beyond the per-read ECC budget but recovered by bounded
    /// read-retry.
    Retried {
        /// Raw bit errors seen.
        errors: u32,
        /// Retry attempts the recovery cost.
        attempts: u32,
    },
    /// Beyond what ECC and retry can recover; the block's data is lost.
    Uncorrectable {
        /// Raw bit errors seen.
        errors: u32,
    },
}

/// A deterministic stream of raw-bit-error draws.
///
/// # Examples
///
/// ```
/// use mobistore_sim::integrity::{IntegrityConfig, IntegrityPlan};
/// use mobistore_sim::time::SimDuration;
///
/// let mut a = IntegrityPlan::new(IntegrityConfig::with_growth(2.0, 42));
/// let mut b = IntegrityPlan::new(IntegrityConfig::with_growth(2.0, 42));
/// let xs: Vec<u32> = (0..32).map(|_| a.raw_errors(5, SimDuration::ZERO)).collect();
/// let ys: Vec<u32> = (0..32).map(|_| b.raw_errors(5, SimDuration::ZERO)).collect();
/// assert_eq!(xs, ys, "same seed, same error schedule");
/// ```
#[derive(Debug, Clone)]
pub struct IntegrityPlan {
    config: IntegrityConfig,
    rng: SimRng,
}

impl IntegrityPlan {
    /// Creates a plan over the integrity stream of `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config` has a negative/non-finite rate or disordered
    /// thresholds.
    pub fn new(config: IntegrityConfig) -> Self {
        config.validate();
        IntegrityPlan {
            rng: SimRng::seed_with_stream(config.seed, INTEGRITY_STREAM),
            config,
        }
    }

    /// A plan that injects nothing (and draws nothing).
    pub fn quiet() -> Self {
        IntegrityPlan::new(IntegrityConfig::none())
    }

    /// Returns the configuration the plan was built from.
    pub fn config(&self) -> &IntegrityConfig {
        &self.config
    }

    /// Draws the raw bit errors one block read sees, given the block's
    /// segment erase count and time since last write. Quiet plans return
    /// 0 without consuming randomness.
    pub fn raw_errors(&mut self, erase_count: u64, since_write: SimDuration) -> u32 {
        if self.config.is_quiet() {
            return 0;
        }
        let lambda = self.config.expected_errors(erase_count, since_write);
        poisson(lambda, self.rng.f64())
    }

    /// [`raw_errors`](Self::raw_errors) followed by
    /// [`classify`](IntegrityConfig::classify).
    pub fn classify_read(&mut self, erase_count: u64, since_write: SimDuration) -> ReadVerdict {
        let errors = self.raw_errors(erase_count, since_write);
        self.config.classify(errors)
    }
}

/// Poisson sample by CDF inversion from a single uniform in `[0, 1)`,
/// capped at [`MAX_RAW_ERRORS`]. When λ is so large that `e^(-λ)`
/// underflows to zero, the cap is returned — far past any retry
/// threshold, so the read is uncorrectable either way.
fn poisson(lambda: f64, u: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    let mut p = (-lambda).exp();
    let mut cdf = p;
    let mut k = 0u32;
    while u >= cdf && k < MAX_RAW_ERRORS {
        k += 1;
        p *= lambda / f64::from(k);
        cdf += p;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_errs_and_draws_nothing() {
        let mut plan = IntegrityPlan::quiet();
        let before = plan.rng.clone().next_u32();
        for _ in 0..1_000 {
            assert_eq!(plan.raw_errors(1_000, SimDuration::from_days(365)), 0);
            assert_eq!(
                plan.classify_read(1_000, SimDuration::from_days(365)),
                ReadVerdict::Clean
            );
        }
        assert_eq!(
            plan.rng.next_u32(),
            before,
            "quiet plan consumed randomness"
        );
        assert!(plan.config().is_quiet());
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = IntegrityConfig::with_growth(1.5, 7);
        let mut a = IntegrityPlan::new(cfg);
        let mut b = IntegrityPlan::new(cfg);
        for e in 0..256u64 {
            assert_eq!(
                a.raw_errors(e, SimDuration::from_hours(e)),
                b.raw_errors(e, SimDuration::from_hours(e))
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = IntegrityPlan::new(IntegrityConfig::with_growth(2.0, 1));
        let mut b = IntegrityPlan::new(IntegrityConfig::with_growth(2.0, 2));
        let xs: Vec<u32> = (0..64)
            .map(|_| a.raw_errors(3, SimDuration::ZERO))
            .collect();
        let ys: Vec<u32> = (0..64)
            .map(|_| b.raw_errors(3, SimDuration::ZERO))
            .collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn error_rate_grows_with_wear_and_retention() {
        let cfg = IntegrityConfig::with_growth(0.5, 3);
        let mut plan = IntegrityPlan::new(cfg);
        let n = 20_000;
        let fresh: u64 = (0..n)
            .map(|_| u64::from(plan.raw_errors(0, SimDuration::ZERO)))
            .sum();
        let worn: u64 = (0..n)
            .map(|_| u64::from(plan.raw_errors(40, SimDuration::from_hours(80))))
            .sum();
        let fresh_mean = fresh as f64 / n as f64;
        let worn_mean = worn as f64 / n as f64;
        assert!((fresh_mean - 0.5).abs() < 0.05, "fresh {fresh_mean}");
        // λ = 0.5 + 0.125·40 + 0.0625·80 = 10.5.
        assert!((worn_mean - 10.5).abs() < 0.5, "worn {worn_mean}");
    }

    #[test]
    fn classification_covers_all_bands() {
        let cfg = IntegrityConfig::none();
        assert_eq!(cfg.classify(0), ReadVerdict::Clean);
        assert_eq!(cfg.classify(8), ReadVerdict::Corrected { errors: 8 });
        assert_eq!(
            cfg.classify(11),
            ReadVerdict::Retried {
                errors: 11,
                attempts: 3
            }
        );
        assert_eq!(cfg.classify(13), ReadVerdict::Uncorrectable { errors: 13 });
        assert!(!cfg.wants_relocation(5));
        assert!(cfg.wants_relocation(6));
        assert!(cfg.wants_relocation(12));
        assert!(!cfg.wants_relocation(13), "lost data cannot be relocated");
    }

    #[test]
    fn poisson_inversion_is_monotone_in_u() {
        let mut last = 0;
        for i in 0..100 {
            let u = i as f64 / 100.0;
            let k = poisson(3.0, u);
            assert!(k >= last, "CDF inversion must be monotone");
            last = k;
        }
        assert_eq!(poisson(0.0, 0.999), 0);
        // Huge λ underflows e^-λ; the cap applies.
        assert_eq!(poisson(1e6, 0.5), MAX_RAW_ERRORS);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rates_are_validated() {
        let _ = IntegrityPlan::new(IntegrityConfig {
            base_errors: f64::NAN,
            ..IntegrityConfig::none()
        });
    }

    #[test]
    #[should_panic(expected = "retry_threshold")]
    fn thresholds_are_ordered() {
        let _ = IntegrityPlan::new(IntegrityConfig {
            retry_threshold: 2,
            ecc_correctable: 8,
            ..IntegrityConfig::none()
        });
    }
}
