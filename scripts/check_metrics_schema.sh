#!/usr/bin/env bash
# Validates the observability export artifacts with jq:
#
#   scripts/check_metrics_schema.sh <metrics.json> [events.jsonl] [timings.json]
#
# The metrics document must carry the mobistore-metrics/1 schema tag,
# a targets array of {target, rows} objects, and every row must expose
# the full latency-percentile set plus states and counters. The optional
# JSONL event stream must parse line by line, with every line carrying a
# sim-time stamp and an event name, and the required event families must
# all appear at least once. The optional timings document must carry the
# mobistore-timings/1.1 schema tag with per-target seconds, simulated op
# counts, and ops/sec. The optional fourth argument validates a
# mobistore-fleet-ckpt/1 fleet checkpoint: header, fingerprint, progress
# arithmetic, and that rows + quarantine entries cover the watermark.
set -euo pipefail

METRICS="${1:?usage: check_metrics_schema.sh <metrics.json> [events.jsonl] [timings.json] [fleet.ckpt]}"
EVENTS="${2:-}"
TIMINGS="${3:-}"
CKPT="${4:-}"

command -v jq >/dev/null || { echo "jq is required" >&2; exit 1; }

echo "checking $METRICS against mobistore-metrics/1..." >&2

jq -e '.schema == "mobistore-metrics/1"' "$METRICS" >/dev/null \
    || { echo "FAIL: schema tag is not mobistore-metrics/1" >&2; exit 1; }
jq -e '(.scale | type == "number") and (.seed | type == "number")' \
    "$METRICS" >/dev/null \
    || { echo "FAIL: missing scale/seed" >&2; exit 1; }
jq -e '.targets | type == "array" and length > 0' "$METRICS" >/dev/null \
    || { echo "FAIL: targets must be a non-empty array" >&2; exit 1; }
jq -e 'all(.targets[]; (.target | type == "string")
           and (.rows | type == "array"))' "$METRICS" >/dev/null \
    || { echo "FAIL: malformed target entry" >&2; exit 1; }

# Every metrics row: name, energy, duration, the three latency blocks
# (each with count/mean and the four percentiles), states, counters.
jq -e '
  all(.targets[].rows[];
      (.name | type == "string")
      and (.energy_j | type == "number")
      and (.duration_ns | type == "number")
      and (.states | type == "array")
      and (.counters | type == "object")
      and all(.read, .write, .overall;
              (.count | type == "number")
              and (.mean_ms | type == "number")
              and has("p50_ms") and has("p90_ms")
              and has("p99_ms") and has("p999_ms")))
' "$METRICS" >/dev/null \
    || { echo "FAIL: a metrics row is missing required fields" >&2; exit 1; }

# At least one target must actually carry rows with observations.
jq -e '[.targets[].rows[] | .overall.count] | add > 0' "$METRICS" >/dev/null \
    || { echo "FAIL: no rows with observations" >&2; exit 1; }

# Data-integrity counters (additive in mobistore-metrics/1): every row
# carries the top-level uncorrectable-read count, and integrity-target
# rows expose the ECC/scrub counter families for their backend.
jq -e 'all(.targets[].rows[];
           .counters.uncorrectable_reads | type == "number")' \
    "$METRICS" >/dev/null \
    || { echo "FAIL: a row is missing counters.uncorrectable_reads" >&2; exit 1; }
if jq -e 'any(.targets[]; .target == "integrity")' "$METRICS" >/dev/null; then
    jq -e '
      [.targets[] | select(.target == "integrity") | .rows[]] as $rows
      | any($rows[]; .counters | has("card.ecc_corrected")
                     and has("card.read_retries")
                     and has("card.scrub_passes")
                     and has("card.blocks_relocated"))
        and any($rows[]; .counters | has("flashdisk.ecc_corrected")
                         and has("flashdisk.read_retries"))
    ' "$METRICS" >/dev/null \
        || { echo "FAIL: integrity rows missing ECC/scrub counters" >&2; exit 1; }
fi

# Fleet export (mobistore-fleet/1): when the fleet target is present its
# entry must carry the versioned fleet block with positive shard and
# population counts, and its rows must lead with the fleet-wide rollup.
if jq -e 'any(.targets[]; .target == "fleet")' "$METRICS" >/dev/null; then
    jq -e '
      [.targets[] | select(.target == "fleet")] as $fleet
      | all($fleet[]; (.fleet.schema == "mobistore-fleet/1")
                      and (.fleet.shards | type == "number" and . > 0)
                      and (.fleet.population | type == "number" and . > 0)
                      and (.fleet.seed | type == "number"))
    ' "$METRICS" >/dev/null \
        || { echo "FAIL: fleet entry missing a valid mobistore-fleet/1 block" >&2; exit 1; }
    jq -e '
      [.targets[] | select(.target == "fleet") | .rows[]] as $rows
      | any($rows[]; .name == "fleet/all")
        and all($rows[]; .name | startswith("fleet/"))
    ' "$METRICS" >/dev/null \
        || { echo "FAIL: fleet rows must lead with fleet/all rollups" >&2; exit 1; }
    # Supervisor block (additive in mobistore-fleet/1): survivors +
    # quarantined count must account for every shard, coverage must be
    # survivors/shards in [0, 1], and the quarantine ledger's shards and
    # causes arrays must agree with its count.
    jq -e '
      [.targets[] | select(.target == "fleet")] as $fleet
      | all($fleet[];
            (.fleet.survivors | type == "number" and . >= 0)
            and (.fleet.coverage | type == "number" and . >= 0 and . <= 1)
            and (.fleet.quarantined.count | type == "number")
            and (.fleet.quarantined.count == (.fleet.shards - .fleet.survivors))
            and ((.fleet.quarantined.shards | type) == "array")
            and ((.fleet.quarantined.shards | length)
                 == .fleet.quarantined.count)
            and ((.fleet.quarantined.causes | type) == "array")
            and ((.fleet.quarantined.causes | length)
                 == .fleet.quarantined.count)
            and all(.fleet.quarantined.causes[];
                    (.shard | type == "number")
                    and (.attempts | type == "number" and . > 0)
                    and (.cause | type == "string" and length > 0))
            and ((.fleet.coverage * .fleet.shards | round)
                 == .fleet.survivors))
    ' "$METRICS" >/dev/null \
        || { echo "FAIL: fleet quarantine accounting is inconsistent" >&2; exit 1; }
fi

# Durability export (mobistore-durability/1): when the durability target
# is present its entry must carry the versioned durability block with at
# least one k+m geometry and death rate, a positive rebuild rate, and a
# seed, and its rows must expose the array counter family.
if jq -e 'any(.targets[]; .target == "durability")' "$METRICS" >/dev/null; then
    jq -e '
      [.targets[] | select(.target == "durability")] as $dur
      | all($dur[]; (.durability.schema == "mobistore-durability/1")
                    and (.durability.geometries | type == "array" and length > 0
                         and all(.[]; test("^[0-9]+\\+[0-9]+$")))
                    and (.durability.death_rates | type == "array" and length > 0
                         and all(.[]; type == "number" and . >= 0))
                    and (.durability.rebuild_rate | type == "number" and . > 0)
                    and (.durability.seed | type == "number"))
    ' "$METRICS" >/dev/null \
        || { echo "FAIL: durability entry missing a valid mobistore-durability/1 block" >&2; exit 1; }
    jq -e '
      [.targets[] | select(.target == "durability") | .rows[]] as $rows
      | ($rows | length > 0)
        and all($rows[]; .counters | has("array.device_deaths")
                         and has("array.degraded_reads")
                         and has("array.rebuilds_completed")
                         and has("array.vulnerability_ns")
                         and has("array.data_loss_events"))
    ' "$METRICS" >/dev/null \
        || { echo "FAIL: durability rows missing array.* counters" >&2; exit 1; }
fi

echo "ok: metrics document is well-formed" >&2

if [ -n "$EVENTS" ]; then
    echo "checking $EVENTS event stream..." >&2
    # Every line parses as JSON and carries t_ns + event (+ context).
    jq -e -s '
      length > 0
      and all(.[]; (.t_ns | type == "number")
                   and (.event | type == "string")
                   and (.workload | type == "string")
                   and (.device | type == "string"))
    ' "$EVENTS" >/dev/null \
        || { echo "FAIL: malformed event line" >&2; exit 1; }
    for family in op_issued op_completed cache_read disk_spin_up \
                  disk_spin_down flash_clean_start flash_clean_end \
                  fault_injected power_fail recovery_end; do
        grep -q "\"event\":\"$family\"" "$EVENTS" \
            || { echo "FAIL: no $family events" >&2; exit 1; }
    done
    echo "ok: event stream is well-formed ($(wc -l < "$EVENTS") events)" >&2
fi

if [ -n "$TIMINGS" ]; then
    echo "checking $TIMINGS against mobistore-timings/1.1..." >&2
    jq -e '.schema == "mobistore-timings/1.1"' "$TIMINGS" >/dev/null \
        || { echo "FAIL: schema tag is not mobistore-timings/1.1" >&2; exit 1; }
    jq -e '(.jobs | type == "number") and (.total_seconds | type == "number")
           and (.trace_cache | type == "object")' "$TIMINGS" >/dev/null \
        || { echo "FAIL: missing jobs/total_seconds/trace_cache" >&2; exit 1; }
    jq -e '.targets | type == "array" and length > 0' "$TIMINGS" >/dev/null \
        || { echo "FAIL: targets must be a non-empty array" >&2; exit 1; }
    jq -e '
      all(.targets[];
          (.target | type == "string")
          and (.seconds | type == "number")
          and (.ops | type == "number")
          and (.ops_per_sec | type == "number"))
    ' "$TIMINGS" >/dev/null \
        || { echo "FAIL: a timings row is missing seconds/ops/ops_per_sec" >&2; exit 1; }
    jq -e '[.targets[].ops] | add > 0' "$TIMINGS" >/dev/null \
        || { echo "FAIL: no simulated ops recorded" >&2; exit 1; }
    echo "ok: timings document is well-formed" >&2
fi

if [ -n "$CKPT" ]; then
    echo "checking $CKPT against mobistore-fleet-ckpt/1..." >&2
    head -n 1 "$CKPT" | grep -qx "mobistore-fleet-ckpt/1" \
        || { echo "FAIL: first line is not the mobistore-fleet-ckpt/1 tag" >&2; exit 1; }
    sed -n '2p' "$CKPT" | grep -qE '^fingerprint [0-9a-f]{16}$' \
        || { echo "FAIL: malformed fingerprint line" >&2; exit 1; }
    sed -n '3p' "$CKPT" | grep -qE '^progress [0-9]+ [0-9]+ [0-9]+ [0-9]+$' \
        || { echo "FAIL: malformed progress line" >&2; exit 1; }
    # progress <done> <total_chunks> <shards> <chunk>: done <= total,
    # and total_chunks must be ceil(shards / chunk).
    sed -n '3p' "$CKPT" | awk '
      { done = $2; total = $3; shards = $4; chunk = $5 }
      END {
        if (done > total) { exit 1 }
        if (total != int((shards + chunk - 1) / chunk)) { exit 1 }
      }' || { echo "FAIL: progress arithmetic is inconsistent" >&2; exit 1; }
    # A complete document ends with the closing marker, carries exactly
    # one total block, and its rows + quarantine entries cover exactly
    # min(done * chunk, shards) shards.
    tail -n 1 "$CKPT" | grep -qx "end" \
        || { echo "FAIL: missing trailing end marker (torn write?)" >&2; exit 1; }
    [ "$(grep -cx 'total' "$CKPT")" -eq 1 ] \
        || { echo "FAIL: expected exactly one total block" >&2; exit 1; }
    grep -qx 'm.end' "$CKPT" \
        || { echo "FAIL: no metrics blocks" >&2; exit 1; }
    covered=$(sed -n '3p' "$CKPT" | awk '
      { c = $2 * $5; if (c > $4) c = $4; print c }')
    entries=$(grep -cE '^(row|quarantine) ' "$CKPT" || true)
    [ "$entries" -eq "$covered" ] \
        || { echo "FAIL: $entries rows+quarantines for $covered covered shards" >&2; exit 1; }
    echo "ok: checkpoint is well-formed ($entries shards covered)" >&2
fi

echo "PASS" >&2
