//! Host-time self-profiling: wall-clock phase timers and simulated-op
//! counters.
//!
//! This is the *other* side of the observability coin from [`crate::span`]:
//! spans measure where **simulated** time goes; this module measures
//! where **wall-clock** time goes and how many trace operations the
//! process pushed through — the denominator every `ops/sec` number in
//! `repro throughput` and `--timings-json` divides by.
//!
//! Two pieces:
//!
//! * [`Profiler`] — an explicit named-phase stopwatch
//!   (`prof.time("trace_decode", || …)`) that accumulates wall-clock
//!   per phase and renders a deterministic-*structure* report (the
//!   numbers are wall-clock and never enter any golden output).
//! * A process-wide simulated-op counter: the simulator calls
//!   [`add_ops`] once per run; [`ops_total`] reads the process total,
//!   and a thread-local [context](set_context) counter lets callers
//!   attribute ops to one target even when the work fans out through
//!   [`crate::exec::parallel_map`] (which propagates the caller's
//!   context into its workers).

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Simulated trace operations completed by this process, across every
/// thread and every simulation run.
static OPS_TOTAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The current thread's op-attribution counter, if any.
    static CONTEXT: RefCell<Option<Arc<AtomicU64>>> = const { RefCell::new(None) };
}

/// Credits `n` simulated operations to the process total and to the
/// current thread's [context](set_context) counter, if one is set.
///
/// Called by the simulator once per run (one relaxed atomic add per
/// simulation, not per op — the hot loop never sees this).
pub fn add_ops(n: u64) {
    OPS_TOTAL.fetch_add(n, Ordering::Relaxed);
    CONTEXT.with(|c| {
        if let Some(ctx) = c.borrow().as_ref() {
            ctx.fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// The process-wide simulated-op total.
pub fn ops_total() -> u64 {
    OPS_TOTAL.load(Ordering::Relaxed)
}

/// Sets (or clears) this thread's op-attribution counter. Subsequent
/// [`add_ops`] calls on this thread also credit the given counter.
pub fn set_context(ctx: Option<Arc<AtomicU64>>) {
    CONTEXT.with(|c| *c.borrow_mut() = ctx);
}

/// This thread's current op-attribution counter, if any.
/// [`crate::exec::parallel_map`] captures this before spawning workers
/// and installs it in each of them.
pub fn current_context() -> Option<Arc<AtomicU64>> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// Runs `f` with `ctx` installed as this thread's op counter, restoring
/// the previous context afterwards (also on the normal return path of
/// nested scopes — contexts stack).
pub fn with_context<R>(ctx: Arc<AtomicU64>, f: impl FnOnce() -> R) -> R {
    let prev = current_context();
    set_context(Some(ctx));
    let r = f();
    set_context(prev);
    r
}

/// A named-phase wall-clock stopwatch.
///
/// Phases accumulate: timing the same name twice adds the durations and
/// bumps the call count. Iteration order is first-use order, so the
/// rendered report's *structure* is deterministic even though the
/// numbers are wall-clock.
#[derive(Debug, Default)]
pub struct Profiler {
    phases: Vec<(&'static str, Duration, u64)>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Runs `f`, charging its wall-clock to phase `name`.
    pub fn time<R>(&mut self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add(name, t0.elapsed());
        r
    }

    /// Charges an already-measured duration to phase `name`.
    pub fn add(&mut self, name: &'static str, elapsed: Duration) {
        match self.phases.iter_mut().find(|(n, _, _)| *n == name) {
            Some((_, total, calls)) => {
                *total += elapsed;
                *calls += 1;
            }
            None => self.phases.push((name, elapsed, 1)),
        }
    }

    /// Iterates `(name, total, calls)` in first-use order.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, Duration, u64)> + '_ {
        self.phases.iter().copied()
    }

    /// Sum of all phase durations.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d, _)| *d).sum()
    }

    /// Renders a human-readable phase table (wall-clock seconds, share
    /// of the profiled total, call count). For stderr only — the
    /// numbers are nondeterministic by nature.
    pub fn report(&self) -> String {
        let total = self.total().as_secs_f64();
        let width = self
            .phases
            .iter()
            .map(|(n, _, _)| n.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (name, dur, calls) in &self.phases {
            let secs = dur.as_secs_f64();
            let share = if total > 0.0 {
                100.0 * secs / total
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  {name:<width$}  {secs:>9.4} s  {share:>5.1}%  {calls:>4} call{}",
                if *calls == 1 { "" } else { "s" }
            );
        }
        let _ = writeln!(out, "  {:<width$}  {:>9.4} s", "total", total);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_accumulate_globally_and_per_context() {
        let before = ops_total();
        let ctx = Arc::new(AtomicU64::new(0));
        with_context(ctx.clone(), || {
            add_ops(5);
            add_ops(7);
        });
        add_ops(3); // outside the context
        assert_eq!(ctx.load(Ordering::Relaxed), 12);
        assert!(ops_total() >= before + 15);
        assert!(current_context().is_none());
    }

    #[test]
    fn contexts_nest_and_restore() {
        let outer = Arc::new(AtomicU64::new(0));
        let inner = Arc::new(AtomicU64::new(0));
        with_context(outer.clone(), || {
            add_ops(1);
            with_context(inner.clone(), || add_ops(10));
            add_ops(2);
        });
        assert_eq!(outer.load(Ordering::Relaxed), 3);
        assert_eq!(inner.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn profiler_accumulates_phases_in_first_use_order() {
        let mut prof = Profiler::new();
        assert_eq!(prof.time("a", || 41) + 1, 42);
        prof.time("b", || ());
        prof.time("a", || ());
        let phases: Vec<_> = prof.phases().collect();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, "a");
        assert_eq!(phases[0].2, 2);
        assert_eq!(phases[1].0, "b");
        assert_eq!(phases[1].2, 1);
        let report = prof.report();
        assert!(report.contains("a"));
        assert!(report.contains("total"));
    }
}
