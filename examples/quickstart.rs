//! Quickstart: compare the three storage alternatives on one workload.
//!
//! Replays a mac-like trace through the paper's three storage
//! organisations (magnetic disk + SRAM buffer, flash disk emulator, flash
//! memory card) and prints the Table 4 columns plus the battery-life
//! implication.
//!
//! ```text
//! cargo run --release --example quickstart [scale]
//! ```

use mobistore::core::battery::{battery_extension, savings_fraction, STORAGE_SHARE_LOW};
use mobistore::core::config::SystemConfig;
use mobistore::core::simulator::simulate;
use mobistore::device::params::{cu140_datasheet, intel_datasheet, sdp5_datasheet};
use mobistore::Metrics;
use mobistore::Workload;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    println!(
        "Generating a mac-like workload at {:.0}% of the paper's 3.5 hours...",
        scale * 100.0
    );
    let trace = Workload::Mac.generate_scaled(scale, 1994);
    println!("  {} disk-level operations\n", trace.len());

    let configs = [
        SystemConfig::disk(cu140_datasheet()),
        SystemConfig::flash_disk(sdp5_datasheet()),
        SystemConfig::flash_card(intel_datasheet()),
    ];

    println!("{}", Metrics::table4_header());
    let mut results = Vec::new();
    for cfg in &configs {
        let mut m = simulate(cfg, &trace);
        m.name = cfg.name.clone();
        println!("{}", m.table4_row());
        results.push(m);
    }

    let disk_j = results[0].energy.get();
    let card_j = results[2].energy.get();
    let savings = savings_fraction(disk_j, card_j.min(disk_j));
    let extension = battery_extension(STORAGE_SHARE_LOW, savings);
    println!(
        "\nThe flash card uses {:.0}% less storage energy than the disk;\n\
         with storage at 20% of system energy that extends battery life by {:.0}%\n\
         (the paper's abstract quotes 22% for this case).",
        savings * 100.0,
        extension * 100.0
    );
}
