//! The `repro fleet` target — fleet-scale sharded simulation with
//! mergeable metrics, supervised for fault isolation and resumability.
//!
//! The paper evaluates one device against one trace; this target scales
//! that to a device *population*: a user population is hash-range-mapped
//! onto shards by [`mobistore_sim::fleet`], each shard gets a device
//! class and workload class from weighted mixes plus a per-user demand
//! level drawn from its own RNG stream, every shard simulates
//! independently through the parallel executor, and the per-shard
//! [`Metrics`] merge into per-device-class rollups and one fleet-wide
//! row.
//!
//! The **supervisor** makes long runs survive hostile conditions, the
//! same way the simulated devices do:
//!
//! - *Fault isolation*: each shard runs under `catch_unwind`. A panic is
//!   retried up to [`FleetOptions::retry_budget`] more times and then the
//!   shard is **quarantined** as a typed [`ShardError`] — the run
//!   completes over the survivors (with an explicit coverage fraction)
//!   instead of tearing down the pool.
//! - *Checkpoint/resume*: with [`FleetOptions::checkpoint_out`] the fold
//!   state is persisted as a versioned `mobistore-fleet-ckpt/1` file at a
//!   chunk-watermark cadence; [`FleetOptions::resume_from`] validates a
//!   config fingerprint, skips the completed chunks, and produces output
//!   byte-identical to an uninterrupted run — a kill -9 costs at most one
//!   chunk of work.
//! - *Chaos self-test*: [`ChaosConfig`] injects deterministic panics and
//!   mid-run aborts so tests can prove all of the above end-to-end.
//!
//! Determinism contract: a shard's bytes are a pure function of
//! `(fleet seed, shard index)` — its trace seed, demand draw, fault seed,
//! and chaos draws all derive from that pair. Shards are simulated in
//! fixed chunks dispatched through
//! [`ordered_stream_map`](mobistore_sim::exec::ordered_stream_map) and
//! folded in shard-index order with a fixed chunk size, so the report,
//! the merged percentiles, and the `--metrics-out` document are
//! byte-identical at any `--jobs` count, and simulating shard `k` alone
//! reproduces exactly the bytes it contributed in-fleet.

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

use mobistore_core::config::SystemConfig;
use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::{simulate, ConfigError, SimError};
use mobistore_device::params::{cu140_datasheet, intel_datasheet, sdp5_datasheet};
use mobistore_sim::exec::{ordered_stream_map, panic_cause};
use mobistore_sim::fault::FaultConfig;
use mobistore_sim::fleet::{
    splitmix64, ChaosConfig, FleetConfig, FleetPlan, FleetShard, Mix, ShardError,
};
use mobistore_sim::time::SimDuration;
use mobistore_sim::units::MIB;
use mobistore_workload::Workload;

use crate::{ckpt, working_set_blocks, Scale};

/// Salt for the per-shard demand-sampling RNG stream.
const DEMAND_SALT: u64 = 0x7fee_7000_dead_beef;

/// Salt for the per-shard fault-injection seed.
const FAULT_SALT: u64 = 0xfau64 << 56 | 0x0017_5eed;

/// Trace fraction one unit of user demand contributes: a shard with `u`
/// users replays roughly `u × this` of its workload's full trace (before
/// the lognormal per-user spread). Sized so the default eight users per
/// shard produce a small but non-degenerate trace even in 10k-shard
/// fleets.
const PER_USER_DEMAND: f64 = 0.002;

/// Transient fault rate injected into every shard (so fleet fault totals
/// are non-trivial even at quick scales).
const FLEET_FAULT_RATE: f64 = 0.01;

/// Mean interval between injected power failures per shard.
const POWER_FAIL_INTERVAL: SimDuration = SimDuration::from_secs(600);

/// Shards simulated per executor task (and the checkpoint watermark
/// granularity). Fixed — never derived from the worker count — so the
/// merge grouping, and therefore every floating point fold, is identical
/// at any `--jobs`.
pub const CHUNK: usize = 32;

/// Exit code of a `--chaos-fail-point` abort: the supervisor's simulated
/// kill -9, distinct from every real error code so tests and CI can tell
/// "chaos abort as scheduled" from a genuine failure.
pub const CHAOS_ABORT_EXIT: u8 = 9;

/// The fleet's workload mix: mostly interactive file-level traces, some
/// disk-level and synthetic stress shards.
pub fn workload_mix() -> Mix {
    Mix::new(&[("mac", 4), ("dos", 3), ("hp", 2), ("synth", 1)])
}

/// The fleet's device mix: the paper's three storage alternatives.
pub fn device_mix() -> Mix {
    Mix::new(&[("cu140-disk", 3), ("sdp5-flashdisk", 2), ("intel-card", 3)])
}

/// `repro fleet` parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOptions {
    /// Number of simulated device shards.
    pub shards: u32,
    /// User population hashed onto the shards.
    pub population: u64,
    /// Fleet seed; every per-shard stream derives from it.
    pub seed: u64,
    /// Retries granted to a panicking shard past its first attempt
    /// before it is quarantined. Retry outcomes are deterministic: a
    /// chaos draw is a pure function of `(fleet seed, shard, attempt)`,
    /// and a genuinely deterministic shard panic exhausts the budget.
    pub retry_budget: u32,
    /// Chaos-injection knobs (`--chaos-panic-rate`/`--chaos-fail-point`),
    /// quiet by default.
    pub chaos: ChaosConfig,
    /// Persist a `mobistore-fleet-ckpt/1` file here as chunks complete.
    pub checkpoint_out: Option<PathBuf>,
    /// Checkpoint cadence, in completed chunks (`--checkpoint-every`).
    pub checkpoint_every: u64,
    /// Resume from this checkpoint file, skipping its completed chunks.
    pub resume_from: Option<PathBuf>,
}

impl FleetOptions {
    /// The default population for a shard count: eight users per shard.
    pub fn default_population(shards: u32) -> u64 {
        u64::from(shards) * 8
    }
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            shards: 64,
            population: Self::default_population(64),
            seed: 1994,
            retry_budget: 2,
            chaos: ChaosConfig::default(),
            checkpoint_out: None,
            checkpoint_every: 1,
            resume_from: None,
        }
    }
}

/// Builds the sharding config for these options.
pub fn fleet_config(opts: &FleetOptions) -> FleetConfig {
    FleetConfig {
        shards: opts.shards,
        population: opts.population,
        workload_mix: workload_mix(),
        device_mix: device_mix(),
        seed: opts.seed,
    }
}

/// Resolves a workload-mix label to the workload it names.
fn workload_by_name(name: &str) -> Workload {
    match name {
        "mac" => Workload::Mac,
        "dos" => Workload::Dos,
        "hp" => Workload::Hp,
        "synth" => Workload::Synth,
        other => panic!("unknown workload class {other}"),
    }
}

/// Like [`crate::flash_card_config`], but with a 4-MiB floor instead of
/// the paper's 40-MiB card: fleet shards replay tiny per-device traces,
/// and preloading 10k full-size cards would dominate the run.
fn fleet_card_config(trace: &mobistore_trace::record::Trace, utilization: f64) -> SystemConfig {
    let params = intel_datasheet();
    let seg = params.segment_size;
    let w_bytes = working_set_blocks(trace) * trace.block_size;
    let needed = (w_bytes as f64 / utilization) as u64 + 2 * seg;
    let capacity = (4 * MIB).max(needed.div_ceil(seg) * seg);
    SystemConfig::flash_card(params)
        .with_flash_capacity(capacity)
        .with_utilization(utilization)
}

/// Builds one shard's system configuration.
fn shard_config(
    shard: &FleetShard,
    workload: Workload,
    trace: &mobistore_trace::record::Trace,
) -> SystemConfig {
    let fault_seed = splitmix64(shard.seed ^ FAULT_SALT ^ u64::from(shard.index));
    let fault = FaultConfig::with_rate(FLEET_FAULT_RATE, fault_seed)
        .with_power_failures(POWER_FAIL_INTERVAL);
    let dram = if workload.below_buffer_cache() {
        0
    } else {
        2 * 1024 * 1024
    };
    let cfg = match shard.device {
        "cu140-disk" => SystemConfig::disk(cu140_datasheet()),
        "sdp5-flashdisk" => SystemConfig::flash_disk(sdp5_datasheet()),
        "intel-card" => fleet_card_config(trace, 0.80),
        other => panic!("unknown device class {other}"),
    };
    cfg.with_dram(dram).with_faults(fault)
}

/// The shard's total trace demand: the sum of its users' lognormal
/// per-user demands (drawn from the shard's dedicated RNG stream), scaled
/// by [`PER_USER_DEMAND`] and the run's [`Scale`].
fn shard_demand(shard: &FleetShard, scale: Scale) -> f64 {
    let mut rng = shard.rng(DEMAND_SALT);
    let mut units = 0.0;
    for _ in 0..shard.users {
        units += rng.lognormal_mean_std(1.0, 1.0);
    }
    units * PER_USER_DEMAND * scale.fraction
}

/// Simulates one shard: generates its demand-scaled trace and replays it
/// against its assigned device class. Pure function of the shard (which
/// is itself a pure function of `(fleet seed, shard index)`) and the
/// scale — calling this on a shard alone reproduces exactly its in-fleet
/// result.
pub fn simulate_shard(shard: &FleetShard, scale: Scale) -> Metrics {
    let workload = workload_by_name(shard.workload);
    let trace = workload.generate_demand(shard_demand(shard, scale), shard.trace_seed());
    let cfg = shard_config(shard, workload, &trace);
    let mut metrics = simulate(&cfg, &trace);
    metrics.name = format!(
        "shard{:05}/{}/{}",
        shard.index, shard.workload, shard.device
    );
    metrics
}

/// Runs one shard under the supervisor: chaos injection, `catch_unwind`
/// isolation, bounded deterministic retries, quarantine past the budget.
///
/// Because everything a shard does is a pure function of
/// `(fleet seed, shard index)` — including the chaos draw, which also
/// mixes in the attempt number — the outcome (which attempt succeeds, or
/// that none does) is identical at any `--jobs` and on every rerun.
pub fn supervised_simulate_shard(
    shard: &FleetShard,
    scale: Scale,
    chaos: ChaosConfig,
    retry_budget: u32,
) -> Result<Metrics, ShardError> {
    let attempts = retry_budget + 1;
    let mut last_cause = String::new();
    for attempt in 0..attempts {
        let result = catch_unwind(AssertUnwindSafe(|| {
            if chaos.should_panic(shard.seed, shard.index, attempt) {
                panic!(
                    "chaos: injected panic (shard {} attempt {attempt})",
                    shard.index
                );
            }
            simulate_shard(shard, scale)
        }));
        match result {
            Ok(m) => return Ok(m),
            Err(payload) => last_cause = panic_cause(&*payload),
        }
    }
    Err(ShardError {
        shard: shard.index,
        attempts,
        cause: last_cause,
    })
}

/// FNV-1a over a metrics row's debug rendering: a cheap but sensitive
/// fingerprint used to prove shard-alone equals in-fleet without
/// retaining 10k full metric sets.
pub fn metrics_digest(m: &Metrics) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{m:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One shard's lightweight summary row (the full [`Metrics`] is merged
/// into the rollups, not retained per shard).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRow {
    /// Shard index.
    pub index: u32,
    /// Users hashed onto the shard.
    pub users: u64,
    /// Workload-class label.
    pub workload: &'static str,
    /// Device-class label.
    pub device: &'static str,
    /// Operations the shard replayed.
    pub ops: u64,
    /// Energy the shard consumed, joules.
    pub energy_j: f64,
    /// [`metrics_digest`] of the shard's full metrics.
    pub digest: u64,
}

/// What one chunk task returns: survivor rows plus pre-merged partials,
/// and the shards that exhausted their retry budget.
struct ChunkResult {
    rows: Vec<ShardRow>,
    per_class: Vec<(&'static str, Metrics)>,
    total: Metrics,
    quarantined: Vec<ShardError>,
}

/// The supervisor's incremental fold state: everything accumulated after
/// `chunks_done` chunks, in shard-index order. This is exactly what a
/// `mobistore-fleet-ckpt/1` checkpoint persists ([`crate::ckpt`]), so a
/// resumed run folds forward from bit-identical state.
#[derive(Debug, Clone)]
pub struct FoldState {
    /// Survivor rows, in shard-index order.
    pub rows: Vec<ShardRow>,
    /// Per-device-class partial merges, in device-mix order (classes no
    /// shard drew yet stay empty; the final report prunes them).
    pub per_class: Vec<(&'static str, Metrics)>,
    /// All survivors merged.
    pub total: Metrics,
    /// Shards quarantined so far, in shard-index order.
    pub quarantined: Vec<ShardError>,
    /// Completed-chunk watermark.
    pub chunks_done: u64,
}

impl FoldState {
    /// The fold seed: nothing done yet, one empty accumulator per device
    /// class.
    pub fn fresh() -> FoldState {
        FoldState {
            rows: Vec::new(),
            per_class: device_mix()
                .entries()
                .iter()
                .map(|&(name, _)| (name, Metrics::empty(name)))
                .collect(),
            total: Metrics::empty("fleet/all"),
            quarantined: Vec::new(),
            chunks_done: 0,
        }
    }

    /// Folds one completed chunk in (called in chunk order).
    fn fold(&mut self, chunk: ChunkResult) {
        self.rows.extend(chunk.rows);
        for (class, m) in &chunk.per_class {
            let (_, acc) = self
                .per_class
                .iter_mut()
                .find(|(n, _)| n == class)
                .expect("chunk class comes from the device mix");
            acc.merge(m);
        }
        self.total.merge(&chunk.total);
        self.quarantined.extend(chunk.quarantined);
        self.chunks_done += 1;
    }
}

/// The fleet run: shard map, per-shard rows, per-device-class rollups,
/// the fleet-wide merged metrics, and the quarantine ledger.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// The options that produced this fleet.
    pub options: FleetOptions,
    /// The shard plan (hash ranges, assignments, user counts).
    pub plan: FleetPlan,
    /// One lightweight row per *surviving* shard, in index order.
    pub rows: Vec<ShardRow>,
    /// Per-device-class merged metrics over survivors, in device-mix
    /// order; classes no shard drew are omitted.
    pub per_class: Vec<(&'static str, Metrics)>,
    /// Every surviving shard merged: the fleet-wide row (`fleet/all`).
    pub total: Metrics,
    /// Shards that panicked past the retry budget, in index order. All
    /// rollups above cover survivors only.
    pub quarantined: Vec<ShardError>,
}

impl Fleet {
    /// Shards that completed (the rollup population).
    pub fn survivors(&self) -> u32 {
        self.options.shards - self.quarantined.len() as u32
    }

    /// Fraction of the fleet the rollups cover: survivors / shards.
    pub fn coverage(&self) -> f64 {
        f64::from(self.survivors()) / f64::from(self.options.shards)
    }

    /// The metrics rows exported via `--metrics-out`: the fleet-wide row
    /// first, then the per-device-class rollups.
    pub fn metrics_rows(&self) -> Vec<Metrics> {
        let mut rows = vec![self.total.clone()];
        for (class, m) in &self.per_class {
            let mut m = m.clone();
            m.name = format!("fleet/{class}");
            rows.push(m);
        }
        rows
    }

    /// Shards per workload class, in workload-mix order.
    fn workload_counts(&self) -> Vec<(&'static str, u32)> {
        let mut counts: Vec<(&'static str, u32)> = workload_mix()
            .entries()
            .iter()
            .map(|&(name, _)| (name, 0))
            .collect();
        for shard in &self.plan.shards {
            if let Some((_, c)) = counts.iter_mut().find(|(n, _)| *n == shard.workload) {
                *c += 1;
            }
        }
        counts
    }

    /// Shards per device class, in device-mix order.
    fn device_counts(&self) -> Vec<(&'static str, u32)> {
        let mut counts: Vec<(&'static str, u32)> = device_mix()
            .entries()
            .iter()
            .map(|&(name, _)| (name, 0))
            .collect();
        for shard in &self.plan.shards {
            if let Some((_, c)) = counts.iter_mut().find(|(n, _)| *n == shard.device) {
                *c += 1;
            }
        }
        counts
    }
}

/// Wraps a checkpoint failure as the typed config error the CLI maps to
/// its exit code.
fn checkpoint_err(reason: String) -> SimError {
    SimError::Config(ConfigError::Checkpoint(reason))
}

/// Runs the fleet under the supervisor: plans the shards, simulates them
/// in fixed chunks, folds in shard-index order, quarantines poisoned
/// shards, and honours the checkpoint/resume options.
///
/// # Errors
///
/// Returns [`ConfigError::Checkpoint`] (as a [`SimError`]) when
/// `resume_from` is unreadable, malformed, or fingerprint-mismatched, or
/// when `checkpoint_out` cannot be written at run start.
pub fn run(scale: Scale, opts: &FleetOptions) -> Result<Fleet, SimError> {
    run_with_progress(scale, opts, false)
}

/// Like [`run`], with optional `--progress` heartbeats: each folded
/// chunk prints completed shards, throughput, and an ETA to stderr.
/// Stdout (and every exported artifact) is untouched, so a progress run
/// stays byte-identical to a silent one.
///
/// # Errors
///
/// As [`run`].
pub fn run_with_progress(
    scale: Scale,
    opts: &FleetOptions,
    progress: bool,
) -> Result<Fleet, SimError> {
    let plan = fleet_config(opts).plan();
    let total_shards = plan.shards.len();
    let chunks: Vec<&[FleetShard]> = plan.shards.chunks(CHUNK).collect();
    let total_chunks = chunks.len() as u64;
    let fingerprint = ckpt::fingerprint(opts, scale);

    let mut state = match &opts.resume_from {
        Some(path) => ckpt::load(path, fingerprint, total_chunks, total_shards as u64)
            .map_err(checkpoint_err)?,
        None => FoldState::fresh(),
    };
    // Validate the checkpoint path up front (and republish the resumed
    // watermark) so a typo fails the run before hours of simulation, not
    // after.
    if let Some(path) = &opts.checkpoint_out {
        ckpt::store(path, &state, fingerprint, total_chunks, total_shards as u64)
            .map_err(|e| checkpoint_err(format!("cannot write {}: {e}", path.display())))?;
    }

    let start_chunk = state.chunks_done as usize;
    let pending = &chunks[start_chunk..];
    let shards_at_start: usize = chunks[..start_chunk].iter().map(|c| c.len()).sum();
    let started = Instant::now();
    let cadence = opts.checkpoint_every.max(1);
    let mut shards_this_run = 0usize;
    let mut ckpt_error: Option<String> = None;
    {
        let state = &mut state;
        ordered_stream_map(
            pending,
            |chunk| simulate_chunk(chunk, scale, opts),
            |i, result| {
                state.fold(result);
                shards_this_run += pending[i].len();
                if progress {
                    let finished = shards_at_start + shards_this_run;
                    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
                    let rate = shards_this_run as f64 / elapsed;
                    let eta = (total_shards.saturating_sub(finished)) as f64 / rate.max(1e-9);
                    eprintln!(
                        "# fleet progress: {finished}/{total_shards} shards \
                         ({rate:.1} shards/s, eta {eta:.0} s)"
                    );
                }
                let done_this_run = state.chunks_done - start_chunk as u64;
                if opts.chaos.fail_point == Some(done_this_run) {
                    // Simulated kill -9: abort *before* persisting this
                    // chunk, so resume proves the at-most-one-chunk bound.
                    eprintln!(
                        "# chaos: aborting after {done_this_run} chunks (--chaos-fail-point)"
                    );
                    std::process::exit(i32::from(CHAOS_ABORT_EXIT));
                }
                if let Some(path) = &opts.checkpoint_out {
                    let due = state.chunks_done % cadence == 0 || state.chunks_done == total_chunks;
                    if due && ckpt_error.is_none() {
                        if let Err(e) =
                            ckpt::store(path, state, fingerprint, total_chunks, total_shards as u64)
                        {
                            ckpt_error = Some(format!("{}: {e}", path.display()));
                        }
                    }
                }
            },
        );
    }
    if let Some(e) = ckpt_error {
        // A mid-run checkpoint failure must not kill a long run that is
        // otherwise healthy; the start-of-run write already validated the
        // path, so this is a transient (disk-full-style) condition.
        eprintln!("# warning: checkpoint write failed mid-run, resume data is stale: {e}");
    }

    let FoldState {
        rows,
        mut per_class,
        total,
        quarantined,
        ..
    } = state;
    per_class.retain(|(_, m)| m.overall_response_ms.count > 0 || m.duration > SimDuration::ZERO);
    Ok(Fleet {
        options: opts.clone(),
        plan,
        rows,
        per_class,
        total,
        quarantined,
    })
}

/// Simulates one chunk of shards under the supervisor.
fn simulate_chunk(chunk: &[FleetShard], scale: Scale, opts: &FleetOptions) -> ChunkResult {
    let mut rows = Vec::with_capacity(chunk.len());
    let mut per_class: Vec<(&'static str, Metrics)> = Vec::new();
    let mut total = Metrics::empty("fleet/all");
    let mut quarantined = Vec::new();
    for shard in chunk {
        let m = match supervised_simulate_shard(shard, scale, opts.chaos, opts.retry_budget) {
            Ok(m) => m,
            Err(e) => {
                quarantined.push(e);
                continue;
            }
        };
        rows.push(ShardRow {
            index: shard.index,
            users: shard.users,
            workload: shard.workload,
            device: shard.device,
            ops: m.overall_response_ms.count,
            energy_j: m.energy.get(),
            digest: metrics_digest(&m),
        });
        match per_class.iter_mut().find(|(n, _)| *n == shard.device) {
            Some((_, acc)) => acc.merge(&m),
            None => {
                let mut acc = Metrics::empty(shard.device);
                acc.merge(&m);
                per_class.push((shard.device, acc));
            }
        }
        total.merge(&m);
    }
    ChunkResult {
        rows,
        per_class,
        total,
        quarantined,
    }
}

/// Formats one merged latency row: class label, shard count, op count,
/// mean, p50/p90/p99/p99.9, max.
fn latency_row(f: &mut fmt::Formatter<'_>, label: &str, shards: usize, m: &Metrics) -> fmt::Result {
    let p = m.overall_percentiles();
    writeln!(
        f,
        "  {label:<16} {shards:>6} {:>9} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.1}",
        m.overall_response_ms.count,
        m.overall_response_ms.mean,
        p.p50,
        p.p90,
        p.p99,
        p.p999,
        m.overall_response_ms.max,
    )
}

impl fmt::Display for Fleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fleet simulation: {} shards, {} users, seed {}",
            self.options.shards, self.options.population, self.options.seed
        )?;
        writeln!(f, "  shard map: {}", self.plan.range_map(3))?;
        write!(f, "  workloads:")?;
        for (name, count) in self.workload_counts() {
            write!(f, " {name}={count}")?;
        }
        writeln!(f)?;
        write!(f, "  devices:")?;
        for (name, count) in self.device_counts() {
            write!(f, " {name}={count}")?;
        }
        writeln!(f)?;
        if !self.quarantined.is_empty() {
            writeln!(
                f,
                "  quarantined: {}/{} shards (coverage {:.2}%), rollups cover survivors only",
                self.quarantined.len(),
                self.options.shards,
                self.coverage() * 100.0,
            )?;
            for e in &self.quarantined {
                writeln!(f, "    {e}")?;
            }
        }
        writeln!(
            f,
            "  energy {:.1} J, span {:.1} s (max shard), mean shard power {:.3} W",
            self.total.energy.get(),
            self.total.duration.as_secs_f64(),
            self.total.mean_power_w(),
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "  {:<16} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "class", "shards", "n", "mean", "p50", "p90", "p99", "p99.9", "max"
        )?;
        for (class, m) in &self.per_class {
            let shards = self.rows.iter().filter(|r| r.device == *class).count();
            latency_row(f, class, shards, m)?;
        }
        latency_row(f, "fleet/all", self.rows.len(), &self.total)?;
        let t = self.total.fault_totals();
        writeln!(
            f,
            "  faults: write_retries={} erase_retries={} segments_retired={} \
             power_failures={} lost_dirty_blocks={} rejected_writes={}",
            t.write_retries,
            t.erase_retries,
            t.segments_retired,
            t.power_failures,
            t.lost_dirty_blocks,
            t.rejected_writes,
        )?;
        writeln!(
            f,
            "  integrity: uncorrectable_reads={} recovery {:.3} s",
            self.total.uncorrectable_reads,
            t.recovery_time.as_secs_f64(),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetOptions {
        FleetOptions {
            shards: 6,
            population: 48,
            ..FleetOptions::default()
        }
    }

    #[test]
    fn fleet_runs_and_merges() {
        let fleet = run(Scale::quick(), &tiny()).expect("quiet fleet");
        assert_eq!(fleet.rows.len(), 6);
        assert_eq!(fleet.plan.users(), 48);
        assert!(fleet.quarantined.is_empty());
        assert_eq!(fleet.survivors(), 6);
        assert_eq!(fleet.coverage(), 1.0);
        assert!(fleet.total.overall_response_ms.count > 0);
        assert!(fleet.total.energy.get() > 0.0);
        // The per-class rollups partition the fleet's operations.
        let class_ops: u64 = fleet
            .per_class
            .iter()
            .map(|(_, m)| m.overall_response_ms.count)
            .sum();
        assert_eq!(class_ops, fleet.total.overall_response_ms.count);
        let row_ops: u64 = fleet.rows.iter().map(|r| r.ops).sum();
        assert_eq!(row_ops, fleet.total.overall_response_ms.count);
        let rendered = format!("{fleet}");
        assert!(rendered.contains("fleet/all"));
        assert!(rendered.contains("p99.9"));
        assert!(rendered.contains("shard map:"));
        assert!(
            !rendered.contains("quarantined:"),
            "a clean run must not print a quarantine section"
        );
    }

    #[test]
    fn shard_alone_matches_in_fleet_digest() {
        let opts = tiny();
        let fleet = run(Scale::quick(), &opts).expect("quiet fleet");
        let plan = fleet_config(&opts).plan();
        for (shard, row) in plan.shards.iter().zip(&fleet.rows) {
            let alone = simulate_shard(shard, Scale::quick());
            assert_eq!(metrics_digest(&alone), row.digest, "shard {}", shard.index);
        }
    }

    #[test]
    fn export_rows_lead_with_fleet_wide() {
        let fleet = run(Scale::quick(), &tiny()).expect("quiet fleet");
        let rows = fleet.metrics_rows();
        assert_eq!(rows[0].name, "fleet/all");
        assert!(rows.len() > 1);
        for row in &rows[1..] {
            assert!(row.name.starts_with("fleet/"), "{}", row.name);
        }
    }

    #[test]
    fn chaos_panics_quarantine_instead_of_aborting() {
        let opts = FleetOptions {
            shards: 24,
            population: 192,
            chaos: ChaosConfig {
                panic_rate: 0.6,
                fail_point: None,
            },
            ..FleetOptions::default()
        };
        let fleet = run(Scale::quick(), &opts).expect("chaos fleet completes");
        assert!(
            !fleet.quarantined.is_empty(),
            "rate 0.6 with 3 attempts should quarantine some of 24 shards"
        );
        assert!(
            (fleet.rows.len() as u32) == fleet.survivors(),
            "one row per survivor"
        );
        assert_eq!(
            fleet.rows.len() + fleet.quarantined.len(),
            24,
            "every shard is either a survivor or quarantined"
        );
        // Quarantined shards stay out of the rollups.
        let row_ops: u64 = fleet.rows.iter().map(|r| r.ops).sum();
        assert_eq!(row_ops, fleet.total.overall_response_ms.count);
        // The report carries the quarantine ledger.
        let rendered = format!("{fleet}");
        assert!(rendered.contains("quarantined:"));
        assert!(rendered.contains("chaos: injected panic"));
        // Survivors are byte-identical to a chaos-free run of the same
        // seed: isolation must not perturb neighbouring shards.
        let quiet = run(
            Scale::quick(),
            &FleetOptions {
                chaos: ChaosConfig::default(),
                ..opts.clone()
            },
        )
        .expect("quiet fleet");
        let quarantined: Vec<u32> = fleet.quarantined.iter().map(|e| e.shard).collect();
        let quiet_survivor_rows: Vec<&ShardRow> = quiet
            .rows
            .iter()
            .filter(|r| !quarantined.contains(&r.index))
            .collect();
        assert_eq!(quiet_survivor_rows.len(), fleet.rows.len());
        for (a, b) in fleet.rows.iter().zip(quiet_survivor_rows) {
            assert_eq!(a, b, "survivor shard {} must be unperturbed", a.index);
        }
    }

    #[test]
    fn retry_budget_rescues_transient_panics() {
        // Rate 0.3: P(all 3 attempts panic) ≈ 2.7%, so most shards that
        // draw a first-attempt panic are rescued by a retry.
        let opts = FleetOptions {
            shards: 48,
            population: 384,
            chaos: ChaosConfig {
                panic_rate: 0.3,
                fail_point: None,
            },
            ..FleetOptions::default()
        };
        let fleet = run(Scale::quick(), &opts).expect("chaos fleet completes");
        assert!(
            fleet.survivors() > 40,
            "retries should rescue most shards, survivors = {}",
            fleet.survivors()
        );
        // With the budget removed the same rate quarantines far more.
        let no_retries = run(
            Scale::quick(),
            &FleetOptions {
                retry_budget: 0,
                ..opts.clone()
            },
        )
        .expect("chaos fleet completes");
        assert!(
            no_retries.quarantined.len() > fleet.quarantined.len(),
            "retry budget must reduce quarantines ({} vs {})",
            no_retries.quarantined.len(),
            fleet.quarantined.len()
        );
        for e in &fleet.quarantined {
            assert_eq!(e.attempts, 3, "default budget is first try + 2 retries");
        }
    }
}
