//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale <fraction>] [--seed <n>] [targets...]
//! ```
//!
//! Targets: `table1 table2 table3 table4 figure1 figure2 figure3 figure4
//! figure5 async endurance verify battery ablations` (default: all).

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use mobistore_experiments as exp;
use mobistore_experiments::Scale;

fn main() -> ExitCode {
    let mut scale = Scale::full();
    let mut targets: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v <= 1.0 => scale.fraction = v,
                _ => return usage("--scale needs a fraction in (0, 1]"),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => scale.seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => return usage("--csv needs a directory"),
            },
            "--help" | "-h" => return usage(""),
            t if !t.starts_with('-') => targets.push(t.to_owned()),
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    if targets.is_empty() {
        targets = [
            "table1", "table2", "table3", "table4", "figure1", "figure2", "figure3", "figure4",
            "figure5", "async", "endurance", "verify", "battery", "ablations", "nextgen",
            "sensitivity", "related",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    }

    eprintln!("# mobistore repro: scale {:.2}, seed {}", scale.fraction, scale.seed);
    for target in &targets {
        eprintln!("# running {target}...");
        match target.as_str() {
            "table1" => println!("{}\n", exp::table1::run()),
            "table2" => println!("{}\n", exp::table2::run()),
            "table3" => println!("{}\n", exp::table3::run(scale)),
            "table4" => {
                let t = exp::table4::run(scale);
                println!("{t}\n");
                write_csv(&csv_dir, "table4.csv", &exp::csv::table4_csv(&t));
            }
            "figure1" => {
                let fig = exp::figure1::run();
                println!("{fig}\n{}\n", fig.plot());
            }
            "figure2" => {
                let fig = exp::figure2::run(scale);
                println!("{fig}\n{}\n", fig.plot());
                write_csv(&csv_dir, "figure2.csv", &exp::csv::figure2_csv(&fig));
            }
            "figure3" => {
                let fig = exp::figure3::run();
                println!("{fig}\n{}\n", fig.plot());
            }
            "figure4" => {
                let fig = exp::figure4::run(scale);
                println!("{fig}\n");
                write_csv(&csv_dir, "figure4.csv", &exp::csv::figure4_csv(&fig));
            }
            "figure5" => {
                let fig = exp::figure5::run(scale);
                println!("{fig}\n");
                write_csv(&csv_dir, "figure5.csv", &exp::csv::figure5_csv(&fig));
            }
            "async" => println!("{}\n", exp::async_cleaning::run(scale)),
            "endurance" => println!("{}\n", exp::endurance::run(scale)),
            "verify" => println!("{}\n", exp::verification::run(scale)),
            "battery" => println!("{}\n", exp::battery::run(scale)),
            "ablations" => {
                println!("{}\n", exp::ablations::cleaning_policies(scale));
                println!("{}\n", exp::ablations::write_back_cache(scale));
                println!("{}\n", exp::ablations::spin_down_sweep(scale));
                println!("{}\n", exp::ablations::flash_with_sram(scale));
                println!("{}\n", exp::ablations::seek_models(scale));
            }
            "nextgen" => {
                println!("{}\n", exp::next_gen::series2plus(mobistore_workload::Workload::Dos, scale));
                println!("{}\n", exp::next_gen::wear_leveling(scale));
                println!("{}\n", exp::next_gen::render_lifetime(&exp::next_gen::lifetime(scale)));
            }
            "sensitivity" => println!("{}\n", exp::sensitivity::run(scale)),
            "related" => println!("{}\n", exp::related::run(scale)),
            other => return usage(&format!("unknown target {other}")),
        }
    }
    ExitCode::SUCCESS
}

/// Writes one CSV file into the `--csv` directory, if one was given.
fn write_csv(dir: &Option<PathBuf>, name: &str, contents: &str) {
    let Some(dir) = dir else { return };
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match fs::write(&path, contents) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--scale <0..1]] [--seed <n>] [--csv <dir>] [table1|table2|table3|table4|figure1|figure2|\
         figure3|figure4|figure5|async|endurance|verify|battery|ablations|nextgen|sensitivity|related ...]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
