//! Criterion benches regenerating each paper table.
//!
//! These measure the cost of the reproduction itself (workload generation
//! plus simulation), one bench per table, at an abbreviated scale so the
//! whole suite stays minutes-long. Run with
//! `cargo bench -p mobistore-bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mobistore_experiments::{table1, table2, table3, table4, Scale};
use mobistore_workload::Workload;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_microbenchmarks", |b| {
        b.iter(|| black_box(table1::run()));
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_device_specs", |b| {
        b.iter(|| black_box(table2::run()));
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_trace_characteristics", |b| {
        b.iter(|| black_box(table3::run(Scale::quick())));
    });
}

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    for workload in Workload::TABLE4 {
        group.bench_function(workload.name(), |b| {
            b.iter(|| black_box(table4::run_part(workload, Scale::quick())));
        });
    }
    group.finish();
}

criterion_group!(tables, bench_table1, bench_table2, bench_table3, bench_table4);
criterion_main!(tables);
