//! Trace characterisation, regenerating the columns of Table 3.
//!
//! §4.2: *"10% of the trace was processed in order to 'warm' the buffer
//! cache, and statistics were generated based on the remainder of the
//! trace."* Table 3's caption likewise notes its statistics apply to the 90%
//! of each trace that is actually simulated. [`TraceStats::measure`]
//! therefore takes the post-warm-up portion.

use std::collections::HashSet;

use mobistore_sim::stats::{OnlineStats, Summary};
use mobistore_sim::time::SimDuration;

use crate::record::{DiskOpKind, Trace};

/// The Table 3 statistics for one trace.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Wall-clock span of the measured portion.
    pub duration: SimDuration,
    /// Number of distinct Kbytes touched (distinct blocks × block size).
    pub distinct_kbytes: u64,
    /// Fraction of read operations among reads + writes.
    pub fraction_reads: f64,
    /// Block size in Kbytes.
    pub block_size_kbytes: f64,
    /// Mean read size in blocks.
    pub mean_read_blocks: f64,
    /// Mean write size in blocks.
    pub mean_write_blocks: f64,
    /// Interarrival time statistics, in seconds.
    pub interarrival: Summary,
    /// Total number of operations (including trims).
    pub ops: u64,
}

impl TraceStats {
    /// Measures a trace (normally the post-warm-up 90%).
    pub fn measure(trace: &Trace) -> Self {
        let mut distinct = HashSet::new();
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut read_blocks = OnlineStats::new();
        let mut write_blocks = OnlineStats::new();
        let mut interarrival = OnlineStats::new();
        let mut last_time: Option<mobistore_sim::time::SimTime> = None;

        for op in &trace.ops {
            match op.kind {
                DiskOpKind::Read => {
                    reads += 1;
                    read_blocks.record(f64::from(op.blocks));
                }
                DiskOpKind::Write => {
                    writes += 1;
                    write_blocks.record(f64::from(op.blocks));
                }
                DiskOpKind::Trim => {}
            }
            if op.kind != DiskOpKind::Trim {
                for b in op.lbn..op.lbn + u64::from(op.blocks) {
                    distinct.insert(b);
                }
                if let Some(prev) = last_time {
                    interarrival.record((op.time - prev).as_secs_f64());
                }
                last_time = Some(op.time);
            }
        }

        let accesses = reads + writes;
        TraceStats {
            duration: trace.duration(),
            distinct_kbytes: distinct.len() as u64 * trace.block_size / 1024,
            fraction_reads: if accesses == 0 {
                0.0
            } else {
                reads as f64 / accesses as f64
            },
            block_size_kbytes: trace.block_size as f64 / 1024.0,
            mean_read_blocks: read_blocks.mean(),
            mean_write_blocks: write_blocks.mean(),
            interarrival: interarrival.summary(),
            ops: trace.ops.len() as u64,
        }
    }
}

/// Splits a trace at the paper's warm-up boundary: the first `warm_percent`
/// of operations warm the cache; the rest are measured.
///
/// # Panics
///
/// Panics if `warm_percent` is not in `0..=100`.
///
/// # Examples
///
/// ```
/// use mobistore_trace::record::Trace;
/// use mobistore_trace::stats::split_warm;
///
/// let trace = Trace::new(1024);
/// let (warm, measured) = split_warm(&trace, 10);
/// assert!(warm.is_empty() && measured.is_empty());
/// ```
pub fn split_warm(trace: &Trace, warm_percent: u32) -> (Trace, Trace) {
    assert!(warm_percent <= 100, "warm percentage out of range");
    let boundary = (trace.ops.len() * warm_percent as usize) / 100;
    let warm = Trace {
        block_size: trace.block_size,
        ops: trace.ops[..boundary].to_vec(),
    };
    let measured = Trace {
        block_size: trace.block_size,
        ops: trace.ops[boundary..].to_vec(),
    };
    (warm, measured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{DiskOp, FileId};
    use mobistore_sim::time::SimTime;

    fn mk(kind: DiskOpKind, ns: u64, lbn: u64, blocks: u32) -> DiskOp {
        DiskOp {
            time: SimTime::from_nanos(ns),
            kind,
            lbn,
            blocks,
            file: FileId(0),
        }
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new(1024);
        t.push(mk(DiskOpKind::Write, 0, 0, 4));
        t.push(mk(DiskOpKind::Read, 1_000_000_000, 0, 2));
        t.push(mk(DiskOpKind::Read, 3_000_000_000, 2, 2));
        t.push(mk(DiskOpKind::Trim, 3_000_000_000, 0, 4));
        t.push(mk(DiskOpKind::Write, 4_000_000_000, 4, 2));
        t
    }

    #[test]
    fn measures_basic_moments() {
        let s = TraceStats::measure(&sample_trace());
        assert_eq!(s.ops, 5);
        // Reads: 2 of 4 accesses.
        assert_eq!(s.fraction_reads, 0.5);
        assert_eq!(s.mean_read_blocks, 2.0);
        assert_eq!(s.mean_write_blocks, 3.0);
        // Distinct blocks 0..6 = 6 blocks of 1 KB.
        assert_eq!(s.distinct_kbytes, 6);
        // Interarrivals between non-trim ops: 1s, 2s, 1s.
        assert_eq!(s.interarrival.count, 3);
        assert!((s.interarrival.mean - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.interarrival.max, 2.0);
    }

    #[test]
    fn trims_do_not_count_as_accesses() {
        let mut t = Trace::new(1024);
        t.push(mk(DiskOpKind::Trim, 0, 0, 8));
        let s = TraceStats::measure(&t);
        assert_eq!(s.fraction_reads, 0.0);
        assert_eq!(s.distinct_kbytes, 0);
        assert_eq!(s.interarrival.count, 0);
    }

    #[test]
    fn split_warm_partitions_ops() {
        let t = sample_trace();
        let (warm, measured) = split_warm(&t, 40);
        assert_eq!(warm.len(), 2);
        assert_eq!(measured.len(), 3);
        assert_eq!(warm.block_size, 1024);
        assert_eq!(measured.ops[0], t.ops[2]);
    }

    #[test]
    fn split_warm_zero_and_full() {
        let t = sample_trace();
        let (w0, m0) = split_warm(&t, 0);
        assert!(w0.is_empty());
        assert_eq!(m0.len(), t.len());
        let (w100, m100) = split_warm(&t, 100);
        assert_eq!(w100.len(), t.len());
        assert!(m100.is_empty());
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let s = TraceStats::measure(&Trace::new(512));
        assert_eq!(s.ops, 0);
        assert_eq!(s.mean_read_blocks, 0.0);
        assert_eq!(s.duration, SimDuration::ZERO);
    }
}
