//! An erasure-coded array over `k + m` child devices.
//!
//! The paper's single-device storage alternatives (magnetic disk, flash
//! disk, flash card) trade energy against latency, but a lost device loses
//! its data. [`ArrayDevice`] composes `k + m` children into one logical
//! block device that survives any `m` concurrent device losses:
//!
//! * each logical block belongs to a **stripe** of `k` data shards plus
//!   `m` Reed-Solomon parity shards ([`mobistore_sim::ec::ReedSolomon`]),
//!   one shard per child, with RAID-5-style parity rotation so parity
//!   traffic spreads across the array;
//! * a read whose shard is unavailable becomes a **degraded read**: the
//!   array fetches any `k` surviving shards in parallel, pays a bounded
//!   retry/backoff penalty, and decodes the block — typed
//!   [`DeviceError::ArrayDegraded`] only when fewer than `k` shards
//!   survive, never silent loss;
//! * a dead child with a hot spare available enters **rebuild**: a
//!   background reconstructor walks the stripes in order during idle
//!   gaps (paced like the scrubber), checkpointing its watermark so a
//!   power failure resumes rather than restarts the walk;
//! * once concurrent losses exceed `m` the array degrades to
//!   **read-only** ([`DeviceError::ArrayFailed`]): writes are rejected,
//!   reads of still-decodable stripes keep working.
//!
//! Children are modeled as bandwidth/latency/power **profiles** derived
//! from the paper's Table 2 devices rather than full device models: the
//! array charges realistic time and energy per shard transfer while the
//! per-device wear/cleaning machinery stays in the single-device models.
//! Shard *contents* are 16-byte `[lbn, generation]` payloads so the
//! crash-consistency shadow oracle can verify that acknowledged writes
//! survive any `≤ m` losses and that a sabotaged survivor is caught.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use mobistore_sim::ec::ReedSolomon;
use mobistore_sim::energy::{EnergyMeter, Joules, Watts};
use mobistore_sim::fault::DeathSchedule;
use mobistore_sim::hist::LatencyRecorder;
use mobistore_sim::obs::{Event, NoopObserver, Observer};
use mobistore_sim::span::{Span, SpanKind};
use mobistore_sim::time::{SimDuration, SimTime};
use mobistore_sim::units::Bandwidth;

use crate::{DeviceError, QueueDiscipline, Service};

/// The class of device serving as one array child.
///
/// The array charges each shard transfer at the class's datasheet rates
/// (Table 2 / §3 of the paper); mixes are allowed, in which case every
/// stripe operation completes when its *slowest* involved child does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildClass {
    /// Intel Series 2 flash card: fast reads, slow programs, tiny idle
    /// draw.
    FlashCard,
    /// SunDisk SDP-series flash disk: block interface, millisecond
    /// latency.
    FlashDisk,
    /// Caviar Ultralite-class hard disk: high bandwidth, heavy idle
    /// draw.
    HardDisk,
}

/// The timing/energy profile the array charges for one child.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChildProfile {
    /// Shard read bandwidth.
    pub read_bandwidth: Bandwidth,
    /// Shard write bandwidth.
    pub write_bandwidth: Bandwidth,
    /// Fixed per-access latency.
    pub access_latency: SimDuration,
    /// Power while transferring.
    pub active_power: Watts,
    /// Power while idle.
    pub idle_power: Watts,
}

impl ChildClass {
    /// Stable lowercase name (used by config labels and CLI parsing).
    pub fn name(self) -> &'static str {
        match self {
            ChildClass::FlashCard => "card",
            ChildClass::FlashDisk => "flashdisk",
            ChildClass::HardDisk => "disk",
        }
    }

    /// Parses a CLI/config spelling of a child class.
    pub fn parse(s: &str) -> Option<ChildClass> {
        match s {
            "card" | "flashcard" | "flash-card" => Some(ChildClass::FlashCard),
            "flashdisk" | "flash-disk" | "fd" => Some(ChildClass::FlashDisk),
            "disk" | "hdd" | "harddisk" | "hard-disk" => Some(ChildClass::HardDisk),
            _ => None,
        }
    }

    /// The datasheet profile for this class (Table 2 numbers; the flash
    /// card's write rate is the measured program rate, the hard disk's
    /// latency is the paper's average access time).
    pub fn profile(self) -> ChildProfile {
        match self {
            ChildClass::FlashCard => ChildProfile {
                read_bandwidth: Bandwidth::from_kib_per_s(9765.0),
                write_bandwidth: Bandwidth::from_kib_per_s(214.0),
                access_latency: SimDuration::ZERO,
                active_power: Watts(0.47),
                idle_power: Watts(0.0005),
            },
            ChildClass::FlashDisk => ChildProfile {
                read_bandwidth: Bandwidth::from_kib_per_s(600.0),
                write_bandwidth: Bandwidth::from_kib_per_s(109.0),
                access_latency: SimDuration::from_millis_f64(1.5),
                active_power: Watts(0.36),
                idle_power: Watts(0.0005),
            },
            ChildClass::HardDisk => ChildProfile {
                read_bandwidth: Bandwidth::from_kib_per_s(2125.0),
                write_bandwidth: Bandwidth::from_kib_per_s(2125.0),
                access_latency: SimDuration::from_millis_f64(25.7),
                active_power: Watts(1.75),
                idle_power: Watts(0.7),
            },
        }
    }
}

/// Counters the array maintains alongside energy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArrayCounters {
    /// Completed host operations (reads + writes).
    pub ops: u64,
    /// Logical bytes read.
    pub bytes_read: u64,
    /// Logical bytes written.
    pub bytes_written: u64,
    /// Block reads served by decoding survivors instead of the direct
    /// shard.
    pub degraded_reads: u64,
    /// Stripes whose parity was recomputed by a write.
    pub parity_updates: u64,
    /// Stripes reconstructed onto a hot spare.
    pub rebuild_stripes: u64,
    /// Rebuilds that completed (child returned to full redundancy).
    pub rebuilds_completed: u64,
    /// Sim time spent reconstructing stripes.
    pub rebuild_time: SimDuration,
    /// Children that died permanently.
    pub device_deaths: u64,
    /// Block reads that could not be reconstructed (typed
    /// [`DeviceError::ArrayDegraded`], mirrored as
    /// [`Event::UncorrectableRead`]).
    pub data_loss_events: u64,
    /// Total window of vulnerability: sim time during which at least one
    /// child's shards were missing (death to rebuild completion, or to
    /// the end of the run).
    pub vulnerability: SimDuration,
    /// Power failures survived.
    pub power_failures: u64,
    /// Sim time spent re-reading array metadata after power loss.
    pub recovery_time: SimDuration,
    /// Writes rejected because the array is failed read-only.
    pub read_only_rejections: u64,
}

impl ArrayCounters {
    /// Adds another array's counters into this one (fleet aggregation:
    /// counts and durations are all additive).
    pub fn merge(&mut self, other: &ArrayCounters) {
        self.ops += other.ops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.degraded_reads += other.degraded_reads;
        self.parity_updates += other.parity_updates;
        self.rebuild_stripes += other.rebuild_stripes;
        self.rebuilds_completed += other.rebuilds_completed;
        self.rebuild_time += other.rebuild_time;
        self.device_deaths += other.device_deaths;
        self.data_loss_events += other.data_loss_events;
        self.vulnerability += other.vulnerability;
        self.power_failures += other.power_failures;
        self.recovery_time += other.recovery_time;
        self.read_only_rejections += other.read_only_rejections;
    }
}

/// One stripe's `k + m` shard payloads in logical order (`0..k` data,
/// `k..k+m` parity). `None` means the shard is missing: its child died
/// and the stripe has not been rebuilt yet.
#[derive(Clone)]
struct Stripe {
    shards: Vec<Option<Vec<u8>>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChildState {
    /// Serving reads and writes, holds every shard it should.
    Alive,
    /// Died and was replaced by a hot spare that the background rebuild
    /// is filling; rebuilt (and freshly written) stripes are readable.
    Rebuilding,
    /// Died with no spare left; its shards are gone.
    Dead,
}

#[derive(Clone)]
struct Child {
    class: ChildClass,
    profile: ChildProfile,
    state: ChildState,
    /// When the child died; cleared when the open vulnerability window is
    /// accounted (rebuild completion or end of run).
    died_at: Option<SimTime>,
    /// Whether the death schedule already fired for this child.
    death_fired: bool,
}

/// The active rebuild: reconstructing `child`'s shards stripe by stripe.
#[derive(Clone)]
struct RebuildJob {
    child: usize,
    /// Stripes below this number are done.
    watermark: u64,
    /// Durable watermark: power failure resumes from here.
    checkpoint: u64,
    /// Stripes reconstructed since the last checkpoint.
    since_checkpoint: u64,
}

/// Bytes of shard payload: `[lbn: u64 LE][generation: u64 LE]`. Timing
/// and energy are charged at `block_bytes` per shard; the payload only
/// carries the identity the crash oracle verifies.
const PAYLOAD_BYTES: usize = 16;

/// Stripes between rebuild checkpoints.
const REBUILD_CHECKPOINT_STRIPES: u64 = 64;

/// Per-child metadata re-read after power loss (stripe map + rebuild
/// watermark headers).
const RECOVERY_SCAN_BYTES: u64 = 64 * 1024;

const CATEGORIES: &[&str] = &[
    "read", "write", "parity", "degraded", "rebuild", "idle", "recover",
];

/// An erasure-coded array of `k + m` child devices.
///
/// # Examples
///
/// ```
/// use mobistore_device::array::{ArrayDevice, ChildClass};
/// use mobistore_sim::time::SimTime;
///
/// let children = vec![ChildClass::FlashDisk; 6];
/// let mut array = ArrayDevice::new(4, 2, &children, 1024);
/// let svc = array.try_write(SimTime::ZERO, 0, 4).unwrap();
/// let (_, res) = array.try_read(svc.end, 0, 4);
/// assert!(res.is_ok());
/// ```
#[derive(Clone)]
pub struct ArrayDevice {
    rs: ReedSolomon,
    children: Vec<Child>,
    block_bytes: u64,
    queueing: QueueDiscipline,
    deaths: DeathSchedule,
    spares: u32,
    /// Stripes per second the background rebuild reconstructs.
    rebuild_rate: f64,
    retry_backoff: SimDuration,
    max_retries: u32,
    stripes: BTreeMap<u64, Stripe>,
    /// Acknowledged logical blocks (the shadow oracle's domain).
    mapped: BTreeSet<u64>,
    next_gen: u64,
    rebuild_queue: VecDeque<usize>,
    rebuild: Option<RebuildJob>,
    failed: bool,
    free_at: SimTime,
    meter: EnergyMeter,
    counters: ArrayCounters,
    degraded: LatencyRecorder,
}

impl ArrayDevice {
    /// Builds a `k + m` array over `children` (one shard of every stripe
    /// per child), with one hot spare and default rebuild pacing.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (`k == 0`, `m == 0`,
    /// `k + m > 255`), if `children.len() != k + m`, or if `block_bytes`
    /// is zero.
    pub fn new(k: usize, m: usize, children: &[ChildClass], block_bytes: u64) -> Self {
        let rs = match ReedSolomon::new(k, m) {
            Ok(rs) => rs,
            Err(e) => panic!("array geometry {k}+{m} is invalid: {e}"),
        };
        assert_eq!(
            children.len(),
            k + m,
            "a {k}+{m} array needs exactly {} children, got {}",
            k + m,
            children.len()
        );
        assert!(block_bytes > 0, "array block size must be nonzero");
        let children = children
            .iter()
            .map(|&class| Child {
                class,
                profile: class.profile(),
                state: ChildState::Alive,
                died_at: None,
                death_fired: false,
            })
            .collect::<Vec<_>>();
        let n = children.len();
        ArrayDevice {
            rs,
            children,
            block_bytes,
            queueing: QueueDiscipline::Fifo,
            deaths: DeathSchedule::quiet(n),
            spares: 1,
            rebuild_rate: 128.0,
            retry_backoff: SimDuration::from_millis_f64(1.0),
            max_retries: 3,
            stripes: BTreeMap::new(),
            mapped: BTreeSet::new(),
            next_gen: 1,
            rebuild_queue: VecDeque::new(),
            rebuild: None,
            failed: false,
            free_at: SimTime::ZERO,
            meter: EnergyMeter::new(CATEGORIES),
            counters: ArrayCounters::default(),
            degraded: LatencyRecorder::new(),
        }
    }

    /// Sets the queue discipline (see [`QueueDiscipline`]).
    pub fn with_queueing(mut self, discipline: QueueDiscipline) -> Self {
        self.queueing = discipline;
        self
    }

    /// Installs a per-child permanent-death schedule. The quiet schedule
    /// (the default) leaves behaviour bit-identical to an array built
    /// without one.
    ///
    /// # Panics
    ///
    /// Panics if the schedule does not cover exactly `k + m` children.
    pub fn with_deaths(mut self, deaths: DeathSchedule) -> Self {
        assert_eq!(
            deaths.len(),
            self.children.len(),
            "death schedule covers {} children, array has {}",
            deaths.len(),
            self.children.len()
        );
        self.deaths = deaths;
        self
    }

    /// Sets how many hot spares are available for rebuilds (default 1).
    pub fn with_spares(mut self, spares: u32) -> Self {
        self.spares = spares;
        self
    }

    /// Sets the background rebuild pace in stripes per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn with_rebuild_rate(mut self, rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "rebuild rate must be finite and positive, got {rate}"
        );
        self.rebuild_rate = rate;
        self
    }

    /// Sets the degraded-read retry budget: each missing shard costs one
    /// backoff, bounded by `max_retries` per block.
    pub fn with_retry(mut self, backoff: SimDuration, max_retries: u32) -> Self {
        self.retry_backoff = backoff;
        self.max_retries = max_retries;
        self
    }

    /// Data-shard count `k`.
    pub fn data_shards(&self) -> usize {
        self.rs.data_shards()
    }

    /// Parity-shard count `m` (the losses the array tolerates).
    pub fn parity_shards(&self) -> usize {
        self.rs.parity_shards()
    }

    /// The classes of the children, in child order.
    pub fn child_classes(&self) -> Vec<ChildClass> {
        self.children.iter().map(|c| c.class).collect()
    }

    /// True once concurrent losses exceeded `m`: the array is read-only.
    pub fn is_failed(&self) -> bool {
        self.failed
    }

    /// Children currently not at full redundancy (dead or rebuilding).
    pub fn lost_children(&self) -> u32 {
        self.children
            .iter()
            .filter(|c| c.state != ChildState::Alive)
            .count() as u32
    }

    /// Returns the operation counters.
    pub fn counters(&self) -> ArrayCounters {
        self.counters
    }

    /// Returns total energy consumed so far.
    pub fn energy(&self) -> Joules {
        self.meter.total()
    }

    /// Returns the energy meter for per-state breakdowns.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Per-operation degraded-read response times (only operations that
    /// decoded at least one block from survivors are recorded).
    pub fn degraded_recorder(&self) -> &LatencyRecorder {
        &self.degraded
    }

    /// The generation the next acknowledged write will receive.
    pub fn next_generation(&self) -> u64 {
        self.next_gen
    }

    /// Zeroes energy and counters while keeping array state; used at the
    /// warm-up boundary (§4.2).
    pub fn reset_metrics(&mut self) {
        self.meter = EnergyMeter::new(CATEGORIES);
        self.counters = ArrayCounters::default();
        self.degraded = LatencyRecorder::new();
    }

    fn k(&self) -> usize {
        self.rs.data_shards()
    }

    fn n(&self) -> usize {
        self.rs.total_shards()
    }

    /// The physical child holding logical slot `slot` of stripe `s`
    /// (RAID-5-style rotation: every child carries its share of parity).
    fn child_of(&self, slot: usize, s: u64) -> usize {
        let n = self.n() as u64;
        ((slot as u64 + s) % n) as usize
    }

    /// The logical slot child `c` holds in stripe `s`.
    fn slot_of(&self, c: usize, s: u64) -> usize {
        let n = self.n() as u64;
        ((c as u64 + n - (s % n)) % n) as usize
    }

    fn payload(lbn: u64, generation: u64) -> Vec<u8> {
        let mut v = Vec::with_capacity(PAYLOAD_BYTES);
        v.extend_from_slice(&lbn.to_le_bytes());
        v.extend_from_slice(&generation.to_le_bytes());
        v
    }

    fn parse_generation(payload: &[u8]) -> u64 {
        let mut gen = [0u8; 8];
        gen.copy_from_slice(&payload[8..16]);
        u64::from_le_bytes(gen)
    }

    /// True if the child can accept a shard write (its media is present).
    fn writable(&self, child: usize) -> bool {
        self.children[child].state != ChildState::Dead
    }

    /// Fires scheduled deaths up to `now`, in child order.
    fn process_deaths(&mut self, now: SimTime) {
        for c in 0..self.children.len() {
            if self.children[c].death_fired {
                continue;
            }
            let Some(d) = self.deaths.death_of(c) else {
                continue;
            };
            if d > now {
                continue;
            }
            self.children[c].death_fired = true;
            self.children[c].died_at = Some(d);
            self.counters.device_deaths += 1;
            // The dead medium takes its shards with it.
            let slots: Vec<(u64, usize)> = self
                .stripes
                .keys()
                .map(|&s| (s, self.slot_of(c, s)))
                .collect();
            for (s, slot) in slots {
                if let Some(stripe) = self.stripes.get_mut(&s) {
                    stripe.shards[slot] = None;
                }
            }
            if self.spares > 0 {
                self.spares -= 1;
                self.children[c].state = ChildState::Rebuilding;
                self.rebuild_queue.push_back(c);
            } else {
                self.children[c].state = ChildState::Dead;
            }
            if self.lost_children() as usize > self.rs.parity_shards() {
                self.failed = true;
            }
        }
    }

    /// Settles the gap `[free_at, now]`: deaths fire first, then the
    /// background rebuild consumes idle time at its configured pace, and
    /// the remainder is charged as idle. Returns when the array can start
    /// a new request.
    fn settle<O: Observer>(&mut self, now: SimTime, obs: &mut O) -> SimTime {
        self.process_deaths(now);
        if now <= self.free_at {
            return match self.queueing {
                QueueDiscipline::Fifo => self.free_at,
                QueueDiscipline::OpenLoop => now,
            };
        }
        let gap = now - self.free_at;
        let busy = self.run_rebuild(self.free_at, now, obs);
        let idle = gap.saturating_sub(busy);
        let idle_power: f64 = self
            .children
            .iter()
            .filter(|c| c.state != ChildState::Dead)
            .map(|c| c.profile.idle_power.get())
            .sum();
        self.meter.charge_for("idle", Watts(idle_power), idle);
        self.free_at = now;
        now
    }

    /// Runs the background rebuild inside the idle gap `[from, until]`;
    /// a job cannot start before its child died. Returns the busy time
    /// consumed (the rest of the gap is idle).
    fn run_rebuild<O: Observer>(
        &mut self,
        from: SimTime,
        until: SimTime,
        obs: &mut O,
    ) -> SimDuration {
        let per_stripe = SimDuration::from_secs_f64(1.0 / self.rebuild_rate);
        let mut busy = SimDuration::ZERO;
        let mut cursor = from;
        loop {
            if self.rebuild.is_none() {
                let Some(child) = self.rebuild_queue.pop_front() else {
                    break;
                };
                self.rebuild = Some(RebuildJob {
                    child,
                    watermark: 0,
                    checkpoint: 0,
                    since_checkpoint: 0,
                });
            }
            let mut job = self.rebuild.clone().expect("active rebuild");
            // The walk cannot have started before the child died.
            let died = self.children[job.child].died_at.unwrap_or(cursor);
            let start_at = cursor.max(died);
            if start_at >= until {
                break;
            }
            let remaining = until - start_at;
            let affordable = remaining.as_nanos() / per_stripe.as_nanos().max(1);
            if affordable == 0 {
                break;
            }
            let todo: Vec<u64> = self
                .stripes
                .range(job.watermark..)
                .map(|(&s, _)| s)
                .take(affordable.min(u64::from(u32::MAX)) as usize)
                .collect();
            let mut done = 0u64;
            for s in &todo {
                let slot = self.slot_of(job.child, *s);
                self.reconstruct_slot(*s, slot);
                job.watermark = s + 1;
                job.since_checkpoint += 1;
                if job.since_checkpoint >= REBUILD_CHECKPOINT_STRIPES {
                    job.checkpoint = job.watermark;
                    job.since_checkpoint = 0;
                }
                done += 1;
            }
            let batch_time = per_stripe * done;
            if done > 0 {
                busy += batch_time;
                self.counters.rebuild_stripes += done;
                self.counters.rebuild_time += batch_time;
                let power = self.children[job.child].profile.active_power;
                self.meter.charge_for("rebuild", power, batch_time);
                obs.span(&Span::new(
                    SpanKind::Rebuild {
                        stripe: todo[0],
                        stripes: done.min(u64::from(u32::MAX)) as u32,
                    },
                    start_at,
                    start_at + batch_time,
                ));
            }
            cursor = start_at + batch_time;
            let finished = self.stripes.range(job.watermark..).next().is_none();
            if finished {
                let child = job.child;
                self.rebuild = None;
                self.children[child].state = ChildState::Alive;
                self.counters.rebuilds_completed += 1;
                if let Some(died) = self.children[child].died_at.take() {
                    self.counters.vulnerability += cursor.saturating_since(died);
                }
            } else {
                self.rebuild = Some(job);
                // Gap exhausted mid-walk.
                break;
            }
        }
        busy
    }

    /// Reconstructs stripe `s`'s shard at logical `slot` from survivors,
    /// if at least `k` shards are available. Unrecoverable stripes stay
    /// missing and surface later as typed degraded-read errors.
    fn reconstruct_slot(&mut self, s: u64, slot: usize) {
        let Some(stripe) = self.stripes.get(&s) else {
            return;
        };
        if stripe.shards[slot].is_some() {
            // A write-through already refreshed this shard.
            return;
        }
        let available = stripe.shards.iter().filter(|x| x.is_some()).count();
        if available < self.k() {
            return;
        }
        let mut shards = stripe.shards.clone();
        if self.rs.reconstruct(&mut shards).is_ok() {
            let value = shards[slot].take();
            if let Some(st) = self.stripes.get_mut(&s) {
                st.shards[slot] = value;
            }
        }
    }

    /// Gathers the full data vector of stripe `s` (decoding from
    /// survivors if needed). `None` if fewer than `k` shards survive.
    fn stripe_data(&self, stripe: &Stripe) -> Option<Vec<Vec<u8>>> {
        let k = self.k();
        if stripe.shards[..k].iter().all(|x| x.is_some()) {
            return Some(
                stripe.shards[..k]
                    .iter()
                    .map(|x| x.clone().expect("present data shard"))
                    .collect(),
            );
        }
        let available = stripe.shards.iter().filter(|x| x.is_some()).count();
        if available < k {
            return None;
        }
        let mut shards = stripe.shards.clone();
        self.rs.reconstruct(&mut shards).ok()?;
        Some(
            shards[..k]
                .iter()
                .map(|x| x.clone().expect("reconstructed data shard"))
                .collect(),
        )
    }

    /// Writes one block's payload into its stripe and recomputes parity,
    /// without charging time or energy (preload, trim). Returns false if
    /// the stripe has too few survivors to update.
    fn store_instant(&mut self, lbn: u64, payload: Vec<u8>) -> bool {
        let k = self.k();
        let s = lbn / k as u64;
        let slot = (lbn % k as u64) as usize;
        self.ensure_stripe(s);
        let stripe = self.stripes.get(&s).expect("stripe just ensured");
        let Some(mut data) = self.stripe_data(stripe) else {
            return false;
        };
        data[slot] = payload;
        let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
        let parity = self.rs.encode(&refs);
        let n = self.n();
        let writable: Vec<bool> = (0..n).map(|i| self.writable(self.child_of(i, s))).collect();
        let stripe = self.stripes.get_mut(&s).expect("stripe just ensured");
        for (i, d) in data.into_iter().enumerate() {
            if (i == slot || stripe.shards[i].is_some()) && writable[i] {
                stripe.shards[i] = Some(d);
            }
        }
        for (j, p) in parity.into_iter().enumerate() {
            if writable[k + j] {
                stripe.shards[k + j] = Some(p);
            } else {
                stripe.shards[k + j] = None;
            }
        }
        true
    }

    /// Materializes stripe `s` if absent: all-zero data payloads with
    /// freshly encoded parity, shards present only on children whose
    /// media is present.
    fn ensure_stripe(&mut self, s: u64) {
        if self.stripes.contains_key(&s) {
            return;
        }
        let k = self.k();
        let n = self.n();
        let zero = vec![0u8; PAYLOAD_BYTES];
        let data: Vec<&[u8]> = (0..k).map(|_| zero.as_slice()).collect();
        let parity = self.rs.encode(&data);
        let mut shards: Vec<Option<Vec<u8>>> = Vec::with_capacity(n);
        for i in 0..n {
            let c = self.child_of(i, s);
            let value = if i < k {
                zero.clone()
            } else {
                parity[i - k].clone()
            };
            shards.push(if self.writable(c) { Some(value) } else { None });
        }
        self.stripes.insert(s, Stripe { shards });
    }

    /// Marks `lbn..lbn+blocks` acknowledged-and-stamped without timing;
    /// mirrors the flash card's aged preload so the torture driver can
    /// stamp the shadow in the same order.
    pub fn preload(&mut self, lbns: impl Iterator<Item = u64>) {
        for lbn in lbns {
            let gen = self.next_gen;
            self.next_gen += 1;
            if self.store_instant(lbn, Self::payload(lbn, gen)) {
                self.mapped.insert(lbn);
            }
        }
    }

    /// Serves a read of `blocks` logical blocks at `lbn`, issued at
    /// `now`. Blocks whose direct shard is unavailable are decoded from
    /// any `k` survivors (a degraded read, charged a bounded
    /// retry/backoff penalty); a block with fewer than `k` surviving
    /// shards yields [`DeviceError::ArrayDegraded`] — the loss is typed
    /// and mirrored as [`Event::UncorrectableRead`], never silent. Time
    /// and energy are accounted either way.
    pub fn try_read(
        &mut self,
        now: SimTime,
        lbn: u64,
        blocks: u32,
    ) -> (Service, Result<(), DeviceError>) {
        self.try_read_obs(now, lbn, blocks, &mut NoopObserver)
    }

    /// [`try_read`](Self::try_read), reporting degraded reads and losses
    /// to an observer.
    pub fn try_read_obs<O: Observer>(
        &mut self,
        now: SimTime,
        lbn: u64,
        blocks: u32,
        obs: &mut O,
    ) -> (Service, Result<(), DeviceError>) {
        let start = self.settle(now, obs);
        let k = self.k();
        let n = self.n();
        let mut read_bytes = vec![0u64; n];
        let mut degraded_bytes = vec![0u64; n];
        let mut extra = SimDuration::ZERO;
        let mut result: Result<(), DeviceError> = Ok(());
        let mut degraded_blocks: Vec<(u64, u32)> = Vec::new();
        for b in lbn..lbn + u64::from(blocks) {
            let s = b / k as u64;
            let slot = (b % k as u64) as usize;
            let child = self.child_of(slot, s);
            let direct = match self.stripes.get(&s) {
                Some(stripe) => stripe.shards[slot].is_some(),
                // Never-written stripes read as zeros straight off the
                // owning child, as long as its media is present.
                None => self.children[child].state == ChildState::Alive,
            };
            if direct {
                read_bytes[child] += self.block_bytes;
                continue;
            }
            // Degraded: fetch any k surviving shards and decode.
            let available: Vec<usize> = match self.stripes.get(&s) {
                Some(stripe) => (0..n).filter(|&i| stripe.shards[i].is_some()).collect(),
                None => (0..n)
                    .filter(|&i| self.children[self.child_of(i, s)].state == ChildState::Alive)
                    .collect(),
            };
            let lost = (n - available.len()) as u32;
            if available.len() >= k {
                for &i in available.iter().take(k) {
                    degraded_bytes[self.child_of(i, s)] += self.block_bytes;
                }
                let attempts = lost.min(self.max_retries);
                extra += self.retry_backoff * u64::from(attempts);
                self.counters.degraded_reads += 1;
                degraded_blocks.push((b, lost));
            } else {
                // Too few survivors: attempt them all, burn the full
                // retry budget, and report the loss.
                for &i in &available {
                    degraded_bytes[self.child_of(i, s)] += self.block_bytes;
                }
                extra += self.retry_backoff * u64::from(self.max_retries);
                self.counters.data_loss_events += 1;
                obs.record(&Event::UncorrectableRead {
                    t: start,
                    lbn: b,
                    errors: lost,
                });
                if result.is_ok() {
                    result = Err(DeviceError::ArrayDegraded { lbn: b, lost });
                }
            }
        }
        // Shards transfer in parallel: the op takes as long as its
        // slowest involved child, plus the serialized retry backoff.
        let mut transfer = SimDuration::ZERO;
        let mut active_power = 0.0;
        for c in 0..n {
            let bytes = read_bytes[c] + degraded_bytes[c];
            if bytes == 0 {
                continue;
            }
            let p = &self.children[c].profile;
            let t = p.access_latency + p.read_bandwidth.transfer_time(bytes);
            transfer = transfer.max(t);
            active_power += p.active_power.get();
            let direct_t = if read_bytes[c] > 0 {
                p.access_latency + p.read_bandwidth.transfer_time(read_bytes[c])
            } else {
                SimDuration::ZERO
            };
            self.meter
                .charge_for("read", p.active_power, direct_t.min(t));
            self.meter
                .charge_for("degraded", p.active_power, t.saturating_sub(direct_t));
        }
        self.meter
            .charge_for("degraded", Watts(active_power), extra);
        let end = start + transfer + extra;
        for (b, lost) in &degraded_blocks {
            obs.span(&Span::new(
                SpanKind::DegradedRead {
                    lbn: *b,
                    lost: *lost,
                },
                start,
                end,
            ));
        }
        if !degraded_blocks.is_empty() || result.is_err() {
            self.degraded.record(end.saturating_since(now));
        }
        self.counters.ops += 1;
        self.counters.bytes_read += u64::from(blocks) * self.block_bytes;
        self.free_at = self.free_at.max(end);
        (Service { start, end }, result)
    }

    /// Serves a write of `blocks` logical blocks at `lbn`, issued at
    /// `now`, as read-modify-write parity updates on the affected
    /// stripes. Fails with [`DeviceError::ArrayFailed`] once the array is
    /// read-only, or [`DeviceError::ArrayDegraded`] if a stripe has too
    /// few survivors to recompute parity.
    pub fn try_write(
        &mut self,
        now: SimTime,
        lbn: u64,
        blocks: u32,
    ) -> Result<Service, DeviceError> {
        self.try_write_obs(now, lbn, blocks, &mut NoopObserver)
    }

    /// [`try_write`](Self::try_write), reporting parity updates to an
    /// observer.
    pub fn try_write_obs<O: Observer>(
        &mut self,
        now: SimTime,
        lbn: u64,
        blocks: u32,
        obs: &mut O,
    ) -> Result<Service, DeviceError> {
        let start = self.settle(now, obs);
        if self.failed {
            self.counters.read_only_rejections += 1;
            return Err(DeviceError::ArrayFailed {
                lost: self.lost_children(),
                tolerated: self.rs.parity_shards() as u32,
            });
        }
        let k = self.k();
        let n = self.n();
        // Group the written blocks by stripe: blocks sharing a stripe
        // share one parity read-modify-write.
        let mut by_stripe: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for b in lbn..lbn + u64::from(blocks) {
            by_stripe.entry(b / k as u64).or_default().push(b);
        }
        // Per-child traffic, split by whether the child served a data or
        // a parity shard (rotation means one child can do both in a
        // multi-stripe write): (data_read, data_write, parity_read,
        // parity_write) bytes.
        let mut load = vec![(0u64, 0u64, 0u64, 0u64); n];
        let mut parity_stripes: Vec<u64> = Vec::new();
        let mut error: Option<DeviceError> = None;
        for (&s, lbns) in &by_stripe {
            self.ensure_stripe(s);
            let children: Vec<usize> = (0..n).map(|i| self.child_of(i, s)).collect();
            let stripe = self.stripes.get(&s).expect("stripe just ensured");
            let available = stripe.shards.iter().filter(|x| x.is_some()).count();
            let Some(mut data) = self.stripe_data(stripe) else {
                // Too few survivors to recompute parity: attempted reads
                // are charged, the write is refused for this stripe.
                for (i, shard) in stripe.shards.iter().enumerate() {
                    if shard.is_some() {
                        load[children[i]].0 += self.block_bytes;
                    }
                }
                if error.is_none() {
                    error = Some(DeviceError::ArrayDegraded {
                        lbn: lbns[0],
                        lost: (n - available) as u32,
                    });
                }
                continue;
            };
            // Read-modify-write: old data + parity shards come in, new
            // ones go out.
            for &b in lbns {
                let slot = (b % k as u64) as usize;
                let gen = self.next_gen;
                self.next_gen += 1;
                data[slot] = Self::payload(b, gen);
                let c = children[slot];
                load[c].0 += self.block_bytes;
                if self.writable(c) {
                    load[c].1 += self.block_bytes;
                }
            }
            let refs: Vec<&[u8]> = data.iter().map(|d| d.as_slice()).collect();
            let parity = self.rs.encode(&refs);
            for j in 0..self.rs.parity_shards() {
                let c = children[k + j];
                load[c].2 += self.block_bytes;
                if self.writable(c) {
                    load[c].3 += self.block_bytes;
                }
            }
            let alive: Vec<bool> = children
                .iter()
                .map(|&c| self.children[c].state != ChildState::Dead)
                .collect();
            let stripe = self.stripes.get_mut(&s).expect("stripe just ensured");
            for &b in lbns {
                let slot = (b % k as u64) as usize;
                stripe.shards[slot] = alive[slot].then(|| data[slot].clone());
            }
            for (j, p) in parity.into_iter().enumerate() {
                stripe.shards[k + j] = alive[k + j].then_some(p);
            }
            self.counters.parity_updates += 1;
            parity_stripes.push(s);
            for &b in lbns {
                self.mapped.insert(b);
            }
        }
        // Children work in parallel; the stripe commits when the slowest
        // involved child finishes its read-modify-write. Energy is split
        // so the parity overhead is visible in the report.
        let mut total = SimDuration::ZERO;
        for (c, &(dr, dw, pr, pw)) in load.iter().enumerate() {
            if dr + dw + pr + pw == 0 {
                continue;
            }
            let p = &self.children[c].profile;
            let data_t = p.read_bandwidth.transfer_time(dr) + p.write_bandwidth.transfer_time(dw);
            let parity_t = p.read_bandwidth.transfer_time(pr) + p.write_bandwidth.transfer_time(pw);
            total = total.max(p.access_latency + data_t + parity_t);
            self.meter
                .charge_for("write", p.active_power, p.access_latency + data_t);
            self.meter.charge_for("parity", p.active_power, parity_t);
        }
        let end = start + total;
        for s in parity_stripes {
            obs.span(&Span::new(SpanKind::ParityUpdate { stripe: s }, start, end));
        }
        self.counters.ops += 1;
        self.counters.bytes_written += u64::from(blocks) * self.block_bytes;
        self.free_at = self.free_at.max(end);
        match error {
            Some(e) => Err(e),
            None => Ok(Service { start, end }),
        }
    }

    /// Discards `lbn..lbn+blocks`: the blocks leave the acknowledged set
    /// and their payloads are zeroed (with parity recomputed) without
    /// timing — the array has no cleaner to inform, so trim is pure
    /// bookkeeping.
    pub fn trim(&mut self, lbn: u64, blocks: u32) {
        for b in lbn..lbn + u64::from(blocks) {
            self.mapped.remove(&b);
            let _ = self.store_instant(b, vec![0u8; PAYLOAD_BYTES]);
        }
    }

    /// Loses power at `now` and recovers.
    ///
    /// Children are non-volatile, so shard contents survive; an in-flight
    /// operation dies with the power. Recovery re-reads each present
    /// child's stripe-map and rebuild-watermark headers in parallel, and
    /// an interrupted rebuild resumes from its last durable checkpoint
    /// (re-reconstructing a shard is idempotent, so replaying the tail of
    /// the walk is safe). Returns the recovery interval.
    pub fn power_fail(&mut self, now: SimTime) -> Service {
        self.power_fail_obs(now, &mut NoopObserver)
    }

    /// [`power_fail`](Self::power_fail), reporting to an observer.
    pub fn power_fail_obs<O: Observer>(&mut self, now: SimTime, obs: &mut O) -> Service {
        if now < self.free_at {
            // The in-flight operation dies with the power.
            self.free_at = now;
        } else {
            let _ = self.settle(now, obs);
        }
        if let Some(job) = &mut self.rebuild {
            // The in-memory watermark is lost; resume from the durable
            // checkpoint.
            job.watermark = job.checkpoint;
            job.since_checkpoint = 0;
        }
        let mut scan = SimDuration::ZERO;
        for c in self.children.iter().filter(|c| c.state != ChildState::Dead) {
            let t = c.profile.access_latency
                + c.profile.read_bandwidth.transfer_time(RECOVERY_SCAN_BYTES);
            scan = scan.max(t);
            self.meter.charge_for("recover", c.profile.active_power, t);
        }
        let end = now + scan;
        self.counters.power_failures += 1;
        self.counters.recovery_time += scan;
        self.free_at = end;
        Service { start: now, end }
    }

    /// Accounts for the trailing idle period (letting the rebuild finish
    /// what the remaining time allows) and closes any still-open
    /// vulnerability windows at the end of a simulation.
    pub fn finish(&mut self, end: SimTime) {
        self.finish_obs(end, &mut NoopObserver);
    }

    /// [`finish`](Self::finish), reporting to an observer.
    pub fn finish_obs<O: Observer>(&mut self, end: SimTime, obs: &mut O) {
        let _ = self.settle(end, obs);
        for c in &mut self.children {
            if let Some(died) = c.died_at {
                self.counters.vulnerability += end.saturating_since(died);
                // Re-anchor rather than close: the warm-up boundary calls
                // finish + reset_metrics, and a child still missing then
                // must keep accruing vulnerability into the measured
                // window. Accrual stays incremental, so a second finish
                // at the same time adds nothing.
                c.died_at = Some(end);
            }
        }
    }

    /// The acknowledged `(lbn, generation)` mapping as far as the array
    /// can still decode it, sorted by block. Blocks whose stripes have
    /// too few survivors are omitted — [`unreadable_blocks`]
    /// (Self::unreadable_blocks) lists exactly those, and the read path
    /// reports them as typed errors, so the loss is never silent.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let k = self.k();
        let mut out = Vec::with_capacity(self.mapped.len());
        let mut decoded: BTreeMap<u64, Option<Vec<Vec<u8>>>> = BTreeMap::new();
        for &lbn in &self.mapped {
            let s = lbn / k as u64;
            let slot = (lbn % k as u64) as usize;
            let Some(stripe) = self.stripes.get(&s) else {
                continue;
            };
            if let Some(shard) = &stripe.shards[slot] {
                out.push((lbn, Self::parse_generation(shard)));
                continue;
            }
            let data = decoded.entry(s).or_insert_with(|| self.stripe_data(stripe));
            if let Some(data) = data {
                out.push((lbn, Self::parse_generation(&data[slot])));
            }
        }
        out
    }

    /// Acknowledged blocks the array can no longer decode (their stripes
    /// lost more than `m` shards). The crash oracle excuses exactly
    /// these: they surface as typed errors on read.
    pub fn unreadable_blocks(&self) -> Vec<u64> {
        let k = self.k();
        self.mapped
            .iter()
            .copied()
            .filter(|&lbn| {
                let s = lbn / k as u64;
                let slot = (lbn % k as u64) as usize;
                match self.stripes.get(&s) {
                    Some(stripe) => {
                        stripe.shards[slot].is_none()
                            && stripe.shards.iter().filter(|x| x.is_some()).count() < k
                    }
                    None => true,
                }
            })
            .collect()
    }

    /// Test-only sabotage: silently corrupts stored shard bytes so the
    /// differential crash check can prove it has teeth. If `lbn`'s own
    /// data shard is present its payload is zeroed; otherwise every
    /// surviving parity shard of the stripe is zeroed, so a degraded
    /// decode of `lbn` reconstructs garbage. The corruption is invisible
    /// to the array itself — only the shadow oracle can see it.
    pub fn sabotage_corrupt(&mut self, lbn: u64) {
        let k = self.k();
        let s = lbn / k as u64;
        let slot = (lbn % k as u64) as usize;
        let Some(stripe) = self.stripes.get_mut(&s) else {
            return;
        };
        if let Some(shard) = &mut stripe.shards[slot] {
            shard.fill(0);
            return;
        }
        for shard in stripe.shards[k..].iter_mut().flatten() {
            shard.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BLOCK: u64 = 1024;

    fn array(k: usize, m: usize) -> ArrayDevice {
        ArrayDevice::new(k, m, &vec![ChildClass::FlashDisk; k + m], BLOCK)
    }

    fn death_at(n: usize, child: usize, at: SimTime) -> DeathSchedule {
        let mut deaths = vec![None; n];
        deaths[child] = Some(at);
        DeathSchedule::explicit(deaths)
    }

    #[test]
    fn round_trip_reads_are_clean() {
        let mut a = array(4, 2);
        let svc = a.try_write(SimTime::ZERO, 0, 8).unwrap();
        let (r, res) = a.try_read(svc.end, 0, 8);
        assert!(res.is_ok());
        assert!(r.end > r.start);
        assert_eq!(a.counters().degraded_reads, 0);
        assert_eq!(a.counters().parity_updates, 2, "8 blocks span 2 stripes");
        let snap = a.snapshot();
        assert_eq!(snap.len(), 8);
        // Generations are stamped in block order starting at 1.
        assert_eq!(snap[0], (0, 1));
        assert_eq!(snap[7], (7, 8));
    }

    #[test]
    fn writes_charge_parity_traffic_and_spread_rotation() {
        let mut a = array(2, 1);
        let svc = a.try_write(SimTime::ZERO, 0, 2).unwrap();
        // One stripe: 2 data + 1 parity shards, read-modify-write.
        assert_eq!(a.counters().parity_updates, 1);
        assert!(svc.end > svc.start);
        assert!(a.meter().category("write").get() > 0.0);
        // Rotation: stripe 0 parity on child 2, stripe 1 parity on child 0.
        assert_eq!(a.child_of(2, 0), 2);
        assert_eq!(a.child_of(2, 1), 0);
    }

    #[test]
    fn degraded_read_decodes_from_survivors() {
        // No spare: the dead child is never rebuilt, so its shards stay
        // missing and every read of them decodes from survivors.
        let mut a = array(4, 2)
            .with_deaths(death_at(6, 0, SimTime::from_secs_f64(5.0)))
            .with_spares(0);
        let w = a.try_write(SimTime::ZERO, 0, 8).unwrap();
        assert!(
            w.end < SimTime::from_secs_f64(5.0),
            "setup writes precede death"
        );
        // After the death, blocks whose shard lived on child 0 decode
        // from survivors; everything stays readable and correctly
        // stamped.
        let (r, res) = a.try_read(SimTime::from_secs_f64(10.0), 0, 8);
        assert!(res.is_ok());
        assert!(a.counters().degraded_reads > 0);
        assert_eq!(a.counters().device_deaths, 1);
        assert_eq!(a.snapshot().len(), 8, "no block was lost");
        assert!(r.end > r.start);
        assert!(a.degraded_recorder().summary().count > 0);
        assert!(a.meter().category("degraded").get() > 0.0);
    }

    #[test]
    fn losses_beyond_m_fail_the_array_read_only() {
        let n = 4;
        let mut deaths = vec![None; n];
        for (c, d) in deaths.iter_mut().enumerate().take(3) {
            *d = Some(SimTime::from_secs_f64(5.0 + c as f64));
        }
        // One spare: the first death rebuilds, but the rebuild never
        // finishes before two more deaths exceed m = 1.
        let mut a = ArrayDevice::new(3, 1, &[ChildClass::FlashDisk; 4], BLOCK)
            .with_deaths(DeathSchedule::explicit(deaths))
            .with_rebuild_rate(1e-6);
        a.try_write(SimTime::ZERO, 0, 6).unwrap();
        let err = a
            .try_write(SimTime::from_secs_f64(60.0), 100, 1)
            .expect_err("array with 3 concurrent losses is read-only");
        assert!(matches!(
            err,
            DeviceError::ArrayFailed {
                lost: 3,
                tolerated: 1
            }
        ));
        assert!(a.is_failed());
        assert_eq!(a.counters().read_only_rejections, 1);
        // Reads of wholly-lost stripes report the loss, typed.
        let (_, res) = a.try_read(SimTime::from_secs_f64(61.0), 0, 1);
        assert!(matches!(res, Err(DeviceError::ArrayDegraded { .. })));
        assert!(a.counters().data_loss_events > 0);
        assert!(!a.unreadable_blocks().is_empty());
    }

    #[test]
    fn rebuild_restores_full_redundancy() {
        let mut a = array(4, 2)
            .with_deaths(death_at(6, 1, SimTime::from_secs_f64(5.0)))
            .with_rebuild_rate(1000.0);
        a.try_write(SimTime::ZERO, 0, 16).unwrap();
        // A long idle gap gives the paced rebuild time to finish.
        a.finish(SimTime::from_secs_f64(30.0));
        let c = a.counters();
        assert_eq!(c.rebuilds_completed, 1);
        assert!(c.rebuild_stripes >= 4, "4 stripes were written");
        assert!(c.rebuild_time > SimDuration::ZERO);
        assert!(c.vulnerability > SimDuration::ZERO);
        assert_eq!(a.lost_children(), 0);
        // Post-rebuild reads are direct again.
        let before = a.counters().degraded_reads;
        let (_, res) = a.try_read(SimTime::from_secs_f64(40.0), 0, 16);
        assert!(res.is_ok());
        assert_eq!(a.counters().degraded_reads, before);
        assert!(a.meter().category("rebuild").get() > 0.0);
    }

    #[test]
    fn rebuild_resumes_from_checkpoint_after_power_failure() {
        let mut slow = array(4, 2)
            .with_deaths(death_at(6, 0, SimTime::from_secs_f64(5.0)))
            .with_rebuild_rate(10.0);
        // 520 blocks => 130 stripes: more than one 64-stripe checkpoint.
        slow.try_write(SimTime::ZERO, 0, 520).unwrap();
        let (_, res) = slow.try_read(SimTime::from_secs_f64(6.0), 0, 1);
        assert!(res.is_ok());
        // By 14 s the walk is ~90 stripes in, past the 64-stripe
        // checkpoint but far from done; the crash rolls it back to 64.
        slow.power_fail(SimTime::from_secs_f64(14.0));
        assert_eq!(slow.counters().power_failures, 1);
        // The walk resumes from the checkpoint and still completes; the
        // replayed tail is idempotent.
        slow.finish(SimTime::from_secs_f64(60.0));
        assert_eq!(slow.counters().rebuilds_completed, 1);
        assert!(
            slow.counters().rebuild_stripes > 130,
            "some stripes were re-walked after the crash ({} rebuilt)",
            slow.counters().rebuild_stripes
        );
        assert_eq!(slow.snapshot().len(), 520, "every block survived");
        assert_eq!(slow.lost_children(), 0);
    }

    #[test]
    fn sabotaged_shard_changes_the_decoded_generation() {
        let mut a = array(4, 2);
        a.try_write(SimTime::ZERO, 0, 4).unwrap();
        let honest = a.snapshot();
        a.sabotage_corrupt(2);
        let tampered = a.snapshot();
        assert_ne!(honest, tampered, "corruption must change the mapping");
        // The array itself has no idea: reads still "succeed".
        let (_, res) = a.try_read(SimTime::from_secs_f64(1.0), 2, 1);
        assert!(res.is_ok(), "silent corruption is invisible to the array");
    }

    #[test]
    fn sabotaged_parity_corrupts_degraded_decode() {
        let mut a = array(4, 2)
            .with_deaths(death_at(6, 0, SimTime::from_secs_f64(5.0)))
            .with_spares(0);
        a.try_write(SimTime::ZERO, 0, 4).unwrap();
        let honest = a.snapshot();
        // Kill block 0's child, then silently zero the surviving parity:
        // the degraded decode now reconstructs garbage.
        let (_, res) = a.try_read(SimTime::from_secs_f64(6.0), 0, 1);
        assert!(res.is_ok());
        a.sabotage_corrupt(0);
        let tampered = a.snapshot();
        assert_ne!(honest, tampered);
    }

    #[test]
    fn quiet_death_schedule_is_bit_identical_to_none() {
        let mut plain = array(4, 2);
        let mut quiet = array(4, 2).with_deaths(DeathSchedule::quiet(6));
        for i in 0..10u64 {
            let t = SimTime::from_secs_f64(i as f64);
            let a = plain.try_write(t, i * 4, 4).unwrap();
            let b = quiet.try_write(t, i * 4, 4).unwrap();
            assert_eq!(a, b);
        }
        plain.finish(SimTime::from_secs_f64(20.0));
        quiet.finish(SimTime::from_secs_f64(20.0));
        assert_eq!(plain.counters(), quiet.counters());
        assert_eq!(plain.energy().get(), quiet.energy().get());
        assert_eq!(plain.snapshot(), quiet.snapshot());
    }

    #[test]
    fn trim_unmaps_and_preload_stamps_in_order() {
        let mut a = array(2, 1);
        a.preload([3u64, 7, 5].into_iter());
        let snap = a.snapshot();
        assert_eq!(snap, vec![(3, 1), (5, 3), (7, 2)]);
        assert_eq!(a.next_generation(), 4);
        a.trim(5, 1);
        assert_eq!(a.snapshot().len(), 2);
        assert!(a.unreadable_blocks().is_empty());
    }

    #[test]
    fn power_fail_mid_op_frees_the_array_at_the_crash() {
        let mut a = array(4, 2);
        let w = a.try_write(SimTime::ZERO, 0, 64).unwrap();
        let mid = w.start + (w.end - w.start) / 2;
        let svc = a.power_fail(mid);
        assert_eq!(svc.start, mid);
        assert!(svc.end > mid, "recovery scan takes time");
        assert!(a.counters().recovery_time > SimDuration::ZERO);
        assert!(a.meter().category("recover").get() > 0.0);
        let (r, res) = a.try_read(svc.end, 0, 1);
        assert!(res.is_ok());
        assert_eq!(r.start, svc.end, "array serves as soon as recovered");
    }

    #[test]
    fn reads_queue_fifo_behind_a_busy_array() {
        let mut a = array(4, 2);
        let w = a.try_write(SimTime::ZERO, 0, 64).unwrap();
        let (r, _) = a.try_read(SimTime::from_nanos(10), 0, 1);
        assert_eq!(r.start, w.end);
        let mut open = array(4, 2).with_queueing(QueueDiscipline::OpenLoop);
        let _ = open.try_write(SimTime::ZERO, 0, 64).unwrap();
        let (r, _) = open.try_read(SimTime::from_nanos(10), 0, 1);
        assert_eq!(r.start, SimTime::from_nanos(10));
    }

    #[test]
    fn reset_metrics_preserves_array_state() {
        let mut a = array(4, 2);
        a.try_write(SimTime::ZERO, 0, 8).unwrap();
        a.reset_metrics();
        assert_eq!(a.energy().get(), 0.0);
        assert_eq!(a.counters(), ArrayCounters::default());
        assert_eq!(a.snapshot().len(), 8, "contents survive the reset");
    }

    #[test]
    fn mixed_child_classes_pace_at_the_slowest() {
        let children = [
            ChildClass::HardDisk,
            ChildClass::FlashCard,
            ChildClass::FlashDisk,
        ];
        let mut a = ArrayDevice::new(2, 1, &children, BLOCK);
        let svc = a.try_write(SimTime::ZERO, 0, 2).unwrap();
        // The hard disk's 25.7 ms access dominates the stripe commit.
        assert!((svc.end - svc.start).as_secs_f64() > 0.0257);
    }

    #[test]
    #[should_panic(expected = "array geometry")]
    fn zero_data_shards_panic() {
        let _ = ArrayDevice::new(0, 2, &[], BLOCK);
    }

    #[test]
    #[should_panic(expected = "needs exactly")]
    fn child_count_must_match_geometry() {
        let _ = ArrayDevice::new(2, 1, &[ChildClass::FlashDisk; 5], BLOCK);
    }

    #[test]
    fn child_class_parse_round_trips() {
        for class in [
            ChildClass::FlashCard,
            ChildClass::FlashDisk,
            ChildClass::HardDisk,
        ] {
            assert_eq!(ChildClass::parse(class.name()), Some(class));
        }
        assert_eq!(ChildClass::parse("floppy"), None);
    }
}
