//! Criterion micro-benches on the simulator's building blocks: how fast
//! the substrate itself runs (operations per second of simulated storage),
//! plus the §5.3 and ablation experiments.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use mobistore_core::config::SystemConfig;
use mobistore_core::simulator::simulate;
use mobistore_device::params::{cu140_datasheet, intel_datasheet, sdp5_datasheet};
use mobistore_experiments::{ablations, async_cleaning, flash_card_config, Scale};
use mobistore_workload::Workload;

fn bench_simulator_throughput(c: &mut Criterion) {
    let trace = Workload::Mac.generate_scaled(0.05, 1);
    let mut group = c.benchmark_group("simulator_ops_per_sec");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("disk", |b| {
        let cfg = SystemConfig::disk(cu140_datasheet());
        b.iter(|| black_box(simulate(&cfg, &trace)));
    });
    group.bench_function("flash_disk", |b| {
        let cfg = SystemConfig::flash_disk(sdp5_datasheet());
        b.iter(|| black_box(simulate(&cfg, &trace)));
    });
    group.bench_function("flash_card", |b| {
        let cfg = flash_card_config(intel_datasheet(), &trace, 0.8);
        b.iter(|| black_box(simulate(&cfg, &trace)));
    });
    group.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    for workload in Workload::ALL {
        group.bench_function(workload.name(), |b| {
            b.iter(|| black_box(workload.generate_scaled(0.05, 1)));
        });
    }
    group.finish();
}

fn bench_async_cleaning(c: &mut Criterion) {
    let mut group = c.benchmark_group("section_5_3_async_cleaning");
    group.sample_size(10);
    group.bench_function("mac", |b| {
        b.iter(|| black_box(async_cleaning::run_row(Workload::Mac, Scale::quick())));
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("cleaning_policies", |b| {
        b.iter(|| black_box(ablations::cleaning_policies(Scale::quick())));
    });
    group.bench_function("spin_down_sweep", |b| {
        b.iter(|| black_box(ablations::spin_down_sweep(Scale::quick())));
    });
    group.finish();
}

criterion_group!(
    components,
    bench_simulator_throughput,
    bench_workload_generation,
    bench_async_cleaning,
    bench_ablations
);
criterion_main!(components);
