//! Simulated time.
//!
//! All simulation time is carried as an integer number of nanoseconds so that
//! every experiment is reproducible bit-for-bit. The traces in the paper span
//! up to 4.4 days (≈ 3.8 × 10¹⁴ ns), comfortably inside `u64`.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in nanoseconds since the start of the
/// simulation.
///
/// `SimTime` is totally ordered and supports the usual instant/duration
/// arithmetic: `SimTime ± SimDuration -> SimTime` and
/// `SimTime - SimTime -> SimDuration`.
///
/// # Examples
///
/// ```
/// use mobistore_sim::time::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(5);
/// assert_eq!(t1 - t0, SimDuration::from_micros(5_000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use mobistore_sim::time::SimDuration;
///
/// let d = SimDuration::from_secs(2) + SimDuration::from_millis(500);
/// assert_eq!(d.as_secs_f64(), 2.5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `nanos` nanoseconds after the simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `secs` seconds after the simulation start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large for the clock.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(ns_from_secs_f64(secs))
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`, or `SimDuration::ZERO`
    /// if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration; useful as an "infinite" timeout.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60 * 1_000_000_000)
    }

    /// Creates a duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600 * 1_000_000_000)
    }

    /// Creates a duration of `days` days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400 * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large for the clock.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(ns_from_secs_f64(secs))
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is negative, non-finite, or too large.
    pub fn from_millis_f64(millis: f64) -> Self {
        SimDuration::from_secs_f64(millis / 1e3)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns `self - other`, or `ZERO` if `other` is larger.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns true if this is the empty duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Multiplies the duration by a non-negative scalar, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative, non-finite, or the result overflows.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration(ns_from_secs_f64(self.as_secs_f64() * factor))
    }

    /// Divides this duration by another, returning the ratio as `f64`.
    ///
    /// Returns `f64::INFINITY` when dividing a non-zero duration by zero and
    /// `0.0` when both are zero.
    pub fn ratio(self, other: SimDuration) -> f64 {
        if other.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

fn ns_from_secs_f64(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "time must be finite and non-negative, got {secs}"
    );
    let ns = secs * 1e9;
    assert!(
        ns <= u64::MAX as f64,
        "time overflows the simulated clock: {secs}s"
    );
    ns.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulated clock overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulated clock underflow"),
        )
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracting a later SimTime from an earlier one"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracting a longer duration from a shorter one"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({})", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ns(self.0))
    }
}

/// Formats a nanosecond count with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns == 0 {
        "0s".to_owned()
    } else if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn instant_duration_arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d).as_nanos(), 140);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(50);
        assert_eq!(late.saturating_since(early).as_nanos(), 40);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn float_roundtrip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_nanos(), 1_250_000_000);
        assert_eq!(d.as_secs_f64(), 1.25);
        assert_eq!(d.as_millis_f64(), 1250.0);
    }

    #[test]
    fn from_millis_f64_rounds_to_ns() {
        assert_eq!(SimDuration::from_millis_f64(25.7).as_nanos(), 25_700_000);
        assert_eq!(SimDuration::from_millis_f64(0.0005).as_nanos(), 500);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn time_subtraction_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn mul_and_div() {
        let d = SimDuration::from_millis(3);
        assert_eq!(d * 4, SimDuration::from_millis(12));
        assert_eq!(d / 3, SimDuration::from_millis(1));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(1_500));
    }

    #[test]
    fn ratio_handles_zero() {
        let d = SimDuration::from_secs(1);
        assert_eq!(d.ratio(SimDuration::from_secs(2)), 0.5);
        assert_eq!(SimDuration::ZERO.ratio(SimDuration::ZERO), 0.0);
        assert_eq!(d.ratio(SimDuration::ZERO), f64::INFINITY);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!(SimDuration::ZERO.to_string(), "0s");
    }

    #[test]
    fn min_max() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimTime::from_nanos(1);
        let tb = SimTime::from_nanos(2);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }
}
