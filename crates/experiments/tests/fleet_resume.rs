//! End-to-end supervisor proofs against the real `repro` binary:
//! a fleet run aborted at a chaos fail point (the simulated kill -9)
//! and resumed from its checkpoint — at a *different* `--jobs` count —
//! produces stdout and `--metrics-out` bytes identical to an
//! uninterrupted run; unusable checkpoints exit with the typed config
//! code; injected panics quarantine shards and exit 8 with the ledger
//! in both the report and the export.

use std::path::PathBuf;
use std::process::{Command, Output};

/// 96 shards = 3 chunks of 32: enough chunks to abort in the middle,
/// small enough to run the binary several times in one test.
const FLEET_ARGS: [&str; 8] = [
    "--scale",
    "0.02",
    "--seed",
    "1994",
    "--fleet-shards",
    "96",
    "--fleet-population",
    "768",
];

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro spawns")
}

fn fleet_run(extra: &[&str]) -> Output {
    let mut args: Vec<&str> = FLEET_ARGS.to_vec();
    args.extend_from_slice(extra);
    args.push("fleet");
    repro(&args)
}

/// A per-test scratch directory under the target-local temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mobistore-fleet-resume-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn abort_at_fail_point_then_resume_is_byte_identical() {
    let dir = scratch("abort-resume");
    let golden_json = dir.join("golden.json");
    let golden = fleet_run(&["--metrics-out", golden_json.to_str().unwrap()]);
    assert_eq!(
        golden.status.code(),
        Some(0),
        "uninterrupted run failed: {}",
        String::from_utf8_lossy(&golden.stderr)
    );
    let golden_doc = std::fs::read_to_string(&golden_json).expect("golden metrics");

    // Abort after chunk k (of 3) for several k: each leaves a checkpoint
    // whose watermark is k-1 — the in-flight chunk is the at-most-one
    // chunk a kill -9 costs — and resuming at a different --jobs count
    // reproduces the uninterrupted bytes exactly.
    for fail_after in ["1", "2"] {
        let ckpt = dir.join(format!("fleet-{fail_after}.ckpt"));
        let ckpt = ckpt.to_str().unwrap();
        let aborted = fleet_run(&[
            "--jobs",
            "1",
            "--checkpoint-out",
            ckpt,
            "--chaos-fail-point",
            fail_after,
        ]);
        let stderr = String::from_utf8_lossy(&aborted.stderr);
        assert_eq!(
            aborted.status.code(),
            Some(9),
            "fail point {fail_after} should exit 9; stderr:\n{stderr}"
        );
        assert!(
            stderr.contains("chaos: aborting"),
            "missing abort notice:\n{stderr}"
        );
        assert!(
            std::path::Path::new(ckpt).exists(),
            "abort must leave a checkpoint behind"
        );

        let resumed_json = dir.join(format!("resumed-{fail_after}.json"));
        let resumed = fleet_run(&[
            "--jobs",
            "4",
            "--resume-from",
            ckpt,
            "--metrics-out",
            resumed_json.to_str().unwrap(),
        ]);
        assert_eq!(
            resumed.status.code(),
            Some(0),
            "resume after fail point {fail_after} failed: {}",
            String::from_utf8_lossy(&resumed.stderr)
        );
        assert_eq!(
            resumed.stdout, golden.stdout,
            "resumed stdout differs from the uninterrupted run (fail point {fail_after})"
        );
        let resumed_doc = std::fs::read_to_string(&resumed_json).expect("resumed metrics");
        assert_eq!(
            resumed_doc, golden_doc,
            "resumed metrics export differs (fail point {fail_after})"
        );
    }

    // Resuming a *complete* checkpoint simulates nothing and still
    // reproduces the bytes.
    let ckpt = dir.join("complete.ckpt");
    let ckpt = ckpt.to_str().unwrap();
    let full = fleet_run(&["--checkpoint-out", ckpt]);
    assert_eq!(full.status.code(), Some(0));
    let resumed = fleet_run(&["--resume-from", ckpt]);
    assert_eq!(
        resumed.status.code(),
        Some(0),
        "resume of a complete checkpoint failed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(resumed.stdout, golden.stdout);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fingerprint_mismatch_is_a_typed_config_error() {
    let dir = scratch("fingerprint");
    let ckpt = dir.join("fleet.ckpt");
    let ckpt = ckpt.to_str().unwrap();
    let aborted = fleet_run(&["--checkpoint-out", ckpt, "--chaos-fail-point", "2"]);
    assert_eq!(aborted.status.code(), Some(9));

    // Same checkpoint, different fleet seed: the shard bytes would not
    // line up, so the resume must be refused with the config exit code.
    let mut args: Vec<&str> = FLEET_ARGS.to_vec();
    args.extend_from_slice(&["--fleet-seed", "2001", "--resume-from", ckpt, "fleet"]);
    let out = repro(&args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(3),
        "fingerprint mismatch should exit 3; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("fingerprint"),
        "mismatch reason not surfaced:\n{stderr}"
    );

    // A garbled checkpoint is refused the same way.
    let garbled = dir.join("garbled.ckpt");
    std::fs::write(&garbled, "mobistore-fleet-ckpt/1\nfingerprint zzzz\n").unwrap();
    let out = fleet_run(&["--resume-from", garbled.to_str().unwrap()]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(3),
        "garbled checkpoint should exit 3; stderr:\n{stderr}"
    );
    assert!(stderr.contains("checkpoint"), "untyped error:\n{stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_panics_quarantine_and_exit_8_with_ledger_everywhere() {
    let dir = scratch("quarantine");
    let json = dir.join("chaos.json");
    let out = fleet_run(&[
        "--chaos-panic-rate",
        "0.6",
        "--metrics-out",
        json.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(8),
        "quarantined run should exit 8; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("quarantined shard"),
        "exit-8 notice missing:\n{stderr}"
    );
    // The report carries the ledger: a count line plus one line per shard.
    assert!(
        stdout.contains("quarantined:"),
        "report missing the quarantine section:\n{stdout}"
    );
    assert!(
        stdout.contains("chaos: injected panic"),
        "report missing the panic cause:\n{stdout}"
    );
    assert!(stdout.contains("coverage"), "coverage missing:\n{stdout}");
    // And so does the mobistore-fleet/1 export block.
    let doc = std::fs::read_to_string(&json).expect("chaos metrics");
    assert!(doc.contains("\"schema\":\"mobistore-fleet/1\""));
    assert!(doc.contains("\"quarantined\":{\"count\":"));
    assert!(!doc.contains("\"quarantined\":{\"count\":0,"));
    assert!(doc.contains("\"survivors\":"));
    assert!(doc.contains("chaos: injected panic"));
    let _ = std::fs::remove_dir_all(&dir);
}
