//! Figure 4 — energy and over-all response time vs DRAM size and flash
//! size, for the `dos` trace.
//!
//! §5.4: the system stores 32 Mbytes of data on hypothetical flash cards
//! of 34–38 Mbytes (utilization 94.1% down to 84.2%), with 0–4 Mbytes of
//! DRAM cache; plus a SunDisk SDP5 curve (whose size does not matter).
//! Published shapes: the first extra Mbyte of flash buys a large energy
//! and response improvement; additional DRAM on the Intel card costs
//! energy without helping response; the SDP5 sees no benefit from a larger
//! cache on this trace.

use std::fmt;

use mobistore_core::config::SystemConfig;
use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::simulate;
use mobistore_device::params::{intel_datasheet, sdp5_datasheet};
use mobistore_sim::exec::parallel_map;
use mobistore_sim::units::MIB;
use mobistore_trace::record::Trace;
use mobistore_workload::Workload;

use crate::{shared_trace, working_set_blocks, Scale};

/// The DRAM sweep points, in bytes (the paper's x-axis reaches 4 MB).
pub const DRAM_BYTES: [u64; 5] = [0, 512 * 1024, MIB, 2 * MIB, 4 * MIB];

/// The flash-card capacities, in Mbytes (the paper's five Intel curves).
pub const FLASH_MB: [u64; 5] = [34, 35, 36, 37, 38];

/// The amount of live data the system stores (§5.4's premise).
pub const DATA_MB: u64 = 32;

/// One curve: a device/capacity across DRAM sizes.
#[derive(Debug, Clone)]
pub struct Figure4Curve {
    /// Curve label (e.g. "Intel-35Mbyte (91.4%)").
    pub label: String,
    /// Metrics per DRAM size, in `DRAM_BYTES` order.
    pub points: Vec<Metrics>,
}

/// The regenerated Figure 4.
#[derive(Debug, Clone)]
pub struct Figure4 {
    /// Five Intel curves plus the SDP5 curve.
    pub curves: Vec<Figure4Curve>,
}

/// Runs the sweep on the `dos` trace. All 30 (curve × DRAM) points are
/// independent simulations, so the whole grid runs as one parallel batch.
pub fn run(scale: Scale) -> Figure4 {
    let trace = shared_trace(Workload::Dos, scale);
    // At reduced scales the trace touches fewer distinct bytes; scale the
    // stored-data premise with it so utilization matches the paper's.
    let w_bytes = working_set_blocks(&trace) * trace.block_size;
    let data_bytes = (DATA_MB * MIB).max(w_bytes.div_ceil(MIB) * MIB);
    let scale_factor = data_bytes / (DATA_MB * MIB);

    let mut bases: Vec<(String, SystemConfig)> = FLASH_MB
        .iter()
        .map(|&cap_mb| {
            let capacity = cap_mb * MIB * scale_factor;
            let utilization = data_bytes as f64 / capacity as f64;
            let base = SystemConfig::flash_card(intel_datasheet())
                .with_flash_capacity(capacity)
                .with_utilization(utilization);
            (
                format!("Intel-{cap_mb}Mbyte ({:.1}%)", utilization * 100.0),
                base,
            )
        })
        .collect();
    bases.push((
        "SDP5 - 34Mbyte (94.1%)".to_owned(),
        SystemConfig::flash_disk(sdp5_datasheet()),
    ));
    let curves = parallel_map(&bases, |(label, base)| {
        sweep_dram(label.clone(), base.clone(), &trace)
    });
    Figure4 { curves }
}

/// Sweeps one configuration across the DRAM sizes, points in parallel.
fn sweep_dram(label: String, base: SystemConfig, trace: &Trace) -> Figure4Curve {
    let points = parallel_map(&DRAM_BYTES, |&dram| {
        let cfg = base.clone().with_dram(dram);
        let mut m = simulate(&cfg, trace);
        m.name = format!("{label} dram={}KB", dram / 1024);
        m
    });
    Figure4Curve { label, points }
}

impl fmt::Display for Figure4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4: dos trace, energy (J) / over-all response (ms) by DRAM size"
        )?;
        write!(f, "{:<28}", "Configuration")?;
        for d in DRAM_BYTES {
            write!(f, " {:>16}", format!("{}KB", d / 1024))?;
        }
        writeln!(f)?;
        for c in &self.curves {
            write!(f, "{:<28}", c.label)?;
            for m in &c.points {
                write!(
                    f,
                    " {:>16}",
                    format!("{:.0}/{:.2}", m.energy.get(), m.overall_response_ms.mean)
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Figure4 {
        run(Scale::quick())
    }

    #[test]
    fn more_flash_reduces_energy() {
        // §5.4: +1 MB of flash (94.1% -> 91.4%) cuts energy ~25%, with
        // diminishing returns after. At this abbreviated scale the
        // step-by-step ordering is below the noise floor (erasures come in
        // 1.6 s quanta), so assert the endpoint ordering here; the
        // diminishing-returns shape is audited at full scale in
        // EXPERIMENTS.md.
        let fig = quick();
        // Compare at the paper's 2-MB DRAM point (index 3).
        let e34 = fig.curves[0].points[3].energy.get();
        let e38 = fig.curves[4].points[3].energy.get();
        assert!(e38 < e34, "34MB {e34} vs 38MB {e38}");
    }

    #[test]
    fn dram_does_not_help_the_intel_card() {
        // §5.4: "Adding DRAM to the Intel flash card increases the energy
        // used for DRAM without any appreciable benefits."
        let fig = quick();
        let curve = &fig.curves[4]; // 38 MB card, least cleaning noise
        let no_dram = &curve.points[0];
        let big_dram = curve.points.last().unwrap();
        assert!(
            big_dram.energy.get() > no_dram.energy.get(),
            "DRAM costs energy"
        );
        // Response improves by at most a small factor (flash reads are
        // nearly DRAM-fast already).
        assert!(big_dram.overall_response_ms.mean > no_dram.overall_response_ms.mean * 0.5);
    }

    #[test]
    fn renders_six_curves() {
        let fig = quick();
        assert_eq!(fig.curves.len(), 6);
        let text = fig.to_string();
        assert!(text.contains("SDP5"));
        assert!(text.contains("Intel-38Mbyte"));
    }
}
