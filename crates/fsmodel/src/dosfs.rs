//! The DOS file system model over the disk and flash-disk testbeds.
//!
//! §3's micro-benchmarks ran under MS-DOS 5.0 on the OmniBook: the
//! benchmark repeatedly read and wrote files in 4-Kbyte requests. The
//! measured throughputs embed DOS costs the raw devices do not have:
//! per-file overhead (open, directory and FAT updates) and per-request CPU
//! time. With DoubleSpace/Stacker enabled, *"small writes go quickly,
//! because they are buffered and written to disk in batches. Large writes
//! are compressed and then written synchronously."*
//!
//! The testbeds here reproduce those mechanisms with documented constants;
//! `EXPERIMENTS.md` compares the resulting Table 1 against the paper's.

use mobistore_device::params::{DiskParams, FlashDiskParams};
use mobistore_device::{Dir, FlashDisk};
use mobistore_sim::time::{SimDuration, SimTime};

use crate::compress::{Compressor, DataClass};
use crate::BenchRun;

/// DOS file-system cost constants for one device class.
#[derive(Debug, Clone)]
pub struct DosFsParams {
    /// Per-file overhead on reads (open + directory lookups).
    pub per_file_read: SimDuration,
    /// Per-file overhead on writes (create + directory + FAT updates).
    pub per_file_write: SimDuration,
    /// Per-request CPU overhead on reads.
    pub per_chunk_read: SimDuration,
    /// Per-request CPU overhead on writes.
    pub per_chunk_write: SimDuration,
    /// Files at or below this size have their compressed writes buffered
    /// and batched (DoubleSpace/Stacker behaviour); larger files write
    /// synchronously.
    pub batch_threshold: u64,
    /// CPU cost of buffering one batched write (no device or FAT touch —
    /// §3: they "go quickly, because they are buffered").
    pub batch_cpu: SimDuration,
    /// Device bytes written per compressed byte (cluster padding makes
    /// Stacker write more than the compressed size).
    pub write_amplification: f64,
}

impl DosFsParams {
    /// Constants for the Caviar Ultralite / Kittyhawk benchmarks,
    /// calibrated to Table 1's cu140 rows (raw: 116/543 read, 76/231
    /// write Kbytes/s).
    pub fn disk() -> Self {
        DosFsParams {
            per_file_read: SimDuration::from_millis(6),
            per_file_write: SimDuration::from_millis(18),
            per_chunk_read: SimDuration::from_micros(500),
            per_chunk_write: SimDuration::from_millis(9),
            batch_threshold: 32 * 1024,
            batch_cpu: SimDuration::from_millis(1),
            write_amplification: 1.3,
        }
    }

    /// Constants for the SunDisk flash-disk benchmarks, calibrated to
    /// Table 1's sdp10 rows (raw: 280/410 read, 39/40 write Kbytes/s).
    pub fn flash_disk() -> Self {
        DosFsParams {
            per_file_read: SimDuration::from_millis(6),
            per_file_write: SimDuration::from_millis(2),
            per_chunk_read: SimDuration::from_micros(1_500),
            per_chunk_write: SimDuration::from_millis(18),
            batch_threshold: 32 * 1024,
            batch_cpu: SimDuration::from_millis(1),
            write_amplification: 1.8,
        }
    }
}

/// The magnetic-disk micro-benchmark testbed.
///
/// The disk spins throughout (§3: "because the cu140 was continuously
/// accessed, the disk spun throughout the experiment"), so the model
/// charges seek + rotation for the first request of a file and a partial
/// rotation (sequential access with some missed-revolution cost) for the
/// rest.
#[derive(Debug, Clone)]
pub struct DiskTestbed {
    disk: DiskParams,
    fs: DosFsParams,
    compression: Option<Compressor>,
    /// Fraction of a rotation paid per sequential request.
    sequential_rotation_fraction: f64,
}

impl DiskTestbed {
    /// Creates the testbed; `compression` enables DoubleSpace.
    pub fn new(disk: DiskParams, compression: Option<Compressor>) -> Self {
        DiskTestbed {
            disk,
            fs: DosFsParams::disk(),
            compression,
            sequential_rotation_fraction: 0.66,
        }
    }

    /// Runs the §3 write benchmark: a file of `file_bytes`, written in
    /// `chunk_bytes` requests.
    pub fn write_file(&self, file_bytes: u64, chunk_bytes: u64, class: DataClass) -> BenchRun {
        let mut run = BenchRun::new(file_bytes);
        let chunks = file_bytes.div_ceil(chunk_bytes);
        for i in 0..chunks {
            let bytes = chunk_bytes.min(file_bytes - i * chunk_bytes);
            let base = if i == 0 {
                self.fs.per_chunk_write + self.fs.per_file_write
            } else {
                self.fs.per_chunk_write
            };
            let latency = match &self.compression {
                Some(comp) if file_bytes <= self.fs.batch_threshold => {
                    // Buffered and batched: the write returns after the
                    // compressor; neither data nor FAT touches the disk on
                    // the measured path.
                    self.fs.batch_cpu + comp.compress_time(bytes)
                }
                Some(comp) => {
                    let stored = (comp.stored_bytes(bytes, class) as f64
                        * self.fs.write_amplification) as u64;
                    base + comp.compress_time(bytes) + self.device_time(stored, i == 0, Dir::Write)
                }
                None => base + self.device_time(bytes, i == 0, Dir::Write),
            };
            run.push(latency, bytes);
        }
        run
    }

    /// Runs the §3 read benchmark.
    pub fn read_file(&self, file_bytes: u64, chunk_bytes: u64, class: DataClass) -> BenchRun {
        let mut run = BenchRun::new(file_bytes);
        let chunks = file_bytes.div_ceil(chunk_bytes);
        for i in 0..chunks {
            let bytes = chunk_bytes.min(file_bytes - i * chunk_bytes);
            let mut latency = self.fs.per_chunk_read;
            if i == 0 {
                latency += self.fs.per_file_read;
            }
            match &self.compression {
                Some(comp) => {
                    let stored = comp.stored_bytes(bytes, class);
                    latency += self.device_time(stored, i == 0, Dir::Read)
                        + comp.decompress_time(bytes, class);
                }
                None => latency += self.device_time(bytes, i == 0, Dir::Read),
            }
            run.push(latency, bytes);
        }
        run
    }

    /// Raw device time for one request: full seek + rotation on the first
    /// request of a file, partial rotation after (sequential layout).
    fn device_time(&self, bytes: u64, first: bool, dir: Dir) -> SimDuration {
        let bw = match dir {
            Dir::Read => self.disk.read_bandwidth,
            Dir::Write => self.disk.write_bandwidth,
        };
        let positioning = if first {
            self.disk.avg_seek + self.disk.avg_rotation
        } else {
            self.disk
                .avg_rotation
                .mul_f64(self.sequential_rotation_fraction)
        };
        positioning + bw.transfer_time(bytes)
    }
}

/// The flash-disk micro-benchmark testbed (SunDisk SDP10 under DOS, with
/// optional Stacker).
#[derive(Debug)]
pub struct FlashDiskTestbed {
    device: FlashDisk,
    fs: DosFsParams,
    compression: Option<Compressor>,
    clock: SimTime,
}

impl FlashDiskTestbed {
    /// Creates the testbed; `compression` enables Stacker.
    pub fn new(params: FlashDiskParams, compression: Option<Compressor>) -> Self {
        FlashDiskTestbed {
            device: FlashDisk::new(params),
            fs: DosFsParams::flash_disk(),
            compression,
            clock: SimTime::ZERO,
        }
    }

    /// Runs the §3 write benchmark.
    pub fn write_file(&mut self, file_bytes: u64, chunk_bytes: u64, class: DataClass) -> BenchRun {
        let compression = self.compression.clone();
        let mut run = BenchRun::new(file_bytes);
        let chunks = file_bytes.div_ceil(chunk_bytes);
        for i in 0..chunks {
            let bytes = chunk_bytes.min(file_bytes - i * chunk_bytes);
            let base = if i == 0 {
                self.fs.per_chunk_write + self.fs.per_file_write
            } else {
                self.fs.per_chunk_write
            };
            let latency = match &compression {
                Some(comp) if file_bytes <= self.fs.batch_threshold => {
                    self.fs.batch_cpu + comp.compress_time(bytes)
                }
                Some(comp) => {
                    let stored = (comp.stored_bytes(bytes, class) as f64
                        * self.fs.write_amplification) as u64;
                    base + comp.compress_time(bytes) + self.device_write(stored)
                }
                None => base + self.device_write(bytes),
            };
            run.push(latency, bytes);
        }
        run
    }

    /// Runs the §3 read benchmark.
    pub fn read_file(&mut self, file_bytes: u64, chunk_bytes: u64, class: DataClass) -> BenchRun {
        let compression = self.compression.clone();
        let mut run = BenchRun::new(file_bytes);
        let chunks = file_bytes.div_ceil(chunk_bytes);
        for i in 0..chunks {
            let bytes = chunk_bytes.min(file_bytes - i * chunk_bytes);
            let mut latency = self.fs.per_chunk_read;
            if i == 0 {
                latency += self.fs.per_file_read;
            }
            match &compression {
                Some(comp) => {
                    let stored = comp.stored_bytes(bytes, class);
                    latency += self.device_read(stored) + comp.decompress_time(bytes, class);
                }
                None => latency += self.device_read(bytes),
            }
            run.push(latency, bytes);
        }
        run
    }

    fn device_write(&mut self, bytes: u64) -> SimDuration {
        let svc = self.device.access(self.clock, Dir::Write, bytes);
        let dur = svc.response(self.clock);
        self.clock = svc.end;
        dur
    }

    fn device_read(&mut self, bytes: u64) -> SimDuration {
        let svc = self.device.access(self.clock, Dir::Read, bytes);
        let dur = svc.response(self.clock);
        self.clock = svc.end;
        dur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stacker;
    use mobistore_device::params::{cu140_datasheet, sdp10_datasheet};
    use mobistore_sim::units::KIB;

    #[test]
    fn disk_large_reads_beat_small_files() {
        let tb = DiskTestbed::new(cu140_datasheet(), None);
        let small = tb.read_file(4 * KIB, 4 * KIB, DataClass::Random);
        let large = tb.read_file(1024 * KIB, 4 * KIB, DataClass::Random);
        assert!(
            large.throughput_kib_s() > 3.0 * small.throughput_kib_s(),
            "large {} vs small {}",
            large.throughput_kib_s(),
            small.throughput_kib_s()
        );
    }

    #[test]
    fn disk_compression_speeds_small_writes() {
        // Table 1: cu140 4-KB writes: 76 KB/s raw, 289 KB/s with
        // DoubleSpace (buffered batches).
        let raw = DiskTestbed::new(cu140_datasheet(), None);
        let dbl = DiskTestbed::new(cu140_datasheet(), Some(crate::doublespace()));
        let t_raw = raw.write_file(4 * KIB, 4 * KIB, DataClass::Compressible);
        let t_dbl = dbl.write_file(4 * KIB, 4 * KIB, DataClass::Compressible);
        assert!(
            t_dbl.throughput_kib_s() > 2.0 * t_raw.throughput_kib_s(),
            "dbl {} vs raw {}",
            t_dbl.throughput_kib_s(),
            t_raw.throughput_kib_s()
        );
    }

    #[test]
    fn disk_compression_slows_large_writes() {
        // Table 1: 1-MB writes drop from 231 to 146 KB/s under compression
        // (CPU-bound compressor).
        let raw = DiskTestbed::new(cu140_datasheet(), None);
        let dbl = DiskTestbed::new(cu140_datasheet(), Some(crate::doublespace()));
        let t_raw = raw.write_file(1024 * KIB, 4 * KIB, DataClass::Compressible);
        let t_dbl = dbl.write_file(1024 * KIB, 4 * KIB, DataClass::Compressible);
        assert!(t_dbl.throughput_kib_s() < t_raw.throughput_kib_s());
    }

    #[test]
    fn flash_disk_writes_are_slow_and_size_independent() {
        // §5.2: the flash disk is unaffected by utilization; Table 1 shows
        // ~39-40 KB/s for both file sizes.
        let mut tb = FlashDiskTestbed::new(sdp10_datasheet(), None);
        let small = tb.write_file(4 * KIB, 4 * KIB, DataClass::Random);
        let large = tb.write_file(1024 * KIB, 4 * KIB, DataClass::Random);
        let ratio = small.throughput_kib_s() / large.throughput_kib_s();
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
        assert!(large.throughput_kib_s() < 60.0);
    }

    #[test]
    fn stacker_helps_small_flash_writes() {
        // Table 1: sdp10 4-KB writes: 39 KB/s raw vs 225 KB/s compressed.
        let mut raw = FlashDiskTestbed::new(sdp10_datasheet(), None);
        let mut stk = FlashDiskTestbed::new(sdp10_datasheet(), Some(stacker()));
        let t_raw = raw.write_file(4 * KIB, 4 * KIB, DataClass::Compressible);
        let t_stk = stk.write_file(4 * KIB, 4 * KIB, DataClass::Compressible);
        assert!(
            t_stk.throughput_kib_s() > 3.0 * t_raw.throughput_kib_s(),
            "stk {} vs raw {}",
            t_stk.throughput_kib_s(),
            t_raw.throughput_kib_s()
        );
    }

    #[test]
    fn compressed_reads_pay_decompression_only_for_text() {
        // §3: reads of uncompressible data skip the decompression step.
        let tb = DiskTestbed::new(cu140_datasheet(), Some(crate::doublespace()));
        let text = tb.read_file(1024 * KIB, 4 * KIB, DataClass::Compressible);
        let random = tb.read_file(1024 * KIB, 4 * KIB, DataClass::Random);
        assert!(
            random.throughput_kib_s() > text.throughput_kib_s(),
            "random {} vs text {}",
            random.throughput_kib_s(),
            text.throughput_kib_s()
        );
    }

    #[test]
    fn stacker_reads_land_near_table1() {
        // Table 1 sdp10 compressed reads: 218 (4-KB file) / 246 (1-MB).
        let mut tb = FlashDiskTestbed::new(sdp10_datasheet(), Some(stacker()));
        let small = tb.read_file(4 * KIB, 4 * KIB, DataClass::Compressible);
        let large = tb.read_file(1024 * KIB, 4 * KIB, DataClass::Compressible);
        assert!(
            (100.0..350.0).contains(&small.throughput_kib_s()),
            "{}",
            small.throughput_kib_s()
        );
        assert!(
            (150.0..350.0).contains(&large.throughput_kib_s()),
            "{}",
            large.throughput_kib_s()
        );
    }

    #[test]
    fn partial_tail_chunk_is_handled() {
        // A 10-KB file written in 4-KB requests ends with a 2-KB tail.
        let tb = DiskTestbed::new(cu140_datasheet(), None);
        let run = tb.write_file(10 * KIB, 4 * KIB, DataClass::Random);
        assert_eq!(run.chunk_latencies_ms.len(), 3);
        assert_eq!(run.bytes, 10 * KIB);
        // The tail transfers less, so it is the cheapest request.
        let last = run.chunk_latencies_ms[2];
        assert!(last <= run.chunk_latencies_ms[1]);
    }

    #[test]
    fn bench_run_accounting() {
        let tb = DiskTestbed::new(cu140_datasheet(), None);
        let run = tb.write_file(16 * KIB, 4 * KIB, DataClass::Random);
        assert_eq!(run.chunk_latencies_ms.len(), 4);
        assert_eq!(run.bytes, 16 * KIB);
        assert!(run.total > SimDuration::ZERO);
    }
}
