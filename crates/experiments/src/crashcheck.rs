//! Crash-consistency torture — the `repro crashcheck` target.
//!
//! Two sections, both deterministic at any `--jobs` count:
//!
//! 1. **Torture grid**: every workload × every device runs the
//!    [`mobistore_core::crashcheck`] sweep — a power failure injected at
//!    each selected op boundary (plus torn mid-write crashes on odd
//!    boundaries), recovery, and verification. On the flash card the
//!    differential shadow model checks every recovered block's
//!    generation; on the disks the accounting story is checked. The
//!    sweep density and jitter seed come from `--crash-points` and
//!    `--crash-seed`.
//! 2. **End-of-life degradation**: a deliberately tiny flash card is
//!    driven through the *full simulator* under a permanent-erase-failure
//!    plan until segment retirement squeezes out the last cleanable
//!    victim. The card goes read-only instead of panicking, the run
//!    drains with per-op error accounting, and the rejected writes land
//!    in [`Metrics::rejected_writes`].
//!
//! [`Metrics::rejected_writes`]: mobistore_core::metrics::Metrics::rejected_writes

use std::fmt;

use mobistore_core::config::SystemConfig;
use mobistore_core::crashcheck::{torture, CrashPoints, TortureOptions, TortureReport};
use mobistore_core::simulator::{try_simulate, RunOptions, SimError};
use mobistore_device::params::{cu140_datasheet, intel_datasheet, sdp5_datasheet};
use mobistore_sim::exec::parallel_map;
use mobistore_sim::fault::FaultConfig;
use mobistore_sim::time::SimTime;
use mobistore_sim::units::KIB;
use mobistore_trace::record::{DiskOp, DiskOpKind, FileId, Trace};
use mobistore_workload::Workload;

use crate::{flash_card_config, shared_trace, Scale};

/// Parameters of the torture sweep (the `--crash-*` flags).
#[derive(Debug, Clone, Copy)]
pub struct CrashCheckOptions {
    /// Crash-point density per grid cell.
    pub points: CrashPoints,
    /// Trace-prefix cap per crash point (the flash-card sweep is
    /// O(points × ops), so the prefix is bounded; truncation is
    /// reported).
    pub max_ops: usize,
    /// Seed for the crash-instant jitter.
    pub seed: u64,
}

impl Default for CrashCheckOptions {
    fn default() -> Self {
        CrashCheckOptions {
            points: CrashPoints::Sampled(24),
            max_ops: 192,
            seed: 0x1994,
        }
    }
}

/// The end-of-life demonstration's outcome.
#[derive(Debug, Clone)]
pub struct EndOfLife {
    /// Write ops the trace issued.
    pub writes_issued: u64,
    /// Write ops the read-only card refused (the run drained anyway).
    pub rejected_writes: u64,
    /// Blocks those writes covered.
    pub rejected_blocks: u64,
    /// Segments retired by permanent erase failures on the way down.
    pub segments_retired: u64,
    /// The card's own count of refused writes.
    pub eol_write_rejections: u64,
}

/// The rendered experiment: the grid plus the degradation demo.
#[derive(Debug, Clone)]
pub struct CrashCheck {
    /// The options the sweep ran with.
    pub options: CrashCheckOptions,
    /// One report per workload × device, workload-major.
    pub reports: Vec<TortureReport>,
    /// The end-of-life run.
    pub eol: EndOfLife,
}

impl CrashCheck {
    /// True if every grid cell passed every check.
    pub fn passed(&self) -> bool {
        self.reports.iter().all(TortureReport::passed)
    }
}

/// Runs the torture grid and the end-of-life demonstration.
///
/// # Errors
///
/// Returns the [`SimError`] if a simulation cannot even be set up (the
/// torture sweeps themselves never error — they record violations).
pub fn run(scale: Scale, options: &CrashCheckOptions) -> Result<CrashCheck, SimError> {
    let torture_opts = TortureOptions {
        max_ops: options.max_ops,
        crash_points: options.points,
        seed: options.seed,
        sabotage_lbn: None,
    };
    let mut cells: Vec<(Workload, u8)> = Vec::new();
    for w in Workload::ALL {
        for device in 0..3u8 {
            cells.push((w, device));
        }
    }
    let reports = parallel_map(&cells, |&(workload, device)| {
        let trace = shared_trace(workload, scale);
        let config = match device {
            0 => {
                let mut cfg = SystemConfig::disk(cu140_datasheet());
                cfg.fault.fat_scan_bytes = 64 * KIB;
                cfg
            }
            1 => SystemConfig::flash_disk(sdp5_datasheet()),
            _ => flash_card_config(intel_datasheet(), &trace, 0.80),
        };
        let mut report = torture(&config, &trace, &torture_opts);
        report.name = format!("{}/{}", workload.name(), report.device);
        report
    });
    Ok(CrashCheck {
        options: *options,
        reports,
        eol: end_of_life()?,
    })
}

/// A rewrite-heavy trace that keeps the end-of-life card's cleaner busy,
/// so every failed erase gets its chance to retire a segment.
fn eol_trace() -> Trace {
    let mut trace = Trace::new(1024);
    for i in 0..2000u64 {
        trace.push(DiskOp {
            time: SimTime::from_secs_f64(i as f64 * 0.01),
            kind: DiskOpKind::Write,
            lbn: i % 250,
            blocks: 1,
            file: FileId(0),
        });
    }
    trace
}

/// Drives a 10-segment card into read-only end of life through the full
/// simulator: every erase fails permanently, so each cleaning pass
/// retires its victim until the survivors are too full to clean.
fn end_of_life() -> Result<EndOfLife, SimError> {
    let trace = eol_trace();
    let mut fault = FaultConfig::with_rate(0.0, 7);
    fault.erase_fail_rate = 1.0;
    fault.permanent_rate = 1.0;
    let config = SystemConfig::flash_card(intel_datasheet())
        .with_flash_capacity(10 * 128 * KIB)
        .with_dram(0)
        .with_faults(fault);
    // No warm-up: the interesting events (retirement, the read-only
    // transition) happen early, and the warm boundary would reset their
    // counters.
    let opts = RunOptions {
        warm_percent: 0,
        reset_wear_at_warm: false,
    };
    let m = try_simulate(&config, &trace, opts)?;
    let card = m.flash_card.expect("flash-card backend");
    Ok(EndOfLife {
        writes_issued: trace
            .ops
            .iter()
            .filter(|op| op.kind == DiskOpKind::Write)
            .count() as u64,
        rejected_writes: m.rejected_writes,
        rejected_blocks: m.rejected_blocks,
        segments_retired: card.segments_retired,
        eol_write_rejections: card.eol_write_rejections,
    })
}

impl fmt::Display for CrashCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let density = match self.options.points {
            CrashPoints::Exhaustive => "every op boundary".to_owned(),
            CrashPoints::Sampled(n) => format!("{n} sampled boundaries"),
        };
        writeln!(
            f,
            "Crash-consistency torture: power failure at {density} \
             (max {} ops, crash seed {:#x}), recovery, then verification",
            self.options.max_ops, self.options.seed
        )?;
        writeln!(
            f,
            "Flash-card recoveries are checked block-by-block against a \
             differential shadow model; disk recoveries by accounting."
        )?;
        writeln!(
            f,
            "{:<20} {:>7} {:>7} {:>9} {:>7} {:>8} {:>6}",
            "trace/device", "crashes", "mid-op", "mid-clean", "ops", "dropped", "result"
        )?;
        for r in &self.reports {
            writeln!(
                f,
                "{:<20} {:>7} {:>7} {:>9} {:>7} {:>8} {:>6}",
                r.name,
                r.crashes,
                r.mid_op_crashes,
                r.mid_cleaning_crashes,
                r.ops_replayed,
                r.truncated_ops,
                if r.passed() { "ok" } else { "FAIL" },
            )?;
        }
        for r in self.reports.iter().filter(|r| !r.passed()) {
            for v in r.violations.iter().take(5) {
                writeln!(f, "  {}: {v}", r.name)?;
            }
            if r.violations.len() > 5 {
                writeln!(f, "  {}: ... and {} more", r.name, r.violations.len() - 5)?;
            }
        }
        writeln!(f)?;
        writeln!(
            f,
            "End-of-life degradation: a 10-segment card under permanent erase \
             failures goes read-only and drains the trace instead of panicking"
        )?;
        writeln!(
            f,
            "{:>7} {:>9} {:>9} {:>8} {:>10}",
            "writes", "rejected", "blocks", "retired", "eol-rejects"
        )?;
        write!(
            f,
            "{:>7} {:>9} {:>9} {:>8} {:>10}",
            self.eol.writes_issued,
            self.eol.rejected_writes,
            self.eol.rejected_blocks,
            self.eol.segments_retired,
            self.eol.eol_write_rejections,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_every_workload_and_device() {
        let opts = CrashCheckOptions {
            points: CrashPoints::Sampled(4),
            max_ops: 48,
            seed: 3,
        };
        let c = run(Scale::quick(), &opts).expect("crashcheck sets up");
        assert_eq!(c.reports.len(), Workload::ALL.len() * 3);
        assert!(
            c.passed(),
            "violations: {:?}",
            c.reports
                .iter()
                .flat_map(|r| r.violations.iter().take(2))
                .collect::<Vec<_>>()
        );
        let rendered = format!("{c}");
        assert!(rendered.contains("mac/flash card"));
        assert!(rendered.contains("synth/magnetic disk"));
    }

    #[test]
    fn end_of_life_rejects_writes_but_completes() {
        let eol = end_of_life().expect("the run degrades, it does not error out");
        assert!(
            eol.segments_retired >= 1,
            "no segment ever retired: {eol:?}"
        );
        assert!(
            eol.rejected_writes > 0,
            "card never went read-only: {eol:?}"
        );
        assert_eq!(eol.rejected_writes, eol.rejected_blocks);
        assert!(eol.eol_write_rejections >= eol.rejected_writes);
        assert!(eol.rejected_writes < eol.writes_issued);
    }

    #[test]
    fn sweep_is_deterministic() {
        let opts = CrashCheckOptions {
            points: CrashPoints::Sampled(3),
            max_ops: 32,
            seed: 11,
        };
        let a = format!(
            "{}",
            run(Scale::quick(), &opts).expect("crashcheck sets up")
        );
        let b = format!(
            "{}",
            run(Scale::quick(), &opts).expect("crashcheck sets up")
        );
        assert_eq!(a, b);
    }
}
