//! The battery-backed SRAM write buffer.
//!
//! §2/§5.5: writes to the disk can be buffered in battery-backed SRAM,
//! "not only improving performance, but also allowing small writes to a
//! spun-down disk to proceed without spinning it up" (the Quantum Daytona's
//! deferred spin-up policy). Writes to SRAM are assumed recoverable after a
//! crash, so synchronous writes that fit become asynchronous with respect
//! to the disk.
//!
//! The buffer absorbs writes until it is full; the write that overflows it
//! must wait while the whole buffer flushes to the backing store — which is
//! §5.5's observation that clustered writes "will be delayed as they wait
//! for the disk". Reads of recently-written blocks are served from the
//! buffer (§5.5, footnote 3).

use std::collections::HashSet;

use mobistore_device::params::SramParams;
use mobistore_sim::energy::{EnergyMeter, Joules, Watts};
use mobistore_sim::obs::{Event, Observer};
use mobistore_sim::time::{SimDuration, SimTime};

/// Counters the buffer maintains alongside energy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SramStats {
    /// Writes fully absorbed without touching the disk.
    pub absorbed: u64,
    /// Flushes forced by overflow.
    pub flushes: u64,
    /// Reads served from the buffer.
    pub read_hits: u64,
}

impl SramStats {
    /// Adds another buffer's counters into this one (fleet aggregation).
    pub fn merge(&mut self, other: &SramStats) {
        self.absorbed += other.absorbed;
        self.flushes += other.flushes;
        self.read_hits += other.read_hits;
    }
}

/// A fixed-capacity write buffer holding whole blocks.
///
/// # Examples
///
/// ```
/// use mobistore_cache::sram::SramWriteBuffer;
/// use mobistore_device::params::sram_nec;
///
/// let mut buf = SramWriteBuffer::new(sram_nec(), 4 * 1024, 1024);
/// assert!(buf.fits(&[1, 2, 3]));
/// buf.absorb(&[1, 2, 3]);
/// assert!(buf.contains(2));
/// assert!(!buf.fits(&[4, 5]), "only one slot left");
/// ```
#[derive(Debug, Clone)]
pub struct SramWriteBuffer {
    params: SramParams,
    capacity_blocks: usize,
    block_size: u64,
    blocks: HashSet<u64>,
    meter: EnergyMeter,
    stats: SramStats,
}

const CATEGORIES: &[&str] = &["active", "idle"];

impl SramWriteBuffer {
    /// Creates a buffer of `capacity_bytes` over blocks of `block_size`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds no complete block.
    pub fn new(params: SramParams, capacity_bytes: u64, block_size: u64) -> Self {
        match Self::try_new(params, capacity_bytes, block_size) {
            Ok(buf) => buf,
            Err(e) => panic!("SRAM buffer {e}"),
        }
    }

    /// Fallible [`new`](Self::new): returns a typed [`crate::CacheError`]
    /// instead of panicking on bad geometry.
    pub fn try_new(
        params: SramParams,
        capacity_bytes: u64,
        block_size: u64,
    ) -> Result<Self, crate::CacheError> {
        if block_size == 0 {
            return Err(crate::CacheError::ZeroBlockSize);
        }
        let capacity_blocks = (capacity_bytes / block_size) as usize;
        if capacity_blocks == 0 {
            return Err(crate::CacheError::Undersized {
                capacity_bytes,
                block_size,
            });
        }
        Ok(SramWriteBuffer {
            params,
            capacity_blocks,
            block_size,
            blocks: HashSet::new(),
            meter: EnergyMeter::new(CATEGORIES),
            stats: SramStats::default(),
        })
    }

    /// Returns the capacity in blocks.
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_blocks
    }

    /// Returns the capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_blocks as u64 * self.block_size
    }

    /// Returns the number of buffered blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns true if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Returns the counters.
    pub fn stats(&self) -> SramStats {
        self.stats
    }

    /// Returns total energy consumed so far.
    pub fn energy(&self) -> Joules {
        self.meter.total()
    }

    /// Returns the energy meter for breakdowns.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Zeroes energy and counters while keeping contents (warm-up
    /// boundary).
    pub fn reset_metrics(&mut self) {
        self.meter = EnergyMeter::new(CATEGORIES);
        self.stats = SramStats::default();
    }

    /// True if a write of `nblocks` would fit (blocks already buffered
    /// overwrite in place and consume no new space).
    pub fn fits(&self, lbns: &[u64]) -> bool {
        let new = lbns.iter().filter(|lbn| !self.blocks.contains(lbn)).count();
        self.blocks.len() + new <= self.capacity_blocks
    }

    /// Buffers the given blocks.
    ///
    /// # Panics
    ///
    /// Panics if they do not fit; callers must check [`fits`](Self::fits)
    /// and flush first.
    pub fn absorb(&mut self, lbns: &[u64]) {
        if let Err(e) = self.try_absorb(lbns) {
            panic!("{e}");
        }
    }

    /// Fallible [`absorb`](Self::absorb): returns
    /// [`crate::CacheError::Overflow`] (buffering nothing) instead of
    /// panicking when the blocks do not fit.
    pub fn try_absorb(&mut self, lbns: &[u64]) -> Result<(), crate::CacheError> {
        if !self.fits(lbns) {
            let incoming = lbns.iter().filter(|lbn| !self.blocks.contains(lbn)).count();
            return Err(crate::CacheError::Overflow {
                buffered: self.blocks.len(),
                incoming,
                capacity: self.capacity_blocks,
            });
        }
        for &lbn in lbns {
            self.blocks.insert(lbn);
        }
        self.stats.absorbed += 1;
        Ok(())
    }

    /// [`absorb`](Self::absorb), reporting a [`Event::SramAbsorb`] stamped
    /// `now` to an observer.
    ///
    /// # Panics
    ///
    /// Panics if the blocks do not fit, like [`absorb`](Self::absorb).
    pub fn absorb_obs<O: Observer>(&mut self, now: SimTime, lbns: &[u64], obs: &mut O) {
        self.absorb(lbns);
        obs.record(&Event::SramAbsorb {
            t: now,
            blocks: lbns.len() as u32,
        });
    }

    /// True if the block is buffered (a read of it needs no disk access).
    pub fn contains(&self, lbn: u64) -> bool {
        self.blocks.contains(&lbn)
    }

    /// Records a read served from the buffer.
    pub fn note_read_hit(&mut self) {
        self.stats.read_hits += 1;
    }

    /// [`note_read_hit`](Self::note_read_hit), reporting a
    /// [`Event::SramReadHit`] stamped `now` to an observer.
    pub fn note_read_hit_obs<O: Observer>(&mut self, now: SimTime, obs: &mut O) {
        self.note_read_hit();
        obs.record(&Event::SramReadHit { t: now, blocks: 1 });
    }

    /// Empties the buffer for a flush, returning the bytes to write to the
    /// backing store.
    pub fn drain_for_flush(&mut self) -> u64 {
        self.drain_blocks().len() as u64 * self.block_size
    }

    /// Empties the buffer for a flush, returning the buffered blocks in
    /// ascending order (backends that address blocks — the flash card —
    /// need the addresses, not just the byte count).
    pub fn drain_blocks(&mut self) -> Vec<u64> {
        let mut blocks: Vec<u64> = self.blocks.drain().collect();
        blocks.sort_unstable();
        if !blocks.is_empty() {
            self.stats.flushes += 1;
        }
        blocks
    }

    /// [`drain_blocks`](Self::drain_blocks), reporting a non-empty drain to
    /// an observer as a [`Event::SramFlush`] stamped `now`.
    pub fn drain_blocks_obs<O: Observer>(&mut self, now: SimTime, obs: &mut O) -> Vec<u64> {
        let blocks = self.drain_blocks();
        if !blocks.is_empty() {
            obs.record(&Event::SramFlush {
                t: now,
                blocks: blocks.len() as u32,
            });
        }
        blocks
    }

    /// Drops a block (file deletion); returns true if it was buffered.
    pub fn invalidate(&mut self, lbn: u64) -> bool {
        self.blocks.remove(&lbn)
    }

    /// Time to move `bytes` in or out of the buffer.
    pub fn access_time(&self, bytes: u64) -> SimDuration {
        self.params.access_latency + self.params.bandwidth.transfer_time(bytes)
    }

    /// Charges the energy of one access of `bytes`.
    pub fn charge_access(&mut self, bytes: u64) {
        let dur = self.access_time(bytes);
        self.meter
            .charge_for("active", self.params.active_power, dur);
    }

    /// Charges retention power for a span of simulated time.
    pub fn charge_idle_span(&mut self, span: SimDuration) {
        let kib = self.capacity_bytes() as f64 / 1024.0;
        let retention = Watts(self.params.idle_power_per_kib.get() * kib);
        self.meter.charge_for("idle", retention, span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobistore_device::params::sram_nec;

    fn buf(blocks: u64) -> SramWriteBuffer {
        SramWriteBuffer::new(sram_nec(), blocks * 512, 512)
    }

    #[test]
    fn absorb_until_full() {
        let mut b = buf(4);
        assert!(b.fits(&[1, 2, 3, 4]));
        b.absorb(&[1, 2, 3, 4]);
        assert!(!b.fits(&[5]));
        assert_eq!(b.len(), 4);
        assert_eq!(b.stats().absorbed, 1);
    }

    #[test]
    fn overwrite_in_place_consumes_no_space() {
        let mut b = buf(2);
        b.absorb(&[1, 2]);
        assert!(b.fits(&[1]), "overwrite of a buffered block fits");
        b.absorb(&[1]);
        assert_eq!(b.len(), 2);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn absorb_past_capacity_panics() {
        let mut b = buf(1);
        b.absorb(&[1, 2]);
    }

    #[test]
    fn try_absorb_rejects_overflow_without_buffering() {
        use crate::CacheError;
        let mut b = buf(1);
        let e = b.try_absorb(&[1, 2]).expect_err("two blocks into one slot");
        assert_eq!(
            e,
            CacheError::Overflow {
                buffered: 0,
                incoming: 2,
                capacity: 1
            }
        );
        assert!(b.is_empty(), "a rejected absorb buffers nothing");
        assert!(b.try_absorb(&[1]).is_ok());
        assert!(b.contains(1));
    }

    #[test]
    fn drain_returns_bytes_and_clears() {
        let mut b = buf(4);
        b.absorb(&[1, 2, 3]);
        assert_eq!(b.drain_for_flush(), 3 * 512);
        assert!(b.is_empty());
        assert_eq!(b.stats().flushes, 1);
        // Draining an empty buffer is free and not a flush.
        assert_eq!(b.drain_for_flush(), 0);
        assert_eq!(b.stats().flushes, 1);
    }

    #[test]
    fn contains_and_invalidate() {
        let mut b = buf(4);
        b.absorb(&[9]);
        assert!(b.contains(9));
        assert!(b.invalidate(9));
        assert!(!b.contains(9));
        assert!(!b.invalidate(9));
    }

    #[test]
    fn access_time_is_55ns_per_byte_plus_latency() {
        let b = buf(4);
        let t = b.access_time(1000);
        // 500 ns latency + 55 us transfer.
        assert_eq!(t.as_nanos(), 500 + 55_000);
    }

    #[test]
    fn energy_charges() {
        let mut b = buf(64); // 32 KB
        b.charge_access(512);
        b.charge_idle_span(SimDuration::from_secs(1000));
        assert!(b.meter().category("active").get() > 0.0);
        // 32 KiB x 2e-6 W/KiB x 1000 s = 0.064 J.
        assert!((b.meter().category("idle").get() - 0.064).abs() < 1e-9);
    }
}
