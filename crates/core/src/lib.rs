//! The storage-alternatives simulator — the primary contribution of
//! *Storage Alternatives for Mobile Computers* (Douglis, Cáceres, Kaashoek,
//! Li, Marsh, Tauber; OSDI '94), reimplemented in Rust.
//!
//! The paper evaluates three storage organisations for mobile computers —
//! magnetic disk, flash disk emulator, and flash memory card, each behind a
//! DRAM buffer cache — by replaying file-system traces through a storage
//! simulator that accounts response time and energy. This crate wires the
//! substrates together:
//!
//! * [`config::SystemConfig`] — one value per Table 4 row: device
//!   parameters, DRAM size, SRAM write buffer, spin-down policy, flash
//!   utilization, cleaning policy;
//! * [`simulator::simulate`] — replays a disk-level trace and returns
//!   [`metrics::Metrics`] (energy, read/write response mean/max/σ,
//!   cleaning and endurance counters);
//! * [`battery`] — the battery-life extension model behind the paper's
//!   "22%" headline.
//!
//! # Example
//!
//! ```
//! use mobistore_core::config::SystemConfig;
//! use mobistore_core::simulator::simulate;
//! use mobistore_device::params::{cu140_datasheet, intel_datasheet};
//! use mobistore_sim::time::SimTime;
//! use mobistore_trace::record::{DiskOp, DiskOpKind, FileId, Trace};
//!
//! // A toy trace: write then re-read a few blocks once a second.
//! let mut trace = Trace::new(1024);
//! for i in 0..100u64 {
//!     trace.push(DiskOp {
//!         time: SimTime::from_secs_f64(i as f64),
//!         kind: if i % 2 == 0 { DiskOpKind::Write } else { DiskOpKind::Read },
//!         lbn: i % 8,
//!         blocks: 1,
//!         file: FileId(0),
//!     });
//! }
//!
//! let disk = simulate(&SystemConfig::disk(cu140_datasheet()), &trace);
//! let card = simulate(
//!     &SystemConfig::flash_card(intel_datasheet())
//!         .with_flash_capacity(4 * 1024 * 1024),
//!     &trace,
//! );
//! // The paper's headline: flash saves energy by around an order of
//! // magnitude relative to a spinning disk.
//! assert!(card.energy.get() < disk.energy.get());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod config;
pub mod crashcheck;
pub mod metrics;
pub mod simulator;

pub use config::{BackendConfig, SystemConfig};
pub use metrics::Metrics;
pub use simulator::{simulate, simulate_with, try_simulate, ConfigError, RunOptions, SimError};
