//! Table 2 — manufacturers' specifications for the three storage devices.
//!
//! This is the parameter database rendered in the paper's format; it is
//! exact by construction (the values are transcribed from Table 2), and
//! the test below locks them against accidental edits.

use std::fmt;

use mobistore_device::params::{
    cu140_datasheet, intel_datasheet, sdp10_datasheet, DiskParams, FlashCardParams, FlashDiskParams,
};

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct SpecRow {
    /// Device name.
    pub device: String,
    /// Operation (Read/Write/Idle/Spin up/Erase).
    pub operation: &'static str,
    /// Latency in milliseconds, if applicable.
    pub latency_ms: Option<f64>,
    /// Throughput in Kbytes/s, if applicable.
    pub throughput_kib_s: Option<f64>,
    /// Power in watts.
    pub power_w: f64,
}

/// The regenerated Table 2.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// All rows, in the paper's order.
    pub rows: Vec<SpecRow>,
}

/// Builds Table 2 from the parameter database.
pub fn run() -> Table2 {
    let disk = cu140_datasheet();
    let fdisk = sdp10_datasheet();
    let card = intel_datasheet();
    Table2 {
        rows: vec![
            disk_row(&disk, "Read/Write"),
            SpecRow {
                device: disk.name.into(),
                operation: "Idle",
                latency_ms: None,
                throughput_kib_s: None,
                power_w: disk.idle_power.get(),
            },
            SpecRow {
                device: disk.name.into(),
                operation: "Spin up",
                latency_ms: Some(disk.spin_up_time.as_millis_f64()),
                throughput_kib_s: None,
                power_w: disk.spin_up_power.get(),
            },
            flash_disk_row(&fdisk, "Read", fdisk.read_bandwidth.kib_per_s()),
            flash_disk_row(&fdisk, "Write", fdisk.write_bandwidth.kib_per_s()),
            card_row(&card, "Read", card.read_bandwidth.kib_per_s()),
            card_row(&card, "Write", card.write_bandwidth.kib_per_s()),
            SpecRow {
                device: card.name.into(),
                operation: "Erase",
                latency_ms: Some(card.erase_time.as_millis_f64()),
                throughput_kib_s: Some(
                    card.segment_size as f64 / 1024.0 / card.erase_time.as_secs_f64(),
                ),
                power_w: card.active_power.get(),
            },
        ],
    }
}

fn disk_row(p: &DiskParams, op: &'static str) -> SpecRow {
    SpecRow {
        device: p.name.into(),
        operation: op,
        latency_ms: Some((p.avg_seek + p.avg_rotation).as_millis_f64()),
        throughput_kib_s: Some(p.read_bandwidth.kib_per_s()),
        power_w: p.active_power.get(),
    }
}

fn flash_disk_row(p: &FlashDiskParams, op: &'static str, tput: f64) -> SpecRow {
    SpecRow {
        device: p.name.into(),
        operation: op,
        latency_ms: Some(p.access_latency.as_millis_f64()),
        throughput_kib_s: Some(tput),
        power_w: p.active_power.get(),
    }
}

fn card_row(p: &FlashCardParams, op: &'static str, tput: f64) -> SpecRow {
    SpecRow {
        device: p.name.into(),
        operation: op,
        latency_ms: Some(p.access_latency.as_millis_f64()),
        throughput_kib_s: Some(tput),
        power_w: p.active_power.get(),
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 2: device specifications (from the parameter database)"
        )?;
        writeln!(
            f,
            "{:<28} {:<10} {:>12} {:>18} {:>8}",
            "Device", "Operation", "Latency(ms)", "Throughput(KB/s)", "Power(W)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<28} {:<10} {:>12} {:>18} {:>8.2}",
                r.device,
                r.operation,
                r.latency_ms.map_or("-".into(), |v| format!("{v:.1}")),
                r.throughput_kib_s.map_or("-".into(), |v| format!("{v:.0}")),
                r.power_w,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_match_paper_table2() {
        let t = run();
        let find = |dev: &str, op: &str| {
            t.rows
                .iter()
                .find(|r| r.device.contains(dev) && r.operation == op)
                .unwrap_or_else(|| panic!("missing {dev}/{op}"))
        };
        // Caviar Ultralite cu140: 25.7 ms, 2125 KB/s, 1.75 W; idle 0.7 W;
        // spin-up 1000 ms at 3 W.
        let rw = find("cu140", "Read/Write");
        assert_eq!(rw.latency_ms, Some(25.7));
        assert_eq!(rw.throughput_kib_s, Some(2125.0));
        assert_eq!(rw.power_w, 1.75);
        assert_eq!(find("cu140", "Idle").power_w, 0.7);
        assert_eq!(find("cu140", "Spin up").latency_ms, Some(1000.0));
        assert_eq!(find("cu140", "Spin up").power_w, 3.0);
        // SunDisk sdp10: 1.5 ms; 600 read / 50 write; 0.36 W.
        assert_eq!(find("sdp10", "Read").latency_ms, Some(1.5));
        assert_eq!(find("sdp10", "Read").throughput_kib_s, Some(600.0));
        assert_eq!(find("sdp10", "Write").throughput_kib_s, Some(50.0));
        assert_eq!(find("sdp10", "Write").power_w, 0.36);
        // Intel card: 0 ms; 9765 read / 214 write; erase 1600 ms; 0.47 W.
        assert_eq!(find("Intel", "Read").latency_ms, Some(0.0));
        assert_eq!(find("Intel", "Read").throughput_kib_s, Some(9765.0));
        assert_eq!(find("Intel", "Write").throughput_kib_s, Some(214.0));
        assert_eq!(find("Intel", "Erase").latency_ms, Some(1600.0));
        assert_eq!(find("Intel", "Erase").power_w, 0.47);
    }

    #[test]
    fn renders_every_row() {
        let t = run();
        let text = t.to_string();
        assert_eq!(text.lines().count(), t.rows.len() + 2);
        assert!(text.contains("2125"));
        assert!(text.contains("9765"));
    }
}
