//! The `repro fleet` target — fleet-scale sharded simulation with
//! mergeable metrics.
//!
//! The paper evaluates one device against one trace; this target scales
//! that to a device *population*: a user population is hash-range-mapped
//! onto shards by [`mobistore_sim::fleet`], each shard gets a device
//! class and workload class from weighted mixes plus a per-user demand
//! level drawn from its own RNG stream, every shard simulates
//! independently through [`parallel_map`], and the per-shard [`Metrics`]
//! merge into per-device-class rollups and one fleet-wide row.
//!
//! Determinism contract: a shard's bytes are a pure function of
//! `(fleet seed, shard index)` — its trace seed, demand draw, and fault
//! seed all derive from that pair. Shards are simulated in fixed chunks
//! dispatched through [`parallel_map`] (input-order results) and merged
//! in shard-index order with a fixed chunk size, so the report, the
//! merged percentiles, and the `--metrics-out` document are
//! byte-identical at any `--jobs` count, and simulating shard `k` alone
//! reproduces exactly the bytes it contributed in-fleet.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use mobistore_core::config::SystemConfig;
use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::simulate;
use mobistore_device::params::{cu140_datasheet, intel_datasheet, sdp5_datasheet};
use mobistore_sim::exec::parallel_map;
use mobistore_sim::fault::FaultConfig;
use mobistore_sim::fleet::{splitmix64, FleetConfig, FleetPlan, FleetShard, Mix};
use mobistore_sim::time::SimDuration;
use mobistore_sim::units::MIB;
use mobistore_workload::Workload;

use crate::{working_set_blocks, Scale};

/// Salt for the per-shard demand-sampling RNG stream.
const DEMAND_SALT: u64 = 0x7fee_7000_dead_beef;

/// Salt for the per-shard fault-injection seed.
const FAULT_SALT: u64 = 0xfau64 << 56 | 0x0017_5eed;

/// Trace fraction one unit of user demand contributes: a shard with `u`
/// users replays roughly `u × this` of its workload's full trace (before
/// the lognormal per-user spread). Sized so the default eight users per
/// shard produce a small but non-degenerate trace even in 10k-shard
/// fleets.
const PER_USER_DEMAND: f64 = 0.002;

/// Transient fault rate injected into every shard (so fleet fault totals
/// are non-trivial even at quick scales).
const FLEET_FAULT_RATE: f64 = 0.01;

/// Mean interval between injected power failures per shard.
const POWER_FAIL_INTERVAL: SimDuration = SimDuration::from_secs(600);

/// Shards simulated per [`parallel_map`] task. Fixed (never derived from
/// the worker count) so the merge grouping — and therefore every floating
/// point fold — is identical at any `--jobs`.
const CHUNK: usize = 32;

/// The fleet's workload mix: mostly interactive file-level traces, some
/// disk-level and synthetic stress shards.
pub fn workload_mix() -> Mix {
    Mix::new(&[("mac", 4), ("dos", 3), ("hp", 2), ("synth", 1)])
}

/// The fleet's device mix: the paper's three storage alternatives.
pub fn device_mix() -> Mix {
    Mix::new(&[("cu140-disk", 3), ("sdp5-flashdisk", 2), ("intel-card", 3)])
}

/// `repro fleet` parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetOptions {
    /// Number of simulated device shards.
    pub shards: u32,
    /// User population hashed onto the shards.
    pub population: u64,
    /// Fleet seed; every per-shard stream derives from it.
    pub seed: u64,
}

impl FleetOptions {
    /// The default population for a shard count: eight users per shard.
    pub fn default_population(shards: u32) -> u64 {
        u64::from(shards) * 8
    }
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            shards: 64,
            population: Self::default_population(64),
            seed: 1994,
        }
    }
}

/// Builds the sharding config for these options.
pub fn fleet_config(opts: &FleetOptions) -> FleetConfig {
    FleetConfig {
        shards: opts.shards,
        population: opts.population,
        workload_mix: workload_mix(),
        device_mix: device_mix(),
        seed: opts.seed,
    }
}

/// Resolves a workload-mix label to the workload it names.
fn workload_by_name(name: &str) -> Workload {
    match name {
        "mac" => Workload::Mac,
        "dos" => Workload::Dos,
        "hp" => Workload::Hp,
        "synth" => Workload::Synth,
        other => panic!("unknown workload class {other}"),
    }
}

/// Like [`crate::flash_card_config`], but with a 4-MiB floor instead of
/// the paper's 40-MiB card: fleet shards replay tiny per-device traces,
/// and preloading 10k full-size cards would dominate the run.
fn fleet_card_config(trace: &mobistore_trace::record::Trace, utilization: f64) -> SystemConfig {
    let params = intel_datasheet();
    let seg = params.segment_size;
    let w_bytes = working_set_blocks(trace) * trace.block_size;
    let needed = (w_bytes as f64 / utilization) as u64 + 2 * seg;
    let capacity = (4 * MIB).max(needed.div_ceil(seg) * seg);
    SystemConfig::flash_card(params)
        .with_flash_capacity(capacity)
        .with_utilization(utilization)
}

/// Builds one shard's system configuration.
fn shard_config(
    shard: &FleetShard,
    workload: Workload,
    trace: &mobistore_trace::record::Trace,
) -> SystemConfig {
    let fault_seed = splitmix64(shard.seed ^ FAULT_SALT ^ u64::from(shard.index));
    let fault = FaultConfig::with_rate(FLEET_FAULT_RATE, fault_seed)
        .with_power_failures(POWER_FAIL_INTERVAL);
    let dram = if workload.below_buffer_cache() {
        0
    } else {
        2 * 1024 * 1024
    };
    let cfg = match shard.device {
        "cu140-disk" => SystemConfig::disk(cu140_datasheet()),
        "sdp5-flashdisk" => SystemConfig::flash_disk(sdp5_datasheet()),
        "intel-card" => fleet_card_config(trace, 0.80),
        other => panic!("unknown device class {other}"),
    };
    cfg.with_dram(dram).with_faults(fault)
}

/// The shard's total trace demand: the sum of its users' lognormal
/// per-user demands (drawn from the shard's dedicated RNG stream), scaled
/// by [`PER_USER_DEMAND`] and the run's [`Scale`].
fn shard_demand(shard: &FleetShard, scale: Scale) -> f64 {
    let mut rng = shard.rng(DEMAND_SALT);
    let mut units = 0.0;
    for _ in 0..shard.users {
        units += rng.lognormal_mean_std(1.0, 1.0);
    }
    units * PER_USER_DEMAND * scale.fraction
}

/// Simulates one shard: generates its demand-scaled trace and replays it
/// against its assigned device class. Pure function of the shard (which
/// is itself a pure function of `(fleet seed, shard index)`) and the
/// scale — calling this on a shard alone reproduces exactly its in-fleet
/// result.
pub fn simulate_shard(shard: &FleetShard, scale: Scale) -> Metrics {
    let workload = workload_by_name(shard.workload);
    let trace = workload.generate_demand(shard_demand(shard, scale), shard.trace_seed());
    let cfg = shard_config(shard, workload, &trace);
    let mut metrics = simulate(&cfg, &trace);
    metrics.name = format!(
        "shard{:05}/{}/{}",
        shard.index, shard.workload, shard.device
    );
    metrics
}

/// FNV-1a over a metrics row's debug rendering: a cheap but sensitive
/// fingerprint used to prove shard-alone equals in-fleet without
/// retaining 10k full metric sets.
pub fn metrics_digest(m: &Metrics) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{m:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One shard's lightweight summary row (the full [`Metrics`] is merged
/// into the rollups, not retained per shard).
#[derive(Debug, Clone)]
pub struct ShardRow {
    /// Shard index.
    pub index: u32,
    /// Users hashed onto the shard.
    pub users: u64,
    /// Workload-class label.
    pub workload: &'static str,
    /// Device-class label.
    pub device: &'static str,
    /// Operations the shard replayed.
    pub ops: u64,
    /// Energy the shard consumed, joules.
    pub energy_j: f64,
    /// [`metrics_digest`] of the shard's full metrics.
    pub digest: u64,
}

/// What one chunk task returns: rows plus pre-merged partials.
struct ChunkResult {
    rows: Vec<ShardRow>,
    per_class: Vec<(&'static str, Metrics)>,
    total: Metrics,
}

/// The fleet run: shard map, per-shard rows, per-device-class rollups,
/// and the fleet-wide merged metrics.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// The options that produced this fleet.
    pub options: FleetOptions,
    /// The shard plan (hash ranges, assignments, user counts).
    pub plan: FleetPlan,
    /// One lightweight row per shard, in index order.
    pub rows: Vec<ShardRow>,
    /// Per-device-class merged metrics, in device-mix order; classes no
    /// shard drew are omitted.
    pub per_class: Vec<(&'static str, Metrics)>,
    /// Every shard merged: the fleet-wide row (`fleet/all`).
    pub total: Metrics,
}

impl Fleet {
    /// The metrics rows exported via `--metrics-out`: the fleet-wide row
    /// first, then the per-device-class rollups.
    pub fn metrics_rows(&self) -> Vec<Metrics> {
        let mut rows = vec![self.total.clone()];
        for (class, m) in &self.per_class {
            let mut m = m.clone();
            m.name = format!("fleet/{class}");
            rows.push(m);
        }
        rows
    }

    /// Shards per workload class, in workload-mix order.
    fn workload_counts(&self) -> Vec<(&'static str, u32)> {
        let mut counts: Vec<(&'static str, u32)> = workload_mix()
            .entries()
            .iter()
            .map(|&(name, _)| (name, 0))
            .collect();
        for shard in &self.plan.shards {
            if let Some((_, c)) = counts.iter_mut().find(|(n, _)| *n == shard.workload) {
                *c += 1;
            }
        }
        counts
    }

    /// Shards per device class, in device-mix order.
    fn device_counts(&self) -> Vec<(&'static str, u32)> {
        let mut counts: Vec<(&'static str, u32)> = device_mix()
            .entries()
            .iter()
            .map(|&(name, _)| (name, 0))
            .collect();
        for shard in &self.plan.shards {
            if let Some((_, c)) = counts.iter_mut().find(|(n, _)| *n == shard.device) {
                *c += 1;
            }
        }
        counts
    }
}

/// Runs the fleet: plans the shards, simulates them in fixed chunks
/// through [`parallel_map`], and merges rows in shard-index order.
pub fn run(scale: Scale, opts: &FleetOptions) -> Fleet {
    run_with_progress(scale, opts, false)
}

/// Like [`run`], with optional `--progress` heartbeats: each finished
/// chunk prints completed shards, throughput, and an ETA to stderr.
/// Stdout (and every exported artifact) is untouched, so a progress run
/// stays byte-identical to a silent one.
pub fn run_with_progress(scale: Scale, opts: &FleetOptions, progress: bool) -> Fleet {
    let plan = fleet_config(opts).plan();
    let total_shards = plan.shards.len();
    let done = AtomicUsize::new(0);
    let started = Instant::now();
    let chunks: Vec<&[FleetShard]> = plan.shards.chunks(CHUNK).collect();
    let results = parallel_map(&chunks, |chunk| {
        let mut rows = Vec::with_capacity(chunk.len());
        let mut per_class: Vec<(&'static str, Metrics)> = Vec::new();
        let mut total = Metrics::empty("fleet/all");
        for shard in *chunk {
            let m = simulate_shard(shard, scale);
            rows.push(ShardRow {
                index: shard.index,
                users: shard.users,
                workload: shard.workload,
                device: shard.device,
                ops: m.overall_response_ms.count,
                energy_j: m.energy.get(),
                digest: metrics_digest(&m),
            });
            match per_class.iter_mut().find(|(n, _)| *n == shard.device) {
                Some((_, acc)) => acc.merge(&m),
                None => {
                    let mut acc = Metrics::empty(shard.device);
                    acc.merge(&m);
                    per_class.push((shard.device, acc));
                }
            }
            total.merge(&m);
        }
        if progress {
            let finished = done.fetch_add(chunk.len(), Ordering::Relaxed) + chunk.len();
            let elapsed = started.elapsed().as_secs_f64().max(1e-9);
            let rate = finished as f64 / elapsed;
            let eta = (total_shards.saturating_sub(finished)) as f64 / rate.max(1e-9);
            eprintln!(
                "# fleet progress: {finished}/{total_shards} shards \
                 ({rate:.1} shards/s, eta {eta:.0} s)"
            );
        }
        ChunkResult {
            rows,
            per_class,
            total,
        }
    });
    let mut rows = Vec::with_capacity(plan.shards.len());
    let mut per_class: Vec<(&'static str, Metrics)> = device_mix()
        .entries()
        .iter()
        .map(|&(name, _)| (name, Metrics::empty(name)))
        .collect();
    let mut total = Metrics::empty("fleet/all");
    for chunk in results {
        rows.extend(chunk.rows);
        for (class, m) in &chunk.per_class {
            let (_, acc) = per_class
                .iter_mut()
                .find(|(n, _)| n == class)
                .expect("chunk class comes from the device mix");
            acc.merge(m);
        }
        total.merge(&chunk.total);
    }
    per_class.retain(|(_, m)| m.overall_response_ms.count > 0 || m.duration > SimDuration::ZERO);
    Fleet {
        options: *opts,
        plan,
        rows,
        per_class,
        total,
    }
}

/// Formats one merged latency row: class label, shard count, op count,
/// mean, p50/p90/p99/p99.9, max.
fn latency_row(f: &mut fmt::Formatter<'_>, label: &str, shards: usize, m: &Metrics) -> fmt::Result {
    let p = m.overall_percentiles();
    writeln!(
        f,
        "  {label:<16} {shards:>6} {:>9} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.1}",
        m.overall_response_ms.count,
        m.overall_response_ms.mean,
        p.p50,
        p.p90,
        p.p99,
        p.p999,
        m.overall_response_ms.max,
    )
}

impl fmt::Display for Fleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fleet simulation: {} shards, {} users, seed {}",
            self.options.shards, self.options.population, self.options.seed
        )?;
        writeln!(f, "  shard map: {}", self.plan.range_map(3))?;
        write!(f, "  workloads:")?;
        for (name, count) in self.workload_counts() {
            write!(f, " {name}={count}")?;
        }
        writeln!(f)?;
        write!(f, "  devices:")?;
        for (name, count) in self.device_counts() {
            write!(f, " {name}={count}")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "  energy {:.1} J, span {:.1} s (max shard), mean shard power {:.3} W",
            self.total.energy.get(),
            self.total.duration.as_secs_f64(),
            self.total.mean_power_w(),
        )?;
        writeln!(f)?;
        writeln!(
            f,
            "  {:<16} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "class", "shards", "n", "mean", "p50", "p90", "p99", "p99.9", "max"
        )?;
        for (class, m) in &self.per_class {
            let shards = self.rows.iter().filter(|r| r.device == *class).count();
            latency_row(f, class, shards, m)?;
        }
        latency_row(f, "fleet/all", self.rows.len(), &self.total)?;
        let t = self.total.fault_totals();
        writeln!(
            f,
            "  faults: write_retries={} erase_retries={} segments_retired={} \
             power_failures={} lost_dirty_blocks={} rejected_writes={}",
            t.write_retries,
            t.erase_retries,
            t.segments_retired,
            t.power_failures,
            t.lost_dirty_blocks,
            t.rejected_writes,
        )?;
        writeln!(
            f,
            "  integrity: uncorrectable_reads={} recovery {:.3} s",
            self.total.uncorrectable_reads,
            t.recovery_time.as_secs_f64(),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetOptions {
        FleetOptions {
            shards: 6,
            population: 48,
            seed: 1994,
        }
    }

    #[test]
    fn fleet_runs_and_merges() {
        let fleet = run(Scale::quick(), &tiny());
        assert_eq!(fleet.rows.len(), 6);
        assert_eq!(fleet.plan.users(), 48);
        assert!(fleet.total.overall_response_ms.count > 0);
        assert!(fleet.total.energy.get() > 0.0);
        // The per-class rollups partition the fleet's operations.
        let class_ops: u64 = fleet
            .per_class
            .iter()
            .map(|(_, m)| m.overall_response_ms.count)
            .sum();
        assert_eq!(class_ops, fleet.total.overall_response_ms.count);
        let row_ops: u64 = fleet.rows.iter().map(|r| r.ops).sum();
        assert_eq!(row_ops, fleet.total.overall_response_ms.count);
        let rendered = format!("{fleet}");
        assert!(rendered.contains("fleet/all"));
        assert!(rendered.contains("p99.9"));
        assert!(rendered.contains("shard map:"));
    }

    #[test]
    fn shard_alone_matches_in_fleet_digest() {
        let opts = tiny();
        let fleet = run(Scale::quick(), &opts);
        let plan = fleet_config(&opts).plan();
        for (shard, row) in plan.shards.iter().zip(&fleet.rows) {
            let alone = simulate_shard(shard, Scale::quick());
            assert_eq!(metrics_digest(&alone), row.digest, "shard {}", shard.index);
        }
    }

    #[test]
    fn export_rows_lead_with_fleet_wide() {
        let fleet = run(Scale::quick(), &tiny());
        let rows = fleet.metrics_rows();
        assert_eq!(rows[0].name, "fleet/all");
        assert!(rows.len() > 1);
        for row in &rows[1..] {
            assert!(row.name.starts_with("fleet/"), "{}", row.name);
        }
    }
}
