//! GF(2^8) Reed-Solomon erasure coding for device arrays.
//!
//! A `k+m` code splits a stripe into `k` data shards and derives `m`
//! parity shards such that *any* `k` of the `k+m` shards reconstruct the
//! stripe; losing more than `m` shards makes the stripe unrecoverable.
//! That is the standard redundancy/overhead trade-off behind erasure-coded
//! storage tiers (a 4+2 geometry stores 50% overhead where 3-way
//! replication stores 200%).
//!
//! The implementation is deliberately textbook and std-only:
//!
//! * arithmetic in GF(2^8) with the AES-adjacent reduction polynomial
//!   `x^8 + x^4 + x^3 + x^2 + 1` (0x11d), table-driven via log/exp tables
//!   built once per [`ReedSolomon`] instance;
//! * a **systematic Vandermonde** encoding matrix: the top `k` rows are
//!   the identity (data shards are stored verbatim), the bottom `m` rows
//!   are the Vandermonde extension normalised by the inverse of its top
//!   square — which keeps every `k × k` submatrix invertible, the MDS
//!   property that makes any-`k`-of-`k+m` reconstruction work;
//! * erasure-only decoding: callers state *which* shards are missing
//!   (device deaths are detected, not silent), the decoder inverts the
//!   surviving rows and re-derives the lost ones.
//!
//! Determinism: encoding and decoding are pure functions of their inputs;
//! no randomness, no floating point, no platform dependence.

/// Errors reported by [`ReedSolomon`] construction and decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcError {
    /// The geometry is invalid: `k` and `m` must both be at least 1 and
    /// `k + m` at most 255 (the field has only 255 nonzero points).
    BadGeometry {
        /// Requested data shards.
        k: usize,
        /// Requested parity shards.
        m: usize,
    },
    /// Fewer than `k` shards survive: the stripe is unrecoverable.
    NotEnoughShards {
        /// Shards still present.
        present: usize,
        /// Shards required.
        needed: usize,
    },
    /// Shard slices disagree in length or a shard is empty.
    ShardSizeMismatch,
}

impl std::fmt::Display for EcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            EcError::BadGeometry { k, m } => {
                write!(
                    f,
                    "bad erasure-code geometry {k}+{m}: need k >= 1, m >= 1, k+m <= 255"
                )
            }
            EcError::NotEnoughShards { present, needed } => write!(
                f,
                "unrecoverable stripe: {present} shards present, {needed} needed"
            ),
            EcError::ShardSizeMismatch => write!(f, "shards must be non-empty and equally sized"),
        }
    }
}

impl std::error::Error for EcError {}

/// GF(2^8) log/exp tables over the 0x11d reduction polynomial.
#[derive(Clone)]
struct Gf256 {
    exp: [u8; 512],
    log: [u8; 256],
}

impl Gf256 {
    fn new() -> Self {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= 0x11d;
            }
        }
        // Duplicate the cycle so mul can index exp[log a + log b] without
        // a modulo.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Gf256 { exp, log }
    }

    #[inline]
    fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    #[inline]
    fn inv(&self, a: u8) -> u8 {
        debug_assert!(a != 0, "inverse of zero in GF(2^8)");
        self.exp[255 - self.log[a as usize] as usize]
    }

    #[cfg(test)]
    #[inline]
    fn div(&self, a: u8, b: u8) -> u8 {
        if a == 0 {
            0
        } else {
            self.mul(a, self.inv(b))
        }
    }

    /// alpha^e for the generator alpha = 2.
    #[inline]
    fn pow(&self, e: usize) -> u8 {
        self.exp[e % 255]
    }
}

/// A systematic `k+m` Reed-Solomon code over fixed-size shards.
///
/// # Examples
///
/// ```
/// use mobistore_sim::ec::ReedSolomon;
///
/// let rs = ReedSolomon::new(4, 2).unwrap();
/// let data: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i, i + 10, i + 20]).collect();
/// let parity = rs.encode(&data.iter().map(|s| s.as_slice()).collect::<Vec<_>>());
///
/// // Lose any two shards; the survivors reconstruct the stripe.
/// let mut shards: Vec<Option<Vec<u8>>> =
///     data.iter().cloned().map(Some).chain(parity.into_iter().map(Some)).collect();
/// shards[1] = None;
/// shards[4] = None;
/// rs.reconstruct(&mut shards).unwrap();
/// assert_eq!(shards[1].as_deref(), Some(&data[1][..]));
/// ```
#[derive(Clone)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    gf: Gf256,
    /// The full `(k+m) × k` systematic encoding matrix, row-major. Rows
    /// `0..k` are the identity; rows `k..k+m` derive parity.
    matrix: Vec<Vec<u8>>,
}

impl std::fmt::Debug for ReedSolomon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReedSolomon")
            .field("k", &self.k)
            .field("m", &self.m)
            .finish()
    }
}

impl ReedSolomon {
    /// Builds the code for a `k+m` geometry.
    pub fn new(k: usize, m: usize) -> Result<Self, EcError> {
        if k == 0 || m == 0 || k + m > 255 {
            return Err(EcError::BadGeometry { k, m });
        }
        let gf = Gf256::new();
        // Vandermonde rows: V[i][j] = alpha^(i*j) for i in 0..k+m. Every
        // square submatrix of V built from distinct rows is invertible.
        let n = k + m;
        let mut vand = vec![vec![0u8; k]; n];
        for (i, row) in vand.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = gf.pow(i * j);
            }
        }
        // Normalise to systematic form: M = V * inv(top k rows of V).
        // The top k rows become the identity; the bottom m rows keep the
        // any-k-invertible property because column operations preserve it.
        let top: Vec<Vec<u8>> = vand[..k].to_vec();
        let top_inv = invert(&gf, &top).expect("Vandermonde top square is invertible");
        let mut matrix = vec![vec![0u8; k]; n];
        for i in 0..n {
            for j in 0..k {
                let mut acc = 0u8;
                for (l, inv_row) in top_inv.iter().enumerate() {
                    acc ^= gf.mul(vand[i][l], inv_row[j]);
                }
                matrix[i][j] = acc;
            }
        }
        Ok(ReedSolomon { k, m, gf, matrix })
    }

    /// Data-shard count `k`.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Parity-shard count `m`.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Total shard count `k + m`.
    pub fn total_shards(&self) -> usize {
        self.k + self.m
    }

    /// Encodes `k` equally-sized data shards into `m` parity shards.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k` or the shards are not equally sized.
    pub fn encode(&self, data: &[&[u8]]) -> Vec<Vec<u8>> {
        assert_eq!(data.len(), self.k, "encode expects exactly k data shards");
        let len = data[0].len();
        assert!(
            data.iter().all(|s| s.len() == len),
            "data shards must be equally sized"
        );
        (0..self.m)
            .map(|p| {
                let row = &self.matrix[self.k + p];
                let mut shard = vec![0u8; len];
                for (j, src) in data.iter().enumerate() {
                    let coeff = row[j];
                    if coeff == 0 {
                        continue;
                    }
                    for (dst, &b) in shard.iter_mut().zip(src.iter()) {
                        *dst ^= self.gf.mul(coeff, b);
                    }
                }
                shard
            })
            .collect()
    }

    /// Reconstructs every missing shard in place. `shards` must have
    /// `k + m` entries; `None` marks an erased shard. On success every
    /// entry is `Some` and data shards carry their original bytes.
    pub fn reconstruct(&self, shards: &mut [Option<Vec<u8>>]) -> Result<(), EcError> {
        assert_eq!(
            shards.len(),
            self.k + self.m,
            "reconstruct expects k+m shard slots"
        );
        let present: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        if present.len() == shards.len() {
            return Ok(());
        }
        if present.len() < self.k {
            return Err(EcError::NotEnoughShards {
                present: present.len(),
                needed: self.k,
            });
        }
        let len = shards[present[0]].as_ref().expect("present").len();
        if len == 0
            || present
                .iter()
                .any(|&i| shards[i].as_ref().expect("present").len() != len)
        {
            return Err(EcError::ShardSizeMismatch);
        }

        // Invert the k surviving rows to express the data shards in terms
        // of the survivors.
        let rows: Vec<Vec<u8>> = present[..self.k]
            .iter()
            .map(|&i| self.matrix[i].clone())
            .collect();
        let inv = invert(&self.gf, &rows).expect("any k rows of an MDS matrix are invertible");

        // data[j] = sum_l inv[j][l] * survivor[l]
        let mut data: Vec<Vec<u8>> = Vec::with_capacity(self.k);
        for inv_row in &inv {
            let mut shard = vec![0u8; len];
            for (l, &src_idx) in present[..self.k].iter().enumerate() {
                let coeff = inv_row[l];
                if coeff == 0 {
                    continue;
                }
                let src = shards[src_idx].as_ref().expect("present");
                for (dst, &b) in shard.iter_mut().zip(src.iter()) {
                    *dst ^= self.gf.mul(coeff, b);
                }
            }
            data.push(shard);
        }

        // Fill missing data shards, then re-derive missing parity shards.
        let parity_needed: Vec<usize> = (self.k..self.k + self.m)
            .filter(|&i| shards[i].is_none())
            .collect();
        for i in 0..self.k {
            if shards[i].is_none() {
                shards[i] = Some(data[i].clone());
            }
        }
        if !parity_needed.is_empty() {
            let data_refs: Vec<&[u8]> = data.iter().map(|s| s.as_slice()).collect();
            let parity = self.encode(&data_refs);
            for i in parity_needed {
                shards[i] = Some(parity[i - self.k].clone());
            }
        }
        Ok(())
    }

    /// Returns a nonzero data vector (length `k`) whose codeword is zero
    /// at every position in `survivors` — i.e. two stripes differing by
    /// this vector are indistinguishable to an observer holding only those
    /// shards. Exists whenever `survivors.len() < k`, which is the
    /// constructive proof that `k-1` shards cannot determine the stripe.
    pub fn ambiguity_witness(&self, survivors: &[usize]) -> Option<Vec<u8>> {
        if survivors.len() >= self.k {
            return None;
        }
        // Null space of the survivors' rows: solve rows * x = 0 for a
        // nonzero x via Gaussian elimination with a free variable.
        let mut rows: Vec<Vec<u8>> = survivors.iter().map(|&i| self.matrix[i].clone()).collect();
        let k = self.k;
        let mut pivot_of_col: Vec<Option<usize>> = vec![None; k];
        let mut r = 0;
        for c in 0..k {
            if r >= rows.len() {
                break;
            }
            if let Some(p) = (r..rows.len()).find(|&i| rows[i][c] != 0) {
                rows.swap(r, p);
                let inv = self.gf.inv(rows[r][c]);
                for cell in rows[r].iter_mut() {
                    *cell = self.gf.mul(*cell, inv);
                }
                for i in 0..rows.len() {
                    if i != r && rows[i][c] != 0 {
                        let f = rows[i][c];
                        // Indexing two rows of `rows` at once; an iterator
                        // over one would alias the other.
                        #[allow(clippy::needless_range_loop)]
                        for j in 0..k {
                            let sub = self.gf.mul(f, rows[r][j]);
                            rows[i][j] ^= sub;
                        }
                    }
                }
                pivot_of_col[c] = Some(r);
                r += 1;
            }
        }
        // Pick the first free column, set it to 1, back-substitute.
        let free = (0..k).find(|&c| pivot_of_col[c].is_none())?;
        let mut x = vec![0u8; k];
        x[free] = 1;
        for c in 0..k {
            if let Some(pr) = pivot_of_col[c] {
                // x[c] = -rows[pr][free] * x[free]; negation is identity
                // in characteristic 2.
                x[c] = self.gf.mul(rows[pr][free], 1);
            }
        }
        debug_assert!(x.iter().any(|&b| b != 0));
        Some(x)
    }

    /// Evaluates the codeword symbol at `position` for a one-byte-per-shard
    /// data vector (test/verification helper).
    pub fn codeword_symbol(&self, data: &[u8], position: usize) -> u8 {
        assert_eq!(data.len(), self.k);
        let row = &self.matrix[position];
        let mut acc = 0u8;
        for (j, &d) in data.iter().enumerate() {
            acc ^= self.gf.mul(row[j], d);
        }
        acc
    }
}

/// Inverts a square matrix over GF(2^8) by Gauss-Jordan elimination;
/// `None` if singular.
fn invert(gf: &Gf256, mat: &[Vec<u8>]) -> Option<Vec<Vec<u8>>> {
    let n = mat.len();
    let mut a: Vec<Vec<u8>> = mat.to_vec();
    let mut inv: Vec<Vec<u8>> = (0..n)
        .map(|i| (0..n).map(|j| u8::from(i == j)).collect())
        .collect();
    for col in 0..n {
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        let p_inv = gf.inv(a[col][col]);
        for j in 0..n {
            a[col][j] = gf.mul(a[col][j], p_inv);
            inv[col][j] = gf.mul(inv[col][j], p_inv);
        }
        for r in 0..n {
            if r != col && a[r][col] != 0 {
                let f = a[r][col];
                for j in 0..n {
                    let sa = gf.mul(f, a[col][j]);
                    a[r][j] ^= sa;
                    let si = gf.mul(f, inv[col][j]);
                    inv[r][j] ^= si;
                }
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn random_shards(rng: &mut SimRng, k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|_| (0..len).map(|_| rng.next_u32() as u8).collect())
            .collect()
    }

    /// Every subset of k survivors out of k+m reconstructs the stripe.
    #[test]
    fn any_k_of_n_reconstructs() {
        let mut rng = SimRng::seed_from_u64(1994);
        for &(k, m) in &[(2usize, 1usize), (3, 2), (4, 2), (5, 3), (8, 2)] {
            let rs = ReedSolomon::new(k, m).unwrap();
            let data = random_shards(&mut rng, k, 24);
            let parity = rs.encode(&data.iter().map(|s| s.as_slice()).collect::<Vec<_>>());
            let full: Vec<Vec<u8>> = data.iter().cloned().chain(parity).collect();
            let n = k + m;
            // Iterate all loss masks of exactly m shards.
            for mask in 0u32..(1 << n) {
                if mask.count_ones() as usize != m {
                    continue;
                }
                let mut shards: Vec<Option<Vec<u8>>> = (0..n)
                    .map(|i| (mask & (1 << i) == 0).then(|| full[i].clone()))
                    .collect();
                rs.reconstruct(&mut shards).unwrap_or_else(|e| {
                    panic!("{k}+{m} mask {mask:b}: {e}");
                });
                for (i, shard) in shards.iter().enumerate() {
                    assert_eq!(shard.as_deref(), Some(&full[i][..]), "{k}+{m} shard {i}");
                }
            }
        }
    }

    /// Losing m+1 shards is detected as unrecoverable, never mis-decoded.
    #[test]
    fn more_than_m_losses_error() {
        let mut rng = SimRng::seed_from_u64(7);
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data = random_shards(&mut rng, 4, 8);
        let parity = rs.encode(&data.iter().map(|s| s.as_slice()).collect::<Vec<_>>());
        let full: Vec<Vec<u8>> = data.into_iter().chain(parity).collect();
        let mut shards: Vec<Option<Vec<u8>>> = full.into_iter().map(Some).collect();
        shards[0] = None;
        shards[2] = None;
        shards[5] = None;
        assert_eq!(
            rs.reconstruct(&mut shards),
            Err(EcError::NotEnoughShards {
                present: 3,
                needed: 4
            })
        );
    }

    /// k-1 shards provably cannot determine the stripe: for every set of
    /// k-1 survivor positions there exist two *distinct* stripes whose
    /// codewords agree on all of them.
    #[test]
    fn k_minus_1_shards_are_information_theoretically_insufficient() {
        for &(k, m) in &[(2usize, 1usize), (4, 2), (3, 3)] {
            let rs = ReedSolomon::new(k, m).unwrap();
            let n = k + m;
            for mask in 0u32..(1 << n) {
                if mask.count_ones() as usize != k - 1 {
                    continue;
                }
                let survivors: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
                let delta = rs
                    .ambiguity_witness(&survivors)
                    .expect("null vector must exist below k survivors");
                assert!(delta.iter().any(|&b| b != 0), "witness must be nonzero");
                // The witness codeword vanishes on every survivor: stripe
                // D and stripe D ^ delta are indistinguishable there.
                for &s in &survivors {
                    assert_eq!(
                        rs.codeword_symbol(&delta, s),
                        0,
                        "{k}+{m} survivors {survivors:?} position {s}"
                    );
                }
                // And it is a *different* codeword: some position differs.
                assert!(
                    (0..n).any(|p| rs.codeword_symbol(&delta, p) != 0),
                    "witness must change at least one shard"
                );
            }
        }
    }

    #[test]
    fn systematic_rows_are_identity() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(rs.matrix[i][j], u8::from(i == j));
            }
        }
    }

    #[test]
    fn corrupted_survivor_changes_decode_output() {
        // Erasure decoding trusts the shards it is given: zeroing a
        // survivor yields *wrong* data, which is exactly what the array's
        // generation-tagged payloads (and the crashcheck oracle) detect.
        let mut rng = SimRng::seed_from_u64(3);
        let rs = ReedSolomon::new(3, 2).unwrap();
        let data = random_shards(&mut rng, 3, 16);
        let parity = rs.encode(&data.iter().map(|s| s.as_slice()).collect::<Vec<_>>());
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .cloned()
            .map(Some)
            .chain(parity.into_iter().map(Some))
            .collect();
        shards[0] = None; // data shard lost
        shards[3] = Some(vec![0u8; 16]); // surviving parity sabotaged
        shards[4] = None; // decode must lean on the sabotaged shard
        rs.reconstruct(&mut shards).unwrap();
        assert_ne!(
            shards[0].as_deref(),
            Some(&data[0][..]),
            "sabotage must corrupt the decode, not vanish silently"
        );
    }

    #[test]
    fn geometry_validation() {
        assert!(matches!(
            ReedSolomon::new(0, 2),
            Err(EcError::BadGeometry { .. })
        ));
        assert!(matches!(
            ReedSolomon::new(4, 0),
            Err(EcError::BadGeometry { .. })
        ));
        assert!(matches!(
            ReedSolomon::new(200, 100),
            Err(EcError::BadGeometry { .. })
        ));
        assert!(ReedSolomon::new(1, 254).is_ok());
    }

    #[test]
    fn gf_field_axioms_spot_check() {
        let gf = Gf256::new();
        for a in 1..=255u8 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "a={a}");
            assert_eq!(gf.div(a, a), 1);
            assert_eq!(gf.mul(a, 1), a);
            assert_eq!(gf.mul(a, 0), 0);
        }
        // Distributivity spot check.
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..1000 {
            let (a, b, c) = (
                rng.next_u32() as u8,
                rng.next_u32() as u8,
                rng.next_u32() as u8,
            );
            assert_eq!(gf.mul(a, b ^ c), gf.mul(a, b) ^ gf.mul(a, c));
            assert_eq!(gf.mul(a, b), gf.mul(b, a));
        }
    }
}
