//! End-to-end data integrity — the `repro integrity` target.
//!
//! The paper's flash devices return every bit they stored; real flash
//! does not. Raw bit errors grow with program/erase wear and with
//! retention time, and the controller survives them through ECC, bounded
//! read-retry, relocate-and-remap, and background scrubbing. This
//! experiment replays the four workloads against the Intel flash card
//! under a sweep of bit-error growth rates, each rate with and without
//! the background scrubber, and against the flash disk (per-access ECC,
//! no scrubber) under the same rates. Reported per cell: energy, mean
//! read response, ECC corrections, read retries, uncorrectable
//! (reported-lost) reads, relocations, scrub passes, and the total
//! latency the retry backoff cost.
//!
//! Everything is seeded: the same `(scale, BER seed)` pair reproduces
//! the same error schedule at any worker count, and the zero-rate row is
//! byte-identical to the integrity-free simulator.

use std::fmt;

use mobistore_core::config::SystemConfig;
use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::simulate;
use mobistore_device::params::{intel_datasheet, sdp5_datasheet};
use mobistore_sim::exec::parallel_map;
use mobistore_sim::integrity::IntegrityConfig;
use mobistore_sim::time::SimDuration;
use mobistore_workload::Workload;

use crate::{flash_card_config, shared_trace, Scale};

/// Parameters of the integrity sweep (the `--ber-*` flags).
#[derive(Debug, Clone)]
pub struct IntegrityOptions {
    /// Expected raw bit errors per fresh block read, one sweep point
    /// each; wear and retention couplings scale with the same rate (see
    /// [`IntegrityConfig::with_growth`]).
    pub rates: Vec<f64>,
    /// Scrub-pass interval for the scrubbed half of the card grid;
    /// `None` drops that half entirely.
    pub scrub_interval: Option<SimDuration>,
    /// Seed for the bit-error streams (independent of the workload
    /// seed).
    pub ber_seed: u64,
}

impl Default for IntegrityOptions {
    fn default() -> Self {
        IntegrityOptions {
            rates: vec![0.0, 2.0, 8.0],
            scrub_interval: Some(SimDuration::from_secs(60)),
            ber_seed: 1994,
        }
    }
}

impl IntegrityOptions {
    /// The integrity configuration for one sweep point.
    fn integrity_config(&self, rate: f64, scrubbed: bool) -> IntegrityConfig {
        let cfg = IntegrityConfig::with_growth(rate, self.ber_seed);
        match self.scrub_interval {
            Some(interval) if scrubbed => cfg.with_scrub(interval),
            _ => cfg,
        }
    }
}

/// One sweep cell: a workload at one BER rate on one device.
#[derive(Debug, Clone)]
pub struct IntegrityCell {
    /// Which trace.
    pub workload: Workload,
    /// The base bit-error rate (expected raw errors per fresh read).
    pub rate: f64,
    /// True if the background scrubber ran (flash card only).
    pub scrubbed: bool,
    /// The full simulation metrics (exported via `--metrics-out`).
    pub metrics: Metrics,
}

/// The integrity experiment: the card grid plus the flash-disk sweep.
#[derive(Debug, Clone)]
pub struct Integrity {
    /// The options the sweep ran with.
    pub options: IntegrityOptions,
    /// Workload-major, rate-minor, scrub-off-then-on flash-card cells.
    pub card: Vec<IntegrityCell>,
    /// Workload-major, rate-minor flash-disk cells (never scrubbed).
    pub flash_disk: Vec<IntegrityCell>,
}

impl Integrity {
    /// All metrics rows, card grid first, for the `--metrics-out` export.
    pub fn metrics_rows(&self) -> Vec<Metrics> {
        self.card
            .iter()
            .chain(&self.flash_disk)
            .map(|c| c.metrics.clone())
            .collect()
    }
}

/// Runs the sweep: every workload × every BER rate on the flash card
/// (scrubber off and on), plus the flash disk under the same rates.
pub fn run(scale: Scale, options: &IntegrityOptions) -> Integrity {
    let mut cells: Vec<(Workload, f64, bool)> = Vec::new();
    for w in Workload::ALL {
        for &rate in &options.rates {
            cells.push((w, rate, false));
            if options.scrub_interval.is_some() {
                cells.push((w, rate, true));
            }
        }
    }
    let card = parallel_map(&cells, |&(workload, rate, scrubbed)| {
        let trace = shared_trace(workload, scale);
        let dram = if workload.below_buffer_cache() {
            0
        } else {
            2 * 1024 * 1024
        };
        let cfg = flash_card_config(intel_datasheet(), &trace, 0.80)
            .with_dram(dram)
            .with_integrity(options.integrity_config(rate, scrubbed));
        let mut m = simulate(&cfg, &trace);
        m.name = format!(
            "{}/card ber={} scrub={}",
            workload.name(),
            fmt_rate(rate),
            if scrubbed { "on" } else { "off" },
        );
        IntegrityCell {
            workload,
            rate,
            scrubbed,
            metrics: m,
        }
    });
    let mut disk_cells: Vec<(Workload, f64)> = Vec::new();
    for w in Workload::ALL {
        for &rate in &options.rates {
            disk_cells.push((w, rate));
        }
    }
    let flash_disk = parallel_map(&disk_cells, |&(workload, rate)| {
        let trace = shared_trace(workload, scale);
        let dram = if workload.below_buffer_cache() {
            0
        } else {
            2 * 1024 * 1024
        };
        let cfg = SystemConfig::flash_disk(sdp5_datasheet())
            .with_dram(dram)
            .with_integrity(options.integrity_config(rate, false));
        let mut m = simulate(&cfg, &trace);
        m.name = format!("{}/flashdisk ber={}", workload.name(), fmt_rate(rate));
        IntegrityCell {
            workload,
            rate,
            scrubbed: false,
            metrics: m,
        }
    });
    Integrity {
        options: options.clone(),
        card,
        flash_disk,
    }
}

/// Formats a BER rate compactly (`0`, `2`, `0.5`, ...).
fn fmt_rate(rate: f64) -> String {
    if rate == rate.trunc() {
        format!("{rate:.0}")
    } else {
        format!("{rate}")
    }
}

impl fmt::Display for Integrity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let scrub = match self.options.scrub_interval {
            Some(d) => format!("scrub interval {:.0} s", d.as_secs_f64()),
            None => "scrubbing disabled".to_owned(),
        };
        writeln!(
            f,
            "Data integrity: wear-coupled bit errors with ECC + read-retry on the \
             Intel flash card, {scrub}, BER seed {}",
            self.options.ber_seed
        )?;
        writeln!(
            f,
            "Rates are expected raw bit errors per fresh block read; wear adds \
             rate/4 per erase cycle, retention rate/8 per hour."
        )?;
        writeln!(
            f,
            "{:<7} {:>5} {:>5} {:>10} {:>8} {:>9} {:>8} {:>7} {:>7} {:>7} {:>9}",
            "trace",
            "ber",
            "scrub",
            "energy(J)",
            "rd(ms)",
            "corrected",
            "retries",
            "uncorr",
            "reloc",
            "scrubs",
            "retry(ms)"
        )?;
        for c in &self.card {
            let k = c.metrics.flash_card.expect("card backend counters");
            writeln!(
                f,
                "{:<7} {:>5} {:>5} {:>10.1} {:>8.2} {:>9} {:>8} {:>7} {:>7} {:>7} {:>9.1}",
                c.workload.name(),
                fmt_rate(c.rate),
                if c.scrubbed { "on" } else { "off" },
                c.metrics.energy.get(),
                c.metrics.read_response_ms.mean,
                k.ecc_corrected,
                k.read_retries,
                k.uncorrectable_reads,
                k.blocks_relocated,
                k.scrub_passes,
                c.metrics.backoff_ms.sum,
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "Flash disk (sdp5) under the same rates (per-access ECC behind the \
             controller, no scrubber):"
        )?;
        writeln!(
            f,
            "{:<7} {:>5} {:>10} {:>8} {:>9} {:>8} {:>7}",
            "trace", "ber", "energy(J)", "rd(ms)", "corrected", "retries", "uncorr"
        )?;
        for c in &self.flash_disk {
            let k = c.metrics.flash_disk.expect("flash-disk backend counters");
            writeln!(
                f,
                "{:<7} {:>5} {:>10.1} {:>8.2} {:>9} {:>8} {:>7}",
                c.workload.name(),
                fmt_rate(c.rate),
                c.metrics.energy.get(),
                c.metrics.read_response_ms.mean,
                k.ecc_corrected,
                k.read_retries,
                k.uncorrectable_reads,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_devices_rates_and_scrub_halves() {
        let opts = IntegrityOptions {
            rates: vec![0.0, 4.0],
            scrub_interval: Some(SimDuration::from_secs(30)),
            ber_seed: 7,
        };
        let r = run(Scale::quick(), &opts);
        assert_eq!(r.card.len(), Workload::ALL.len() * 2 * 2);
        assert_eq!(r.flash_disk.len(), Workload::ALL.len() * 2);
        // Zero-rate cells inject nothing.
        for c in r.card.iter().filter(|c| c.rate == 0.0) {
            let k = c.metrics.flash_card.expect("card");
            assert_eq!(k.ecc_corrected, 0, "{}", c.metrics.name);
            assert_eq!(k.uncorrectable_reads, 0, "{}", c.metrics.name);
        }
        // The non-zero rate corrects something somewhere across the grid.
        let corrected: u64 = r
            .card
            .iter()
            .filter(|c| c.rate > 0.0)
            .map(|c| c.metrics.flash_card.expect("card").ecc_corrected)
            .sum();
        assert!(corrected > 0, "no ECC corrections at rate 4");
        let rendered = format!("{r}");
        assert!(rendered.contains("Data integrity"));
        assert!(rendered.contains("Flash disk"));
        assert_eq!(r.metrics_rows().len(), r.card.len() + r.flash_disk.len());
    }

    #[test]
    fn sweep_is_deterministic() {
        let opts = IntegrityOptions::default();
        let a = format!("{}", run(Scale::quick(), &opts));
        let b = format!("{}", run(Scale::quick(), &opts));
        assert_eq!(a, b);
    }

    #[test]
    fn disabled_scrubbing_halves_the_card_grid() {
        let opts = IntegrityOptions {
            rates: vec![2.0],
            scrub_interval: None,
            ber_seed: 1,
        };
        let r = run(Scale::quick(), &opts);
        assert_eq!(r.card.len(), Workload::ALL.len());
        assert!(r.card.iter().all(|c| !c.scrubbed));
    }
}
