//! Fleet-scale sharding: hash-range mapping of a user population onto
//! simulated device shards.
//!
//! The paper evaluates one device against one trace; the fleet layer
//! turns that single-device simulator into a population study. A
//! [`FleetConfig`] describes a user population and a shard count; the
//! [`FleetPlan`] it produces hash-range-maps every user onto exactly one
//! shard (the `xx-yy=store` shard-map shape used by content-addressed
//! stores), assigns each shard a device class and a workload from
//! weighted [`Mix`]es, and derives one dedicated [`SimRng`] stream per
//! shard.
//!
//! Determinism contract: everything a shard draws is a pure function of
//! `(fleet seed, shard index)`. Shard `k`'s bytes are therefore
//! independent of the worker count driving the fleet *and* of which other
//! shards run — simulating shard `k` alone reproduces its in-fleet
//! results exactly. That is what makes a 10k-device fleet byte-identical
//! at any `--jobs` and lets the aggregation layer merge per-shard metrics
//! in any grouping.
//!
//! The hash-range map uses the monotone multiply-shift reduction
//! `shard = (h · N) >> 64`: it is exactly the classic `[k·2⁶⁴/N,
//! (k+1)·2⁶⁴/N)` range partition of the 64-bit hash space, so each shard
//! owns one contiguous hash range and the map can be printed as
//! `lo-hi=shard` entries.

use crate::rng::SimRng;

/// Stream-selector base for per-shard RNG streams, chosen to collide with
/// none of the fault/integrity/workload stream constants.
const SHARD_STREAM_BASE: u64 = 0x5eed_f1ee_7000_0000;

/// Salt mixed into per-shard workload-assignment hashes.
const WORKLOAD_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Salt mixed into per-shard device-assignment hashes.
const DEVICE_SALT: u64 = 0xd1b5_4a32_d192_ed03;

/// Salt mixed into per-shard trace seeds.
const TRACE_SALT: u64 = 0x2545_f491_4f6c_dd1d;

/// Salt mixed into chaos-injection draws (the `--chaos-panic-rate`
/// self-test knob), distinct from every data-bearing stream.
const CHAOS_SALT: u64 = 0xc4a0_5bad_0bad_c0de;

/// SplitMix64: the finalizer used for user and assignment hashing. Full
/// 64-bit avalanche, so consecutive user ids scatter uniformly over the
/// hash space (and therefore over shards).
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A weighted mix of labelled classes (device models, workloads), picked
/// per shard by hash so the assignment is deterministic and
/// order-independent.
#[derive(Debug, Clone)]
pub struct Mix {
    entries: Vec<(&'static str, u32)>,
    total: u64,
}

impl Mix {
    /// Builds a mix from `(label, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or all weights are zero.
    pub fn new(entries: &[(&'static str, u32)]) -> Self {
        let total: u64 = entries.iter().map(|&(_, w)| u64::from(w)).sum();
        assert!(
            !entries.is_empty() && total > 0,
            "mix needs at least one positive weight"
        );
        Mix {
            entries: entries.to_vec(),
            total,
        }
    }

    /// The `(label, weight)` entries, in declaration order.
    pub fn entries(&self) -> &[(&'static str, u32)] {
        &self.entries
    }

    /// Picks a label by hash, proportionally to the weights: the hash is
    /// scaled into `[0, total)` by the same monotone multiply-shift used
    /// for sharding, then walked through the cumulative weights.
    pub fn pick(&self, hash: u64) -> &'static str {
        let point = ((u128::from(hash) * u128::from(self.total)) >> 64) as u64;
        let mut acc = 0u64;
        for &(label, w) in &self.entries {
            acc += u64::from(w);
            if point < acc {
                return label;
            }
        }
        // Unreachable: point < total == sum of weights.
        self.entries.last().expect("non-empty mix").0
    }
}

/// A fleet description: how many shards, how many users, which device and
/// workload classes, and the seed every per-shard stream derives from.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards (simulated devices).
    pub shards: u32,
    /// Number of users hashed onto the shards.
    pub population: u64,
    /// Weighted workload classes, assigned per shard by hash.
    pub workload_mix: Mix,
    /// Weighted device classes, assigned per shard by hash.
    pub device_mix: Mix,
    /// The fleet seed; every per-shard stream is derived from
    /// `(seed, shard index)` and nothing else.
    pub seed: u64,
}

impl FleetConfig {
    /// The 64-bit placement hash of one user id.
    pub fn user_hash(&self, user: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(user))
    }

    /// The shard owning hash `h`: the monotone range reduction
    /// `(h · shards) >> 64`.
    pub fn shard_of_hash(&self, h: u64) -> u32 {
        ((u128::from(h) * u128::from(self.shards)) >> 64) as u32
    }

    /// The shard user `user` lands on.
    pub fn shard_of(&self, user: u64) -> u32 {
        self.shard_of_hash(self.user_hash(user))
    }

    /// The inclusive `[lo, hi]` hash range shard `k` owns.
    ///
    /// # Panics
    ///
    /// Panics if `k >= shards`.
    pub fn shard_range(&self, k: u32) -> (u64, u64) {
        assert!(k < self.shards, "shard {k} out of range");
        let n = u128::from(self.shards);
        let lo = (u128::from(k) << 64).div_ceil(n);
        let hi = if k + 1 == self.shards {
            u128::from(u64::MAX)
        } else {
            (u128::from(k + 1) << 64).div_ceil(n) - 1
        };
        (lo as u64, hi as u64)
    }

    /// Builds the full shard plan: user counts per shard (one pass over
    /// the population), per-shard workload/device assignments, and hash
    /// ranges.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `population` is zero.
    pub fn plan(&self) -> FleetPlan {
        assert!(self.shards > 0, "fleet needs at least one shard");
        assert!(self.population > 0, "fleet needs at least one user");
        let mut users = vec![0u64; self.shards as usize];
        for user in 0..self.population {
            users[self.shard_of(user) as usize] += 1;
        }
        let shards = users
            .into_iter()
            .enumerate()
            .map(|(i, users)| {
                let index = i as u32;
                let (hash_lo, hash_hi) = self.shard_range(index);
                FleetShard {
                    index,
                    users,
                    hash_lo,
                    hash_hi,
                    workload: self
                        .workload_mix
                        .pick(splitmix64(self.seed ^ WORKLOAD_SALT ^ u64::from(index))),
                    device: self
                        .device_mix
                        .pick(splitmix64(self.seed ^ DEVICE_SALT ^ u64::from(index))),
                    seed: self.seed,
                }
            })
            .collect();
        FleetPlan { shards }
    }
}

/// One shard of the fleet: its hash range, user count, class assignments,
/// and the derivation point for its RNG streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetShard {
    /// Shard index in `0..shards`.
    pub index: u32,
    /// Users whose placement hash falls in this shard's range.
    pub users: u64,
    /// Inclusive lower bound of the owned hash range.
    pub hash_lo: u64,
    /// Inclusive upper bound of the owned hash range.
    pub hash_hi: u64,
    /// The workload-class label drawn from the workload mix.
    pub workload: &'static str,
    /// The device-class label drawn from the device mix.
    pub device: &'static str,
    /// The fleet seed this shard derives every stream from.
    pub seed: u64,
}

impl FleetShard {
    /// A dedicated RNG stream for this shard, salted so different
    /// purposes (demand sampling, future fault plans) draw from disjoint
    /// sequences. Depends on `(fleet seed, shard index, salt)` only.
    pub fn rng(&self, salt: u64) -> SimRng {
        SimRng::seed_with_stream(
            splitmix64(self.seed ^ salt),
            SHARD_STREAM_BASE ^ u64::from(self.index),
        )
    }

    /// The seed for this shard's trace generation, independent of every
    /// other shard's.
    pub fn trace_seed(&self) -> u64 {
        splitmix64(self.seed ^ TRACE_SALT ^ u64::from(self.index))
    }

    /// The `lo-hi=shard` hash-range map entry for this shard.
    pub fn range_entry(&self) -> String {
        format!(
            "{:016x}-{:016x}=shard{:05}",
            self.hash_lo, self.hash_hi, self.index
        )
    }
}

/// Chaos-engineering knobs for the fleet supervisor's self-tests: inject
/// deterministic shard panics and mid-run aborts so fault isolation,
/// quarantine accounting, and checkpoint/resume can be proven end-to-end.
///
/// Production runs use [`ChaosConfig::default`] (no injection); the
/// injection draw is a pure function of `(fleet seed, shard index,
/// attempt)`, so a chaos run is as deterministic as a quiet one.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChaosConfig {
    /// Probability in `[0, 1]` that any given `(shard, attempt)` panics.
    pub panic_rate: f64,
    /// Abort the process (exit) after this many completed chunks, to
    /// emulate a kill -9 mid-run. `None` disables.
    pub fail_point: Option<u64>,
}

impl ChaosConfig {
    /// True when no injection is configured (the production path).
    pub fn is_quiet(&self) -> bool {
        self.panic_rate <= 0.0 && self.fail_point.is_none()
    }

    /// Whether attempt number `attempt` of shard `shard` must panic: a
    /// pure function of `(fleet seed, shard, attempt)`, independent of
    /// worker count and scheduling, so quarantine sets are byte-identical
    /// at any `--jobs`.
    pub fn should_panic(&self, fleet_seed: u64, shard: u32, attempt: u32) -> bool {
        if self.panic_rate <= 0.0 {
            return false;
        }
        if self.panic_rate >= 1.0 {
            return true;
        }
        let draw =
            splitmix64(splitmix64(fleet_seed ^ CHAOS_SALT ^ u64::from(shard)) ^ u64::from(attempt));
        // Compare in the 64-bit hash space: P(draw < rate·2⁶⁴) = rate.
        (draw as f64) < self.panic_rate * 1.844_674_407_370_955_2e19
    }
}

/// A shard that panicked past its retry budget: the typed form the fleet
/// supervisor quarantines instead of tearing down the worker pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardError {
    /// Index of the failed shard.
    pub shard: u32,
    /// Attempts made (first run + retries) before quarantine.
    pub attempts: u32,
    /// Rendered panic payload of the last attempt.
    pub cause: String,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard{:05}: quarantined after {} attempts: {}",
            self.shard, self.attempts, self.cause
        )
    }
}

/// The computed shard map of one fleet.
#[derive(Debug, Clone)]
pub struct FleetPlan {
    /// All shards, in index order; hash ranges tile the 64-bit space.
    pub shards: Vec<FleetShard>,
}

impl FleetPlan {
    /// Total users across all shards (the population).
    pub fn users(&self) -> u64 {
        self.shards.iter().map(|s| s.users).sum()
    }

    /// Renders the hash-range shard map, eliding the middle when there
    /// are more than `max_entries` shards: the first entries, an elision
    /// marker, and the last entry.
    pub fn range_map(&self, max_entries: usize) -> String {
        let max_entries = max_entries.max(2);
        if self.shards.len() <= max_entries {
            let entries: Vec<String> = self.shards.iter().map(FleetShard::range_entry).collect();
            return entries.join(" ");
        }
        let head: Vec<String> = self.shards[..max_entries - 1]
            .iter()
            .map(FleetShard::range_entry)
            .collect();
        let last = self.shards.last().expect("non-empty plan");
        format!(
            "{} ... +{} more ... {}",
            head.join(" "),
            self.shards.len() - max_entries,
            last.range_entry()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(shards: u32, population: u64, seed: u64) -> FleetConfig {
        FleetConfig {
            shards,
            population,
            workload_mix: Mix::new(&[("mac", 2), ("dos", 1)]),
            device_mix: Mix::new(&[("disk", 1), ("card", 1)]),
            seed,
        }
    }

    #[test]
    fn shard_ranges_tile_the_hash_space() {
        for shards in [1u32, 2, 3, 7, 64, 1000] {
            let cfg = config(shards, 1, 9);
            let mut expect_lo = 0u64;
            for k in 0..shards {
                let (lo, hi) = cfg.shard_range(k);
                assert_eq!(lo, expect_lo, "gap before shard {k} of {shards}");
                assert!(hi >= lo, "inverted range at shard {k} of {shards}");
                // The reduction agrees with the range bounds.
                assert_eq!(cfg.shard_of_hash(lo), k);
                assert_eq!(cfg.shard_of_hash(hi), k);
                expect_lo = hi.wrapping_add(1);
            }
            assert_eq!(expect_lo, 0, "last shard must end at u64::MAX");
        }
    }

    #[test]
    fn every_user_lands_on_exactly_the_shard_owning_its_hash() {
        let cfg = config(13, 500, 42);
        for user in 0..cfg.population {
            let h = cfg.user_hash(user);
            let k = cfg.shard_of(user);
            let (lo, hi) = cfg.shard_range(k);
            assert!(lo <= h && h <= hi, "user {user} hash outside its range");
        }
    }

    #[test]
    fn plan_counts_the_whole_population_and_spreads_it() {
        let cfg = config(16, 4096, 1994);
        let plan = cfg.plan();
        assert_eq!(plan.shards.len(), 16);
        assert_eq!(plan.users(), 4096);
        // A good hash spreads 256 users/shard expected; no shard should be
        // empty or grotesquely overloaded.
        for s in &plan.shards {
            assert!(
                s.users > 64 && s.users < 1024,
                "shard {}: {}",
                s.index,
                s.users
            );
        }
    }

    #[test]
    fn assignments_and_streams_depend_only_on_seed_and_index() {
        let a = config(8, 100, 7).plan();
        // Different population, same seed: identical class assignments and
        // RNG streams (only user counts change).
        let b = config(8, 5000, 7).plan();
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.workload, y.workload);
            assert_eq!(x.device, y.device);
            assert_eq!(x.trace_seed(), y.trace_seed());
            let mut rx = x.rng(3);
            let mut ry = y.rng(3);
            assert_eq!(rx.next_u64(), ry.next_u64());
        }
        // A different seed changes the streams.
        let c = config(8, 100, 8).plan();
        assert_ne!(a.shards[0].trace_seed(), c.shards[0].trace_seed());
    }

    #[test]
    fn mix_respects_weights() {
        let mix = Mix::new(&[("a", 3), ("b", 1)]);
        let mut counts = [0u32; 2];
        for i in 0..40_000u64 {
            match mix.pick(splitmix64(i)) {
                "a" => counts[0] += 1,
                _ => counts[1] += 1,
            }
        }
        let ratio = f64::from(counts[0]) / f64::from(counts[1]);
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn range_map_elides_large_fleets() {
        let plan = config(64, 64, 1).plan();
        let map = plan.range_map(4);
        assert!(map.contains("=shard00000"));
        assert!(map.contains("+60 more"));
        assert!(map.contains("=shard00063"));
        assert!(map.ends_with(&format!("{:016x}=shard00063", u64::MAX)));
        let small = config(2, 2, 1).plan().range_map(8);
        assert!(!small.contains("more"));
        assert!(small.contains("=shard00001"));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = config(0, 1, 1).plan();
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn zero_population_panics() {
        let _ = config(1, 0, 1).plan();
    }

    #[test]
    #[should_panic(expected = "at least one positive weight")]
    fn empty_mix_panics() {
        let _ = Mix::new(&[]);
    }

    #[test]
    #[should_panic(expected = "at least one positive weight")]
    fn all_zero_weight_mix_panics() {
        let _ = Mix::new(&[("a", 0), ("b", 0)]);
    }

    #[test]
    fn chaos_draw_is_deterministic_and_rate_shaped() {
        let quiet = ChaosConfig::default();
        assert!(quiet.is_quiet());
        assert!(!quiet.should_panic(1994, 0, 0));

        let always = ChaosConfig {
            panic_rate: 1.0,
            fail_point: None,
        };
        assert!(always.should_panic(1994, 7, 2));

        let half = ChaosConfig {
            panic_rate: 0.5,
            fail_point: None,
        };
        assert!(!half.is_quiet());
        let mut hits = 0u32;
        for shard in 0..4096u32 {
            // Pure function of (seed, shard, attempt): stable across calls.
            let a = half.should_panic(1994, shard, 0);
            assert_eq!(a, half.should_panic(1994, shard, 0));
            if a {
                hits += 1;
            }
            // Attempts draw independently; a different seed reshuffles.
            let _ = half.should_panic(1994, shard, 1);
        }
        assert!(
            (1700..2400).contains(&hits),
            "rate 0.5 should hit about half of 4096 shards, got {hits}"
        );
    }

    #[test]
    fn shard_error_displays_with_context() {
        let e = ShardError {
            shard: 12,
            attempts: 3,
            cause: "boom".into(),
        };
        assert_eq!(
            e.to_string(),
            "shard00012: quarantined after 3 attempts: boom"
        );
    }
}
