//! Next-generation hardware projections (§2, §7).
//!
//! The conclusions point at two hardware trends: the Intel Series 2+
//! cards erase a block in 300 ms instead of 1.6 s and guarantee 1,000,000
//! erasures per block instead of 100,000; and flash with small erasure
//! units "immune to storage utilization effects … will likely grow in
//! popularity". This module projects the paper's experiments onto that
//! hardware:
//!
//! * [`series2plus`] — the Figure 2 high-utilization sweep with 300 ms
//!   erases: cleaning hides in idle time far longer, so the write-response
//!   knee moves toward 95%;
//! * [`wear_leveling`] — the §2 wear-spreading idea as a concrete policy,
//!   with the endurance gain and the cleaning tax it costs;
//! * [`lifetime`] — endurance converted to service life: erasures per
//!   simulated hour extrapolated against each generation's cycle budget.

use std::fmt;

use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::simulate;
use mobistore_device::params::{intel_datasheet, intel_series2plus_datasheet, FlashCardParams};
use mobistore_flash::store::VictimPolicy;
use mobistore_sim::exec::parallel_map;
use mobistore_workload::Workload;

use crate::{flash_card_config, shared_trace, Scale};

/// One generation × utilization point.
#[derive(Debug, Clone)]
pub struct GenPoint {
    /// Generation label.
    pub generation: &'static str,
    /// Storage utilization.
    pub utilization: f64,
    /// Simulation results.
    pub metrics: Metrics,
}

/// The Series 2 vs Series 2+ comparison.
#[derive(Debug, Clone)]
pub struct Series2Plus {
    /// Which trace was used.
    pub workload: Workload,
    /// Points for both generations across utilizations.
    pub points: Vec<GenPoint>,
}

/// Utilizations where the Series 2's cleaning becomes visible.
pub const SWEEP: [f64; 3] = [0.80, 0.90, 0.95];

/// Runs both card generations at high utilizations — the full
/// generation × utilization grid as one parallel batch.
pub fn series2plus(workload: Workload, scale: Scale) -> Series2Plus {
    let trace = shared_trace(workload, scale);
    let dram = if workload.below_buffer_cache() {
        0
    } else {
        2 * 1024 * 1024
    };
    let grid: Vec<(&'static str, FlashCardParams, f64)> = [
        ("Series 2 (1.6s erase)", intel_datasheet()),
        ("Series 2+ (300ms erase)", intel_series2plus_datasheet()),
    ]
    .into_iter()
    .flat_map(|(generation, params)| {
        SWEEP.map(|utilization| (generation, params.clone(), utilization))
    })
    .collect();
    let points = parallel_map(&grid, |(generation, params, utilization)| {
        let cfg = flash_card_config(params.clone(), &trace, *utilization).with_dram(dram);
        let mut metrics = simulate(&cfg, &trace);
        metrics.name = format!("{generation} @{:.0}%", *utilization * 100.0);
        GenPoint {
            generation,
            utilization: *utilization,
            metrics,
        }
    });
    Series2Plus { workload, points }
}

impl fmt::Display for Series2Plus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Series 2 vs Series 2+ ({}; paper §2/§7: 300 ms erases, 10x endurance)",
            self.workload.name()
        )?;
        writeln!(
            f,
            "{:<26} {:>6} {:>11} {:>13} {:>12}",
            "generation", "util%", "energy(J)", "wr mean (ms)", "clean waits"
        )?;
        for p in &self.points {
            let fc = p.metrics.flash_card.expect("flash card");
            writeln!(
                f,
                "{:<26} {:>6.0} {:>11.1} {:>13.3} {:>12}",
                p.generation,
                p.utilization * 100.0,
                p.metrics.energy.get(),
                p.metrics.write_response_ms.mean,
                fc.cleaning_waits,
            )?;
        }
        Ok(())
    }
}

/// The wear-leveling ablation: greedy vs wear-aware cleaning under a
/// skewed workload, with endurance and cost columns.
#[derive(Debug, Clone)]
pub struct WearLeveling {
    /// `(policy label, metrics)` rows.
    pub rows: Vec<(&'static str, Metrics)>,
}

/// Compares greedy and wear-aware victim selection on the hot-and-cold
/// synthetic workload.
pub fn wear_leveling(scale: Scale) -> WearLeveling {
    let trace = shared_trace(Workload::Synth, scale);
    let variants = [
        ("greedy (MFFS)", VictimPolicy::GreedyMinLive),
        ("wear-aware", VictimPolicy::WearAware),
    ];
    let rows = parallel_map(&variants, |&(label, policy)| {
        let cfg = flash_card_config(intel_datasheet(), &trace, 0.90).with_victim_policy(policy);
        (label, simulate(&cfg, &trace))
    });
    WearLeveling { rows }
}

impl fmt::Display for WearLeveling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Wear leveling (synth, 90% utilized; endurance limit 100k cycles)"
        )?;
        writeln!(
            f,
            "{:<16} {:>10} {:>11} {:>11} {:>12} {:>11}",
            "policy", "max erase", "mean erase", "total", "wr mean ms", "energy(J)"
        )?;
        for (label, m) in &self.rows {
            let w = m.wear.expect("wear");
            writeln!(
                f,
                "{:<16} {:>10} {:>11.2} {:>11} {:>12.3} {:>11.1}",
                label,
                w.max_erase,
                w.mean_erase,
                w.total,
                m.write_response_ms.mean,
                m.energy.get(),
            )?;
        }
        Ok(())
    }
}

/// Projected service life of a card under a workload: time until the
/// most-worn segment reaches the generation's cycle budget, extrapolating
/// the simulated wear rate.
#[derive(Debug, Clone)]
pub struct LifetimeRow {
    /// Which trace.
    pub workload: Workload,
    /// Card generation label.
    pub generation: &'static str,
    /// Worst-segment erases per simulated hour.
    pub worst_per_hour: f64,
    /// Projected days until the cycle budget is exhausted.
    pub projected_days: f64,
}

/// Computes projected lifetimes for both generations over the Table 4
/// traces at the default 80% utilization.
pub fn lifetime(scale: Scale) -> Vec<LifetimeRow> {
    let grid: Vec<(Workload, &'static str, FlashCardParams, f64)> = Workload::TABLE4
        .into_iter()
        .flat_map(|workload| {
            [
                (workload, "Series 2", intel_datasheet(), 100_000.0),
                (
                    workload,
                    "Series 2+",
                    intel_series2plus_datasheet(),
                    1_000_000.0,
                ),
            ]
        })
        .collect();
    parallel_map(&grid, |(workload, generation, params, budget)| {
        let trace = shared_trace(*workload, scale);
        let dram = if workload.below_buffer_cache() {
            0
        } else {
            2 * 1024 * 1024
        };
        let cfg = flash_card_config(params.clone(), &trace, 0.80).with_dram(dram);
        let m = simulate(&cfg, &trace);
        let hours = m.duration.as_secs_f64() / 3600.0;
        let worst_per_hour = if hours > 0.0 {
            f64::from(m.wear.expect("wear").max_erase) / hours
        } else {
            0.0
        };
        let projected_days = if worst_per_hour > 0.0 {
            *budget / worst_per_hour / 24.0
        } else {
            f64::INFINITY
        };
        LifetimeRow {
            workload: *workload,
            generation,
            worst_per_hour,
            projected_days,
        }
    })
}

/// Renders the lifetime table.
pub fn render_lifetime(rows: &[LifetimeRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Projected card lifetime at 80% utilization (worst-segment extrapolation)"
    );
    let _ = writeln!(
        out,
        "{:<8} {:<12} {:>18} {:>16}",
        "trace", "generation", "worst erases/hour", "projected days"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<8} {:<12} {:>18.2} {:>16.0}",
            r.workload.name(),
            r.generation,
            r.worst_per_hour,
            r.projected_days
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_erases_reduce_cleaning_waits() {
        let result = series2plus(Workload::Dos, Scale::quick());
        // Compare the 95% points of the two generations.
        let old = result
            .points
            .iter()
            .find(|p| p.generation.starts_with("Series 2 ") && p.utilization == 0.95)
            .unwrap();
        let new = result
            .points
            .iter()
            .find(|p| p.generation.starts_with("Series 2+") && p.utilization == 0.95)
            .unwrap();
        assert!(
            new.metrics.write_response_ms.mean < old.metrics.write_response_ms.mean,
            "new {} vs old {}",
            new.metrics.write_response_ms.mean,
            old.metrics.write_response_ms.mean
        );
        assert!(new.metrics.energy.get() < old.metrics.energy.get() * 1.01);
    }

    #[test]
    fn wear_leveling_reduces_max_wear() {
        let wl = wear_leveling(Scale::quick());
        let greedy = wl.rows[0].1.wear.unwrap();
        let aware = wl.rows[1].1.wear.unwrap();
        assert!(
            aware.max_erase <= greedy.max_erase,
            "aware {aware:?} greedy {greedy:?}"
        );
        assert!(wl.to_string().contains("wear-aware"));
    }

    #[test]
    fn lifetime_scales_with_cycle_budget() {
        let rows = lifetime(Scale::quick());
        assert_eq!(rows.len(), 6);
        for pair in rows.chunks(2) {
            let (s2, s2p) = (&pair[0], &pair[1]);
            assert_eq!(s2.workload, s2p.workload);
            // Same wear rate at quick scale may fluctuate slightly with
            // the 300 ms erase changing cleaning timing, but the 10x cycle
            // budget must dominate.
            assert!(
                s2p.projected_days > s2.projected_days * 3.0,
                "{}: {} vs {}",
                s2.workload.name(),
                s2p.projected_days,
                s2.projected_days
            );
        }
        assert!(render_lifetime(&rows).contains("projected days"));
    }
}
