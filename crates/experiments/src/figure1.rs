//! Figure 1 — latency and instantaneous throughput of 4-Kbyte writes to a
//! 1-Mbyte file.
//!
//! Five configurations: cu140 ±DoubleSpace, sdp10 ±Stacker, Intel card
//! (compression always on). The paper's headline: the Intel/MFFS latency
//! *increases linearly* with cumulative data written, producing a 1/x
//! throughput decay, while every other configuration stays flat. Points
//! are averaged over 32-Kbyte windows, as the paper's figure smooths.

use std::fmt;

use mobistore_device::params::{cu140_datasheet, intel_datasheet, sdp10_datasheet};
use mobistore_fsmodel::compress::DataClass;
use mobistore_fsmodel::mffs::MffsParams;
use mobistore_fsmodel::{
    doublespace, stacker, BenchRun, DiskTestbed, FlashCardTestbed, FlashDiskTestbed,
};
use mobistore_sim::units::{KIB, MIB};

/// One Figure 1 curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Configuration label (matching the paper's legend).
    pub label: &'static str,
    /// Cumulative Kbytes written at each point (x-axis).
    pub cumulative_kib: Vec<f64>,
    /// Smoothed latency per 4-Kbyte write, ms (Figure 1(a)).
    pub latency_ms: Vec<f64>,
    /// Instantaneous throughput, Kbytes/s (Figure 1(b)).
    pub throughput_kib_s: Vec<f64>,
}

/// The regenerated Figure 1.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The five curves.
    pub curves: Vec<Curve>,
}

const CHUNK: u64 = 4 * KIB;
/// The paper smooths latency over 32-Kbyte windows.
const WINDOW_CHUNKS: usize = 8;

/// Runs the five write benchmarks.
pub fn run() -> Figure1 {
    let mut curves = Vec::with_capacity(5);

    let disk_raw = DiskTestbed::new(cu140_datasheet(), None);
    curves.push(to_curve(
        "cu140 uncompressed",
        disk_raw.write_file(MIB, CHUNK, DataClass::Compressible),
    ));
    let disk_dbl = DiskTestbed::new(cu140_datasheet(), Some(doublespace()));
    curves.push(to_curve(
        "cu140 compressed",
        disk_dbl.write_file(MIB, CHUNK, DataClass::Compressible),
    ));

    let mut fd_raw = FlashDiskTestbed::new(sdp10_datasheet(), None);
    curves.push(to_curve(
        "sdp10 uncompressed",
        fd_raw.write_file(MIB, CHUNK, DataClass::Compressible),
    ));
    let mut fd_stk = FlashDiskTestbed::new(sdp10_datasheet(), Some(stacker()));
    curves.push(to_curve(
        "sdp10 compressed",
        fd_stk.write_file(MIB, CHUNK, DataClass::Compressible),
    ));

    let mut card = FlashCardTestbed::new(intel_datasheet(), 10 * MIB, MffsParams::mffs2());
    curves.push(to_curve(
        "Intel flash card (MFFS)",
        card.write_file(MIB, CHUNK, DataClass::Compressible),
    ));

    Figure1 { curves }
}

fn to_curve(label: &'static str, run: BenchRun) -> Curve {
    let mut cumulative = Vec::new();
    let mut latency = Vec::new();
    let mut throughput = Vec::new();
    for (w, window) in run.chunk_latencies_ms.chunks(WINDOW_CHUNKS).enumerate() {
        let mean_ms = window.iter().sum::<f64>() / window.len() as f64;
        cumulative.push(((w + 1) * WINDOW_CHUNKS) as f64 * CHUNK as f64 / 1024.0);
        latency.push(mean_ms);
        throughput.push(CHUNK as f64 / 1024.0 / (mean_ms / 1000.0));
    }
    Curve {
        label,
        cumulative_kib: cumulative,
        latency_ms: latency,
        throughput_kib_s: throughput,
    }
}

impl Curve {
    /// Least-squares slope of latency vs cumulative Kbytes (ms per Kbyte);
    /// near zero for flat devices, ≈ 0.2 for the MFFS anomaly.
    pub fn latency_slope(&self) -> f64 {
        let n = self.cumulative_kib.len() as f64;
        let sx: f64 = self.cumulative_kib.iter().sum();
        let sy: f64 = self.latency_ms.iter().sum();
        let sxy: f64 = self
            .cumulative_kib
            .iter()
            .zip(&self.latency_ms)
            .map(|(x, y)| x * y)
            .sum();
        let sxx: f64 = self.cumulative_kib.iter().map(|x| x * x).sum();
        (n * sxy - sx * sy) / (n * sxx - sx * sx)
    }
}

impl Figure1 {
    /// Renders Figure 1(a) — write latency vs cumulative Kbytes — as an
    /// ASCII plot.
    pub fn plot(&self) -> String {
        let series: Vec<crate::plot::Series> = self
            .curves
            .iter()
            .map(|c| crate::plot::Series {
                label: c.label.to_owned(),
                points: c
                    .cumulative_kib
                    .iter()
                    .copied()
                    .zip(c.latency_ms.iter().copied())
                    .collect(),
            })
            .collect();
        crate::plot::render(
            "Figure 1(a): 4-KB write latency vs cumulative Kbytes",
            "cumulative Kbytes",
            "ms",
            &series,
            72,
            20,
        )
    }
}

impl fmt::Display for Figure1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 1: 4-KB writes to a 1-MB file (32-KB smoothing windows)"
        )?;
        writeln!(
            f,
            "{:<26} {:>12} {:>12} {:>14} {:>16}",
            "Configuration", "lat@32KB", "lat@1MB", "slope ms/KB", "avg tput KB/s"
        )?;
        for c in &self.curves {
            let avg_tput = 1024.0
                / (c.latency_ms.iter().sum::<f64>() / c.latency_ms.len() as f64 / 1000.0
                    * (MIB / CHUNK) as f64);
            writeln!(
                f,
                "{:<26} {:>12.1} {:>12.1} {:>14.4} {:>16.1}",
                c.label,
                c.latency_ms.first().copied().unwrap_or(0.0),
                c.latency_ms.last().copied().unwrap_or(0.0),
                c.latency_slope(),
                avg_tput,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mffs_latency_grows_linearly_others_flat() {
        let fig = run();
        let mffs = fig
            .curves
            .iter()
            .find(|c| c.label.contains("MFFS"))
            .expect("card curve");
        // Paper: latency rises roughly 0.21 ms per Kbyte written.
        let slope = mffs.latency_slope();
        assert!((0.1..0.4).contains(&slope), "MFFS slope {slope}");
        assert!(mffs.latency_ms.last().unwrap() > &100.0);
        for c in fig.curves.iter().filter(|c| !c.label.contains("MFFS")) {
            assert!(
                c.latency_slope().abs() < 0.01,
                "{} slope {}",
                c.label,
                c.latency_slope()
            );
        }
    }

    #[test]
    fn mffs_throughput_decays() {
        let fig = run();
        let mffs = fig
            .curves
            .iter()
            .find(|c| c.label.contains("MFFS"))
            .expect("card curve");
        let first = mffs.throughput_kib_s.first().unwrap();
        let last = mffs.throughput_kib_s.last().unwrap();
        assert!(first > &(3.0 * last), "first {first} last {last}");
    }

    #[test]
    fn early_card_writes_beat_flash_disk_average_does_not() {
        // §3: "though writes to the first part of the file are faster for
        // the flash card than for the flash disk, the average throughput
        // across the entire 1-Mbyte write is slightly worse".
        let fig = run();
        let mffs = fig
            .curves
            .iter()
            .find(|c| c.label.contains("MFFS"))
            .unwrap();
        let sdp = fig
            .curves
            .iter()
            .find(|c| c.label == "sdp10 compressed")
            .unwrap();
        assert!(mffs.throughput_kib_s[0] > sdp.throughput_kib_s[0]);
        let avg = |c: &Curve| {
            c.throughput_kib_s.len() as f64
                / c.throughput_kib_s.iter().map(|t| 1.0 / t).sum::<f64>()
        };
        assert!(
            avg(mffs) < avg(sdp),
            "card avg {} vs sdp {}",
            avg(mffs),
            avg(sdp)
        );
    }

    #[test]
    fn curves_cover_the_full_megabyte() {
        let fig = run();
        assert_eq!(fig.curves.len(), 5);
        for c in &fig.curves {
            assert_eq!(c.cumulative_kib.len(), 32, "{}", c.label);
            assert_eq!(*c.cumulative_kib.last().unwrap() as u64, 1024);
        }
        let text = fig.to_string();
        assert!(text.contains("slope"));
    }
}
