//! The flash memory card store: segments, cleaning, and wear.
//!
//! Implements the flash card architecture of §2 and the simulator rules of
//! §4.2:
//!
//! * the card is divided into fixed-size *segments* (64/128 Kbytes on the
//!   Intel Series 2); a segment must be erased — a fixed 1.6 s operation —
//!   before any of its bytes can be rewritten;
//! * logical blocks are remapped on every write (out-of-place update);
//!   overwriting a block leaves its old copy dead until its segment is
//!   cleaned;
//! * one segment (the *frontier*) is filled completely before data blocks
//!   are written to a new segment;
//! * the cleaner keeps at least one segment erased at all times (unless
//!   configured for on-demand cleaning), selecting the segment with the
//!   lowest utilization, copying its live data to the frontier, and erasing
//!   it;
//! * cleaning and erasure run in the background during idle periods and are
//!   suspended during reads and writes; a write that finds no erased space
//!   waits for the cleaner, which is what degrades write response at high
//!   storage utilization (§5.2, Figure 2);
//! * every segment counts its erasures, driving the endurance analysis
//!   (§5.2: 100,000-cycle guarantee).

use std::collections::HashMap;

use mobistore_device::params::FlashCardParams;
use mobistore_device::{DeviceError, Service};
use mobistore_sim::crashcheck::FIRST_GENERATION;
use mobistore_sim::energy::{EnergyMeter, Joules};
use mobistore_sim::fault::{EraseOutcome, FaultConfig, FaultPlan};
use mobistore_sim::hist::LatencyRecorder;
use mobistore_sim::integrity::{IntegrityConfig, IntegrityPlan, ReadVerdict};
use mobistore_sim::obs::{Event, FaultKind, NoopObserver, Observer};
use mobistore_sim::span::{Span, SpanKind};
use mobistore_sim::time::{SimDuration, SimTime};

/// Bytes of per-block metadata (logical block number, state bits) the
/// recovery scan reads back per occupied slot when rebuilding the block
/// map after a power failure — the MFFS log-scan cost, not a full data
/// read.
const RECOVERY_HEADER_BYTES: u64 = 32;

/// When the cleaner runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CleanerMode {
    /// Clean in the background during idle time, keeping at least one
    /// segment erased (the Flash File System behaviour, §4.2).
    Background,
    /// Clean only when a write finds no erased space (§4.2's "erasures are
    /// done on an as-needed basis").
    OnDemand,
}

/// How the cleaner picks its victim segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Lowest utilization first — the MFFS policy the paper describes (§2).
    GreedyMinLive,
    /// Oldest full segment first; an ablation baseline with no utilization
    /// awareness.
    Fifo,
    /// Cost-benefit: maximise freed-space per copy cost weighted by segment
    /// age, à la Sprite LFS / eNVy (§2 mentions eNVy's hybrid metric); an
    /// ablation extension.
    CostBenefit,
    /// Greedy with a wear-leveling bias: a segment's erase count above the
    /// card's minimum is charged against it, so hot segments stop being
    /// recycled exclusively. §2: "it is possible to spread the load over
    /// the flash memory to avoid 'burning out' particular areas"; an
    /// ablation extension quantifying that trade.
    WearAware,
}

/// Configuration for a [`FlashCardStore`].
#[derive(Debug, Clone)]
pub struct FlashCardConfig {
    /// Device timing/power parameters.
    pub params: FlashCardParams,
    /// Logical block size in bytes (the trace's block size).
    pub block_size: u64,
    /// Card capacity in bytes; rounded down to whole segments.
    pub capacity_bytes: u64,
    /// Cleaner scheduling.
    pub mode: CleanerMode,
    /// Victim selection policy.
    pub victim_policy: VictimPolicy,
    /// Queue discipline (see [`mobistore_device::QueueDiscipline`]).
    pub queueing: mobistore_device::QueueDiscipline,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegState {
    Erased,
    Frontier,
    Full,
    /// Permanently failed; retired into the bad-block map and never
    /// written again (the Series 2 cards shipped with exactly such maps).
    Bad,
}

#[derive(Debug, Clone)]
struct Segment {
    state: SegState,
    /// Live blocks currently mapped into this segment.
    live: u32,
    /// Slots consumed (live + dead); only meaningful for the frontier.
    used: u32,
    /// Times this segment has been erased.
    erase_count: u32,
    /// Monotone sequence number of when this segment was last opened as
    /// frontier; drives the FIFO and cost-benefit policies.
    opened_at_seq: u64,
    /// Sim time data last landed in this segment; the bit-error model
    /// measures retention loss from here. Preloaded data keeps
    /// `SimTime::ZERO`, so it ages from the start of the simulation.
    written_at: SimTime,
}

#[derive(Debug, Clone)]
struct CleanJob {
    victim: u32,
    /// Work remaining before the victim is erased and usable.
    remaining: SimDuration,
    /// Drawn at job start from the fault plan: if true, the final erase
    /// pulse fails permanently and the victim is retired instead of
    /// rejoining the erased pool.
    retire: bool,
    /// Sim time the job began; the whole cleaning pass is reported as one
    /// [`SpanKind::Cleaning`] span from here to its completion.
    started: SimTime,
}

/// Counters the store maintains alongside energy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlashCardCounters {
    /// Completed accesses.
    pub ops: u64,
    /// Bytes read by requests.
    pub bytes_read: u64,
    /// Bytes written by requests.
    pub bytes_written: u64,
    /// Segment erasures performed.
    pub erasures: u64,
    /// Live blocks copied by the cleaner.
    pub blocks_copied: u64,
    /// Writes that had to wait for the cleaner.
    pub cleaning_waits: u64,
    /// Transient write failures that were retried.
    pub write_retries: u64,
    /// Transient erase failures that were retried.
    pub erase_retries: u64,
    /// Segments permanently retired into the bad-block map.
    pub segments_retired: u64,
    /// Power failures survived.
    pub power_failures: u64,
    /// Total time spent in post-power-failure recovery scans.
    pub recovery_time: SimDuration,
    /// Writes rejected because the card is in read-only end-of-life mode.
    pub eol_write_rejections: u64,
    /// Block reads whose raw bit errors the ECC corrected transparently.
    pub ecc_corrected: u64,
    /// Read-retry attempts spent recovering marginal blocks.
    pub read_retries: u64,
    /// Block reads lost to uncorrectable bit errors (the block is
    /// unmapped; its data is gone).
    pub uncorrectable_reads: u64,
    /// Blocks relocated to fresh cells after a high-error but still
    /// correctable read.
    pub blocks_relocated: u64,
    /// Background scrub passes completed (one segment walked per pass).
    pub scrub_passes: u64,
    /// Block reads performed by the background scrubber.
    pub scrub_reads: u64,
    /// Total extra service time transient write failures cost (backoff
    /// plus transfer re-runs); already folded into write response times.
    pub write_retry_backoff: SimDuration,
    /// Total extra erase time transient erase failures cost; already
    /// folded into cleaning durations.
    pub erase_retry_backoff: SimDuration,
}

impl FlashCardCounters {
    /// Adds another card's counters into this one (fleet aggregation:
    /// counts and durations are all additive).
    pub fn merge(&mut self, other: &FlashCardCounters) {
        self.ops += other.ops;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.erasures += other.erasures;
        self.blocks_copied += other.blocks_copied;
        self.cleaning_waits += other.cleaning_waits;
        self.write_retries += other.write_retries;
        self.erase_retries += other.erase_retries;
        self.segments_retired += other.segments_retired;
        self.power_failures += other.power_failures;
        self.recovery_time += other.recovery_time;
        self.eol_write_rejections += other.eol_write_rejections;
        self.ecc_corrected += other.ecc_corrected;
        self.read_retries += other.read_retries;
        self.uncorrectable_reads += other.uncorrectable_reads;
        self.blocks_relocated += other.blocks_relocated;
        self.scrub_passes += other.scrub_passes;
        self.scrub_reads += other.scrub_reads;
        self.write_retry_backoff += other.write_retry_backoff;
        self.erase_retry_backoff += other.erase_retry_backoff;
    }
}

/// A full accounting of every block slot on the card. The four classes
/// partition capacity: `live + free + dead + retired == capacity`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCensus {
    /// Mapped, live data blocks.
    pub live: u64,
    /// Erased, writable slots (frontier remainder + erased pool).
    pub free: u64,
    /// Written slots whose data has been superseded or trimmed.
    pub dead: u64,
    /// Slots lost to permanently-failed (retired) segments.
    pub retired: u64,
}

impl BlockCensus {
    /// Sum of all four classes; always equals the card capacity.
    pub fn total(&self) -> u64 {
        self.live + self.free + self.dead + self.retired
    }
}

/// Where one logical block lives on the card.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockLoc {
    /// Segment holding the block's current copy.
    seg: u32,
    /// Monotone write generation stamped when the block's *data* was
    /// written (cleaning relocates a block without changing its
    /// generation). This is what the differential crash checker compares
    /// against its shadow model.
    gen: u64,
}

/// One row of [`FlashCardStore::snapshot`]: the recovered location and
/// write generation of a live logical block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Logical block number.
    pub lbn: u64,
    /// Segment holding the current copy.
    pub segment: u32,
    /// Write generation of the data (see the crash checker's shadow model).
    pub generation: u64,
}

/// Endurance statistics (§5.2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WearStats {
    /// Highest per-segment erase count.
    pub max_erase: u32,
    /// Mean per-segment erase count.
    pub mean_erase: f64,
    /// Total erasures.
    pub total: u64,
}

impl WearStats {
    /// Combines wear from another card (fleet aggregation): totals add,
    /// the maximum erase count is the max across cards, and the mean is
    /// re-weighted by each card's inferred segment count.
    pub fn merge(&mut self, other: &WearStats) {
        let segs = |w: &WearStats| {
            if w.mean_erase > 0.0 {
                w.total as f64 / w.mean_erase
            } else {
                0.0
            }
        };
        let (n1, n2) = (segs(self), segs(other));
        self.max_erase = self.max_erase.max(other.max_erase);
        self.total += other.total;
        self.mean_erase = if n1 + n2 > 0.0 {
            self.total as f64 / (n1 + n2)
        } else {
            0.0
        };
    }
}

/// A simulated byte-accessible flash memory card with segment cleaning.
///
/// # Examples
///
/// ```
/// use mobistore_device::params::intel_datasheet;
/// use mobistore_flash::store::{CleanerMode, FlashCardConfig, FlashCardStore, VictimPolicy};
/// use mobistore_sim::time::SimTime;
///
/// let mut card = FlashCardStore::new(FlashCardConfig {
///     params: intel_datasheet(),
///     block_size: 1024,
///     capacity_bytes: 4 * 1024 * 1024,
///     mode: CleanerMode::Background,
///     victim_policy: VictimPolicy::GreedyMinLive,
///     queueing: mobistore_device::QueueDiscipline::Fifo,
/// });
/// let svc = card.write(SimTime::ZERO, 0, 4);
/// assert!(svc.end > svc.start);
/// assert_eq!(card.live_blocks(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct FlashCardStore {
    config: FlashCardConfig,
    blocks_per_segment: u32,
    segments: Vec<Segment>,
    /// Logical block number → location and write generation.
    map: HashMap<u64, BlockLoc>,
    /// Segment currently accepting writes.
    frontier: u32,
    /// Fully-erased segments ready to become the frontier.
    erased: Vec<u32>,
    /// Permanently-failed segments (the bad-block map). Their slots are
    /// gone: effective capacity shrinks and cleaner pressure rises.
    bad: Vec<u32>,
    job: Option<CleanJob>,
    plan: FaultPlan,
    integrity: IntegrityPlan,
    /// Next sim time a background scrub pass is due; meaningful only when
    /// the integrity plan has a `scrub_interval`.
    next_scrub: SimTime,
    /// Round-robin position of the scrubber's segment walk.
    scrub_cursor: u32,
    /// Per-episode distribution of injected retry delays (write-retry
    /// backoff, erase-retry pulses, read-retry backoff).
    backoff: LatencyRecorder,
    meter: EnergyMeter,
    counters: FlashCardCounters,
    free_at: SimTime,
    live_blocks: u64,
    open_seq: u64,
    /// Next write generation to stamp (see [`BlockLoc::gen`]).
    write_gen: u64,
    /// Sticky end-of-life flag: once the card finds nothing cleanable with
    /// space exhausted it serves reads but rejects all further writes.
    read_only: bool,
}

const CATEGORIES: &[&str] = &["active", "clean", "scrub", "idle", "recover"];

impl FlashCardStore {
    /// Creates an empty card.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields fewer than two segments or a
    /// segment smaller than one block.
    pub fn new(config: FlashCardConfig) -> Self {
        match Self::try_new(config) {
            Ok(card) => card,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`new`](Self::new): returns a typed
    /// [`DeviceError`] instead of panicking on bad geometry.
    pub fn try_new(config: FlashCardConfig) -> Result<Self, DeviceError> {
        let seg_size = config.params.segment_size;
        if seg_size < config.block_size {
            return Err(DeviceError::SegmentTooSmall {
                segment_bytes: seg_size,
                block_bytes: config.block_size,
            });
        }
        let num_segments = (config.capacity_bytes / seg_size) as u32;
        if num_segments < 2 {
            return Err(DeviceError::TooFewSegments {
                segments: u64::from(num_segments),
            });
        }
        let blocks_per_segment = (seg_size / config.block_size) as u32;

        let mut segments = vec![
            Segment {
                state: SegState::Erased,
                live: 0,
                used: 0,
                erase_count: 0,
                opened_at_seq: 0,
                written_at: SimTime::ZERO,
            };
            num_segments as usize
        ];
        segments[0].state = SegState::Frontier;
        let erased = (1..num_segments).rev().collect();

        Ok(FlashCardStore {
            config,
            blocks_per_segment,
            segments,
            map: HashMap::new(),
            frontier: 0,
            erased,
            bad: Vec::new(),
            job: None,
            plan: FaultPlan::quiet(),
            integrity: IntegrityPlan::quiet(),
            next_scrub: SimTime::ZERO,
            scrub_cursor: 0,
            backoff: LatencyRecorder::new(),
            meter: EnergyMeter::new(CATEGORIES),
            counters: FlashCardCounters::default(),
            free_at: SimTime::ZERO,
            live_blocks: 0,
            open_seq: 1,
            write_gen: FIRST_GENERATION,
            read_only: false,
        })
    }

    /// Installs a fault-injection plan built from `fault`. A zero-rate
    /// configuration (the default) injects nothing and leaves behaviour
    /// bit-identical to a card without a plan.
    ///
    /// # Panics
    ///
    /// Panics if any rate in `fault` is outside `[0, 1]`.
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.plan = FaultPlan::new(fault);
        self
    }

    /// Installs a bit-error/ECC plan built from `integrity`. A zero-rate
    /// configuration (the default) draws nothing and leaves behaviour
    /// bit-identical to a card without a plan; scrubbing runs whenever
    /// `scrub_interval` is set, even at zero rates.
    ///
    /// # Panics
    ///
    /// Panics if `integrity` has a negative or non-finite rate, disordered
    /// thresholds, or a zero scrub interval.
    pub fn with_integrity(mut self, integrity: IntegrityConfig) -> Self {
        self.next_scrub = match integrity.scrub_interval {
            Some(interval) => SimTime::ZERO + interval,
            None => SimTime::ZERO,
        };
        self.integrity = IntegrityPlan::new(integrity);
        self
    }

    /// Returns the bit-error/ECC configuration in effect.
    pub fn integrity_config(&self) -> &IntegrityConfig {
        self.integrity.config()
    }

    /// The distribution of injected retry delays — write-retry backoff,
    /// extra erase pulses, read-retry backoff — one entry per episode.
    pub fn backoff_recorder(&self) -> &LatencyRecorder {
        &self.backoff
    }

    /// Returns the configuration.
    pub fn config(&self) -> &FlashCardConfig {
        &self.config
    }

    /// Returns the card capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        u64::from(self.blocks_per_segment) * self.segments.len() as u64
    }

    /// Returns the number of live (mapped) blocks.
    pub fn live_blocks(&self) -> u64 {
        self.live_blocks
    }

    /// Returns the blocks lost to the bad-block map.
    pub fn retired_blocks(&self) -> u64 {
        self.bad.len() as u64 * u64::from(self.blocks_per_segment)
    }

    /// Returns the usable (non-retired) capacity in blocks.
    pub fn usable_blocks(&self) -> u64 {
        self.capacity_blocks() - self.retired_blocks()
    }

    /// Returns current storage utilization in `[0, 1]`, relative to the
    /// usable (non-retired) capacity — retiring segments raises effective
    /// utilization and with it cleaner pressure.
    pub fn utilization(&self) -> f64 {
        self.live_blocks as f64 / self.usable_blocks() as f64
    }

    /// Returns the four-way block census; its classes always partition
    /// [`capacity_blocks`](Self::capacity_blocks).
    pub fn census(&self) -> BlockCensus {
        let dead: u64 = self
            .segments
            .iter()
            .filter(|s| matches!(s.state, SegState::Frontier | SegState::Full))
            .map(|s| u64::from(s.used - s.live))
            .sum();
        BlockCensus {
            live: self.live_blocks,
            free: self.free_blocks(),
            dead,
            retired: self.retired_blocks(),
        }
    }

    /// Returns free (erased, writable) blocks across the frontier and the
    /// erased-segment pool.
    pub fn free_blocks(&self) -> u64 {
        let frontier_free =
            u64::from(self.blocks_per_segment - self.segments[self.frontier as usize].used);
        frontier_free + self.erased.len() as u64 * u64::from(self.blocks_per_segment)
    }

    /// Returns the operation counters.
    pub fn counters(&self) -> FlashCardCounters {
        self.counters
    }

    /// True once the card has entered read-only end-of-life mode (see
    /// [`try_write`](Self::try_write)). Sticky: reads and trims are still
    /// served, writes fail with [`DeviceError::ReadOnly`].
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// The victim segment of the in-flight background cleaning job, if any
    /// (the crash checker uses this to verify cleaning atomicity).
    pub fn cleaning_victim(&self) -> Option<u32> {
        self.job.as_ref().map(|j| j.victim)
    }

    /// The retired (bad) segments, sorted; retirement must be monotone
    /// across crashes.
    pub fn bad_segments(&self) -> Vec<u32> {
        let mut bad = self.bad.clone();
        bad.sort_unstable();
        bad
    }

    /// The next write generation the card will stamp; mirrors
    /// `ShadowModel::next_generation` in the differential checker.
    pub fn next_generation(&self) -> u64 {
        self.write_gen
    }

    /// The full live-block mapping — `(lbn, segment, generation)` sorted by
    /// lbn — for differential comparison against a shadow model after
    /// crash recovery.
    pub fn snapshot(&self) -> Vec<BlockEntry> {
        let mut rows: Vec<BlockEntry> = self
            .map
            .iter()
            .map(|(&lbn, loc)| BlockEntry {
                lbn,
                segment: loc.seg,
                generation: loc.gen,
            })
            .collect();
        rows.sort_unstable_by_key(|r| r.lbn);
        rows
    }

    /// Test-only sabotage hook: silently drops one live block while keeping
    /// every internal count consistent, simulating a recovery bug that
    /// loses data without tripping [`check_invariants`](Self::check_invariants).
    /// Exists to prove the differential crash checker has teeth; never
    /// called outside tests. Returns false if the block was not mapped.
    #[doc(hidden)]
    pub fn sabotage_lose_block(&mut self, lbn: u64) -> bool {
        let Some(loc) = self.map.remove(&lbn) else {
            return false;
        };
        // Internally consistent data loss: the slot becomes "dead", the
        // census still partitions, live counts still agree — only the
        // shadow model can tell the block should exist.
        self.segments[loc.seg as usize].live -= 1;
        self.live_blocks -= 1;
        true
    }

    /// Returns total energy consumed so far.
    pub fn energy(&self) -> Joules {
        self.meter.total()
    }

    /// Returns the energy meter for per-state breakdowns.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Returns per-segment endurance statistics.
    pub fn wear(&self) -> WearStats {
        let max = self
            .segments
            .iter()
            .map(|s| s.erase_count)
            .max()
            .unwrap_or(0);
        let sum: u64 = self.segments.iter().map(|s| u64::from(s.erase_count)).sum();
        WearStats {
            max_erase: max,
            mean_erase: sum as f64 / self.segments.len() as f64,
            total: sum,
        }
    }

    /// Zeroes energy and counters (but not wear) while keeping card state;
    /// used at the warm-up boundary (§4.2). Pass `reset_wear` to also zero
    /// per-segment erase counts, as the endurance experiment does.
    pub fn reset_metrics(&mut self, reset_wear: bool) {
        self.meter = EnergyMeter::new(CATEGORIES);
        self.counters = FlashCardCounters::default();
        self.backoff = LatencyRecorder::new();
        if reset_wear {
            for seg in &mut self.segments {
                seg.erase_count = 0;
            }
        }
    }

    /// Instantly installs `lbns` as live data, consuming space but no time
    /// or energy. Models §5.2's preallocation: *"The data are preallocated
    /// in flash at the start of the simulation."*
    ///
    /// # Panics
    ///
    /// Panics if preloading would leave less than one segment of free
    /// space (the cleaner could deadlock).
    pub fn preload(&mut self, lbns: impl IntoIterator<Item = u64>) {
        for lbn in lbns {
            assert!(
                self.free_blocks() > u64::from(self.blocks_per_segment),
                "preload would exceed safe capacity ({} blocks)",
                self.capacity_blocks()
            );
            if self.map.contains_key(&lbn) {
                continue;
            }
            self.place_block(lbn);
        }
        self.debug_check();
    }

    /// Instantly installs `lbns` as live data on an *aged* card: every
    /// segment except the frontier and one erased reserve is completely
    /// full, with the live blocks spread evenly and the remaining slots
    /// dead.
    ///
    /// This is the §5.2 steady state — free space exists as garbage
    /// scattered through the segments, not as pristine erased segments —
    /// so the cleaner must work from the first writes onward and its cost
    /// is proportional to storage utilization, which is the effect
    /// Figure 2 measures.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-empty card or if the blocks do not fit in
    /// the fillable segments.
    pub fn preload_aged(&mut self, lbns: impl IntoIterator<Item = u64>) {
        assert_eq!(self.live_blocks, 0, "preload_aged requires an empty card");
        let lbns: Vec<u64> = lbns.into_iter().collect();
        let fillable = self.segments.len() - 2;
        let capacity = fillable as u64 * u64::from(self.blocks_per_segment);
        assert!(
            lbns.len() as u64 <= capacity,
            "aged preload of {} blocks exceeds the {} fillable blocks \
             (need more segments for this utilization)",
            lbns.len(),
            capacity
        );

        // Fill segments 1..N-1 (0 stays the frontier, N-1 stays erased).
        // Blocks are interleaved round-robin so that consecutive logical
        // blocks land in different segments — an aged card's placement has
        // no correlation between logical adjacency and segment locality.
        let reserve = self.segments.len() as u32 - 1;
        let mut seg_live = vec![0u32; self.segments.len()];
        for (i, lbn) in lbns.into_iter().enumerate() {
            let seg = 1 + (i % fillable) as u32;
            let gen = self.write_gen;
            self.write_gen += 1;
            let old = self.map.insert(lbn, BlockLoc { seg, gen });
            assert!(old.is_none(), "duplicate lbn in aged preload");
            self.live_blocks += 1;
            seg_live[seg as usize] += 1;
        }
        for seg in 1..reserve {
            let s = &mut self.segments[seg as usize];
            s.state = SegState::Full;
            s.live = seg_live[seg as usize];
            s.used = self.blocks_per_segment;
        }
        self.erased = vec![reserve];
        self.debug_check();
    }

    /// Serves a read of `blocks` logical blocks issued at `now`.
    ///
    /// Reads never wait for cleaning (erasure is suspended during I/O), but
    /// do queue behind earlier requests. Any uncorrectable-read error is
    /// dropped; see [`try_read`](Self::try_read) for the checked path.
    pub fn read(&mut self, now: SimTime, lbn: u64, blocks: u32) -> Service {
        self.read_obs(now, lbn, blocks, &mut NoopObserver)
    }

    /// [`read`](Self::read), reporting background-cleaning completions that
    /// settle during the preceding idle gap — and any bit-error activity —
    /// to an observer.
    pub fn read_obs<O: Observer>(
        &mut self,
        now: SimTime,
        lbn: u64,
        blocks: u32,
        obs: &mut O,
    ) -> Service {
        self.try_read_obs(now, lbn, blocks, obs).0
    }

    /// Fallible [`read`](Self::read): classifies every mapped block through
    /// the bit-error/ECC model. Time and energy are always accounted (the
    /// device worked either way), so the service interval is returned
    /// alongside the verdict; the first block that exceeds both the ECC
    /// budget and the read-retry bound yields
    /// [`DeviceError::Uncorrectable`] and is unmapped — its data is gone,
    /// and the loss is *reported*, never silent.
    pub fn try_read(
        &mut self,
        now: SimTime,
        lbn: u64,
        blocks: u32,
    ) -> (Service, Result<(), DeviceError>) {
        self.try_read_obs(now, lbn, blocks, &mut NoopObserver)
    }

    /// [`try_read`](Self::try_read), reporting ECC corrections
    /// ([`Event::EccCorrected`]), bounded retries ([`Event::ReadRetry`]),
    /// uncorrectable losses ([`Event::UncorrectableRead`]), and
    /// wear-triggered relocations ([`Event::BlockRelocated`]) to an
    /// observer.
    pub fn try_read_obs<O: Observer>(
        &mut self,
        now: SimTime,
        lbn: u64,
        blocks: u32,
        obs: &mut O,
    ) -> (Service, Result<(), DeviceError>) {
        let start = self.settle(now, obs);
        let bytes = u64::from(blocks) * self.config.block_size;
        let mut dur = self.config.params.access_latency
            + self.config.params.read_bandwidth.transfer_time(bytes);
        let block_read = self
            .config
            .params
            .read_bandwidth
            .transfer_time(self.config.block_size);
        let mut result = Ok(());
        let mut retry_extra = SimDuration::ZERO;
        let mut retry_attempts = 0u32;
        let mut retry_lbn = 0u64;
        for i in 0..u64::from(blocks) {
            let b = lbn + i;
            let Some(loc) = self.map.get(&b) else {
                // Unmapped blocks have no stored charge to decay; they are
                // served (as before) without consuming a bit-error draw.
                continue;
            };
            let seg = loc.seg;
            let s = &self.segments[seg as usize];
            let verdict = self.integrity.classify_read(
                u64::from(s.erase_count),
                start.saturating_since(s.written_at),
            );
            match verdict {
                ReadVerdict::Clean => {}
                ReadVerdict::Corrected { errors } => {
                    self.counters.ecc_corrected += 1;
                    dur += self.integrity.config().correction_penalty;
                    obs.record(&Event::EccCorrected {
                        t: start,
                        lbn: b,
                        errors,
                    });
                    if self.integrity.config().wants_relocation(errors) {
                        self.try_relocate(start, b, seg, errors, obs);
                    }
                }
                ReadVerdict::Retried { errors, attempts } => {
                    self.counters.read_retries += u64::from(attempts);
                    // Each retry backs off and re-reads the block.
                    let extra =
                        (self.plan.config().retry_backoff + block_read) * u64::from(attempts);
                    self.backoff.record(extra);
                    dur += extra;
                    retry_extra += extra;
                    if retry_attempts == 0 {
                        retry_lbn = b;
                    }
                    retry_attempts += attempts;
                    obs.record(&Event::ReadRetry {
                        t: start,
                        lbn: b,
                        attempts,
                    });
                    if self.integrity.config().wants_relocation(errors) {
                        self.try_relocate(start, b, seg, errors, obs);
                    }
                }
                ReadVerdict::Uncorrectable { errors } => {
                    self.counters.uncorrectable_reads += 1;
                    obs.record(&Event::UncorrectableRead {
                        t: start,
                        lbn: b,
                        errors,
                    });
                    self.drop_block(b);
                    if result.is_ok() {
                        result = Err(DeviceError::Uncorrectable { lbn: b, errors });
                    }
                }
            }
        }
        let end = start + dur;
        self.meter
            .charge_for("active", self.config.params.active_power, dur);
        obs.span(&Span::new(SpanKind::FlashRead { bytes }, start, end));
        if retry_attempts > 0 {
            obs.span(&Span::new(
                SpanKind::EccRetry {
                    lbn: retry_lbn,
                    attempts: retry_attempts,
                },
                end - retry_extra,
                end,
            ));
        }
        self.counters.ops += 1;
        self.counters.bytes_read += bytes;
        self.free_at = self.free_at.max(end);
        self.debug_check();
        (Service { start, end }, result)
    }

    /// Unmaps one live block (its slot becomes dead); shared by the
    /// uncorrectable-read paths of reads and scrubbing.
    fn drop_block(&mut self, lbn: u64) {
        let loc = self.map.remove(&lbn).expect("dropping a mapped block");
        self.segments[loc.seg as usize].live -= 1;
        self.live_blocks -= 1;
    }

    /// Moves `lbn` (keeping its write generation — relocation copies data,
    /// it does not rewrite it) off a high-error segment when a frontier
    /// slot is available without invoking the cleaner; returns whether the
    /// block moved.
    fn try_relocate<O: Observer>(
        &mut self,
        at: SimTime,
        lbn: u64,
        from_segment: u32,
        errors: u32,
        obs: &mut O,
    ) -> bool {
        if self.read_only || (self.frontier_full() && self.erased.is_empty()) {
            return false;
        }
        let gen = self.map[&lbn].gen;
        self.place_block_at(lbn, gen);
        self.stamp_frontier(at);
        self.counters.blocks_relocated += 1;
        obs.record(&Event::BlockRelocated {
            t: at,
            lbn,
            from_segment,
            errors,
        });
        true
    }

    /// Serves a write of `blocks` logical blocks starting at `lbn`, issued
    /// at `now`.
    ///
    /// Cleaning is needed whenever the erased-segment pool drains. Under
    /// [`CleanerMode::Background`] a job is launched to run during idle
    /// gaps; a write that fills the frontier before the job finishes must
    /// wait out its remaining work, which is what degrades write response
    /// at high utilization (§5.2). Under [`CleanerMode::OnDemand`] the
    /// triggering write performs the whole cleaning synchronously.
    ///
    /// # Panics
    ///
    /// Panics if space is exhausted and nothing is cleanable (the working
    /// set exceeds usable capacity); see [`try_write`](Self::try_write) for
    /// the fallible path.
    pub fn write(&mut self, now: SimTime, lbn: u64, blocks: u32) -> Service {
        self.write_obs(now, lbn, blocks, &mut NoopObserver)
    }

    /// Fallible [`write`](Self::write): on capacity exhaustion the card
    /// transitions to sticky read-only end-of-life mode and returns
    /// [`DeviceError::ReadOnly`] instead of panicking.
    pub fn try_write(
        &mut self,
        now: SimTime,
        lbn: u64,
        blocks: u32,
    ) -> Result<Service, DeviceError> {
        self.try_write_obs(now, lbn, blocks, &mut NoopObserver)
    }

    /// [`write`](Self::write), reporting cleaning activity
    /// ([`Event::FlashCleanStart`]/[`Event::FlashCleanEnd`]) and injected
    /// faults ([`Event::FaultInjected`]) to an observer.
    ///
    /// # Panics
    ///
    /// Panics when space is exhausted, like [`write`](Self::write).
    pub fn write_obs<O: Observer>(
        &mut self,
        now: SimTime,
        lbn: u64,
        blocks: u32,
        obs: &mut O,
    ) -> Service {
        match self.try_write_obs(now, lbn, blocks, obs) {
            Ok(svc) => svc,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`try_write`](Self::try_write), reporting cleaning activity, faults,
    /// and the end-of-life transition ([`Event::FlashEndOfLife`]) to an
    /// observer.
    ///
    /// When a write finds the frontier full, the erased pool empty, and
    /// nothing cleanable (the live working set has outgrown the usable
    /// capacity — typically because permanent erase failures retired too
    /// many segments), the card enters *read-only end-of-life mode*: this
    /// and every later write fails fast with [`DeviceError::ReadOnly`],
    /// while reads and trims continue to be served. A multi-block write
    /// that hits end of life mid-transfer keeps the blocks already placed
    /// (the transfer failed partway, as on a real device) and reports the
    /// error for the whole operation.
    pub fn try_write_obs<O: Observer>(
        &mut self,
        now: SimTime,
        lbn: u64,
        blocks: u32,
        obs: &mut O,
    ) -> Result<Service, DeviceError> {
        if self.read_only {
            self.counters.eol_write_rejections += 1;
            return Err(self.read_only_error());
        }
        let start = self.settle(now, obs);
        let mut wait = SimDuration::ZERO;
        let mut waited = false;
        for i in 0..u64::from(blocks) {
            // The background job may not have produced an erased segment
            // in time: the write stalls for its remaining work. Looping
            // covers a cleaning whose victim was retired (no erased
            // segment produced) — the next victim is cleaned immediately.
            while self.frontier_full() && !self.advance_frontier() {
                match self.run_cleaning_foreground(start + wait, obs) {
                    Some(spent) => {
                        wait += spent;
                        waited = true;
                    }
                    None => {
                        self.read_only = true;
                        self.counters.eol_write_rejections += 1;
                        obs.record(&Event::FlashEndOfLife {
                            t: start + wait,
                            live: self.live_blocks,
                            usable: self.usable_blocks(),
                            retired: self.retired_blocks(),
                        });
                        self.debug_check();
                        return Err(self.read_only_error());
                    }
                }
            }
            self.place_block(lbn + i);
            self.stamp_frontier(start + wait);
            if self.erased.is_empty() && self.job.is_none() {
                // The pool just drained: the frontier was freshly opened, so
                // a full segment of free slots guarantees any victim's live
                // data can be relocated.
                match self.config.mode {
                    CleanerMode::Background => {
                        self.start_job(start + wait, obs);
                    }
                    CleanerMode::OnDemand => {
                        if let Some(spent) = self.run_cleaning_foreground(start + wait, obs) {
                            wait += spent;
                            waited = true;
                        }
                    }
                }
            }
        }
        if waited {
            self.counters.cleaning_waits += 1;
        }
        let bytes = u64::from(blocks) * self.config.block_size;
        let mut dur = self.config.params.access_latency
            + self.config.params.write_bandwidth.transfer_time(bytes);
        // Transient program failures: the controller backs off and re-runs
        // the whole transfer, charging active power for the extra passes.
        let retries = self.plan.write_retries();
        if retries > 0 {
            self.counters.write_retries += u64::from(retries);
            obs.record(&Event::FaultInjected {
                t: start + wait,
                kind: FaultKind::WriteRetry { retries },
            });
            let extra = (self.plan.config().retry_backoff + dur) * u64::from(retries);
            self.counters.write_retry_backoff += extra;
            self.backoff.record(extra);
            dur += extra;
        }
        let end = start + wait + dur;
        self.meter
            .charge_for("active", self.config.params.active_power, dur);
        obs.span(&Span::new(
            SpanKind::FlashProgram { bytes },
            start + wait,
            end,
        ));
        self.counters.ops += 1;
        self.counters.bytes_written += bytes;
        self.free_at = self.free_at.max(end);
        self.debug_check();
        Ok(Service { start, end })
    }

    /// The [`DeviceError::ReadOnly`] describing the card's current census.
    fn read_only_error(&self) -> DeviceError {
        DeviceError::ReadOnly {
            live: self.live_blocks,
            usable: self.usable_blocks(),
            retired: self.retired_blocks(),
        }
    }

    /// Marks `blocks` logical blocks starting at `lbn` dead (file deletion).
    /// Takes no device time.
    pub fn trim(&mut self, lbn: u64, blocks: u32) {
        // The timestamp only labels observer events; NoopObserver drops it.
        self.trim_obs(self.free_at, lbn, blocks, &mut NoopObserver);
    }

    /// [`trim`](Self::trim), with the trim's sim time (`now`) so any
    /// cleaning job it triggers is reported to the observer with a correct
    /// stamp.
    pub fn trim_obs<O: Observer>(&mut self, now: SimTime, lbn: u64, blocks: u32, obs: &mut O) {
        for i in 0..u64::from(blocks) {
            if let Some(loc) = self.map.remove(&(lbn + i)) {
                self.segments[loc.seg as usize].live -= 1;
                self.live_blocks -= 1;
            }
        }
        self.maybe_start_job(now, obs);
        self.debug_check();
    }

    /// Accounts for the trailing idle period (and any final background
    /// cleaning) at the end of a simulation.
    pub fn finish(&mut self, end: SimTime) {
        self.finish_obs(end, &mut NoopObserver);
    }

    /// [`finish`](Self::finish), reporting trailing cleaning completions to
    /// an observer.
    pub fn finish_obs<O: Observer>(&mut self, end: SimTime, obs: &mut O) {
        let _ = self.settle(end, obs);
    }

    /// Simulates a power failure at `at` followed by crash recovery.
    ///
    /// The power loss truncates any in-flight cleaning: the victim's live
    /// data was already relocated (copy-before-erase, as MFFS compaction
    /// does), so no data is lost, but the victim is left un-erased — an
    /// *orphaned* fully-dead segment. Recovery then runs the MFFS log
    /// scan: every occupied slot's block header is read back to rebuild
    /// the logical-to-physical map, and the orphaned segment (detected by
    /// the scan) is reclaimed with a fresh erase. The card is busy for the
    /// whole recovery; time and energy are charged to the `"recover"`
    /// state and [`FlashCardCounters::recovery_time`].
    pub fn power_fail(&mut self, at: SimTime) -> Service {
        self.power_fail_obs(at, &mut NoopObserver)
    }

    /// [`power_fail`](Self::power_fail), reporting the orphaned-job reclaim
    /// (a [`Event::FlashCleanEnd`]) to an observer.
    pub fn power_fail_obs<O: Observer>(&mut self, at: SimTime, obs: &mut O) -> Service {
        // Background cleaning progressed until the lights went out.
        let start = self.settle(at, obs);
        let orphan = self.job.take();

        // Log scan: header read per occupied (live or dead) slot.
        let census = self.census();
        let scan_bytes = (census.live + census.dead) * RECOVERY_HEADER_BYTES;
        let mut dur = self.config.params.access_latency
            + self
                .config
                .params
                .copy_read_bandwidth
                .transfer_time(scan_bytes);
        // Orphaned-segment reclaim: the interrupted victim is re-erased.
        if let Some(job) = orphan {
            dur += self.config.params.erase_time;
            self.finish_job(start + dur, job.victim, false, job.started, obs);
        }
        let end = start + dur;
        self.meter
            .charge_for("recover", self.config.params.active_power, dur);
        self.counters.power_failures += 1;
        self.counters.recovery_time += dur;
        self.free_at = self.free_at.max(end);
        // Recovered-state invariants: the map, segment states, and census
        // must all be consistent after replay.
        self.check_invariants();
        Service { start, end }
    }

    fn frontier_full(&self) -> bool {
        self.segments[self.frontier as usize].used == self.blocks_per_segment
    }

    /// Moves the frontier to an erased segment; returns false if none.
    fn advance_frontier(&mut self) -> bool {
        let Some(next) = self.erased.pop() else {
            return false;
        };
        self.segments[self.frontier as usize].state = SegState::Full;
        self.segments[next as usize].state = SegState::Frontier;
        self.segments[next as usize].opened_at_seq = self.open_seq;
        self.open_seq += 1;
        self.frontier = next;
        true
    }

    /// Writes one logical block at the frontier with a fresh write
    /// generation, retiring any old copy.
    ///
    /// The caller must ensure the frontier has a free slot.
    fn place_block(&mut self, lbn: u64) {
        let gen = self.write_gen;
        self.write_gen += 1;
        self.place_block_at(lbn, gen);
    }

    /// Places one logical block at the frontier carrying generation `gen`
    /// (the cleaner relocates data without re-stamping it).
    fn place_block_at(&mut self, lbn: u64, gen: u64) {
        if self.frontier_full() {
            assert!(self.advance_frontier(), "place_block with no space");
        }
        if let Some(old) = self.map.insert(
            lbn,
            BlockLoc {
                seg: self.frontier,
                gen,
            },
        ) {
            self.segments[old.seg as usize].live -= 1;
        } else {
            self.live_blocks += 1;
        }
        let f = &mut self.segments[self.frontier as usize];
        f.live += 1;
        f.used += 1;
    }

    /// Stamps the frontier's last-write time after a block lands there
    /// (callers that know the sim time invoke this right after placing).
    fn stamp_frontier(&mut self, at: SimTime) {
        let f = &mut self.segments[self.frontier as usize];
        f.written_at = f.written_at.max(at);
    }

    /// Picks a cleaning victim per the configured policy; `None` if nothing
    /// is cleanable or relocating its live data would not fit in free space.
    fn select_victim(&self) -> Option<u32> {
        let free = self.free_blocks();
        let candidates = self
            .segments
            .iter()
            .enumerate()
            .filter(|(i, s)| s.state == SegState::Full && *i as u32 != self.frontier)
            .filter(|(_, s)| u64::from(s.live) <= free)
            // Cleaning a fully-live segment frees nothing.
            .filter(|(_, s)| s.live < self.blocks_per_segment);
        match self.config.victim_policy {
            VictimPolicy::GreedyMinLive => candidates
                .min_by_key(|(i, s)| (s.live, *i))
                .map(|(i, _)| i as u32),
            VictimPolicy::Fifo => candidates
                .min_by_key(|(i, s)| (s.opened_at_seq, *i))
                .map(|(i, _)| i as u32),
            VictimPolicy::WearAware => {
                let min_wear = self
                    .segments
                    .iter()
                    .map(|s| s.erase_count)
                    .min()
                    .unwrap_or(0);
                // Each erase above the card minimum costs as much as 1/32
                // of a segment of extra live data — enough to bound the
                // wear spread without constantly recycling cold segments.
                let penalty = (self.blocks_per_segment / 32).max(1);
                candidates
                    .min_by_key(|(i, s)| {
                        (
                            u64::from(s.live)
                                + u64::from(s.erase_count - min_wear) * u64::from(penalty),
                            *i,
                        )
                    })
                    .map(|(i, _)| i as u32)
            }
            VictimPolicy::CostBenefit => candidates
                .min_by(|(ia, a), (ib, b)| {
                    // Benefit/cost = (free space gained x age) / (copy cost).
                    // We minimise the negation via partial_cmp on the score.
                    let score = |s: &Segment| {
                        let u = f64::from(s.live) / f64::from(self.blocks_per_segment);
                        let age = (self.open_seq - s.opened_at_seq) as f64;
                        -((1.0 - u) * age / (1.0 + u))
                    };
                    score(a)
                        .partial_cmp(&score(b))
                        .expect("scores are finite")
                        .then(ia.cmp(ib))
                })
                .map(|(i, _)| i as u32),
        }
    }

    /// Starts a background job if the erased pool is empty and cleaning is
    /// possible. `at` stamps the observer event.
    fn maybe_start_job<O: Observer>(&mut self, at: SimTime, obs: &mut O) {
        if self.config.mode != CleanerMode::Background
            || self.job.is_some()
            || !self.erased.is_empty()
        {
            return;
        }
        self.start_job(at, obs);
    }

    /// Starts a cleaning job regardless of mode; returns false if no victim.
    /// `at` stamps the observer events.
    fn start_job<O: Observer>(&mut self, at: SimTime, obs: &mut O) -> bool {
        let Some(victim) = self.select_victim() else {
            return false;
        };
        // Logically relocate live data now (map + space bookkeeping); the
        // *time* of copying plus erasure is paid by the job as it runs.
        // Relocation preserves each block's write generation: the cleaner
        // moves data, it does not rewrite it.
        let live: Vec<(u64, u64)> = self
            .map
            .iter()
            .filter(|(_, loc)| loc.seg == victim)
            .map(|(&lbn, loc)| (lbn, loc.gen))
            .collect();
        let copy_blocks = live.len() as u64;
        let mut lbns = live;
        lbns.sort_unstable(); // Determinism: HashMap iteration order varies.
        for (lbn, gen) in lbns {
            self.place_block_at(lbn, gen);
            self.stamp_frontier(at);
        }
        self.counters.blocks_copied += copy_blocks;
        debug_assert_eq!(self.segments[victim as usize].live, 0);

        let copy_bytes = copy_blocks * self.config.block_size;
        // Copies are internal to the card: they run at raw speeds even
        // when the foreground path carries file-system software costs.
        let copy_time = self
            .config
            .params
            .copy_read_bandwidth
            .transfer_time(copy_bytes)
            + self
                .config
                .params
                .copy_write_bandwidth
                .transfer_time(copy_bytes);
        // Draw the erase outcome now so the job's total duration is fixed
        // at start (transient retries re-run the 1.6 s pulse; a permanent
        // failure pays one failed pulse, then retires the segment). The
        // draw order is the card's op order, so it is deterministic.
        let mut erase_time = self.config.params.erase_time;
        let mut retire = false;
        match self.plan.erase_outcome() {
            EraseOutcome::Clean => {}
            EraseOutcome::Retried(n) => {
                self.counters.erase_retries += u64::from(n);
                obs.record(&Event::FaultInjected {
                    t: at,
                    kind: FaultKind::EraseRetry { retries: n },
                });
                let extra = self.config.params.erase_time * u64::from(n);
                self.counters.erase_retry_backoff += extra;
                self.backoff.record(extra);
                erase_time += extra;
            }
            EraseOutcome::Permanent => {
                // Never retire below frontier + erased reserve + one
                // cleanable segment: a controller out of spares fails the
                // erase transiently instead (and a real card would go
                // read-only).
                if self.segments.len() - self.bad.len() > 3 {
                    retire = true;
                } else {
                    self.counters.erase_retries += 1;
                    obs.record(&Event::FaultInjected {
                        t: at,
                        kind: FaultKind::EraseRetry { retries: 1 },
                    });
                    let extra = self.config.params.erase_time;
                    self.counters.erase_retry_backoff += extra;
                    self.backoff.record(extra);
                    erase_time += extra;
                }
            }
        }
        obs.record(&Event::FlashCleanStart {
            t: at,
            victim,
            live_copied: copy_blocks as u32,
        });
        self.job = Some(CleanJob {
            victim,
            remaining: copy_time + erase_time,
            retire,
            started: at,
        });
        true
    }

    /// Completes the current job's remaining work in the foreground (a
    /// write is waiting at sim time `at`); returns the time spent, or
    /// `None` if there is no job and nothing is cleanable. Starts a job
    /// first if none is running.
    fn run_cleaning_foreground<O: Observer>(
        &mut self,
        at: SimTime,
        obs: &mut O,
    ) -> Option<SimDuration> {
        if self.job.is_none() && !self.start_job(at, obs) {
            return None;
        }
        let job = self.job.take().expect("job exists");
        self.meter
            .charge_for("clean", self.config.params.active_power, job.remaining);
        let spent = job.remaining;
        self.finish_job(at + spent, job.victim, job.retire, job.started, obs);
        Some(spent)
    }

    /// Applies job completion at sim time `at`: the victim becomes erased,
    /// or — when its final erase pulse failed permanently — is retired into
    /// the bad-block map, shrinking usable capacity. The pass is reported
    /// as one [`SpanKind::Cleaning`] span covering `[started, at]`.
    fn finish_job<O: Observer>(
        &mut self,
        at: SimTime,
        victim: u32,
        retire: bool,
        started: SimTime,
        obs: &mut O,
    ) {
        let seg = &mut self.segments[victim as usize];
        seg.live = 0;
        seg.used = 0;
        seg.erase_count += 1;
        if retire {
            seg.state = SegState::Bad;
            self.bad.push(victim);
            self.counters.segments_retired += 1;
            obs.record(&Event::FaultInjected {
                t: at,
                kind: FaultKind::SegmentRetired { segment: victim },
            });
        } else {
            seg.state = SegState::Erased;
            self.erased.push(victim);
        }
        obs.record(&Event::FlashCleanEnd {
            t: at,
            victim,
            retired: retire,
        });
        obs.span(&Span::new(
            SpanKind::Cleaning { victim },
            started.min(at),
            at,
        ));
        self.counters.erasures += 1;
    }

    /// Settles the gap `[free_at, now]`: background cleaning progresses
    /// during idle time (suspended during I/O, which is modeled by only
    /// advancing it here), idle power covers the remainder.
    fn settle<O: Observer>(&mut self, now: SimTime, obs: &mut O) -> SimTime {
        if now <= self.free_at {
            // No idle gap: FIFO queues, open-loop serves at arrival (the
            // paper's independent-operation model). Background cleaning
            // gets no time either way (it is suspended during I/O).
            return match self.config.queueing {
                mobistore_device::QueueDiscipline::Fifo => self.free_at,
                mobistore_device::QueueDiscipline::OpenLoop => now,
            };
        }
        let mut t = self.free_at;
        while t < now {
            if self.job.is_none() {
                self.maybe_start_job(t, obs);
            }
            let Some(job) = self.job.as_mut() else { break };
            let slice = job.remaining.min(now - t);
            job.remaining -= slice;
            self.meter
                .charge_for("clean", self.config.params.active_power, slice);
            t += slice;
            if self.job.as_ref().expect("job exists").remaining.is_zero() {
                let job = self.job.take().expect("job exists");
                self.finish_job(t, job.victim, job.retire, job.started, obs);
            }
        }
        t = self.run_scrub(t, now, obs);
        if t < now {
            self.meter
                .charge_for("idle", self.config.params.idle_power, now - t);
        }
        self.free_at = now;
        now
    }

    /// Runs due background scrub passes inside the idle gap `[t, now)`;
    /// returns the settled time. One pass walks one segment round-robin,
    /// reading every live block at internal copy speeds: corrections and
    /// relocations follow the integrity plan, uncorrectable blocks are
    /// unmapped (scrubbing *finds* retention loss early; it cannot undo
    /// it). A pass that does not fit in the gap is deferred to the next
    /// idle period; scrubbing, like cleaning, is suspended during I/O.
    fn run_scrub<O: Observer>(&mut self, mut t: SimTime, now: SimTime, obs: &mut O) -> SimTime {
        let Some(interval) = self.integrity.config().scrub_interval else {
            return t;
        };
        while self.next_scrub < now {
            let Some(seg) = self.next_scrub_target() else {
                // Nothing holds live data; the pass is a no-op that stays
                // on schedule.
                self.next_scrub += interval;
                continue;
            };
            let mut lbns: Vec<u64> = self
                .map
                .iter()
                .filter(|(_, loc)| loc.seg == seg)
                .map(|(&lbn, _)| lbn)
                .collect();
            lbns.sort_unstable(); // Determinism: HashMap iteration order varies.
            let blocks = lbns.len() as u32;
            let begin = t.max(self.next_scrub);
            let pass = self.config.params.access_latency
                + self
                    .config
                    .params
                    .copy_read_bandwidth
                    .transfer_time(u64::from(blocks) * self.config.block_size);
            if begin + pass > now {
                break; // Defer: the pass does not fit in this idle gap.
            }
            if begin > t {
                self.meter
                    .charge_for("idle", self.config.params.idle_power, begin - t);
            }
            let s = &self.segments[seg as usize];
            let erase_count = u64::from(s.erase_count);
            let since = begin.saturating_since(s.written_at);
            let mut corrected = 0u32;
            let mut relocated = 0u32;
            for lbn in lbns {
                match self.integrity.classify_read(erase_count, since) {
                    ReadVerdict::Clean => {}
                    ReadVerdict::Corrected { errors } => {
                        corrected += 1;
                        self.counters.ecc_corrected += 1;
                        if self.integrity.config().wants_relocation(errors)
                            && self.try_relocate(begin, lbn, seg, errors, obs)
                        {
                            relocated += 1;
                        }
                    }
                    ReadVerdict::Retried { errors, attempts } => {
                        corrected += 1;
                        self.counters.read_retries += u64::from(attempts);
                        if self.integrity.config().wants_relocation(errors)
                            && self.try_relocate(begin, lbn, seg, errors, obs)
                        {
                            relocated += 1;
                        }
                    }
                    ReadVerdict::Uncorrectable { errors } => {
                        self.counters.uncorrectable_reads += 1;
                        obs.record(&Event::UncorrectableRead {
                            t: begin,
                            lbn,
                            errors,
                        });
                        self.drop_block(lbn);
                    }
                }
            }
            self.counters.scrub_passes += 1;
            self.counters.scrub_reads += u64::from(blocks);
            self.meter
                .charge_for("scrub", self.config.params.active_power, pass);
            t = begin + pass;
            obs.record(&Event::ScrubPass {
                t,
                segment: seg,
                blocks,
                corrected,
                relocated,
            });
            obs.span(&Span::new(SpanKind::Scrub { segment: seg }, begin, t));
            self.next_scrub += interval;
        }
        t
    }

    /// Picks the next segment the scrubber should walk: round-robin over
    /// segments holding live data, resuming after the last pick.
    fn next_scrub_target(&mut self) -> Option<u32> {
        let n = self.segments.len() as u32;
        for off in 0..n {
            let s = (self.scrub_cursor + off) % n;
            let seg = &self.segments[s as usize];
            if matches!(seg.state, SegState::Full | SegState::Frontier) && seg.live > 0 {
                self.scrub_cursor = (s + 1) % n;
                return Some(s);
            }
        }
        None
    }

    /// Validates internal bookkeeping; used by tests and the property
    /// suite.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn check_invariants(&self) {
        let live_sum: u64 = self.segments.iter().map(|s| u64::from(s.live)).sum();
        assert_eq!(live_sum, self.live_blocks, "segment live counts vs total");
        assert_eq!(
            self.map.len() as u64,
            self.live_blocks,
            "map size vs live blocks"
        );
        assert!(self.live_blocks <= self.usable_blocks());
        let frontier = &self.segments[self.frontier as usize];
        assert_eq!(frontier.state, SegState::Frontier);
        assert!(frontier.used <= self.blocks_per_segment);
        assert!(frontier.live <= frontier.used);
        for (i, s) in self.segments.iter().enumerate() {
            if s.state == SegState::Erased {
                assert_eq!(s.live, 0, "erased segment {i} has live data");
                assert!(
                    self.erased.contains(&(i as u32))
                        || self.job.as_ref().is_some_and(|j| j.victim == i as u32),
                    "erased segment {i} missing from pool"
                );
            }
            if s.state == SegState::Bad {
                assert_eq!(s.live, 0, "retired segment {i} has live data");
                assert!(
                    self.bad.contains(&(i as u32)),
                    "retired segment {i} missing from bad-block map"
                );
            }
            assert!(s.live <= self.blocks_per_segment);
        }
        for &e in &self.erased {
            assert_eq!(self.segments[e as usize].state, SegState::Erased);
        }
        for &b in &self.bad {
            assert_eq!(self.segments[b as usize].state, SegState::Bad);
        }
        let census = self.census();
        assert_eq!(
            census.total(),
            self.capacity_blocks(),
            "census {census:?} does not partition capacity"
        );
    }

    /// Runs [`check_invariants`](Self::check_invariants) after every
    /// mutating operation in debug builds (tests); compiled out of release
    /// binaries.
    fn debug_check(&self) {
        if cfg!(debug_assertions) {
            self.check_invariants();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobistore_device::params::intel_datasheet;
    use mobistore_sim::units::KIB;

    /// A small card: 4 segments x 128 KB = 512 KB, 1-KB blocks,
    /// 128 blocks/segment.
    fn small_card(mode: CleanerMode) -> FlashCardStore {
        FlashCardStore::new(FlashCardConfig {
            params: intel_datasheet(),
            block_size: KIB,
            capacity_bytes: 512 * KIB,
            mode,
            victim_policy: VictimPolicy::GreedyMinLive,
            queueing: mobistore_device::QueueDiscipline::Fifo,
        })
    }

    #[test]
    fn geometry() {
        let card = small_card(CleanerMode::Background);
        assert_eq!(card.capacity_blocks(), 512);
        assert_eq!(card.free_blocks(), 512);
        assert_eq!(card.live_blocks(), 0);
        card.check_invariants();
    }

    #[test]
    fn write_maps_blocks_and_consumes_space() {
        let mut card = small_card(CleanerMode::Background);
        let svc = card.write(SimTime::ZERO, 0, 8);
        assert_eq!(card.live_blocks(), 8);
        assert_eq!(card.free_blocks(), 504);
        // 8 KB at 214 KB/s.
        let secs = (svc.end - svc.start).as_secs_f64();
        assert!((secs - 8.0 / 214.0).abs() < 1e-6, "{secs}");
        card.check_invariants();
    }

    #[test]
    fn overwrite_creates_dead_blocks_not_live() {
        let mut card = small_card(CleanerMode::Background);
        card.write(SimTime::ZERO, 0, 8);
        let t = SimTime::from_secs_f64(10.0);
        card.write(t, 0, 8);
        assert_eq!(card.live_blocks(), 8, "overwrite does not grow live data");
        assert_eq!(card.free_blocks(), 512 - 16, "but consumes new slots");
        card.check_invariants();
    }

    #[test]
    fn read_costs_time_but_no_space() {
        let mut card = small_card(CleanerMode::Background);
        card.write(SimTime::ZERO, 0, 4);
        let free = card.free_blocks();
        let svc = card.read(SimTime::from_secs_f64(5.0), 0, 4);
        assert_eq!(card.free_blocks(), free);
        let secs = (svc.end - svc.start).as_secs_f64();
        assert!((secs - 4.0 / 9765.0).abs() < 1e-6, "{secs}");
    }

    #[test]
    fn trim_reduces_live() {
        let mut card = small_card(CleanerMode::Background);
        card.write(SimTime::ZERO, 0, 8);
        card.trim(0, 4);
        assert_eq!(card.live_blocks(), 4);
        // Trimming unmapped blocks is a no-op.
        card.trim(100, 4);
        assert_eq!(card.live_blocks(), 4);
        card.check_invariants();
    }

    #[test]
    fn preload_is_instant() {
        let mut card = small_card(CleanerMode::Background);
        card.preload(0..300);
        assert_eq!(card.live_blocks(), 300);
        assert!((card.utilization() - 300.0 / 512.0).abs() < 1e-9);
        assert_eq!(card.energy().get(), 0.0);
        card.check_invariants();
    }

    #[test]
    #[should_panic(expected = "safe capacity")]
    fn preload_cannot_fill_past_slack() {
        let mut card = small_card(CleanerMode::Background);
        card.preload(0..512);
    }

    #[test]
    fn preload_aged_spreads_live_data() {
        let mut card = small_card(CleanerMode::Background);
        card.preload_aged(0..192); // 37.5% of 512 blocks
        card.check_invariants();
        assert_eq!(card.live_blocks(), 192);
        // Only the frontier (128 slots) and one reserve segment are free.
        assert_eq!(card.free_blocks(), 256);
        // The first cleaning after the pool drains copies roughly an even
        // share of the live data (192 / 2 fillable segments = 96).
        let mut t = SimTime::ZERO;
        let mut lbn = 1000;
        while card.counters().erasures == 0 {
            t = card.write(t, lbn, 1).end;
            lbn += 1;
            assert!(lbn < 2000, "cleaning never triggered");
        }
        // The triggering write may immediately start (and logically copy
        // for) the *next* job after the first erase, so either one or two
        // 96-block shares are copied by now.
        let copied = card.counters().blocks_copied;
        assert!(copied == 96 || copied == 192, "copied {copied}");
        card.check_invariants();
    }

    #[test]
    fn aged_cleaning_cost_scales_with_utilization() {
        // The Figure 2 mechanism in miniature: on an aged card the same
        // write workload costs more cleaning time at higher utilization.
        // 16 segments x 128 KB = 2048 blocks.
        let run = |live: u64| {
            let mut card = FlashCardStore::new(FlashCardConfig {
                params: intel_datasheet(),
                block_size: KIB,
                capacity_bytes: 2 * 1024 * KIB,
                mode: CleanerMode::Background,
                victim_policy: VictimPolicy::GreedyMinLive,
                queueing: mobistore_device::QueueDiscipline::Fifo,
            });
            card.preload_aged(0..live);
            let mut t = SimTime::ZERO;
            for lbn in 0..600 {
                t = card.write(t, lbn % live, 1).end;
            }
            card.check_invariants();
            card.meter().category("clean").get()
        };
        let low = run(820); // 40%
        let high = run(1434); // 70%
        assert!(high > low, "clean energy {low} -> {high}");
    }

    #[test]
    #[should_panic(expected = "fillable")]
    fn aged_preload_rejects_overfill() {
        let mut card = small_card(CleanerMode::Background);
        card.preload_aged(0..300); // > 2 x 128 fillable
    }

    #[test]
    fn background_cleaning_runs_in_idle_gaps() {
        let mut card = small_card(CleanerMode::Background);
        // Fill three segments; the advance into segment 3 drains the erased
        // pool and launches a background job.
        let mut t = card.write(SimTime::ZERO, 0, 128).end;
        t = card.write(t, 128, 128).end;
        card.trim(0, 128); // segment 0 fully dead: the obvious victim
        t = card.write(t, 256, 129).end; // fills seg 2, opens seg 3
        assert_eq!(card.counters().erasures, 0, "job not finished yet");
        // A long idle gap lets the job copy (nothing) and erase.
        let later = t + SimDuration::from_secs(60);
        let svc = card.read(later, 128, 1);
        assert_eq!(svc.start, later, "reads never wait for cleaning");
        assert_eq!(card.counters().erasures, 1, "idle gap erased the victim");
        assert!(card.meter().category("clean").get() > 0.0);
        card.check_invariants();
    }

    #[test]
    fn write_waits_when_cleaner_cannot_keep_up() {
        let mut card = small_card(CleanerMode::Background);
        card.preload(0..300);
        // Overwrite continuously with zero idle time: the background job
        // gets no gaps, so some write must stall for it.
        let mut t = SimTime::ZERO;
        for round in 0u64..3 {
            for lbn in 0..300 {
                t = card.write(t, lbn, 1).end;
                let _ = round;
            }
        }
        assert!(card.counters().cleaning_waits >= 1, "no write ever waited");
        assert!(card.counters().erasures >= 1);
        card.check_invariants();
    }

    #[test]
    fn on_demand_write_pays_whole_cleaning() {
        let mut card = small_card(CleanerMode::OnDemand);
        card.preload(0..300);
        let mut t = SimTime::ZERO;
        let mut max_response = SimDuration::ZERO;
        for lbn in 0..300 {
            let svc = card.write(t, lbn, 1);
            max_response = max_response.max(svc.end - t);
            t = svc.end;
        }
        assert!(card.counters().cleaning_waits >= 1);
        // Some write absorbed a full erase (1.6 s) plus copying.
        assert!(max_response.as_secs_f64() > 1.6, "{max_response}");
        card.check_invariants();
    }

    #[test]
    fn greedy_picks_lowest_utilization_victim() {
        let mut card = small_card(CleanerMode::OnDemand);
        // Segment 0: 128 blocks, then kill 100 (28 live).
        let mut t = card.write(SimTime::ZERO, 0, 128).end;
        // Segment 1: 128 blocks, kill 10 (118 live).
        t = card.write(t, 128, 128).end;
        card.trim(0, 100);
        card.trim(128, 10);
        // Fill until the pool drains and the first cleaning fires.
        let mut lbn = 300;
        while card.counters().erasures == 0 {
            t = card.write(t, lbn, 1).end;
            lbn += 1;
            assert!(lbn < 900, "cleaning never triggered");
        }
        // The victim must have been segment 0 (28 live copied, not 118).
        assert_eq!(card.counters().blocks_copied, 28);
        card.check_invariants();
    }

    #[test]
    fn cleaning_copies_preserve_data_mapping() {
        let mut card = small_card(CleanerMode::OnDemand);
        card.preload(0..300);
        let mut t = SimTime::ZERO;
        for round in 0..3 {
            for lbn in 0..200 {
                t = card.write(t, lbn, 1).end;
            }
            // All 300 lbns must stay live through arbitrary cleaning.
            assert_eq!(card.live_blocks(), 300, "round {round}");
            card.check_invariants();
        }
    }

    #[test]
    fn wear_tracks_erasures() {
        let mut card = small_card(CleanerMode::OnDemand);
        card.preload(0..300);
        let mut t = SimTime::ZERO;
        for lbn in 0..200 {
            t = card.write(t, lbn, 1).end;
        }
        for lbn in 0..200 {
            t = card.write(t, lbn, 1).end;
        }
        let wear = card.wear();
        assert!(wear.total >= 1);
        assert!(wear.max_erase >= 1);
        assert!((wear.mean_erase - wear.total as f64 / 4.0).abs() < 1e-9);
        assert_eq!(wear.total, card.counters().erasures);
    }

    #[test]
    fn higher_utilization_copies_more() {
        // The §5.2 effect in miniature: the same overwrite workload at 40%
        // vs 90% utilization copies more live data and erases more often.
        // 16 segments x 128 KB = 2 MB = 2048 blocks.
        let run = |preload: u64| {
            let mut card = FlashCardStore::new(FlashCardConfig {
                params: intel_datasheet(),
                block_size: KIB,
                capacity_bytes: 2 * 1024 * KIB,
                mode: CleanerMode::Background,
                victim_policy: VictimPolicy::GreedyMinLive,
                queueing: mobistore_device::QueueDiscipline::Fifo,
            });
            card.preload(0..preload);
            let mut t = SimTime::ZERO;
            let mut lbn = 0u64;
            for _ in 0..4000 {
                // Tight interarrival so cleaning mostly cannot hide in idle
                // gaps.
                let at = t + SimDuration::from_micros(100);
                t = card.write(at, lbn % preload, 1).end;
                lbn += 7; // Stride spreads overwrites across segments.
            }
            card.check_invariants();
            (
                card.counters().blocks_copied,
                card.counters().erasures,
                card.energy().get(),
            )
        };
        let (copied_low, erase_low, energy_low) = run(820); // 40%
        let (copied_high, erase_high, energy_high) = run(1845); // 90%
        assert!(
            copied_high > copied_low,
            "copies: {copied_high} vs {copied_low}"
        );
        assert!(
            erase_high >= erase_low,
            "erasures: {erase_high} vs {erase_low}"
        );
        assert!(
            energy_high > energy_low,
            "energy: {energy_high} vs {energy_low}"
        );
    }

    #[test]
    fn fifo_policy_picks_oldest() {
        let mut card = FlashCardStore::new(FlashCardConfig {
            params: intel_datasheet(),
            block_size: KIB,
            capacity_bytes: 512 * KIB,
            mode: CleanerMode::OnDemand,
            victim_policy: VictimPolicy::Fifo,
            queueing: mobistore_device::QueueDiscipline::Fifo,
        });
        // Fill segments 0 and 1; segment 0 is oldest.
        let mut t = card.write(SimTime::ZERO, 0, 128).end;
        t = card.write(t, 128, 128).end;
        card.trim(0, 20); // seg 0: 108 live
        card.trim(128, 100); // seg 1: 28 live (greedy would pick this)
        let mut lbn = 300;
        while card.counters().erasures == 0 {
            t = card.write(t, lbn, 1).end;
            lbn += 1;
            assert!(lbn < 900, "cleaning never triggered");
        }
        // FIFO copied the 108 live blocks of the *older* segment 0.
        assert_eq!(card.counters().blocks_copied, 108);
        card.check_invariants();
    }

    #[test]
    fn wear_aware_policy_narrows_the_wear_spread() {
        // A skewed overwrite workload: greedy recycles the same hot
        // segments forever; the wear-aware policy spreads erasures, so the
        // worst segment's count drops even if total work rises a little.
        let run = |policy: VictimPolicy| {
            let mut card = FlashCardStore::new(FlashCardConfig {
                params: intel_datasheet(),
                block_size: KIB,
                capacity_bytes: 2 * 1024 * KIB,
                mode: CleanerMode::Background,
                victim_policy: policy,
                queueing: mobistore_device::QueueDiscipline::Fifo,
            });
            card.preload_aged(0..1600); // 78% full, mostly cold
            let mut t = SimTime::ZERO;
            for i in 0..20_000u64 {
                // Overwrite a tiny hot set (32 blocks) relentlessly.
                t = card.write(t, i % 32, 1).end;
            }
            card.check_invariants();
            card.wear()
        };
        let greedy = run(VictimPolicy::GreedyMinLive);
        let aware = run(VictimPolicy::WearAware);
        assert!(
            f64::from(aware.max_erase) < f64::from(greedy.max_erase) * 0.7,
            "aware max {} vs greedy max {}",
            aware.max_erase,
            greedy.max_erase
        );
        // Leveling is not free: spreading a 1.5%-of-card hot spot costs
        // extra copies and erasures (the §2 trade-off made quantitative);
        // the tax stays within a small factor.
        assert!(
            (aware.total as f64) < greedy.total as f64 * 4.0,
            "aware total {} vs greedy {}",
            aware.total,
            greedy.total
        );
    }

    #[test]
    fn reset_metrics_can_keep_or_clear_wear() {
        let mut card = small_card(CleanerMode::OnDemand);
        card.preload(0..300);
        let mut t = SimTime::ZERO;
        for lbn in 0..250 {
            t = card.write(t, lbn, 1).end;
        }
        assert!(card.wear().total > 0);
        card.reset_metrics(false);
        assert_eq!(card.energy().get(), 0.0);
        assert!(card.wear().total > 0, "wear preserved");
        card.reset_metrics(true);
        assert_eq!(card.wear().total, 0);
    }

    #[test]
    fn trim_past_eof_and_double_trim_are_noops() {
        let mut card = small_card(CleanerMode::Background);
        card.write(SimTime::ZERO, 0, 8);
        // The range extends far past the last mapped block: only the
        // mapped tail is dropped, the rest is silently ignored.
        card.trim(4, 1000);
        assert_eq!(card.live_blocks(), 4);
        let census = card.census();
        assert_eq!(census.dead, 4);
        // Trimming the same (now dead) range again changes nothing — no
        // double-decrement of live counts.
        card.trim(4, 1000);
        assert_eq!(card.live_blocks(), 4);
        assert_eq!(card.census(), census);
        // A trim entirely past EOF is a pure no-op.
        card.trim(1 << 40, 16);
        assert_eq!(card.census(), census);
        assert_eq!(census.total(), card.capacity_blocks());
        card.check_invariants();
    }

    #[test]
    fn aged_preload_fills_every_fillable_slot() {
        let mut card = small_card(CleanerMode::Background);
        // 2 fillable segments x 128 blocks: utilization 1.0 of the
        // fillable region — the documented ceiling (one more panics, see
        // aged_preload_rejects_overfill).
        card.preload_aged(0..256);
        assert_eq!(card.live_blocks(), 256);
        let census = card.census();
        assert_eq!(census.dead, 0, "an aged-but-full card has no dead blocks");
        assert_eq!(census.free, 256, "frontier + reserve stay free");
        card.check_invariants();
        // Overwrites at this utilization still make progress: dead blocks
        // accumulate in the preloaded segments and cleaning reclaims them.
        let mut t = SimTime::ZERO;
        let mut lbn = 0u64;
        while card.counters().erasures == 0 {
            t = card.write(t, lbn % 256, 1).end;
            lbn += 1;
            assert!(lbn < 2000, "cleaning never triggered");
            assert_eq!(card.live_blocks(), 256, "overwrites keep live constant");
            card.check_invariants();
        }
    }

    #[test]
    fn transient_write_faults_add_retries_and_latency() {
        let fault = FaultConfig {
            write_fail_rate: 1.0,
            ..FaultConfig::none()
        };
        let mut clean = small_card(CleanerMode::Background);
        let mut faulty = small_card(CleanerMode::Background).with_faults(fault);
        let ok = clean.write(SimTime::ZERO, 0, 8);
        let slow = faulty.write(SimTime::ZERO, 0, 8);
        // At rate 1.0 every attempt fails until the controller gives up,
        // so each write pays exactly max_retries retries.
        assert_eq!(
            faulty.counters().write_retries,
            u64::from(fault.max_retries)
        );
        assert_eq!(clean.counters().write_retries, 0);
        // Each retry re-runs the transfer plus a fixed backoff, so the
        // faulty write is strictly slower than the clean one.
        assert!(slow.end - slow.start > ok.end - ok.start);
        faulty.check_invariants();
    }

    #[test]
    fn permanent_erase_failure_retires_one_segment_until_spares_run_low() {
        let fault = FaultConfig {
            erase_fail_rate: 1.0,
            permanent_rate: 1.0,
            ..FaultConfig::none()
        };
        let mut card = small_card(CleanerMode::OnDemand).with_faults(fault);
        card.preload(0..100);
        let mut t = SimTime::ZERO;
        let mut n = 0u64;
        while card.counters().segments_retired == 0 {
            t = card.write(t, n % 100, 1).end;
            n += 1;
            assert!(n < 4000, "no segment was ever retired");
        }
        // The first erase failure retires its victim; capacity shrinks by
        // one segment and the census still partitions raw capacity.
        assert_eq!(card.counters().segments_retired, 1);
        assert_eq!(card.retired_blocks(), 128);
        assert_eq!(card.usable_blocks(), 512 - 128);
        let census = card.census();
        assert_eq!(census.retired, 128);
        assert_eq!(census.total(), card.capacity_blocks());
        card.check_invariants();
        // Down to 3 usable segments the spare guard refuses further
        // retirements: permanent failures degrade to transient retries and
        // the card keeps serving writes.
        let before = card.counters().erase_retries;
        for _ in 0..600 {
            t = card.write(t, n % 100, 1).end;
            n += 1;
        }
        assert_eq!(card.counters().segments_retired, 1, "spare guard held");
        assert!(card.counters().erase_retries > before);
        assert_eq!(card.live_blocks(), 100, "no data lost to retirement");
        card.check_invariants();
    }

    #[test]
    fn capacity_exhaustion_enters_read_only_end_of_life() {
        use mobistore_sim::obs::CountingObserver;
        let mut card = small_card(CleanerMode::Background);
        let mut obs = CountingObserver::default();
        let mut t = SimTime::ZERO;
        let mut lbn = 0u64;
        // Ever-growing working set: once every full segment is fully live
        // nothing is cleanable and the card must go read-only, not panic.
        let err = loop {
            match card.try_write_obs(t, lbn, 1, &mut obs) {
                Ok(svc) => {
                    t = svc.end;
                    lbn += 1;
                }
                Err(e) => break e,
            }
            assert!(lbn < 1000, "card never filled");
        };
        assert!(matches!(err, DeviceError::ReadOnly { .. }));
        assert!(card.is_read_only());
        assert_eq!(obs.counts.get("flash_end_of_life"), 1);
        assert_eq!(card.counters().eol_write_rejections, 1);

        // Later writes fail fast with the same typed error and count.
        let e2 = card.try_write(t, 0, 1).expect_err("still read-only");
        assert!(matches!(e2, DeviceError::ReadOnly { .. }));
        assert_eq!(card.counters().eol_write_rejections, 2);

        // Reads and trims are still served; state stays consistent.
        let svc = card.read(t, 0, 1);
        assert!(svc.end > svc.start);
        let live = card.live_blocks();
        card.trim(0, 1);
        assert_eq!(card.live_blocks(), live - 1);
        card.check_invariants();

        // End of life is sticky: freed space does not resurrect the card.
        assert!(card.try_write(t, 0, 1).is_err());

        // The panicking wrapper reports the same condition.
        let msg = e2.to_string();
        assert!(msg.contains("read-only at end of life"), "{msg}");
    }

    #[test]
    fn cleaning_preserves_write_generations() {
        let mut card = small_card(CleanerMode::OnDemand);
        card.preload(0..300); // generations 1..=300 in lbn order
        let before: Vec<_> = card
            .snapshot()
            .into_iter()
            .filter(|e| e.lbn >= 200)
            .collect();
        assert_eq!(before.len(), 100);
        // Overwrite the low lbns until cleaning has run several times; the
        // untouched blocks 200..300 get relocated but never re-stamped.
        let mut t = SimTime::ZERO;
        for round in 0..3 {
            for lbn in 0..200 {
                t = card.write(t, lbn, 1).end;
            }
            let _ = round;
        }
        assert!(card.counters().erasures > 0, "cleaning never ran");
        let after: Vec<_> = card
            .snapshot()
            .into_iter()
            .filter(|e| e.lbn >= 200)
            .collect();
        for (b, a) in before.iter().zip(&after) {
            assert_eq!(b.lbn, a.lbn);
            assert_eq!(
                b.generation, a.generation,
                "lbn {} was re-stamped by the cleaner",
                b.lbn
            );
        }
        // Overwritten blocks carry fresh, monotonically larger generations.
        let low = card.snapshot();
        assert!(low
            .iter()
            .filter(|e| e.lbn < 200)
            .all(|e| e.generation > 300));
        assert_eq!(card.next_generation(), 1 + 300 + 600);
    }

    #[test]
    fn sabotage_is_invisible_to_invariants_but_not_the_shadow() {
        use mobistore_sim::crashcheck::ShadowModel;
        let mut card = small_card(CleanerMode::Background);
        let mut shadow = ShadowModel::new();
        let mut t = SimTime::ZERO;
        for lbn in 0..64 {
            t = card.write(t, lbn, 1).end;
            shadow.write(lbn, 1);
        }
        let observed: Vec<(u64, u64)> = card
            .snapshot()
            .into_iter()
            .map(|e| (e.lbn, e.generation))
            .collect();
        assert!(shadow.verify(&observed).is_empty());

        assert!(card.sabotage_lose_block(17));
        card.check_invariants(); // the bug is internally consistent...
        let observed: Vec<(u64, u64)> = card
            .snapshot()
            .into_iter()
            .map(|e| (e.lbn, e.generation))
            .collect();
        let violations = shadow.verify(&observed);
        assert_eq!(violations.len(), 1, "...but the shadow catches it");
        assert!(matches!(
            violations[0],
            mobistore_sim::crashcheck::Violation::LostWrite { lbn: 17, .. }
        ));
    }

    #[test]
    fn power_fail_reclaims_an_orphaned_cleaning_job() {
        let mut card = small_card(CleanerMode::Background);
        // Same setup as background_cleaning_runs_in_idle_gaps: draining
        // the erased pool launches a job whose victim is fully dead.
        let mut t = card.write(SimTime::ZERO, 0, 128).end;
        t = card.write(t, 128, 128).end;
        card.trim(0, 128);
        t = card.write(t, 256, 129).end;
        assert_eq!(card.counters().erasures, 0, "erase still in flight");
        // The failure lands 10 ms into a ~1.6 s erase, orphaning the
        // victim; recovery's log scan detects the un-erased fully-dead
        // segment and reclaims it with a fresh erase.
        let svc = card.power_fail(t + SimDuration::from_millis(10));
        assert_eq!(card.counters().power_failures, 1);
        assert_eq!(card.counters().erasures, 1, "orphan re-erased by recovery");
        assert!(card.counters().recovery_time > SimDuration::ZERO);
        assert!(card.meter().category("recover").get() > 0.0);
        assert!(svc.end > svc.start);
        card.check_invariants();
        // The reclaimed segment is writable again.
        let free = card.free_blocks();
        card.write(svc.end, 600, 8);
        assert_eq!(card.free_blocks(), free - 8);
    }

    #[test]
    fn zero_rate_integrity_is_byte_identical() {
        let mut plain = small_card(CleanerMode::Background);
        let mut quiet = small_card(CleanerMode::Background).with_integrity(IntegrityConfig::none());
        let mut tp = SimTime::ZERO;
        let mut tq = SimTime::ZERO;
        for lbn in 0..200u64 {
            tp = plain.write(tp, lbn % 80, 1).end;
            tq = quiet.write(tq, lbn % 80, 1).end;
            let rp = plain.read(tp, lbn % 80, 1);
            let rq = quiet.read(tq, lbn % 80, 1);
            assert_eq!(rp, rq);
            tp = rp.end;
            tq = rq.end;
        }
        assert_eq!(plain.counters(), quiet.counters());
        assert_eq!(plain.energy().get(), quiet.energy().get());
        assert_eq!(plain.snapshot(), quiet.snapshot());
    }

    #[test]
    fn ecc_corrections_add_latency_and_count() {
        // λ = 3: essentially every read sees a few correctable errors.
        let cfg = IntegrityConfig {
            base_errors: 3.0,
            seed: 11,
            ..IntegrityConfig::none()
        };
        let mut clean = small_card(CleanerMode::Background);
        let mut noisy = small_card(CleanerMode::Background).with_integrity(cfg);
        clean.write(SimTime::ZERO, 0, 8);
        noisy.write(SimTime::ZERO, 0, 8);
        let t = SimTime::from_secs_f64(1.0);
        let ok = clean.read(t, 0, 8);
        let slow = noisy.read(t, 0, 8);
        assert!(noisy.counters().ecc_corrected > 0);
        let extra = (slow.end - slow.start).saturating_sub(ok.end - ok.start);
        assert_eq!(
            extra,
            cfg.correction_penalty * noisy.counters().ecc_corrected
        );
        noisy.check_invariants();
    }

    #[test]
    fn uncorrectable_read_unmaps_the_block_and_reports() {
        use mobistore_sim::obs::CountingObserver;
        // λ = 50: far past the retry threshold on every draw.
        let cfg = IntegrityConfig {
            base_errors: 50.0,
            seed: 5,
            ..IntegrityConfig::none()
        };
        let mut card = small_card(CleanerMode::Background).with_integrity(cfg);
        let mut obs = CountingObserver::default();
        card.write(SimTime::ZERO, 0, 4);
        let t = SimTime::from_secs_f64(1.0);
        let (svc, res) = card.try_read_obs(t, 0, 4, &mut obs);
        assert!(svc.end > svc.start, "time is accounted even on failure");
        let err = res.expect_err("λ=50 must exceed the retry threshold");
        assert!(matches!(err, DeviceError::Uncorrectable { lbn: 0, .. }));
        assert_eq!(card.counters().uncorrectable_reads, 4);
        assert_eq!(card.live_blocks(), 0, "lost blocks are unmapped");
        assert_eq!(obs.counts.get("uncorrectable_read"), 4);
        card.check_invariants();
        // The data is gone: a later read of the same range finds nothing
        // mapped and succeeds vacuously without drawing errors.
        let (_, res2) = card.try_read(svc.end, 0, 4);
        assert!(res2.is_ok());
        let msg = err.to_string();
        assert!(msg.contains("uncorrectable read of block 0"), "{msg}");
    }

    #[test]
    fn high_error_blocks_are_relocated_with_generations_preserved() {
        use mobistore_sim::obs::CountingObserver;
        // λ = 7 with ECC budget 8: most reads are corrected, and counts
        // ≥ 6 (about half) trip the relocation threshold.
        let cfg = IntegrityConfig {
            base_errors: 7.0,
            seed: 23,
            ..IntegrityConfig::none()
        };
        let mut card = small_card(CleanerMode::Background).with_integrity(cfg);
        let mut obs = CountingObserver::default();
        card.write(SimTime::ZERO, 0, 8);
        let before = card.snapshot();
        let mut t = SimTime::from_secs_f64(1.0);
        for _ in 0..8 {
            t = card.read_obs(t, 0, 8, &mut obs).end;
        }
        assert!(card.counters().blocks_relocated > 0);
        assert_eq!(
            obs.counts.get("block_relocated"),
            card.counters().blocks_relocated
        );
        // Every surviving block keeps its original generation (a rare draw
        // past the retry threshold may have unmapped a block — that loss
        // is reported via uncorrectable_reads, not silent).
        let after = card.snapshot();
        assert_eq!(
            before.len(),
            after.len() + card.counters().uncorrectable_reads as usize
        );
        for a in &after {
            let b = before.iter().find(|b| b.lbn == a.lbn).expect("was live");
            assert_eq!(
                b.generation, a.generation,
                "relocation re-stamped lbn {}",
                a.lbn
            );
        }
        card.check_invariants();
    }

    #[test]
    fn scrubbing_clean_segments_is_invisible_to_reads() {
        // Zero error rates with scrubbing on: passes run in idle gaps,
        // draw nothing, and leave reads bit-identical to an unscrubbed
        // card — the scrub-then-read = read-then-scrub property.
        let scrub = IntegrityConfig::none().with_scrub(SimDuration::from_secs(60));
        let mut plain = small_card(CleanerMode::Background);
        let mut scrubbed = small_card(CleanerMode::Background).with_integrity(scrub);
        plain.write(SimTime::ZERO, 0, 64);
        scrubbed.write(SimTime::ZERO, 0, 64);
        let t = SimTime::from_secs_f64(600.0); // ~9 scrub passes fit
        let rp = plain.read(t, 0, 64);
        let rs = scrubbed.read(t, 0, 64);
        assert_eq!(rp, rs, "scrubbing clean data never delays reads");
        assert_eq!(plain.snapshot(), scrubbed.snapshot());
        assert!(scrubbed.counters().scrub_passes > 0);
        assert_eq!(
            scrubbed.counters().scrub_reads,
            64 * scrubbed.counters().scrub_passes
        );
        assert!(scrubbed.meter().category("scrub").get() > 0.0);
        assert_eq!(plain.meter().category("scrub").get(), 0.0);
        scrubbed.check_invariants();
    }

    #[test]
    fn scrubber_finds_retention_loss_during_idle() {
        use mobistore_sim::obs::CountingObserver;
        // Strong retention coupling: blocks decay while the card idles,
        // and the scrubber is what discovers (and reports) the damage.
        let cfg = IntegrityConfig {
            retention_per_hour: 30.0,
            seed: 9,
            ..IntegrityConfig::none()
        }
        .with_scrub(SimDuration::from_secs(3600));
        let mut card = small_card(CleanerMode::Background).with_integrity(cfg);
        let mut obs = CountingObserver::default();
        card.write(SimTime::ZERO, 0, 32);
        // A day of idle: scrub passes sweep the data as λ climbs.
        card.finish_obs(SimTime::ZERO + SimDuration::from_days(1), &mut obs);
        assert!(card.counters().scrub_passes > 0);
        assert!(
            card.counters().uncorrectable_reads > 0,
            "a day at 30 errors/hour must kill some blocks"
        );
        assert_eq!(obs.counts.get("scrub_pass"), card.counters().scrub_passes);
        assert!(obs.counts.get("uncorrectable_read") > 0);
        card.check_invariants();
    }

    #[test]
    fn retry_backoff_totals_match_the_injected_delay() {
        let fault = FaultConfig {
            write_fail_rate: 1.0,
            ..FaultConfig::none()
        };
        let mut clean = small_card(CleanerMode::Background);
        let mut faulty = small_card(CleanerMode::Background).with_faults(fault);
        let ok = clean.write(SimTime::ZERO, 0, 8);
        let slow = faulty.write(SimTime::ZERO, 0, 8);
        // The backoff counter accounts for exactly the extra service time.
        assert_eq!(
            faulty.counters().write_retry_backoff,
            (slow.end - slow.start).saturating_sub(ok.end - ok.start)
        );
        assert_eq!(clean.counters().write_retry_backoff, SimDuration::ZERO);
        // One episode, recorded for the percentile histogram.
        assert_eq!(faulty.backoff_recorder().histogram().count(), 1);
        assert!(!SimDuration::from_nanos(
            faulty.backoff_recorder().histogram().percentile_nanos(0.5)
        )
        .is_zero());
    }
}
