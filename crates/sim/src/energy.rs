//! Energy and power accounting.
//!
//! The paper's central metric is total energy consumed by the storage system
//! (Table 4, Figures 2, 4, 5). Devices are modeled as spending wall-clock
//! time in *power states* (active, idle, sleeping, spinning up, …), each with
//! a constant power draw; energy is the power × time integral.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub};

use crate::time::SimDuration;

/// An amount of energy, in joules.
///
/// # Examples
///
/// ```
/// use mobistore_sim::energy::{Joules, Watts};
/// use mobistore_sim::time::SimDuration;
///
/// let e = Watts(2.0) * SimDuration::from_secs(3);
/// assert_eq!(e, Joules(6.0));
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(pub f64);

/// A power draw, in watts.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(pub f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Returns the raw joule count.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Watts {
    /// Zero power draw.
    pub const ZERO: Watts = Watts(0.0);

    /// Returns the raw watt value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Mul<SimDuration> for Watts {
    type Output = Joules;
    fn mul(self, rhs: SimDuration) -> Joules {
        Joules(self.0 * rhs.as_secs_f64())
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        iter.fold(Joules::ZERO, |acc, j| acc + j)
    }
}

impl fmt::Debug for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}J", self.0)
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} J", self.0)
    }
}

impl fmt::Debug for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}W", self.0)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} W", self.0)
    }
}

/// Accumulates energy, optionally broken down by a small set of named
/// categories (e.g. "active", "idle", "spin-up").
///
/// Categories are fixed at construction; charging to an unknown category
/// panics, which catches typos in device code early.
///
/// # Examples
///
/// ```
/// use mobistore_sim::energy::{EnergyMeter, Watts};
/// use mobistore_sim::time::SimDuration;
///
/// let mut meter = EnergyMeter::new(&["active", "idle"]);
/// meter.charge("active", Watts(1.75) * SimDuration::from_secs(2));
/// meter.charge("idle", Watts(0.7) * SimDuration::from_secs(10));
/// assert!((meter.total().get() - 10.5).abs() < 1e-9);
/// assert_eq!(meter.category("active").get(), 3.5);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    categories: Vec<(&'static str, Joules, SimDuration)>,
}

impl EnergyMeter {
    /// Creates a meter with the given category names.
    pub fn new(categories: &[&'static str]) -> Self {
        EnergyMeter {
            categories: categories
                .iter()
                .map(|&name| (name, Joules::ZERO, SimDuration::ZERO))
                .collect(),
        }
    }

    /// Adds `energy` to `category` without attributing any state time
    /// (e.g. a fixed per-operation cost).
    ///
    /// # Panics
    ///
    /// Panics if `category` was not declared at construction.
    pub fn charge(&mut self, category: &str, energy: Joules) {
        let slot = self.slot(category);
        slot.1 += energy;
    }

    /// Charges `power × duration` to `category` and attributes the
    /// duration as time spent in that state, enabling duty-cycle reports.
    ///
    /// # Panics
    ///
    /// Panics if `category` was not declared at construction.
    pub fn charge_for(&mut self, category: &str, power: Watts, duration: SimDuration) {
        let slot = self.slot(category);
        slot.1 += power * duration;
        slot.2 += duration;
    }

    fn slot(&mut self, category: &str) -> &mut (&'static str, Joules, SimDuration) {
        self.categories
            .iter_mut()
            .find(|(name, _, _)| *name == category)
            .unwrap_or_else(|| panic!("unknown energy category: {category}"))
    }

    /// Returns the energy charged to `category`.
    ///
    /// # Panics
    ///
    /// Panics if `category` was not declared at construction.
    pub fn category(&self, category: &str) -> Joules {
        self.categories
            .iter()
            .find(|(name, _, _)| *name == category)
            .map(|(_, e, _)| *e)
            .unwrap_or_else(|| panic!("unknown energy category: {category}"))
    }

    /// Returns the time attributed to `category` via
    /// [`charge_for`](Self::charge_for).
    ///
    /// # Panics
    ///
    /// Panics if `category` was not declared at construction.
    pub fn category_time(&self, category: &str) -> SimDuration {
        self.categories
            .iter()
            .find(|(name, _, _)| *name == category)
            .map(|(_, _, d)| *d)
            .unwrap_or_else(|| panic!("unknown energy category: {category}"))
    }

    /// Returns total energy across all categories.
    pub fn total(&self) -> Joules {
        self.categories.iter().map(|(_, e, _)| *e).sum()
    }

    /// Iterates over `(category, energy)` pairs in declaration order.
    pub fn breakdown(&self) -> impl Iterator<Item = (&'static str, Joules)> + '_ {
        self.categories.iter().map(|(n, e, _)| (*n, *e))
    }

    /// Iterates over `(category, energy, attributed time)` triples in
    /// declaration order.
    pub fn breakdown_timed(
        &self,
    ) -> impl Iterator<Item = (&'static str, Joules, SimDuration)> + '_ {
        self.categories.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts(0.5) * SimDuration::from_millis(2_000);
        assert!((e.get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn joule_arithmetic() {
        let a = Joules(1.5);
        let b = Joules(0.5);
        assert_eq!((a + b).get(), 2.0);
        assert_eq!((a - b).get(), 1.0);
        let total: Joules = [a, b, b].into_iter().sum();
        assert_eq!(total.get(), 2.5);
    }

    #[test]
    fn meter_accumulates_per_category() {
        let mut m = EnergyMeter::new(&["a", "b"]);
        m.charge("a", Joules(1.0));
        m.charge("a", Joules(2.0));
        m.charge("b", Joules(4.0));
        assert_eq!(m.category("a").get(), 3.0);
        assert_eq!(m.category("b").get(), 4.0);
        assert_eq!(m.total().get(), 7.0);
        let names: Vec<_> = m.breakdown().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn charge_for_tracks_time_and_energy() {
        let mut m = EnergyMeter::new(&["active", "idle"]);
        m.charge_for("active", Watts(2.0), SimDuration::from_secs(3));
        m.charge_for("active", Watts(1.0), SimDuration::from_secs(1));
        m.charge("active", Joules(0.5)); // Untimed surcharge.
        assert!((m.category("active").get() - 7.5).abs() < 1e-12);
        assert_eq!(m.category_time("active"), SimDuration::from_secs(4));
        assert_eq!(m.category_time("idle"), SimDuration::ZERO);
        let timed: Vec<_> = m.breakdown_timed().collect();
        assert_eq!(timed.len(), 2);
        assert_eq!(timed[0].0, "active");
    }

    #[test]
    #[should_panic(expected = "unknown energy category")]
    fn unknown_category_panics() {
        let mut m = EnergyMeter::new(&["a"]);
        m.charge("nope", Joules(1.0));
    }
}
