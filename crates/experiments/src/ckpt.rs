//! The `mobistore-fleet-ckpt/1` checkpoint codec.
//!
//! A checkpoint persists the fleet supervisor's [`FoldState`] — survivor
//! rows, per-device-class partial merges, the fleet-wide merge, the
//! quarantine ledger, and the completed-chunk watermark — so an
//! interrupted `repro fleet` run resumes where it stopped and still
//! produces output **byte-identical** to an uninterrupted run.
//!
//! Byte-identity forces two properties on the format:
//!
//! - **Bit-exact floats.** Every `f64` is stored as its IEEE-754 bit
//!   pattern (`to_bits()` in hex), never as decimal text, so a
//!   round-trip cannot perturb a merged mean by half an ulp.
//! - **Lossless histograms.** [`Histogram`] buckets are stored as
//!   `lo:count` pairs and replayed through
//!   [`Histogram::record_n`] — recording a bucket's lower bound maps
//!   back to the same bucket, so the restored histogram is `Eq`-equal
//!   to the original.
//!
//! The format is line-based text: one tagged line per fact, tokens
//! separated by spaces, strings escaped (`\s` space, `\n` newline,
//! `\r` CR, `\\` backslash) so every line splits on whitespace. A
//! trailing `end` line guards against truncated files: a checkpoint
//! torn mid-write never validates, and [`store`] writes through a
//! temporary file plus rename so the published path always holds a
//! complete document.
//!
//! The header carries a **fingerprint** — an FNV-1a hash over every
//! input that shapes shard bytes (shard count, population, fleet seed,
//! retry budget, chaos panic rate, scale, chunk size, and both mixes).
//! [`load`] refuses a checkpoint whose fingerprint differs from the
//! resuming run's: resuming under a different configuration would
//! silently splice incompatible shard results. Inputs that *don't*
//! change shard bytes — `--jobs`, checkpoint cadence and paths, and
//! `--chaos-fail-point` (it only decides when to abort) — are
//! deliberately excluded, so a run aborted at a fail point or resumed
//! on a different core count is accepted.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use mobistore_cache::dram::CacheStats;
use mobistore_cache::sram::SramStats;
use mobistore_core::metrics::Metrics;
use mobistore_device::array::ArrayCounters;
use mobistore_device::disk::DiskCounters;
use mobistore_device::flashdisk::FlashDiskCounters;
use mobistore_flash::store::{FlashCardCounters, WearStats};
use mobistore_sim::energy::Joules;
use mobistore_sim::fleet::ShardError;
use mobistore_sim::hist::Histogram;
use mobistore_sim::stats::Summary;
use mobistore_sim::time::SimDuration;

use crate::fleet::{device_mix, workload_mix, FleetOptions, FoldState, ShardRow, CHUNK};
use crate::Scale;

/// The checkpoint schema identifier (also the file's first line).
pub const CKPT_SCHEMA: &str = "mobistore-fleet-ckpt/1";

/// FNV-1a over a byte string.
fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The configuration fingerprint stored in (and demanded of) a
/// checkpoint: a hash over every input that shapes shard bytes.
///
/// Includes shards, population, fleet seed, retry budget, chaos panic
/// rate (bit pattern), scale fraction (bit pattern) and seed, the chunk
/// size, and both weighted mixes. Excludes `--jobs`, checkpoint paths
/// and cadence, and `--chaos-fail-point` — none of them change what any
/// shard computes.
pub fn fingerprint(opts: &FleetOptions, scale: Scale) -> u64 {
    let mut desc = format!(
        "{CKPT_SCHEMA};shards={};population={};seed={};retry={};chaos={:016x};\
         scale={:016x};scaleseed={};chunk={CHUNK}",
        opts.shards,
        opts.population,
        opts.seed,
        opts.retry_budget,
        opts.chaos.panic_rate.to_bits(),
        scale.fraction.to_bits(),
        scale.seed,
    );
    for (name, weight) in workload_mix().entries() {
        let _ = write!(desc, ";w:{name}={weight}");
    }
    for (name, weight) in device_mix().entries() {
        let _ = write!(desc, ";d:{name}={weight}");
    }
    fnv1a(desc.bytes())
}

/// Escapes a string into a single whitespace-free token.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`esc`].
fn unesc(token: &str) -> Result<String, String> {
    let mut out = String::with_capacity(token.len());
    let mut chars = token.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => return Err(format!("bad escape '\\{}'", other.unwrap_or(' '))),
        }
    }
    Ok(out)
}

/// Interns a string, leaking each distinct value exactly once.
///
/// Checkpointed labels (workload/device classes, component and state
/// names) restore into `&'static str` fields; the registry bounds the
/// leak to the small closed set of distinct names a fleet uses.
fn intern(s: &str) -> &'static str {
    static REGISTRY: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut reg = REGISTRY
        .get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        .expect("intern registry never panics while locked");
    if let Some(known) = reg.iter().find(|k| **k == s) {
        return known;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    reg.push(leaked);
    leaked
}

/// Hex bit pattern of an `f64` (bit-exact round trip).
fn bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// The five (summary, histogram) latency channels a [`Metrics`] carries.
const CHANNELS: [&str; 5] = ["read", "write", "overall", "backoff", "degraded"];

fn encode_metrics(out: &mut String, m: &Metrics) {
    let _ = writeln!(out, "m.name {}", esc(&m.name));
    let _ = writeln!(out, "m.energy {}", bits(m.energy.get()));
    for (name, j) in &m.energy_by_component {
        let _ = writeln!(out, "m.comp {} {}", esc(name), bits(j.get()));
    }
    for (name, j, d) in &m.backend_states {
        let _ = writeln!(
            out,
            "m.state {} {} {}",
            esc(name),
            bits(j.get()),
            d.as_nanos()
        );
    }
    let summaries = [
        &m.read_response_ms,
        &m.write_response_ms,
        &m.overall_response_ms,
        &m.backoff_ms,
        &m.degraded_read_ms,
    ];
    for (key, s) in CHANNELS.iter().zip(summaries) {
        let _ = writeln!(
            out,
            "m.sum {key} {} {} {} {} {} {}",
            s.count,
            bits(s.mean),
            bits(s.max),
            bits(s.min),
            bits(s.std),
            bits(s.sum)
        );
    }
    let hists = [
        &m.read_latency,
        &m.write_latency,
        &m.overall_latency,
        &m.backoff_latency,
        &m.degraded_read_latency,
    ];
    for (key, h) in CHANNELS.iter().zip(hists) {
        let _ = write!(out, "m.hist {key}");
        for (lo, _, count) in h.iter_nonzero() {
            let _ = write!(out, " {lo}:{count}");
        }
        out.push('\n');
    }
    let _ = writeln!(out, "m.dur {}", m.duration.as_nanos());
    if let Some(c) = &m.cache {
        let _ = writeln!(
            out,
            "m.cache {} {} {} {} {}",
            c.read_hits, c.read_misses, c.writes, c.writebacks, c.fill_rejects
        );
    }
    if let Some(s) = &m.sram {
        let _ = writeln!(out, "m.sram {} {} {}", s.absorbed, s.flushes, s.read_hits);
    }
    if let Some(d) = &m.disk {
        let _ = writeln!(
            out,
            "m.disk {} {} {} {} {} {} {}",
            d.ops,
            d.spin_ups,
            d.spin_downs,
            d.bytes_read,
            d.bytes_written,
            d.power_failures,
            d.recovery_time.as_nanos()
        );
    }
    if let Some(d) = &m.flash_disk {
        let _ = writeln!(
            out,
            "m.flashdisk {} {} {} {} {} {} {} {} {} {}",
            d.ops,
            d.bytes_read,
            d.bytes_written,
            d.bytes_pre_erased,
            d.bytes_erased_on_demand,
            d.power_failures,
            d.recovery_time.as_nanos(),
            d.ecc_corrected,
            d.read_retries,
            d.uncorrectable_reads
        );
    }
    if let Some(c) = &m.flash_card {
        let _ = writeln!(
            out,
            "m.card {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            c.ops,
            c.bytes_read,
            c.bytes_written,
            c.erasures,
            c.blocks_copied,
            c.cleaning_waits,
            c.write_retries,
            c.erase_retries,
            c.segments_retired,
            c.power_failures,
            c.recovery_time.as_nanos(),
            c.eol_write_rejections,
            c.ecc_corrected,
            c.read_retries,
            c.uncorrectable_reads,
            c.blocks_relocated,
            c.scrub_passes,
            c.scrub_reads,
            c.write_retry_backoff.as_nanos(),
            c.erase_retry_backoff.as_nanos()
        );
    }
    if let Some(a) = &m.array {
        let _ = writeln!(
            out,
            "m.array {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
            a.ops,
            a.bytes_read,
            a.bytes_written,
            a.degraded_reads,
            a.parity_updates,
            a.rebuild_stripes,
            a.rebuilds_completed,
            a.rebuild_time.as_nanos(),
            a.device_deaths,
            a.data_loss_events,
            a.vulnerability.as_nanos(),
            a.power_failures,
            a.recovery_time.as_nanos(),
            a.read_only_rejections
        );
    }
    if let Some(w) = &m.wear {
        let _ = writeln!(
            out,
            "m.wear {} {} {}",
            w.max_erase,
            bits(w.mean_erase),
            w.total
        );
    }
    let _ = writeln!(
        out,
        "m.misc {} {} {} {}",
        m.lost_dirty_blocks, m.rejected_writes, m.rejected_blocks, m.uncorrectable_reads
    );
    out.push_str("m.end\n");
}

/// Serializes the fold state into checkpoint bytes.
fn encode(state: &FoldState, fingerprint: u64, total_chunks: u64, shards_total: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{CKPT_SCHEMA}");
    let _ = writeln!(out, "fingerprint {fingerprint:016x}");
    let _ = writeln!(
        out,
        "progress {} {total_chunks} {shards_total} {CHUNK}",
        state.chunks_done
    );
    for r in &state.rows {
        let _ = writeln!(
            out,
            "row {} {} {} {} {} {} {:016x}",
            r.index,
            r.users,
            esc(r.workload),
            esc(r.device),
            r.ops,
            bits(r.energy_j),
            r.digest
        );
    }
    for q in &state.quarantined {
        let _ = writeln!(
            out,
            "quarantine {} {} {}",
            q.shard,
            q.attempts,
            esc(&q.cause)
        );
    }
    for (class, m) in &state.per_class {
        let _ = writeln!(out, "class {}", esc(class));
        encode_metrics(&mut out, m);
    }
    out.push_str("total\n");
    encode_metrics(&mut out, &state.total);
    out.push_str("end\n");
    out
}

/// Atomically writes `state` as a checkpoint: the bytes land in a
/// sibling `.tmp` file first and are renamed over `path`, so the
/// published path never holds a torn document even under kill -9.
pub fn store(
    path: &Path,
    state: &FoldState,
    fingerprint: u64,
    total_chunks: u64,
    shards_total: u64,
) -> std::io::Result<()> {
    let doc = encode(state, fingerprint, total_chunks, shards_total);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    fs::write(&tmp, doc)?;
    fs::rename(&tmp, path)
}

/// A line cursor that renders parse failures with their line number.
struct Lines<'a> {
    lines: std::str::Lines<'a>,
    number: usize,
    current: &'a str,
}

impl<'a> Lines<'a> {
    fn new(doc: &'a str) -> Self {
        Lines {
            lines: doc.lines(),
            number: 0,
            current: "",
        }
    }

    fn next(&mut self) -> Result<&'a str, String> {
        match self.lines.next() {
            Some(line) => {
                self.number += 1;
                self.current = line;
                Ok(line)
            }
            None => Err("truncated checkpoint: unexpected end of file".into()),
        }
    }

    fn fail(&self, what: &str) -> String {
        format!("line {}: {what} in '{}'", self.number, self.current)
    }
}

fn parse_u64(cur: &Lines<'_>, token: Option<&str>, what: &str) -> Result<u64, String> {
    token
        .ok_or_else(|| cur.fail(&format!("missing {what}")))?
        .parse::<u64>()
        .map_err(|_| cur.fail(&format!("bad {what}")))
}

fn parse_f64_bits(cur: &Lines<'_>, token: Option<&str>, what: &str) -> Result<f64, String> {
    let token = token.ok_or_else(|| cur.fail(&format!("missing {what}")))?;
    u64::from_str_radix(token, 16)
        .map(f64::from_bits)
        .map_err(|_| cur.fail(&format!("bad {what}")))
}

fn parse_str(cur: &Lines<'_>, token: Option<&str>, what: &str) -> Result<String, String> {
    let token = token.ok_or_else(|| cur.fail(&format!("missing {what}")))?;
    unesc(token).map_err(|e| cur.fail(&format!("bad {what}: {e}")))
}

/// Decodes one `m.*` block (after its introducing `class`/`total` line).
fn decode_metrics(cur: &mut Lines<'_>) -> Result<Metrics, String> {
    let mut m = Metrics::empty("");
    loop {
        let line = cur.next()?;
        let mut t = line.split_whitespace();
        let tag = t.next().unwrap_or("");
        match tag {
            "m.end" => return Ok(m),
            "m.name" => m.name = parse_str(cur, t.next(), "name")?,
            "m.energy" => m.energy = Joules(parse_f64_bits(cur, t.next(), "energy")?),
            "m.comp" => {
                let name = intern(&parse_str(cur, t.next(), "component")?);
                let j = Joules(parse_f64_bits(cur, t.next(), "component energy")?);
                m.energy_by_component.push((name, j));
            }
            "m.state" => {
                let name = intern(&parse_str(cur, t.next(), "state")?);
                let j = Joules(parse_f64_bits(cur, t.next(), "state energy")?);
                let d = SimDuration::from_nanos(parse_u64(cur, t.next(), "state duration")?);
                m.backend_states.push((name, j, d));
            }
            "m.sum" => {
                let key = t.next().unwrap_or("");
                let s = Summary {
                    count: parse_u64(cur, t.next(), "count")?,
                    mean: parse_f64_bits(cur, t.next(), "mean")?,
                    max: parse_f64_bits(cur, t.next(), "max")?,
                    min: parse_f64_bits(cur, t.next(), "min")?,
                    std: parse_f64_bits(cur, t.next(), "std")?,
                    sum: parse_f64_bits(cur, t.next(), "sum")?,
                };
                *match key {
                    "read" => &mut m.read_response_ms,
                    "write" => &mut m.write_response_ms,
                    "overall" => &mut m.overall_response_ms,
                    "backoff" => &mut m.backoff_ms,
                    "degraded" => &mut m.degraded_read_ms,
                    _ => return Err(cur.fail("unknown summary channel")),
                } = s;
            }
            "m.hist" => {
                let key = t.next().unwrap_or("");
                let mut h = Histogram::default();
                for pair in t {
                    let (lo, count) = pair
                        .split_once(':')
                        .ok_or_else(|| cur.fail("bad histogram pair"))?;
                    let lo = lo.parse::<u64>().map_err(|_| cur.fail("bad bucket lo"))?;
                    let count = count
                        .parse::<u64>()
                        .map_err(|_| cur.fail("bad bucket count"))?;
                    h.record_n(lo, count);
                }
                *match key {
                    "read" => &mut m.read_latency,
                    "write" => &mut m.write_latency,
                    "overall" => &mut m.overall_latency,
                    "backoff" => &mut m.backoff_latency,
                    "degraded" => &mut m.degraded_read_latency,
                    _ => return Err(cur.fail("unknown histogram channel")),
                } = h;
            }
            "m.dur" => m.duration = SimDuration::from_nanos(parse_u64(cur, t.next(), "duration")?),
            "m.cache" => {
                m.cache = Some(CacheStats {
                    read_hits: parse_u64(cur, t.next(), "read_hits")?,
                    read_misses: parse_u64(cur, t.next(), "read_misses")?,
                    writes: parse_u64(cur, t.next(), "writes")?,
                    writebacks: parse_u64(cur, t.next(), "writebacks")?,
                    fill_rejects: parse_u64(cur, t.next(), "fill_rejects")?,
                });
            }
            "m.sram" => {
                m.sram = Some(SramStats {
                    absorbed: parse_u64(cur, t.next(), "absorbed")?,
                    flushes: parse_u64(cur, t.next(), "flushes")?,
                    read_hits: parse_u64(cur, t.next(), "read_hits")?,
                });
            }
            "m.disk" => {
                m.disk = Some(DiskCounters {
                    ops: parse_u64(cur, t.next(), "ops")?,
                    spin_ups: parse_u64(cur, t.next(), "spin_ups")?,
                    spin_downs: parse_u64(cur, t.next(), "spin_downs")?,
                    bytes_read: parse_u64(cur, t.next(), "bytes_read")?,
                    bytes_written: parse_u64(cur, t.next(), "bytes_written")?,
                    power_failures: parse_u64(cur, t.next(), "power_failures")?,
                    recovery_time: SimDuration::from_nanos(parse_u64(
                        cur,
                        t.next(),
                        "recovery_time",
                    )?),
                });
            }
            "m.flashdisk" => {
                m.flash_disk = Some(FlashDiskCounters {
                    ops: parse_u64(cur, t.next(), "ops")?,
                    bytes_read: parse_u64(cur, t.next(), "bytes_read")?,
                    bytes_written: parse_u64(cur, t.next(), "bytes_written")?,
                    bytes_pre_erased: parse_u64(cur, t.next(), "bytes_pre_erased")?,
                    bytes_erased_on_demand: parse_u64(cur, t.next(), "bytes_erased_on_demand")?,
                    power_failures: parse_u64(cur, t.next(), "power_failures")?,
                    recovery_time: SimDuration::from_nanos(parse_u64(
                        cur,
                        t.next(),
                        "recovery_time",
                    )?),
                    ecc_corrected: parse_u64(cur, t.next(), "ecc_corrected")?,
                    read_retries: parse_u64(cur, t.next(), "read_retries")?,
                    uncorrectable_reads: parse_u64(cur, t.next(), "uncorrectable_reads")?,
                });
            }
            "m.card" => {
                m.flash_card = Some(FlashCardCounters {
                    ops: parse_u64(cur, t.next(), "ops")?,
                    bytes_read: parse_u64(cur, t.next(), "bytes_read")?,
                    bytes_written: parse_u64(cur, t.next(), "bytes_written")?,
                    erasures: parse_u64(cur, t.next(), "erasures")?,
                    blocks_copied: parse_u64(cur, t.next(), "blocks_copied")?,
                    cleaning_waits: parse_u64(cur, t.next(), "cleaning_waits")?,
                    write_retries: parse_u64(cur, t.next(), "write_retries")?,
                    erase_retries: parse_u64(cur, t.next(), "erase_retries")?,
                    segments_retired: parse_u64(cur, t.next(), "segments_retired")?,
                    power_failures: parse_u64(cur, t.next(), "power_failures")?,
                    recovery_time: SimDuration::from_nanos(parse_u64(
                        cur,
                        t.next(),
                        "recovery_time",
                    )?),
                    eol_write_rejections: parse_u64(cur, t.next(), "eol_write_rejections")?,
                    ecc_corrected: parse_u64(cur, t.next(), "ecc_corrected")?,
                    read_retries: parse_u64(cur, t.next(), "read_retries")?,
                    uncorrectable_reads: parse_u64(cur, t.next(), "uncorrectable_reads")?,
                    blocks_relocated: parse_u64(cur, t.next(), "blocks_relocated")?,
                    scrub_passes: parse_u64(cur, t.next(), "scrub_passes")?,
                    scrub_reads: parse_u64(cur, t.next(), "scrub_reads")?,
                    write_retry_backoff: SimDuration::from_nanos(parse_u64(
                        cur,
                        t.next(),
                        "write_retry_backoff",
                    )?),
                    erase_retry_backoff: SimDuration::from_nanos(parse_u64(
                        cur,
                        t.next(),
                        "erase_retry_backoff",
                    )?),
                });
            }
            "m.array" => {
                m.array = Some(ArrayCounters {
                    ops: parse_u64(cur, t.next(), "ops")?,
                    bytes_read: parse_u64(cur, t.next(), "bytes_read")?,
                    bytes_written: parse_u64(cur, t.next(), "bytes_written")?,
                    degraded_reads: parse_u64(cur, t.next(), "degraded_reads")?,
                    parity_updates: parse_u64(cur, t.next(), "parity_updates")?,
                    rebuild_stripes: parse_u64(cur, t.next(), "rebuild_stripes")?,
                    rebuilds_completed: parse_u64(cur, t.next(), "rebuilds_completed")?,
                    rebuild_time: SimDuration::from_nanos(parse_u64(
                        cur,
                        t.next(),
                        "rebuild_time",
                    )?),
                    device_deaths: parse_u64(cur, t.next(), "device_deaths")?,
                    data_loss_events: parse_u64(cur, t.next(), "data_loss_events")?,
                    vulnerability: SimDuration::from_nanos(parse_u64(
                        cur,
                        t.next(),
                        "vulnerability",
                    )?),
                    power_failures: parse_u64(cur, t.next(), "power_failures")?,
                    recovery_time: SimDuration::from_nanos(parse_u64(
                        cur,
                        t.next(),
                        "recovery_time",
                    )?),
                    read_only_rejections: parse_u64(cur, t.next(), "read_only_rejections")?,
                });
            }
            "m.wear" => {
                m.wear = Some(WearStats {
                    max_erase: parse_u64(cur, t.next(), "max_erase")? as u32,
                    mean_erase: parse_f64_bits(cur, t.next(), "mean_erase")?,
                    total: parse_u64(cur, t.next(), "total")?,
                });
            }
            "m.misc" => {
                m.lost_dirty_blocks = parse_u64(cur, t.next(), "lost_dirty_blocks")?;
                m.rejected_writes = parse_u64(cur, t.next(), "rejected_writes")?;
                m.rejected_blocks = parse_u64(cur, t.next(), "rejected_blocks")?;
                m.uncorrectable_reads = parse_u64(cur, t.next(), "uncorrectable_reads")?;
            }
            _ => return Err(cur.fail("unknown metrics line")),
        }
    }
}

/// Parses and validates a checkpoint, returning the fold state to resume
/// from.
///
/// # Errors
///
/// Returns a human-readable reason when the file is unreadable,
/// malformed or truncated, carries the wrong schema or chunk size, its
/// fingerprint does not match `expect_fingerprint`, its progress exceeds
/// `total_chunks`, or its rows + quarantine entries do not cover exactly
/// the shards its watermark claims.
pub fn load(
    path: &Path,
    expect_fingerprint: u64,
    total_chunks: u64,
    shards_total: u64,
) -> Result<FoldState, String> {
    let doc =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&doc, expect_fingerprint, total_chunks, shards_total)
        .map_err(|e| format!("{}: {e}", path.display()))
}

fn parse(
    doc: &str,
    expect_fingerprint: u64,
    total_chunks: u64,
    shards_total: u64,
) -> Result<FoldState, String> {
    let mut cur = Lines::new(doc);
    let header = cur.next()?;
    if header != CKPT_SCHEMA {
        return Err(format!(
            "unrecognized schema '{header}' (want {CKPT_SCHEMA})"
        ));
    }

    let line = cur.next()?;
    let mut t = line.split_whitespace();
    if t.next() != Some("fingerprint") {
        return Err(cur.fail("expected fingerprint line"));
    }
    let fp = t
        .next()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| cur.fail("bad fingerprint"))?;
    if fp != expect_fingerprint {
        return Err(format!(
            "fingerprint mismatch: checkpoint {fp:016x} vs this run {expect_fingerprint:016x} \
             (the checkpoint was produced under different fleet options, scale, or mixes)"
        ));
    }

    let line = cur.next()?;
    let mut t = line.split_whitespace();
    if t.next() != Some("progress") {
        return Err(cur.fail("expected progress line"));
    }
    let chunks_done = parse_u64(&cur, t.next(), "chunks_done")?;
    let file_total_chunks = parse_u64(&cur, t.next(), "total_chunks")?;
    let file_shards = parse_u64(&cur, t.next(), "shards")?;
    let file_chunk = parse_u64(&cur, t.next(), "chunk size")?;
    if file_total_chunks != total_chunks || file_shards != shards_total {
        return Err(format!(
            "geometry mismatch: checkpoint covers {file_shards} shards in {file_total_chunks} \
             chunks, this run has {shards_total} in {total_chunks}"
        ));
    }
    if file_chunk != CHUNK as u64 {
        return Err(format!("chunk size mismatch: {file_chunk} vs {CHUNK}"));
    }
    if chunks_done > total_chunks {
        return Err(format!(
            "progress {chunks_done}/{total_chunks} exceeds the chunk count"
        ));
    }

    let mut state = FoldState::fresh();
    state.chunks_done = chunks_done;
    let mut total_seen = false;
    loop {
        let line = cur.next()?;
        let mut t = line.split_whitespace();
        match t.next().unwrap_or("") {
            "row" => {
                let index = parse_u64(&cur, t.next(), "index")? as u32;
                let users = parse_u64(&cur, t.next(), "users")?;
                let workload = intern(&parse_str(&cur, t.next(), "workload")?);
                let device = intern(&parse_str(&cur, t.next(), "device")?);
                let ops = parse_u64(&cur, t.next(), "ops")?;
                let energy_j = parse_f64_bits(&cur, t.next(), "energy")?;
                let digest = t
                    .next()
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or_else(|| cur.fail("bad digest"))?;
                state.rows.push(ShardRow {
                    index,
                    users,
                    workload,
                    device,
                    ops,
                    energy_j,
                    digest,
                });
            }
            "quarantine" => {
                let shard = parse_u64(&cur, t.next(), "shard")? as u32;
                let attempts = parse_u64(&cur, t.next(), "attempts")? as u32;
                let cause = parse_str(&cur, t.next(), "cause")?;
                state.quarantined.push(ShardError {
                    shard,
                    attempts,
                    cause,
                });
            }
            "class" => {
                let label = parse_str(&cur, t.next(), "class label")?;
                let m = decode_metrics(&mut cur)?;
                let slot = state
                    .per_class
                    .iter_mut()
                    .find(|(n, _)| *n == label)
                    .ok_or_else(|| format!("unknown device class '{label}'"))?;
                slot.1 = m;
            }
            "total" => {
                state.total = decode_metrics(&mut cur)?;
                total_seen = true;
            }
            "end" => break,
            _ => return Err(cur.fail("unknown line")),
        }
    }
    if !total_seen {
        return Err("truncated checkpoint: missing total block".into());
    }

    // The watermark says the first `chunks_done` chunks completed; every
    // shard in them must appear exactly once, as a row or a quarantine
    // entry, and in index order (the fold order).
    let covered = (chunks_done * CHUNK as u64).min(shards_total);
    let mut indices: Vec<u64> = state
        .rows
        .iter()
        .map(|r| u64::from(r.index))
        .chain(state.quarantined.iter().map(|q| u64::from(q.shard)))
        .collect();
    indices.sort_unstable();
    let expected: Vec<u64> = (0..covered).collect();
    if indices != expected {
        return Err(format!(
            "coverage mismatch: watermark {chunks_done} chunks implies shards 0..{covered}, \
             found {} rows + {} quarantined that do not line up",
            state.rows.len(),
            state.quarantined.len()
        ));
    }
    if !state.rows.windows(2).all(|w| w[0].index < w[1].index) {
        return Err("rows out of shard-index order".into());
    }
    if !state
        .quarantined
        .windows(2)
        .all(|w| w[0].shard < w[1].shard)
    {
        return Err("quarantine entries out of shard-index order".into());
    }
    Ok(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet;
    use mobistore_sim::fleet::ChaosConfig;

    fn state_after_chaos() -> (FoldState, FleetOptions, u64, u64) {
        // Run a small chaotic fleet via the public API, then rebuild the
        // final FoldState it would have checkpointed.
        let opts = FleetOptions {
            shards: 12,
            population: 96,
            chaos: ChaosConfig {
                panic_rate: 0.6,
                fail_point: None,
            },
            ..FleetOptions::default()
        };
        let run = fleet::run(Scale::quick(), &opts).expect("chaos fleet");
        let mut state = FoldState::fresh();
        state.rows = run.rows.clone();
        for (name, m) in &run.per_class {
            let slot = state
                .per_class
                .iter_mut()
                .find(|(n, _)| n == name)
                .expect("class from device mix");
            slot.1 = m.clone();
        }
        state.total = run.total.clone();
        state.quarantined = run.quarantined.clone();
        let total_chunks = (opts.shards as u64).div_ceil(CHUNK as u64);
        state.chunks_done = total_chunks;
        (state, opts, total_chunks, 12)
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let (state, opts, total_chunks, shards) = state_after_chaos();
        let fp = fingerprint(&opts, Scale::quick());
        let doc = encode(&state, fp, total_chunks, shards);
        let back = parse(&doc, fp, total_chunks, shards).expect("round trip");
        assert_eq!(back.rows, state.rows);
        assert_eq!(back.quarantined, state.quarantined);
        assert_eq!(back.chunks_done, state.chunks_done);
        // Metrics lack PartialEq; their Debug rendering covers every
        // field (the fleet digest relies on exactly that), so comparing
        // renderings is a bit-exact comparison.
        assert_eq!(format!("{:?}", back.total), format!("{:?}", state.total));
        assert_eq!(
            format!("{:?}", back.per_class),
            format!("{:?}", state.per_class)
        );
    }

    #[test]
    fn fingerprint_tracks_shard_shaping_inputs_only() {
        let opts = FleetOptions::default();
        let base = fingerprint(&opts, Scale::quick());
        assert_eq!(base, fingerprint(&opts, Scale::quick()), "deterministic");
        let mut other = opts.clone();
        other.seed = 2001;
        assert_ne!(base, fingerprint(&other, Scale::quick()), "seed matters");
        let mut other = opts.clone();
        other.chaos.panic_rate = 0.5;
        assert_ne!(base, fingerprint(&other, Scale::quick()), "rate matters");
        assert_ne!(base, fingerprint(&opts, Scale::full()), "scale matters");
        // Inputs that do not shape shard bytes are excluded.
        let mut other = opts.clone();
        other.chaos.fail_point = Some(3);
        other.checkpoint_every = 7;
        other.checkpoint_out = Some("/tmp/ckpt".into());
        other.resume_from = Some("/tmp/ckpt".into());
        assert_eq!(base, fingerprint(&other, Scale::quick()));
    }

    #[test]
    fn load_rejects_mismatches_and_corruption() {
        let (state, opts, total_chunks, shards) = state_after_chaos();
        let fp = fingerprint(&opts, Scale::quick());
        let doc = encode(&state, fp, total_chunks, shards);

        let err = parse(&doc, fp ^ 1, total_chunks, shards).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");

        let err = parse(&doc, fp, total_chunks + 1, shards).unwrap_err();
        assert!(err.contains("geometry mismatch"), "{err}");

        let truncated = &doc[..doc.len() - 5];
        let err = parse(truncated, fp, total_chunks, shards).unwrap_err();
        assert!(
            err.contains("truncated") || err.contains("unknown"),
            "{err}"
        );

        let garbled = doc.replacen("m.energy", "m.entropy", 1);
        let err = parse(&garbled, fp, total_chunks, shards).unwrap_err();
        assert!(err.contains("unknown metrics line"), "{err}");

        let err = parse("mobistore-fleet-ckpt/0\n", fp, total_chunks, shards).unwrap_err();
        assert!(err.contains("unrecognized schema"), "{err}");

        // A row deleted from a "complete" checkpoint breaks coverage.
        let victim = state.rows[0].index;
        let without: String = doc
            .lines()
            .filter(|l| !l.starts_with(&format!("row {victim} ")))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = parse(&without, fp, total_chunks, shards).unwrap_err();
        assert!(err.contains("coverage mismatch"), "{err}");
    }

    #[test]
    fn store_and_load_round_trip_through_disk() {
        let (state, opts, total_chunks, shards) = state_after_chaos();
        let fp = fingerprint(&opts, Scale::quick());
        let dir = std::env::temp_dir().join("mobistore-ckpt-test");
        fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("fleet.ckpt");
        store(&path, &state, fp, total_chunks, shards).expect("store");
        let back = load(&path, fp, total_chunks, shards).expect("load");
        assert_eq!(back.rows, state.rows);
        assert_eq!(back.quarantined, state.quarantined);
        let missing = dir.join("does-not-exist.ckpt");
        let err = load(&missing, fp, total_chunks, shards).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn escaping_round_trips_hostile_strings() {
        for s in [
            "plain",
            "with space",
            "new\nline",
            "back\\slash",
            "cr\rlf\n mix \\s",
            "",
        ] {
            let e = esc(s);
            assert!(
                !e.contains(' ') && !e.contains('\n') && !e.contains('\r'),
                "{e:?} must be one token"
            );
            assert_eq!(unesc(&e).expect("round trip"), s);
        }
    }
}
