//! A std-only parallel execution layer for embarrassingly parallel
//! simulation sweeps.
//!
//! Every experiment in this reproduction evaluates a pure function
//! (`simulate(&SystemConfig, &Trace)`) at many independent points — DRAM
//! sizes, utilizations, device × trace grids. [`parallel_map`] fans those
//! points out over a scoped-thread worker pool and returns results **in
//! input order**, so parallel runs are bit-identical to serial runs.
//!
//! The worker count comes from, in priority order:
//!
//! 1. [`set_jobs`] (the `repro` binary's `--jobs N` flag);
//! 2. the `MOBISTORE_JOBS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! With one job, [`parallel_map`] degenerates to an inline loop on the
//! calling thread — no threads are spawned at all. A panic raised by `f`
//! is caught per item and re-raised with context (item index, worker id)
//! so the caller sees *which* unit of work blew up, not just an anonymous
//! unwinding payload.
//!
//! [`ordered_stream_map`] is the streaming sibling: same dynamic
//! distribution, but instead of collecting a `Vec` it delivers each
//! result to a sink **in input order, as soon as its contiguous prefix is
//! complete** — the primitive the fleet supervisor folds checkpoints
//! through.
//!
//! No external dependencies: `std::thread::scope` + atomics only.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Process-wide override for the worker count (0 = unset).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for every subsequent [`parallel_map`] call
/// in this process. `--jobs 1` forces fully serial, inline execution.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn set_jobs(n: usize) {
    assert!(n > 0, "job count must be positive");
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count [`parallel_map`] will use: the [`set_jobs`] override
/// if set, else `MOBISTORE_JOBS`, else the machine's available
/// parallelism (1 if that cannot be determined).
pub fn jobs() -> usize {
    let over = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    static ENV_JOBS: OnceLock<Option<usize>> = OnceLock::new();
    let env = *ENV_JOBS.get_or_init(|| {
        std::env::var("MOBISTORE_JOBS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
    });
    env.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Renders a panic payload as a human-readable cause string: the `&str`
/// or `String` message if the payload carries one (the overwhelmingly
/// common case — `panic!` with a format string), else a placeholder.
pub fn panic_cause(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The first panic observed by a pool: which item, which worker, why.
struct PanicReport {
    index: usize,
    worker: usize,
    cause: String,
}

impl PanicReport {
    fn render(&self, primitive: &str, total: usize, workers: usize) -> String {
        format!(
            "{primitive}: item {} of {total} panicked on worker {} of {workers}: {}",
            self.index, self.worker, self.cause
        )
    }
}

/// Runs `f(item)` inline, re-raising any panic with item context (the
/// single-worker degenerate path of both map primitives).
fn run_inline<T, R>(primitive: &str, i: usize, total: usize, f: &impl Fn(&T) -> R, item: &T) -> R {
    match catch_unwind(AssertUnwindSafe(|| f(item))) {
        Ok(r) => r,
        Err(payload) => {
            let report = PanicReport {
                index: i,
                worker: 0,
                cause: panic_cause(&*payload),
            };
            panic!("{}", report.render(primitive, total, 1));
        }
    }
}

/// Applies `f` to every item, in parallel over [`jobs`] workers, and
/// returns the results in input order.
///
/// Work is distributed dynamically (an atomic next-item counter), so
/// heterogeneous item costs — a 95%-utilization sweep point next to a 40%
/// one — still load-balance. `f` must be pure for parallel runs to equal
/// serial runs; every caller in this workspace satisfies that because
/// `simulate` is a pure function of its inputs.
///
/// # Panics
///
/// Re-raises the first panic raised by `f`, with the item index and
/// worker id prepended to the original cause. Remaining workers stop
/// pulling new items once a panic is recorded.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| run_inline("parallel_map", i, items.len(), &f, item))
            .collect();
    }

    // `Mutex<Option<R>>` rather than `OnceLock<R>`: it is `Sync` for any
    // `R: Send`, and each slot is touched exactly once so the lock is
    // never contended.
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    let panic_slot: Mutex<Option<PanicReport>> = Mutex::new(None);
    // Workers inherit the caller's op-attribution counter so a target's
    // ops/sec stays correct when its sweeps fan out across threads.
    let prof_ctx = crate::prof::current_context();
    std::thread::scope(|scope| {
        let (next, slots, f) = (&next, &slots, &f);
        let (poisoned, panic_slot) = (&poisoned, &panic_slot);
        for worker in 0..workers {
            let prof_ctx = prof_ctx.clone();
            scope.spawn(move || {
                crate::prof::set_context(prof_ctx);
                while !poisoned.load(Ordering::Relaxed) {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    match catch_unwind(AssertUnwindSafe(|| f(item))) {
                        Ok(result) => {
                            *slots[i].lock().expect("slot poisoned") = Some(result);
                        }
                        Err(payload) => {
                            let mut slot = panic_slot.lock().expect("panic slot poisoned");
                            slot.get_or_insert_with(|| PanicReport {
                                index: i,
                                worker,
                                cause: panic_cause(&*payload),
                            });
                            poisoned.store(true, Ordering::Relaxed);
                            break;
                        }
                    }
                }
            });
        }
    });
    if let Some(report) = panic_slot.into_inner().expect("panic slot poisoned") {
        panic!("{}", report.render("parallel_map", items.len(), workers));
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Shared coordination state of one [`ordered_stream_map`] pool.
struct StreamState<R> {
    /// Completed results not yet delivered, keyed by item index.
    ready: BTreeMap<usize, R>,
    /// First panic observed, if any.
    panic: Option<PanicReport>,
    /// Workers that have not yet exited their pull loop.
    live_workers: usize,
}

/// Applies `f` to every item in parallel (same dynamic distribution as
/// [`parallel_map`]) but delivers each result to `sink` **on the calling
/// thread, in input order**, as soon as the contiguous prefix up to it is
/// complete. This keeps peak memory at O(out-of-order window) instead of
/// O(items), and — because the sink runs serially in order — lets the
/// caller fold incrementally and persist checkpoints at watermarks.
///
/// With one job the pool degenerates to an inline `map` + `sink` loop.
///
/// # Panics
///
/// Re-raises the first panic raised by `f` with item/worker context, the
/// same contract as [`parallel_map`]. The sink may have observed a
/// contiguous prefix of results before the panic propagates.
pub fn ordered_stream_map<T, R, F, S>(items: &[T], f: F, mut sink: S)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    S: FnMut(usize, R),
{
    let workers = jobs().min(items.len());
    if workers <= 1 {
        for (i, item) in items.iter().enumerate() {
            let r = run_inline("ordered_stream_map", i, items.len(), &f, item);
            sink(i, r);
        }
        return;
    }

    let next = AtomicUsize::new(0);
    let state = Mutex::new(StreamState::<R> {
        ready: BTreeMap::new(),
        panic: None,
        live_workers: workers,
    });
    let cv = Condvar::new();
    let prof_ctx = crate::prof::current_context();
    std::thread::scope(|scope| {
        let (next, state, cv, f) = (&next, &state, &cv, &f);
        for worker in 0..workers {
            let prof_ctx = prof_ctx.clone();
            scope.spawn(move || {
                crate::prof::set_context(prof_ctx);
                loop {
                    if state.lock().expect("stream state poisoned").panic.is_some() {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    match catch_unwind(AssertUnwindSafe(|| f(item))) {
                        Ok(result) => {
                            let mut st = state.lock().expect("stream state poisoned");
                            st.ready.insert(i, result);
                        }
                        Err(payload) => {
                            let mut st = state.lock().expect("stream state poisoned");
                            st.panic.get_or_insert_with(|| PanicReport {
                                index: i,
                                worker,
                                cause: panic_cause(&*payload),
                            });
                            break;
                        }
                    }
                    cv.notify_all();
                }
                let mut st = state.lock().expect("stream state poisoned");
                st.live_workers -= 1;
                drop(st);
                cv.notify_all();
            });
        }

        // Deliver the contiguous prefix in order on this thread; park on
        // the condvar while the next-in-order result is still in flight.
        let mut delivered = 0usize;
        let mut st = state.lock().expect("stream state poisoned");
        while delivered < items.len() {
            if let Some(r) = st.ready.remove(&delivered) {
                drop(st);
                sink(delivered, r);
                delivered += 1;
                st = state.lock().expect("stream state poisoned");
                continue;
            }
            if st.panic.is_some() {
                break;
            }
            assert!(
                st.live_workers > 0,
                "ordered_stream_map: workers exited with item {delivered} of {} missing",
                items.len()
            );
            st = cv.wait(st).expect("stream state poisoned");
        }
        let report = st.panic.take();
        drop(st);
        if let Some(report) = report {
            // `std::thread::scope` joins the remaining workers (they stop
            // at the panic flag) before this unwind leaves the scope.
            panic!(
                "{}",
                report.render("ordered_stream_map", items.len(), workers)
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn balances_heterogeneous_work() {
        // Items of wildly different cost still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| {
            let spins = if x % 7 == 0 { 10_000 } else { 10 };
            (0..spins).fold(x, |acc, _| acc.wrapping_mul(0x9e37_79b9).wrapping_add(1));
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn propagates_panics_with_item_context() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(&[1u32, 2, 3, 4, 5, 6, 7, 8], |&x| {
                if x == 5 {
                    panic!("boom");
                }
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        let cause = panic_cause(&*payload);
        assert!(
            cause.contains("parallel_map: item 4 of 8") && cause.contains("boom"),
            "panic message must carry item context, got: {cause}"
        );
    }

    #[test]
    fn panic_cause_renders_common_payloads() {
        assert_eq!(panic_cause(&"static"), "static");
        assert_eq!(panic_cause(&"owned".to_owned()), "owned");
        assert_eq!(panic_cause(&42u32), "non-string panic payload");
    }

    #[test]
    fn ordered_stream_map_delivers_in_order() {
        let items: Vec<u64> = (0..257).collect();
        let mut seen = Vec::new();
        ordered_stream_map(
            &items,
            |&x| {
                // Uneven costs so results complete out of order.
                let spins = if x % 5 == 0 { 20_000 } else { 10 };
                (0..spins).fold(x, |acc, _| acc.wrapping_mul(0x9e37_79b9).wrapping_add(1));
                x * 3
            },
            |i, r| {
                assert_eq!(seen.len(), i, "sink must run in input order");
                seen.push(r);
            },
        );
        assert_eq!(seen, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn ordered_stream_map_handles_empty_and_single() {
        let mut calls = 0u32;
        ordered_stream_map(&Vec::<u32>::new(), |&x| x, |_, _| calls += 1);
        assert_eq!(calls, 0);
        let mut got = None;
        ordered_stream_map(&[9u32], |&x| x + 1, |i, r| got = Some((i, r)));
        assert_eq!(got, Some((0, 10)));
    }

    #[test]
    fn ordered_stream_map_propagates_panics_with_context() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut delivered = Vec::new();
            ordered_stream_map(
                &(0u32..64).collect::<Vec<_>>(),
                |&x| {
                    if x == 40 {
                        panic!("chunk exploded");
                    }
                    x
                },
                |i, _| delivered.push(i),
            );
        }));
        let payload = result.expect_err("panic must propagate");
        let cause = panic_cause(&*payload);
        assert!(
            cause.contains("ordered_stream_map: item 40 of 64") && cause.contains("chunk exploded"),
            "panic message must carry item context, got: {cause}"
        );
    }

    #[test]
    fn jobs_is_positive() {
        assert!(jobs() >= 1);
    }
}
