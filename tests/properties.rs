//! Property-based tests on the core data structures and invariants.
//!
//! The build environment has no registry access, so instead of proptest
//! these use the workspace's own deterministic [`SimRng`] to drive seeded
//! randomized cases: each property runs a few hundred generated scenarios
//! with case indices as RNG streams, so failures are reproducible by
//! construction (re-run the same test, get the same cases). On failure the
//! case index is included in the assertion message.

use std::collections::{HashMap, HashSet};

use mobistore::cache::lru::LruSet;
use mobistore::device::params::intel_datasheet;
use mobistore::device::QueueDiscipline;
use mobistore::flash::store::{CleanerMode, FlashCardConfig, FlashCardStore, VictimPolicy};
use mobistore::sim::rng::SimRng;
use mobistore::sim::stats::OnlineStats;
use mobistore::sim::time::{SimDuration, SimTime};
use mobistore::trace::layout::FileLayout;
use mobistore::trace::record::{DiskOpKind, FileId, FileRecord, Op};

/// One RNG per case, keyed by a per-property stream so properties don't
/// share sequences.
fn case_rng(stream: u64, case: u64) -> SimRng {
    SimRng::seed_with_stream(0x9e37_79b9_7f4a_7c15 ^ case, stream)
}

// ---------------------------------------------------------------------
// LRU: model-check against a naive Vec-based reference.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum LruOp {
    Insert(u64),
    Touch(u64),
    Remove(u64),
    PopLru,
}

fn lru_op(rng: &mut SimRng) -> LruOp {
    match rng.below(4) {
        0 => LruOp::Insert(rng.below(32)),
        1 => LruOp::Touch(rng.below(32)),
        2 => LruOp::Remove(rng.below(32)),
        _ => LruOp::PopLru,
    }
}

/// A straightforward reference: most-recent at the front.
#[derive(Default)]
struct NaiveLru {
    cap: usize,
    items: Vec<u64>,
}

impl NaiveLru {
    fn touch(&mut self, k: u64) -> bool {
        if let Some(i) = self.items.iter().position(|&x| x == k) {
            let k = self.items.remove(i);
            self.items.insert(0, k);
            true
        } else {
            false
        }
    }
    fn insert(&mut self, k: u64) -> Option<u64> {
        if self.touch(k) {
            return None;
        }
        let evicted = if self.items.len() == self.cap {
            self.items.pop()
        } else {
            None
        };
        self.items.insert(0, k);
        evicted
    }
    fn remove(&mut self, k: u64) -> bool {
        if let Some(i) = self.items.iter().position(|&x| x == k) {
            self.items.remove(i);
            true
        } else {
            false
        }
    }
    fn pop_lru(&mut self) -> Option<u64> {
        self.items.pop()
    }
}

#[test]
fn lru_matches_reference() {
    for case in 0..256u64 {
        let mut rng = case_rng(1, case);
        let cap = rng.range_inclusive(1, 11) as usize;
        let n_ops = rng.below(200);
        let mut real = LruSet::new(cap);
        let mut model = NaiveLru {
            cap,
            items: Vec::new(),
        };
        for _ in 0..n_ops {
            match lru_op(&mut rng) {
                LruOp::Insert(k) => assert_eq!(real.insert(k), model.insert(k), "case {case}"),
                LruOp::Touch(k) => assert_eq!(real.touch(k), model.touch(k), "case {case}"),
                LruOp::Remove(k) => assert_eq!(real.remove(k), model.remove(k), "case {case}"),
                LruOp::PopLru => assert_eq!(real.pop_lru(), model.pop_lru(), "case {case}"),
            }
            assert_eq!(real.len(), model.items.len(), "case {case}");
            let order: Vec<u64> = real.iter_mru().collect();
            assert_eq!(&order, &model.items, "MRU order diverged (case {case})");
        }
    }
}

// ---------------------------------------------------------------------
// Flash card: random workloads keep every internal invariant, and the
// live-block map matches a reference set.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CardOp {
    Write { lbn: u64, blocks: u32 },
    Trim { lbn: u64, blocks: u32 },
    Read { lbn: u64, blocks: u32 },
    Idle { ms: u64 },
}

fn card_op(rng: &mut SimRng) -> CardOp {
    match rng.below(6) {
        0..=2 => CardOp::Write {
            lbn: rng.below(600),
            blocks: rng.range_inclusive(1, 7) as u32,
        },
        3 => CardOp::Trim {
            lbn: rng.below(600),
            blocks: rng.range_inclusive(1, 7) as u32,
        },
        4 => CardOp::Read {
            lbn: rng.below(600),
            blocks: rng.range_inclusive(1, 3) as u32,
        },
        _ => CardOp::Idle {
            ms: rng.range_inclusive(1, 5_000),
        },
    }
}

#[test]
fn flash_card_invariants_hold() {
    for case in 0..64u64 {
        let mut rng = case_rng(2, case);
        let preload = rng.below(600);
        let n_ops = rng.below(150);
        // 16 segments x 128 KB at 1-KB blocks = 2048 blocks.
        let mut card = FlashCardStore::new(FlashCardConfig {
            params: intel_datasheet(),
            block_size: 1024,
            capacity_bytes: 2 * 1024 * 1024,
            mode: CleanerMode::Background,
            victim_policy: VictimPolicy::GreedyMinLive,
            queueing: QueueDiscipline::Fifo,
        });
        card.preload_aged(1000..1000 + preload);
        let mut model: HashSet<u64> = (1000..1000 + preload).collect();

        let mut now = SimTime::ZERO;
        for _ in 0..n_ops {
            match card_op(&mut rng) {
                CardOp::Write { lbn, blocks } => {
                    let svc = card.write(now, lbn, blocks);
                    assert!(svc.end >= svc.start, "case {case}");
                    now = now.max(svc.end);
                    model.extend(lbn..lbn + u64::from(blocks));
                }
                CardOp::Trim { lbn, blocks } => {
                    card.trim(lbn, blocks);
                    for b in lbn..lbn + u64::from(blocks) {
                        model.remove(&b);
                    }
                }
                CardOp::Read { lbn, blocks } => {
                    let svc = card.read(now, lbn, blocks);
                    now = now.max(svc.end);
                }
                CardOp::Idle { ms } => now += SimDuration::from_millis(ms),
            }
            card.check_invariants();
            assert_eq!(card.live_blocks(), model.len() as u64, "case {case}");
            assert!(
                card.live_blocks() + card.free_blocks() <= card.capacity_blocks(),
                "case {case}"
            );
        }
        // Energy is finite and non-negative.
        assert!(card.energy().get() >= 0.0, "case {case}");
        assert!(card.energy().get().is_finite(), "case {case}");
    }
}

// ---------------------------------------------------------------------
// Flash card under fault injection: random fault schedules (transient
// retries, permanent segment retirement, power failures mid-cleaning)
// never break the internal invariants, never lose live data, and the
// block census always tiles the capacity:
// live + free + dead + retired == capacity.
// ---------------------------------------------------------------------

#[test]
fn flash_card_invariants_hold_under_faults() {
    use mobistore::sim::fault::FaultConfig;

    for case in 0..48u64 {
        let mut rng = case_rng(9, case);
        let rate = match rng.below(3) {
            0 => 0.0,
            1 => 1e-3,
            _ => 0.05,
        };
        let fault = FaultConfig {
            write_fail_rate: rate,
            erase_fail_rate: rate,
            permanent_rate: 0.2,
            seed: case,
            ..FaultConfig::none()
        };
        let preload = rng.below(600);
        let n_ops = rng.below(150);
        let mut card = FlashCardStore::new(FlashCardConfig {
            params: intel_datasheet(),
            block_size: 1024,
            capacity_bytes: 2 * 1024 * 1024,
            mode: CleanerMode::Background,
            victim_policy: VictimPolicy::GreedyMinLive,
            queueing: QueueDiscipline::Fifo,
        })
        .with_faults(fault);
        card.preload_aged(1000..1000 + preload);
        let mut model: HashSet<u64> = (1000..1000 + preload).collect();

        let mut now = SimTime::ZERO;
        for _ in 0..n_ops {
            match card_op(&mut rng) {
                CardOp::Write { lbn, blocks } => {
                    let svc = card.write(now, lbn, blocks);
                    now = now.max(svc.end);
                    model.extend(lbn..lbn + u64::from(blocks));
                }
                CardOp::Trim { lbn, blocks } => {
                    card.trim(lbn, blocks);
                    for b in lbn..lbn + u64::from(blocks) {
                        model.remove(&b);
                    }
                }
                CardOp::Read { lbn, blocks } => {
                    let svc = card.read(now, lbn, blocks);
                    now = now.max(svc.end);
                }
                CardOp::Idle { ms } => now += SimDuration::from_millis(ms),
            }
            // Occasionally yank the power mid-whatever-was-happening.
            if rng.chance(0.1) {
                let svc = card.power_fail(now);
                now = now.max(svc.end);
            }
            card.check_invariants();
            let census = card.census();
            assert_eq!(
                census.live + census.free + census.dead + census.retired,
                card.capacity_blocks(),
                "census does not tile capacity (case {case})"
            );
            assert_eq!(census.retired, card.retired_blocks(), "case {case}");
            // Faults never lose live data: retries eventually succeed and
            // only segments holding no live blocks are retired.
            assert_eq!(card.live_blocks(), model.len() as u64, "case {case}");
            assert!(card.live_blocks() <= card.usable_blocks(), "case {case}");
        }
        let c = card.counters();
        if rate == 0.0 {
            assert_eq!(c.write_retries + c.erase_retries, 0, "case {case}");
            assert_eq!(c.segments_retired, 0, "case {case}");
        }
        assert!(card.energy().get().is_finite(), "case {case}");
    }
}

// ---------------------------------------------------------------------
// Flash disk: the asynchronous cleaner conserves sectors — everything
// written becomes garbage, and garbage only ever turns into pre-erased
// pool space.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum FdOp {
    Write { kib: u64 },
    Read { kib: u64 },
    Idle { ms: u64 },
}

fn fd_op(rng: &mut SimRng) -> FdOp {
    match rng.below(5) {
        0 | 1 => FdOp::Write {
            kib: rng.range_inclusive(1, 63),
        },
        2 => FdOp::Read {
            kib: rng.range_inclusive(1, 63),
        },
        _ => FdOp::Idle {
            ms: rng.range_inclusive(1, 10_000),
        },
    }
}

#[test]
fn flash_disk_pool_is_conserved() {
    use mobistore::device::flashdisk::FlashDisk;
    use mobistore::device::params::sdp5a_datasheet;
    use mobistore::device::Dir;

    for case in 0..256u64 {
        let mut rng = case_rng(3, case);
        let n_ops = rng.below(100);
        let params = sdp5a_datasheet();
        let initial_pool = params.spare_pool_bytes;
        let mut fd = FlashDisk::new(params);
        let mut now = SimTime::ZERO;
        let mut written = 0u64;
        for _ in 0..n_ops {
            match fd_op(&mut rng) {
                FdOp::Write { kib } => {
                    let bytes = kib * 1024;
                    let svc = fd.access(now, Dir::Write, bytes);
                    now = svc.end;
                    written += bytes;
                }
                FdOp::Read { kib } => {
                    let svc = fd.access(now, Dir::Read, kib * 1024);
                    now = svc.end;
                }
                FdOp::Idle { ms } => now += SimDuration::from_millis(ms),
            }
            // Conservation: pool + outstanding garbage = initial pool +
            // everything ever written (each write both consumes erased
            // space and creates equal garbage). The pool alone can never
            // exceed that bound.
            let c = fd.counters();
            assert_eq!(c.bytes_written, written, "case {case}");
            assert!(fd.erased_pool() <= initial_pool + written, "case {case}");
            assert!(
                c.bytes_pre_erased + c.bytes_erased_on_demand == written,
                "case {case}"
            );
            assert!(
                fd.energy().get() >= 0.0 && fd.energy().get().is_finite(),
                "case {case}"
            );
        }
        // After enough idle time, all garbage is reclaimed. Pool-backed
        // writes return their sectors to the pool (conservation), while
        // deficit writes erased fresh sectors inline, growing the erased
        // population by exactly the on-demand bytes.
        fd.finish(now + SimDuration::from_hours(1));
        let c = fd.counters();
        assert_eq!(
            fd.erased_pool(),
            initial_pool + c.bytes_erased_on_demand,
            "case {case}"
        );
    }
}

// ---------------------------------------------------------------------
// File layout: no two live files ever own the same block.
// ---------------------------------------------------------------------

#[test]
fn layout_never_aliases_files() {
    for case in 0..256u64 {
        let mut rng = case_rng(4, case);
        let n_ops = rng.below(120);
        let mut layout = FileLayout::new(1024);
        // block -> owning file, from the emitted write/trim stream.
        let mut owner: HashMap<u64, u64> = HashMap::new();
        let mut t = 0u64;
        for _ in 0..n_ops {
            t += 1;
            let rec = if rng.below(5) < 4 {
                FileRecord {
                    time: SimTime::from_nanos(t),
                    op: if rng.chance(0.5) { Op::Read } else { Op::Write },
                    file: FileId(rng.below(12)),
                    offset: rng.below(64) * 1024,
                    size: rng.range_inclusive(1, 31) * 1024,
                }
            } else {
                FileRecord {
                    time: SimTime::from_nanos(t),
                    op: Op::Delete,
                    file: FileId(rng.below(12)),
                    offset: 0,
                    size: 0,
                }
            };
            for disk_op in layout.apply(&rec) {
                let range = disk_op.lbn..disk_op.lbn + u64::from(disk_op.blocks);
                match disk_op.kind {
                    DiskOpKind::Trim => {
                        for b in range {
                            owner.remove(&b);
                        }
                    }
                    DiskOpKind::Read | DiskOpKind::Write => {
                        for b in range {
                            if let Some(&prev) = owner.get(&b) {
                                assert_eq!(
                                    prev, disk_op.file.0,
                                    "block {} owned by f{} but accessed by f{} (case {case})",
                                    b, prev, disk_op.file.0
                                );
                            } else {
                                owner.insert(b, disk_op.file.0);
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// OnlineStats: streaming moments match the two-pass computation; merge
// equals concatenation.
// ---------------------------------------------------------------------

#[test]
fn online_stats_match_naive() {
    for case in 0..256u64 {
        let mut rng = case_rng(5, case);
        let n = rng.range_inclusive(1, 299) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(-1e6, 1e6)).collect();
        let split = (rng.below(300) as usize).min(xs.len());

        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(
            (s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0),
            "case {case}"
        );
        assert!(
            (s.population_std() - var.sqrt()).abs() <= 1e-5 * var.sqrt().max(1.0),
            "case {case}"
        );

        let (mut left, mut right) = (OnlineStats::new(), OnlineStats::new());
        for &x in &xs[..split] {
            left.record(x);
        }
        for &x in &xs[split..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), s.count(), "case {case}");
        assert!(
            (left.mean() - s.mean()).abs() <= 1e-6 * s.mean().abs().max(1.0),
            "case {case}"
        );
        assert_eq!(left.max(), s.max(), "case {case}");
        assert_eq!(left.min(), s.min(), "case {case}");
    }
}

// ---------------------------------------------------------------------
// Time arithmetic: durations form a sane ordered monoid.
// ---------------------------------------------------------------------

#[test]
fn duration_arithmetic_is_consistent() {
    for case in 0..512u64 {
        let mut rng = case_rng(6, case);
        let a = rng.below(1 << 40);
        let b = rng.below(1 << 40);
        let (da, db) = (SimDuration::from_nanos(a), SimDuration::from_nanos(b));
        assert_eq!(da + db, db + da, "case {case}");
        assert_eq!((da + db).saturating_sub(db), da, "case {case}");
        assert_eq!(da.max(db).min(da.min(db)), da.min(db), "case {case}");
        let t = SimTime::from_nanos(a);
        assert_eq!((t + db) - db, t, "case {case}");
        assert_eq!((t + db) - t, db, "case {case}");
    }
}

#[test]
fn rng_streams_reproduce() {
    for case in 0..128u64 {
        let mut meta = case_rng(7, case);
        let seed = meta.next_u64();
        let n = meta.range_inclusive(1, 63);
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..n {
            assert_eq!(a.next_u64(), b.next_u64(), "case {case}");
        }
        // Uniform sampling stays in range.
        for _ in 0..n {
            let x = a.below(17);
            assert!(x < 17, "case {case}");
        }
    }
}

// ---------------------------------------------------------------------
// The parallel executor: order preservation and serial equivalence on
// randomized inputs.
// ---------------------------------------------------------------------

#[test]
fn parallel_map_equals_serial_map() {
    use mobistore::sim::exec::parallel_map;
    for case in 0..32u64 {
        let mut rng = case_rng(8, case);
        let n = rng.below(500) as usize;
        let items: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        let f = |&x: &u64| x.wrapping_mul(0x2545_f491_4f6c_dd1d).rotate_left(17);
        let serial: Vec<u64> = items.iter().map(f).collect();
        assert_eq!(parallel_map(&items, f), serial, "case {case}");
    }
}

// ---------------------------------------------------------------------
// Latency histogram percentiles vs an exact sorted-vector quantile.
// ---------------------------------------------------------------------

#[test]
fn histogram_percentiles_track_exact_quantiles() {
    use mobistore::sim::hist::Histogram;
    for case in 0..200u64 {
        let mut rng = case_rng(9, case);
        let n = rng.range_inclusive(1, 400) as usize;
        // Spread samples over many octaves so cases exercise sub-bucket
        // resolution at very different magnitudes.
        let mut samples: Vec<u64> = (0..n).map(|_| rng.next_u64() >> rng.below(55)).collect();
        let mut hist = Histogram::new();
        for &s in &samples {
            hist.record(s);
        }
        samples.sort_unstable();
        for q in [0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            // The exact nearest-rank quantile of the raw samples...
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = samples[rank - 1];
            let est = hist.percentile_nanos(q);
            // ...must land in the same log-linear bucket: the estimate is
            // that bucket's lower bound, so the error is below one bucket
            // width (and the relative error below one sub-bucket step).
            let (lo, hi) = Histogram::bucket_bounds(exact);
            assert_eq!(est, lo, "case {case} q {q}: {est} vs {exact}");
            // The topmost bucket's upper bound saturates at u64::MAX, so
            // there (and only there) the exact value may sit on the bound.
            assert!(
                est <= exact && (exact - est < hi - lo || hi == u64::MAX),
                "case {case} q {q}: {est} not within bucket of {exact}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Recovery idempotence: a second power_fail() at the same instant is a
// pure re-scan — it changes no structural state (map, census, bad
// segments, generations, read-only flag) and no counter other than the
// recovery accounting itself. Cases with background cleaning running at
// the failure instant exercise the orphaned-job reclaim path; the second
// call must find nothing left to reclaim.
// ---------------------------------------------------------------------

#[test]
fn flash_card_recovery_is_idempotent() {
    use mobistore::sim::fault::FaultConfig;

    for case in 0..48u64 {
        let make_card = || {
            let fault = FaultConfig {
                write_fail_rate: if case % 3 == 0 { 0.05 } else { 0.0 },
                erase_fail_rate: if case % 3 == 0 { 0.05 } else { 0.0 },
                permanent_rate: 0.2,
                seed: case,
                ..FaultConfig::none()
            };
            FlashCardStore::new(FlashCardConfig {
                params: intel_datasheet(),
                block_size: 1024,
                capacity_bytes: 2 * 1024 * 1024,
                mode: CleanerMode::Background,
                victim_policy: VictimPolicy::GreedyMinLive,
                queueing: QueueDiscipline::Fifo,
            })
            .with_faults(fault)
        };
        let mut once = make_card();
        let mut twice = make_card();

        // Identical histories: same preload, same op stream.
        let mut rng = case_rng(21, case);
        let preload = rng.below(600);
        once.preload_aged(1000..1000 + preload);
        twice.preload_aged(1000..1000 + preload);
        let n_ops = rng.range_inclusive(1, 120);
        let mut now = SimTime::ZERO;
        for _ in 0..n_ops {
            let op = card_op(&mut rng);
            for card in [&mut once, &mut twice] {
                match op {
                    CardOp::Write { lbn, blocks } => {
                        now = now.max(card.write(now, lbn, blocks).end);
                    }
                    CardOp::Trim { lbn, blocks } => card.trim(lbn, blocks),
                    CardOp::Read { lbn, blocks } => {
                        now = now.max(card.read(now, lbn, blocks).end);
                    }
                    CardOp::Idle { ms } => now += SimDuration::from_millis(ms),
                }
            }
        }

        // Crash soon after the last op, while background cleaning may
        // still be running (the short gap leaves jobs unfinished).
        let at = now + SimDuration::from_millis(rng.below(20));
        once.power_fail(at);
        twice.power_fail(at);
        twice.power_fail(at);
        once.check_invariants();
        twice.check_invariants();

        assert_eq!(
            once.snapshot(),
            twice.snapshot(),
            "case {case}: map diverged"
        );
        assert_eq!(
            once.census(),
            twice.census(),
            "case {case}: census diverged"
        );
        assert_eq!(
            once.bad_segments(),
            twice.bad_segments(),
            "case {case}: retirement diverged"
        );
        assert_eq!(
            once.next_generation(),
            twice.next_generation(),
            "case {case}: generation counter diverged"
        );
        assert_eq!(
            once.is_read_only(),
            twice.is_read_only(),
            "case {case}: read-only flag diverged"
        );

        // Only the recovery accounting itself may differ, by exactly one
        // extra (empty) scan.
        let a = once.counters();
        let b = twice.counters();
        assert_eq!(b.power_failures, a.power_failures + 1, "case {case}");
        assert!(b.recovery_time >= a.recovery_time, "case {case}");
        assert_eq!(
            (
                a.ops,
                a.bytes_read,
                a.bytes_written,
                a.erasures,
                a.blocks_copied
            ),
            (
                b.ops,
                b.bytes_read,
                b.bytes_written,
                b.erasures,
                b.blocks_copied
            ),
            "case {case}: I/O counters diverged"
        );
        assert_eq!(
            (
                a.write_retries,
                a.erase_retries,
                a.segments_retired,
                a.eol_write_rejections
            ),
            (
                b.write_retries,
                b.erase_retries,
                b.segments_retired,
                b.eol_write_rejections
            ),
            "case {case}: fault counters diverged"
        );
    }
}

#[test]
fn magnetic_disk_recovery_is_idempotent() {
    use mobistore::device::disk::SpinDownPolicy;
    use mobistore::device::params::cu140_datasheet;
    use mobistore::device::{Dir, MagneticDisk};

    for case in 0..48u64 {
        let mut rng = case_rng(22, case);
        let policy = match rng.below(2) {
            0 => SpinDownPolicy::Never,
            _ => SpinDownPolicy::Fixed(SimDuration::from_secs_f64(2.0)),
        };
        let make_disk = || MagneticDisk::with_policy(cu140_datasheet(), policy);
        let mut once = make_disk();
        let mut twice = make_disk();

        let n_ops = rng.range_inclusive(1, 40);
        let mut now = SimTime::ZERO;
        for _ in 0..n_ops {
            let dir = if rng.below(2) == 0 {
                Dir::Read
            } else {
                Dir::Write
            };
            let bytes = (1 + rng.below(64)) * 1024;
            let file = rng.below(8);
            let lbn = rng.below(10_000);
            let op_end = now;
            for disk in [&mut once, &mut twice] {
                let svc = disk.access_at(now, dir, bytes, Some(file), Some(lbn));
                assert!(svc.end >= svc.start, "case {case}");
            }
            now = op_end + SimDuration::from_millis(1 + rng.below(3000));
        }

        let fat_bytes = 64 * 1024;
        let at = now;
        once.power_fail(at, fat_bytes);
        twice.power_fail(at, fat_bytes);
        twice.power_fail(at, fat_bytes);

        let a = once.counters();
        let b = twice.counters();
        assert_eq!(b.power_failures, a.power_failures + 1, "case {case}");
        assert_eq!(a.ops, b.ops, "case {case}: op counters diverged");

        // The doubled recovery must not change what the disk does next:
        // an identical probe access long after both recoveries finished
        // costs exactly the same and leaves identical counter deltas.
        let probe_at = at + SimDuration::from_secs_f64(3600.0);
        let pa = once.access_at(probe_at, Dir::Read, 8 * 1024, Some(3), Some(512));
        let pb = twice.access_at(probe_at, Dir::Read, 8 * 1024, Some(3), Some(512));
        assert_eq!(
            pa.end - pa.start,
            pb.end - pb.start,
            "case {case}: probe service time diverged"
        );
        assert_eq!(pa.start, pb.start, "case {case}: probe start diverged");
        let a2 = once.counters();
        let b2 = twice.counters();
        assert_eq!(
            (a2.ops - a.ops, a2.bytes_read - a.bytes_read),
            (b2.ops - b.ops, b2.bytes_read - b.bytes_read),
            "case {case}: probe counter deltas diverged"
        );
    }
}

// ---------------------------------------------------------------------
// Histogram merge: commutative, associative, empty-identity, and the
// merged percentiles equal the concatenated stream's percentiles (the
// merge is a bucket-wise add, so the merged histogram IS the histogram
// of the concatenation — and its percentile estimates stay within one
// 1/32-octave sub-bucket of the exact concatenated-sample quantiles).
// ---------------------------------------------------------------------

#[test]
fn histogram_merge_equals_concatenation() {
    use mobistore::sim::hist::Histogram;

    let hist_of = |samples: &[u64]| {
        let mut h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h
    };
    for case in 0..200u64 {
        let mut rng = case_rng(23, case);
        let gen = |rng: &mut SimRng| -> Vec<u64> {
            let n = rng.below(200) as usize;
            (0..n).map(|_| rng.next_u64() >> rng.below(55)).collect()
        };
        let (xs, ys, zs) = (gen(&mut rng), gen(&mut rng), gen(&mut rng));
        let (a, b, c) = (hist_of(&xs), hist_of(&ys), hist_of(&zs));

        // Commutative and associative, exactly (bucket-wise u64 adds).
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "case {case}: merge not commutative");
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "case {case}: merge not associative");

        // Empty is an identity on both sides.
        let mut id = a.clone();
        id.merge(&Histogram::new());
        assert_eq!(id, a, "case {case}: right identity");
        let mut id = Histogram::new();
        id.merge(&a);
        assert_eq!(id, a, "case {case}: left identity");

        // Merged == histogram of the concatenated stream, so percentiles
        // agree exactly...
        let mut concat = xs.clone();
        concat.extend(&ys);
        let whole = hist_of(&concat);
        assert_eq!(ab, whole, "case {case}: merge != concatenation");

        // ...and track the exact concatenated-sample quantiles within one
        // log-linear sub-bucket (1/32 octave).
        if concat.is_empty() {
            continue;
        }
        concat.sort_unstable();
        let n = concat.len();
        for q in [0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = concat[rank - 1];
            let est = ab.percentile_nanos(q);
            let (lo, hi) = Histogram::bucket_bounds(exact);
            assert_eq!(est, lo, "case {case} q {q}");
            assert!(
                est <= exact && (exact - est < hi - lo || hi == u64::MAX),
                "case {case} q {q}: {est} more than a sub-bucket from {exact}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Summary merge: merging frozen summaries matches summarizing the
// concatenated stream; bit-exact commutativity; empty identity. (Exact
// associativity is not claimed — float addition regroups — so the
// three-way check uses a relative tolerance.)
// ---------------------------------------------------------------------

#[test]
fn summary_merge_matches_concatenated_stream() {
    use mobistore::sim::stats::Summary;

    let summarize = |xs: &[f64]| {
        let mut s = OnlineStats::new();
        for &x in xs {
            s.record(x);
        }
        s.summary()
    };
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
    for case in 0..200u64 {
        let mut rng = case_rng(24, case);
        let gen = |rng: &mut SimRng| -> Vec<f64> {
            let n = rng.below(150) as usize;
            (0..n).map(|_| rng.uniform(0.0, 1e4)).collect()
        };
        let (xs, ys, zs) = (gen(&mut rng), gen(&mut rng), gen(&mut rng));
        let (a, b, c) = (summarize(&xs), summarize(&ys), summarize(&zs));

        // Merge == summarize(concatenation), within float tolerance.
        let mut concat = xs.clone();
        concat.extend(&ys);
        let whole = summarize(&concat);
        let mut ab = a;
        ab.merge(&b);
        assert_eq!(ab.count, whole.count, "case {case}");
        assert_eq!(ab.min, whole.min, "case {case}");
        assert_eq!(ab.max, whole.max, "case {case}");
        assert!(close(ab.mean, whole.mean), "case {case}: mean");
        assert!(close(ab.std, whole.std), "case {case}: std");

        // Bit-exact commutativity (the merge is written symmetrically).
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "case {case}: merge not commutative");

        // Associative within tolerance.
        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        assert_eq!(ab_c.count, a_bc.count, "case {case}");
        assert!(close(ab_c.mean, a_bc.mean), "case {case}: assoc mean");
        assert!(close(ab_c.std, a_bc.std), "case {case}: assoc std");

        // Empty is an identity on both sides.
        let mut id = a;
        id.merge(&Summary::default());
        assert_eq!(id, a, "case {case}: right identity");
        let mut id = Summary::default();
        id.merge(&a);
        assert_eq!(id, a, "case {case}: left identity");
    }
}

// ---------------------------------------------------------------------
// Metrics merge: counters add exactly, histograms concatenate, energy
// adds, duration takes the max, and Metrics::empty is an identity —
// checked on real simulation outputs, not synthetic rows.
// ---------------------------------------------------------------------

#[test]
fn metrics_merge_combines_runs() {
    use mobistore::core::config::SystemConfig;
    use mobistore::core::metrics::Metrics;
    use mobistore::device::params::{cu140_datasheet, sdp5_datasheet};
    use mobistore::Workload;

    let run = |cfg: &SystemConfig, seed: u64| {
        let trace = Workload::Synth.generate_scaled(0.02, seed);
        mobistore::simulate(cfg, &trace)
    };
    let disk = SystemConfig::disk(cu140_datasheet()).with_dram(1 << 20);
    let flash = SystemConfig::flash_disk(sdp5_datasheet()).with_dram(1 << 20);
    for case in 0..8u64 {
        let a = run(&disk, 100 + case);
        let b = run(&flash, 200 + case);

        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(
            ab.overall_response_ms.count,
            a.overall_response_ms.count + b.overall_response_ms.count,
            "case {case}"
        );
        assert_eq!(ab.energy, a.energy + b.energy, "case {case}");
        assert_eq!(ab.duration, a.duration.max(b.duration), "case {case}");
        let mut whole = a.overall_latency.clone();
        whole.merge(&b.overall_latency);
        assert_eq!(ab.overall_latency, whole, "case {case}");
        // Both component counter sets survive the merge.
        let (da, db) = (a.disk.unwrap(), b.flash_disk.unwrap());
        assert_eq!(ab.disk.unwrap().ops, da.ops, "case {case}");
        assert_eq!(ab.flash_disk.unwrap().ops, db.ops, "case {case}");

        // Commutative up to the label: same bytes either way.
        let mut ba = b.clone();
        ba.merge(&a);
        let strip = |m: &Metrics| {
            let mut m = m.clone();
            m.name = String::new();
            // The named lists append in first-seen order; sort for the
            // comparison since row order is presentation, not meaning.
            m.energy_by_component.sort_by_key(|&(n, _)| n);
            m.backend_states.sort_by_key(|&(n, _, _)| n);
            format!("{m:?}")
        };
        assert_eq!(strip(&ab), strip(&ba), "case {case}: merge not commutative");

        // Metrics::empty is an identity on both sides.
        let mut id = a.clone();
        id.merge(&Metrics::empty("zero"));
        assert_eq!(strip(&id), strip(&a), "case {case}: right identity");
        let mut id = Metrics::empty("zero");
        id.merge(&a);
        assert_eq!(strip(&id), strip(&a), "case {case}: left identity");
    }
}
