//! Durability acceptance tests: the `repro durability` sweep must be
//! byte-identical at any `--jobs` count, and the array layer's
//! power-failure recovery must be idempotent — recovering twice from the
//! same crash leaves exactly the state one recovery produced.
//!
//! The jobs test is one `#[test]` on purpose: `exec::set_jobs` is
//! process-global, and the default test harness runs tests concurrently —
//! splitting the serial and parallel halves into separate tests would
//! race on the worker-count override.

use mobistore::device::array::{ArrayDevice, ChildClass};
use mobistore::experiments::durability::{self, DurabilityOptions};
use mobistore::experiments::render::{render_target, RenderOptions};
use mobistore::experiments::Scale;
use mobistore::sim::exec;
use mobistore::sim::fault::DeathSchedule;
use mobistore::sim::time::SimTime;

fn sweep_options() -> DurabilityOptions {
    DurabilityOptions {
        geometries: vec![(2, 1), (4, 2)],
        death_rates: vec![0.0, 60.0],
        rebuild_rate: 64.0,
        seed: 1994,
    }
}

#[test]
fn parallel_durability_matches_serial() {
    let opts = RenderOptions {
        durability: sweep_options(),
        ..Default::default()
    };

    exec::set_jobs(1);
    let serial = render_target("durability", Scale::quick(), &opts);
    exec::set_jobs(4);
    let parallel = render_target("durability", Scale::quick(), &opts);

    // Rendered stdout is the acceptance surface — byte-identical.
    assert_eq!(serial.text, parallel.text);

    // And the underlying floats and counters must match exactly, not
    // just after formatting truncates them.
    assert_eq!(serial.metrics.len(), parallel.metrics.len());
    for (a, b) in serial.metrics.iter().zip(&parallel.metrics) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.energy.get(), b.energy.get(), "{}", a.name);
        assert_eq!(a.read_response_ms, b.read_response_ms, "{}", a.name);
        assert_eq!(a.degraded_read_ms, b.degraded_read_ms, "{}", a.name);
        assert_eq!(a.array, b.array, "{}", a.name);
    }

    // The run actually exercised the death machinery somewhere.
    let deaths: u64 = serial
        .metrics
        .iter()
        .map(|m| m.array.expect("array counters").device_deaths)
        .sum();
    assert!(deaths > 0, "sweep at rate 60 injected no deaths");
}

#[test]
fn durability_runs_alone_match_the_rendered_sweep() {
    // `run` is a pure function of (scale, options): re-running it must
    // reproduce the same report the renderer embedded.
    let opts = sweep_options();
    let a = format!("{}", durability::run(Scale::quick(), &opts));
    let b = format!("{}", durability::run(Scale::quick(), &opts));
    assert_eq!(a, b);
}

/// Builds a 2+1 flash-disk array with one scheduled mid-run death, loads
/// it, and writes a burst of blocks up to `crash`.
fn arrange_array(crash: SimTime) -> ArrayDevice {
    let children = [
        ChildClass::FlashDisk,
        ChildClass::FlashDisk,
        ChildClass::FlashDisk,
    ];
    let mut arr = ArrayDevice::new(2, 1, &children, 1024)
        .with_deaths(DeathSchedule::explicit(vec![
            Some(SimTime::from_secs_f64(2.0)),
            None,
            None,
        ]))
        .with_rebuild_rate(32.0);
    arr.preload(0..64);
    let mut t = SimTime::from_secs_f64(0.5);
    for lbn in 0..48u64 {
        if t >= crash {
            break;
        }
        arr.try_write(t, lbn, 1).expect("write under <= m losses");
        t = SimTime::from_nanos(t.as_nanos() + 50_000_000);
    }
    arr
}

#[test]
fn array_recovery_is_idempotent() {
    let crash = SimTime::from_secs_f64(3.0);

    // One recovery.
    let mut once = arrange_array(crash);
    once.power_fail(crash);
    let snap_once = once.snapshot();

    // Recovering again from the same instant must change nothing: the
    // same blocks, the same generations, the same unreadable set.
    let mut twice = arrange_array(crash);
    twice.power_fail(crash);
    twice.power_fail(crash);
    assert_eq!(snap_once, twice.snapshot());
    assert_eq!(once.unreadable_blocks(), twice.unreadable_blocks());

    // And recovery never loses acked data under <= m deaths.
    assert!(once.unreadable_blocks().is_empty());
    let mut readable = once;
    for lbn in 0..48u64 {
        let (_, r) = readable.try_read(SimTime::from_secs_f64(10.0), lbn, 1);
        assert!(r.is_ok(), "block {lbn} unreadable after recovery");
    }
}
