//! The DRAM buffer cache.
//!
//! Every storage organisation in the paper includes a DRAM buffer cache
//! (§2). It is searched first on reads and is the target of all writes;
//! the paper's configurations use *write-through* caching (the Macintosh /
//! DOS behaviour, §4.2), with write-back available as the ablation the
//! §4.2 footnote alludes to ("a write-back cache might avoid some erasures
//! at the cost of occasional data loss").
//!
//! DRAM is the one component that draws significant power even when idle
//! (refresh), which is why §5.4 finds that adding DRAM to a flash-card
//! system can *cost* energy without improving performance.

use std::collections::HashSet;

use mobistore_device::params::DramParams;
use mobistore_sim::energy::{EnergyMeter, Joules, Watts};
use mobistore_sim::obs::{Event, Observer};
use mobistore_sim::span::{Span, SpanKind};
use mobistore_sim::time::{SimDuration, SimTime};
use mobistore_sim::units::MIB;

use crate::lru::LruSet;

/// Whether writes propagate immediately or on eviction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Every write also goes to non-volatile storage (the paper's default).
    WriteThrough,
    /// Writes dirty the cache; dirty blocks reach storage on eviction.
    WriteBack,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Blocks found in cache on reads.
    pub read_hits: u64,
    /// Blocks missed on reads.
    pub read_misses: u64,
    /// Blocks written.
    pub writes: u64,
    /// Dirty blocks pushed out by eviction (write-back only).
    pub writebacks: u64,
    /// Backend fills refused because the device reported the data
    /// uncorrectable: the cache must never hold blocks the device could
    /// not deliver intact.
    pub fill_rejects: u64,
}

impl CacheStats {
    /// Adds another cache's counters into this one (fleet aggregation:
    /// every field is a plain count, so merging is field-wise addition).
    pub fn merge(&mut self, other: &CacheStats) {
        self.read_hits += other.read_hits;
        self.read_misses += other.read_misses;
        self.writes += other.writes;
        self.writebacks += other.writebacks;
        self.fill_rejects += other.fill_rejects;
    }
}

/// A block was evicted and, if dirty, must be flushed by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted logical block.
    pub lbn: u64,
    /// True if the block held unwritten data (write-back only).
    pub dirty: bool,
}

/// A fixed-capacity block cache with LRU replacement and energy accounting.
///
/// # Examples
///
/// ```
/// use mobistore_cache::dram::{BufferCache, WritePolicy};
/// use mobistore_device::params::dram_nec;
///
/// let mut cache = BufferCache::new(dram_nec(), 8 * 1024, 1024, WritePolicy::WriteThrough);
/// assert_eq!(cache.read_probe(&[1, 2]).len(), 2, "both blocks miss");
/// cache.insert(1, false);
/// assert!(cache.read_probe(&[1]).is_empty(), "now a hit");
/// ```
#[derive(Debug, Clone)]
pub struct BufferCache {
    params: DramParams,
    capacity_mib: f64,
    block_size: u64,
    lru: LruSet,
    dirty: HashSet<u64>,
    policy: WritePolicy,
    meter: EnergyMeter,
    stats: CacheStats,
}

const CATEGORIES: &[&str] = &["active", "idle"];

impl BufferCache {
    /// Creates a cache of `capacity_bytes` over blocks of `block_size`.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds no complete block.
    pub fn new(
        params: DramParams,
        capacity_bytes: u64,
        block_size: u64,
        policy: WritePolicy,
    ) -> Self {
        match Self::try_new(params, capacity_bytes, block_size, policy) {
            Ok(cache) => cache,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`new`](Self::new): returns a typed [`crate::CacheError`]
    /// instead of panicking on bad geometry.
    pub fn try_new(
        params: DramParams,
        capacity_bytes: u64,
        block_size: u64,
        policy: WritePolicy,
    ) -> Result<Self, crate::CacheError> {
        if block_size == 0 {
            return Err(crate::CacheError::ZeroBlockSize);
        }
        let blocks = (capacity_bytes / block_size) as usize;
        if blocks == 0 {
            return Err(crate::CacheError::Undersized {
                capacity_bytes,
                block_size,
            });
        }
        Ok(BufferCache {
            params,
            capacity_mib: capacity_bytes as f64 / MIB as f64,
            block_size,
            lru: LruSet::new(blocks),
            dirty: HashSet::new(),
            policy,
            meter: EnergyMeter::new(CATEGORIES),
            stats: CacheStats::default(),
        })
    }

    /// Returns the capacity in blocks.
    pub fn capacity_blocks(&self) -> usize {
        self.lru.capacity()
    }

    /// Returns the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Notes `n` missed blocks whose backend fill was refused because the
    /// read came back uncorrectable; the cache stays unfilled for them.
    pub fn note_fill_rejects(&mut self, n: u64) {
        self.stats.fill_rejects += n;
    }

    /// Returns total energy consumed so far.
    pub fn energy(&self) -> Joules {
        self.meter.total()
    }

    /// Returns the energy meter for breakdowns.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Zeroes energy and counters while keeping contents (warm-up boundary).
    pub fn reset_metrics(&mut self) {
        self.meter = EnergyMeter::new(CATEGORIES);
        self.stats = CacheStats::default();
    }

    /// Probes a read: touches the blocks that hit and returns the blocks
    /// that miss, updating hit/miss counters.
    pub fn read_probe(&mut self, lbns: &[u64]) -> Vec<u64> {
        let mut misses = Vec::new();
        for &lbn in lbns {
            if self.lru.touch(lbn) {
                self.stats.read_hits += 1;
            } else {
                self.stats.read_misses += 1;
                misses.push(lbn);
            }
        }
        misses
    }

    /// [`read_probe`](Self::read_probe), reporting the hit/miss split to
    /// an observer as a [`Event::CacheRead`] stamped `now` plus a
    /// [`SpanKind::CacheLookup`] span covering the cache's access time
    /// for the probed blocks.
    pub fn read_probe_obs<O: Observer>(
        &mut self,
        now: SimTime,
        lbns: &[u64],
        obs: &mut O,
    ) -> Vec<u64> {
        let misses = self.read_probe(lbns);
        let hits = (lbns.len() - misses.len()) as u32;
        obs.record(&Event::CacheRead {
            t: now,
            hits,
            misses: misses.len() as u32,
        });
        obs.span(&Span::new(
            SpanKind::CacheLookup {
                hits,
                misses: misses.len() as u32,
            },
            now,
            now + self.access_time(lbns.len() as u64 * self.block_size),
        ));
        misses
    }

    /// Inserts a block (`dirty` marks unwritten data under write-back);
    /// returns an eviction the caller may need to flush.
    pub fn insert(&mut self, lbn: u64, dirty: bool) -> Option<Evicted> {
        let mark_dirty = dirty && self.policy == WritePolicy::WriteBack;
        let evicted = self.lru.insert(lbn).map(|old| {
            let was_dirty = self.dirty.remove(&old);
            if was_dirty {
                self.stats.writebacks += 1;
            }
            Evicted {
                lbn: old,
                dirty: was_dirty,
            }
        });
        if mark_dirty {
            self.dirty.insert(lbn);
        } else if evicted.is_none_or(|e| e.lbn != lbn) {
            // A clean (write-through) insert of a block that may have been
            // dirty before.
            self.dirty.remove(&lbn);
        }
        evicted
    }

    /// Records a write of the given blocks, inserting them; returns the
    /// dirty evictions the caller must flush (write-back only).
    pub fn write(&mut self, lbns: &[u64]) -> Vec<Evicted> {
        let mut out = Vec::new();
        for &lbn in lbns {
            self.stats.writes += 1;
            if let Some(e) = self.insert(lbn, true) {
                if e.dirty {
                    out.push(e);
                }
            }
        }
        out
    }

    /// [`write`](Self::write), reporting the absorbed blocks and dirty
    /// evictions to an observer as a [`Event::CacheWrite`] stamped `now`.
    pub fn write_obs<O: Observer>(
        &mut self,
        now: SimTime,
        lbns: &[u64],
        obs: &mut O,
    ) -> Vec<Evicted> {
        let out = self.write(lbns);
        obs.record(&Event::CacheWrite {
            t: now,
            blocks: lbns.len() as u32,
            dirty_evictions: out.len() as u32,
        });
        out
    }

    /// Drops a block (file deletion); returns true if it was present.
    pub fn invalidate(&mut self, lbn: u64) -> bool {
        self.dirty.remove(&lbn);
        self.lru.remove(lbn)
    }

    /// Drops every cached block, as a power failure does to volatile DRAM;
    /// returns the number of dirty (write-back) blocks that were lost.
    pub fn power_fail_clear(&mut self) -> u64 {
        let lost = self.dirty.len() as u64;
        self.dirty.clear();
        while self.lru.pop_lru().is_some() {}
        lost
    }

    /// Removes and returns every dirty block (used to flush a write-back
    /// cache at the end of a run).
    pub fn drain_dirty(&mut self) -> Vec<u64> {
        let mut dirty: Vec<u64> = self.dirty.drain().collect();
        dirty.sort_unstable();
        dirty
    }

    /// Time to move `bytes` between the CPU and the cache.
    pub fn access_time(&self, bytes: u64) -> SimDuration {
        self.params.access_latency + self.params.bandwidth.transfer_time(bytes)
    }

    /// Charges the energy of one access of `bytes` (the array draws its
    /// active power for the transfer duration, on top of refresh).
    pub fn charge_access(&mut self, bytes: u64) {
        let dur = self.access_time(bytes);
        let delta = Watts(
            (self.params.active_power_per_mib.get() - self.params.idle_power_per_mib.get())
                * self.capacity_mib,
        );
        self.meter.charge_for("active", delta, dur);
    }

    /// Charges refresh power for a span of simulated time; call once with
    /// the measured portion's duration.
    pub fn charge_idle_span(&mut self, span: SimDuration) {
        let refresh = Watts(self.params.idle_power_per_mib.get() * self.capacity_mib);
        self.meter.charge_for("idle", refresh, span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobistore_device::params::dram_nec;

    fn cache(blocks: u64, policy: WritePolicy) -> BufferCache {
        BufferCache::new(dram_nec(), blocks * 1024, 1024, policy)
    }

    #[test]
    fn read_probe_counts_hits_and_misses() {
        let mut c = cache(4, WritePolicy::WriteThrough);
        c.insert(1, false);
        c.insert(2, false);
        let misses = c.read_probe(&[1, 2, 3]);
        assert_eq!(misses, vec![3]);
        let s = c.stats();
        assert_eq!(s.read_hits, 2);
        assert_eq!(s.read_misses, 1);
    }

    #[test]
    fn lru_eviction_on_overflow() {
        let mut c = cache(2, WritePolicy::WriteThrough);
        c.insert(1, false);
        c.insert(2, false);
        let e = c.insert(3, false).expect("evicts");
        assert_eq!(e.lbn, 1);
        assert!(!e.dirty, "write-through evictions are clean");
    }

    #[test]
    fn write_through_never_reports_dirty_evictions() {
        let mut c = cache(2, WritePolicy::WriteThrough);
        let flushes = c.write(&[1, 2, 3, 4]);
        assert!(flushes.is_empty());
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn power_fail_clear_empties_and_counts_lost_dirt() {
        let mut c = cache(4, WritePolicy::WriteBack);
        c.write(&[1, 2]);
        c.insert(3, false);
        assert_eq!(c.power_fail_clear(), 2, "two dirty blocks lost");
        // Everything is gone: all three blocks now miss.
        assert_eq!(c.read_probe(&[1, 2, 3]), vec![1, 2, 3]);
        assert!(c.drain_dirty().is_empty());
    }

    #[test]
    fn write_back_reports_dirty_evictions() {
        let mut c = cache(2, WritePolicy::WriteBack);
        let flushes = c.write(&[1, 2, 3]);
        assert_eq!(flushes.len(), 1);
        assert_eq!(flushes[0].lbn, 1);
        assert!(flushes[0].dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn drain_dirty_returns_sorted_blocks() {
        let mut c = cache(8, WritePolicy::WriteBack);
        c.write(&[5, 1, 3]);
        assert_eq!(c.drain_dirty(), vec![1, 3, 5]);
        assert!(c.drain_dirty().is_empty(), "drained");
    }

    #[test]
    fn invalidate_drops_block() {
        let mut c = cache(4, WritePolicy::WriteBack);
        c.write(&[7]);
        assert!(c.invalidate(7));
        assert!(!c.invalidate(7));
        assert_eq!(c.read_probe(&[7]), vec![7]);
        assert!(c.drain_dirty().is_empty(), "invalidate clears dirty state");
    }

    #[test]
    fn clean_reinsert_clears_dirty_bit() {
        let mut c = cache(4, WritePolicy::WriteBack);
        c.write(&[1]);
        // E.g. the block was flushed by the caller and refilled clean.
        c.insert(1, false);
        assert!(c.drain_dirty().is_empty());
    }

    #[test]
    fn energy_accumulates() {
        let mut c = cache(2048, WritePolicy::WriteThrough);
        c.charge_access(4096);
        c.charge_idle_span(SimDuration::from_secs(100));
        assert!(c.meter().category("active").get() > 0.0);
        // 2 MiB at 0.025 W/MiB for 100 s = 5 J.
        assert!((c.meter().category("idle").get() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn access_time_scales_with_bytes() {
        let c = cache(4, WritePolicy::WriteThrough);
        assert!(c.access_time(64 * 1024) > c.access_time(1024));
    }

    #[test]
    #[should_panic(expected = "smaller than one block")]
    fn undersized_cache_panics() {
        let _ = BufferCache::new(dram_nec(), 512, 1024, WritePolicy::WriteThrough);
    }

    #[test]
    fn try_new_returns_typed_geometry_errors() {
        use crate::CacheError;
        let e = BufferCache::try_new(dram_nec(), 512, 1024, WritePolicy::WriteThrough)
            .expect_err("undersized");
        assert_eq!(
            e,
            CacheError::Undersized {
                capacity_bytes: 512,
                block_size: 1024
            }
        );
        let e = BufferCache::try_new(dram_nec(), 512, 0, WritePolicy::WriteThrough)
            .expect_err("zero block size");
        assert_eq!(e, CacheError::ZeroBlockSize);
        assert!(BufferCache::try_new(dram_nec(), 8192, 1024, WritePolicy::WriteBack).is_ok());
    }
}
