//! Shared target renderer.
//!
//! [`render_target`] produces, for one named target, exactly the bytes
//! the `repro` binary prints to stdout for it (plus any CSV side files).
//! Living in the library rather than the binary lets the golden snapshot
//! tests compare the rendered output against committed fixtures — any
//! refactor that silently shifts a paper number fails the suite.

use std::fmt::Display;

use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::SimError;
use mobistore_sim::span::Span;

use crate::crashcheck::CrashCheckOptions;
use crate::durability::DurabilityOptions;
use crate::fleet::FleetOptions;
use crate::integrity::IntegrityOptions;
use crate::reliability::ReliabilityOptions;
use crate::throughput::ThroughputOptions;
use crate::{crashcheck, durability, fleet, integrity, reliability, Scale};

/// Every default target, in the default (paper) order. Each target's
/// stdout is deterministic (byte-identical at any `--jobs` count), so
/// the whole list is golden-pinnable.
pub const TARGETS: [&str; 24] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "async",
    "endurance",
    "verify",
    "battery",
    "ablations",
    "nextgen",
    "sensitivity",
    "related",
    "reliability",
    "observe",
    "crashcheck",
    "integrity",
    "fleet",
    "profile",
    "durability",
];

/// Targets that must be requested by name: their stdout carries
/// wall-clock numbers, so they can never join the deterministic default
/// list (the CI determinism smoke `cmp`s default-target stdout across
/// `--jobs` counts).
pub const ON_DEMAND_TARGETS: [&str; 1] = ["throughput"];

/// Options a target may consume beyond the [`Scale`].
#[derive(Debug, Clone, Default)]
pub struct RenderOptions {
    /// The `reliability` target's fault sweep parameters.
    pub reliability: ReliabilityOptions,
    /// The `crashcheck` target's sweep density and jitter seed.
    pub crashcheck: CrashCheckOptions,
    /// The `integrity` target's bit-error sweep parameters.
    pub integrity: IntegrityOptions,
    /// The `fleet` target's shard count, population, and seed.
    pub fleet: FleetOptions,
    /// The `durability` target's geometry/death-rate sweep parameters.
    pub durability: DurabilityOptions,
    /// Collect per-event JSONL streams (the `--events-out` payload) from
    /// targets that observe their simulations. Off by default: rendering
    /// with the default options is exactly the pre-observability output.
    pub collect_events: bool,
    /// Collect sim-time spans (the `--trace-out` payload) from targets
    /// that observe their simulations. Off by default.
    pub collect_spans: bool,
    /// Print fleet progress heartbeats to stderr. Stdout is unaffected.
    pub progress: bool,
    /// The `throughput` target's repetition counts.
    pub throughput: ThroughputOptions,
}

/// One rendered target: its stdout bytes and any side artifacts.
#[derive(Debug, Clone)]
pub struct RenderedTarget {
    /// Exactly what the serial `repro` binary prints to stdout.
    pub text: String,
    /// `(file name, contents)` pairs for the `--csv` directory.
    pub csvs: Vec<(&'static str, String)>,
    /// Full metrics rows for the `--metrics-out` export (empty for targets
    /// that report derived values only).
    pub metrics: Vec<Metrics>,
    /// The target's JSONL event stream, when
    /// [`RenderOptions::collect_events`] was set and the target observes.
    pub events_jsonl: Option<String>,
    /// Fleet sharding parameters, set only by the `fleet` target; carried
    /// into the `--metrics-out` document as its `mobistore-fleet/1` block.
    pub fleet_info: Option<crate::export::FleetInfo>,
    /// Durability sweep parameters, set only by the `durability` target;
    /// carried into the `--metrics-out` document as its
    /// `mobistore-durability/1` block.
    pub durability_info: Option<crate::export::DurabilityInfo>,
    /// `(process name, spans)` pairs for the `--trace-out` export, when
    /// [`RenderOptions::collect_spans`] was set and the target observes.
    pub span_processes: Vec<(String, Vec<Span>)>,
    /// Wall-clock report for stderr (never stdout), set by the `profile`
    /// target.
    pub host_report: Option<String>,
    /// The `mobistore-throughput/1` JSON document, set by the
    /// `throughput` target.
    pub throughput_json: Option<String>,
}

/// Renders one target, panicking on any [`SimError`].
///
/// # Panics
///
/// Panics on a target name not in [`TARGETS`] or [`ON_DEMAND_TARGETS`],
/// or on a simulation that cannot be set up. The `repro` binary goes
/// through [`try_render_target`] instead, mapping errors to exit codes.
pub fn render_target(target: &str, scale: Scale, options: &RenderOptions) -> RenderedTarget {
    match try_render_target(target, scale, options) {
        Ok(r) => r,
        Err(e) => panic!("target {target}: {e}"),
    }
}

/// Renders one target, reporting simulation setup failures as typed
/// errors.
///
/// # Errors
///
/// Returns the [`SimError`] a target's simulation setup reported.
///
/// # Panics
///
/// Panics on a target name not in [`TARGETS`] or [`ON_DEMAND_TARGETS`].
pub fn try_render_target(
    target: &str,
    scale: Scale,
    options: &RenderOptions,
) -> Result<RenderedTarget, SimError> {
    let mut out = String::new();
    let mut csvs: Vec<(&'static str, String)> = Vec::new();
    let mut metrics: Vec<Metrics> = Vec::new();
    let mut events_jsonl: Option<String> = None;
    let mut fleet_info: Option<crate::export::FleetInfo> = None;
    let mut durability_info: Option<crate::export::DurabilityInfo> = None;
    let mut span_processes: Vec<(String, Vec<Span>)> = Vec::new();
    let mut host_report: Option<String> = None;
    let mut throughput_json: Option<String> = None;
    // Mirrors the old `println!("{}\n", x)`: the value, then a blank line.
    fn p(out: &mut String, x: impl Display) {
        out.push_str(&format!("{x}\n\n"));
    }
    match target {
        "table1" => p(&mut out, crate::table1::run()),
        "table2" => p(&mut out, crate::table2::run()),
        "table3" => p(&mut out, crate::table3::run(scale)),
        "table4" => {
            let t = crate::table4::run(scale);
            p(&mut out, &t);
            csvs.push(("table4.csv", crate::csv::table4_csv(&t)));
            for part in &t.parts {
                for row in &part.rows {
                    let mut m = row.clone();
                    m.name = format!("{}/{}", part.workload.name(), row.name);
                    metrics.push(m);
                }
            }
        }
        "figure1" => {
            let fig = crate::figure1::run();
            p(&mut out, format_args!("{fig}\n{}", fig.plot()));
        }
        "figure2" => {
            let fig = crate::figure2::run(scale);
            p(&mut out, format_args!("{fig}\n{}", fig.plot()));
            csvs.push(("figure2.csv", crate::csv::figure2_csv(&fig)));
        }
        "figure3" => {
            let fig = crate::figure3::run();
            p(&mut out, format_args!("{fig}\n{}", fig.plot()));
        }
        "figure4" => {
            let fig = crate::figure4::run(scale);
            p(&mut out, &fig);
            csvs.push(("figure4.csv", crate::csv::figure4_csv(&fig)));
        }
        "figure5" => {
            let fig = crate::figure5::run(scale);
            p(&mut out, &fig);
            csvs.push(("figure5.csv", crate::csv::figure5_csv(&fig)));
        }
        "async" => p(&mut out, crate::async_cleaning::run(scale)),
        "endurance" => p(&mut out, crate::endurance::run(scale)),
        "verify" => p(&mut out, crate::verification::run(scale)),
        "battery" => p(&mut out, crate::battery::run(scale)),
        "ablations" => {
            p(&mut out, crate::ablations::cleaning_policies(scale));
            p(&mut out, crate::ablations::write_back_cache(scale));
            p(&mut out, crate::ablations::spin_down_sweep(scale));
            p(&mut out, crate::ablations::flash_with_sram(scale));
            p(&mut out, crate::ablations::seek_models(scale));
        }
        "nextgen" => {
            p(
                &mut out,
                crate::next_gen::series2plus(mobistore_workload::Workload::Dos, scale),
            );
            p(&mut out, crate::next_gen::wear_leveling(scale));
            p(
                &mut out,
                crate::next_gen::render_lifetime(&crate::next_gen::lifetime(scale)),
            );
        }
        "sensitivity" => p(&mut out, crate::sensitivity::run(scale)),
        "related" => p(&mut out, crate::related::run(scale)),
        "reliability" => p(&mut out, reliability::run(scale, &options.reliability)),
        "crashcheck" => p(&mut out, crashcheck::run(scale, &options.crashcheck)?),
        "integrity" => {
            let r = integrity::run(scale, &options.integrity);
            p(&mut out, &r);
            metrics.extend(r.metrics_rows());
        }
        "observe" => {
            let o = crate::observe::run(scale, options.collect_events, options.collect_spans);
            p(&mut out, &o);
            events_jsonl = o.events_jsonl();
            span_processes = o.span_processes().unwrap_or_default();
            metrics.extend(o.cells.into_iter().map(|c| c.metrics));
        }
        "profile" => {
            let pr = crate::profile::run(scale);
            p(&mut out, &pr);
            host_report = Some(pr.host_report().to_owned());
        }
        "throughput" => {
            let t = crate::throughput::run(scale, &options.throughput);
            p(&mut out, &t);
            throughput_json = Some(t.to_json());
        }
        "fleet" => {
            let fl = fleet::run_with_progress(scale, &options.fleet, options.progress)?;
            p(&mut out, &fl);
            metrics.extend(fl.metrics_rows());
            fleet_info = Some(crate::export::FleetInfo {
                shards: fl.options.shards,
                population: fl.options.population,
                seed: fl.options.seed,
                survivors: fl.survivors(),
                quarantined: fl
                    .quarantined
                    .iter()
                    .map(|e| (e.shard, e.attempts, e.cause.clone()))
                    .collect(),
            });
        }
        "durability" => {
            let d = durability::run(scale, &options.durability);
            p(&mut out, &d);
            metrics.extend(d.metrics_rows());
            durability_info = Some(crate::export::DurabilityInfo {
                geometries: d.options.geometries.clone(),
                death_rates: d.options.death_rates.clone(),
                rebuild_rate: d.options.rebuild_rate,
                seed: d.options.seed,
            });
        }
        other => panic!("unknown target {other}"),
    }
    Ok(RenderedTarget {
        text: out,
        csvs,
        metrics,
        events_jsonl,
        fleet_info,
        durability_info,
        span_processes,
        host_report,
        throughput_json,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_targets_render_nonempty() {
        for target in ["table1", "table2"] {
            let r = render_target(target, Scale::quick(), &RenderOptions::default());
            assert!(r.text.ends_with("\n\n"), "{target} missing separator");
            assert!(r.text.len() > 40, "{target} suspiciously short");
        }
    }

    #[test]
    #[should_panic(expected = "unknown target")]
    fn unknown_target_panics() {
        let _ = render_target("warp", Scale::quick(), &RenderOptions::default());
    }
}
