//! Trace record types.
//!
//! The paper uses two kinds of traces (§4.1): *file-level* traces (`mac`,
//! `dos`, `synth`) that record which file is accessed, the operation, the
//! offset, the size, and the time; and *disk-level* traces (`hp`) that
//! address blocks directly. File-level traces are preprocessed into
//! disk-level operations by [`crate::layout::FileLayout`].

use core::fmt;

use mobistore_sim::time::SimTime;

/// Identifies a file within one trace.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FileId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// The operation performed by a trace record.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Op {
    /// Read bytes from a file.
    Read,
    /// Write bytes to a file.
    Write,
    /// Delete the whole file (only the `dos` and `synth` traces contain
    /// deletions; see Table 3).
    Delete,
}

impl Op {
    /// Short lowercase name used in the on-disk trace format.
    pub fn name(self) -> &'static str {
        match self {
            Op::Read => "read",
            Op::Write => "write",
            Op::Delete => "delete",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One file-level trace record.
///
/// Sizes and offsets are in bytes. A [`Op::Delete`] record ignores `offset`
/// and `size`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FileRecord {
    /// When the operation was issued.
    pub time: SimTime,
    /// What was done.
    pub op: Op,
    /// Which file.
    pub file: FileId,
    /// Byte offset within the file.
    pub offset: u64,
    /// Transfer length in bytes.
    pub size: u64,
}

/// The kind of a disk-level operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DiskOpKind {
    /// Read blocks.
    Read,
    /// Write blocks.
    Write,
    /// Invalidate blocks (produced by file deletion); storage backends use
    /// this to mark blocks dead, like a modern TRIM.
    Trim,
}

/// One disk-level operation, produced by preprocessing a file-level trace
/// (or directly by a disk-level workload generator).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DiskOp {
    /// When the operation was issued.
    pub time: SimTime,
    /// What kind of access.
    pub kind: DiskOpKind,
    /// First logical block number.
    pub lbn: u64,
    /// Number of consecutive blocks.
    pub blocks: u32,
    /// The file this access belongs to; the disk model uses it for its
    /// seek heuristic (§4.2: repeated accesses to the same file never seek).
    /// Disk-level traces with no file information use `FileId(0)`.
    pub file: FileId,
}

impl DiskOp {
    /// Returns the transfer size in bytes given the trace's block size.
    pub fn bytes(&self, block_size: u64) -> u64 {
        u64::from(self.blocks) * block_size
    }
}

/// A complete trace: an ordered sequence of disk-level operations plus the
/// block size they are expressed in.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Block size in bytes (Table 3: 1 Kbyte for `mac`/`hp`, 0.5 Kbyte for
    /// `dos`).
    pub block_size: u64,
    /// Operations in non-decreasing time order.
    pub ops: Vec<DiskOp>,
}

impl Trace {
    /// Creates an empty trace with the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Trace {
            block_size,
            ops: Vec::new(),
        }
    }

    /// Appends an operation, checking time monotonicity.
    ///
    /// # Panics
    ///
    /// Panics if `op.time` precedes the last appended operation.
    pub fn push(&mut self, op: DiskOp) {
        if let Some(last) = self.ops.last() {
            assert!(op.time >= last.time, "trace times must be non-decreasing");
        }
        self.ops.push(op);
    }

    /// Returns the number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns true if the trace holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Returns the wall-clock span from first to last operation.
    pub fn duration(&self) -> mobistore_sim::time::SimDuration {
        match (self.ops.first(), self.ops.last()) {
            (Some(first), Some(last)) => last.time - first.time,
            _ => mobistore_sim::time::SimDuration::ZERO,
        }
    }

    /// Returns the largest logical block number touched plus one, i.e. the
    /// minimum device capacity (in blocks) needed to replay this trace.
    pub fn blocks_spanned(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| op.lbn + u64::from(op.blocks))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op_at(ns: u64) -> DiskOp {
        DiskOp {
            time: SimTime::from_nanos(ns),
            kind: DiskOpKind::Read,
            lbn: 0,
            blocks: 1,
            file: FileId(1),
        }
    }

    #[test]
    fn push_enforces_time_order() {
        let mut t = Trace::new(1024);
        t.push(op_at(5));
        t.push(op_at(5)); // Equal times are fine.
        t.push(op_at(9));
        assert_eq!(t.len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn push_rejects_time_travel() {
        let mut t = Trace::new(1024);
        t.push(op_at(9));
        t.push(op_at(5));
    }

    #[test]
    fn duration_and_span() {
        let mut t = Trace::new(512);
        assert_eq!(t.duration().as_nanos(), 0);
        assert_eq!(t.blocks_spanned(), 0);
        t.push(DiskOp {
            time: SimTime::from_nanos(10),
            kind: DiskOpKind::Write,
            lbn: 4,
            blocks: 3,
            file: FileId(0),
        });
        t.push(DiskOp {
            time: SimTime::from_nanos(30),
            kind: DiskOpKind::Read,
            lbn: 0,
            blocks: 2,
            file: FileId(0),
        });
        assert_eq!(t.duration().as_nanos(), 20);
        assert_eq!(t.blocks_spanned(), 7);
    }

    #[test]
    fn disk_op_bytes() {
        let op = DiskOp {
            time: SimTime::ZERO,
            kind: DiskOpKind::Read,
            lbn: 0,
            blocks: 4,
            file: FileId(0),
        };
        assert_eq!(op.bytes(512), 2048);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_size_rejected() {
        let _ = Trace::new(0);
    }
}
