//! Deterministic random-number generation and distribution sampling.
//!
//! Every stochastic component of the reproduction (workload generators, file
//! placement, synthetic data) draws from [`SimRng`], a small PCG32 generator.
//! A fixed seed therefore reproduces every experiment bit-for-bit, on any
//! platform. Distribution samplers beyond uniform (exponential, log-normal,
//! Zipf, bounded Pareto) are implemented here so the simulator needs no
//! external randomness crates.

/// A deterministic PCG32 (XSH-RR) pseudo-random generator.
///
/// # Examples
///
/// ```
/// use mobistore_sim::rng::SimRng;
///
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl SimRng {
    /// Creates a generator from a 64-bit seed with the default stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng::seed_with_stream(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Creates a generator from a seed and a stream selector; different
    /// streams with the same seed are statistically independent.
    pub fn seed_with_stream(seed: u64, stream: u64) -> Self {
        let inc = (stream << 1) | 1;
        let mut rng = SimRng { state: 0, inc };
        rng.step();
        rng.state = rng.state.wrapping_add(seed);
        rng.step();
        rng
    }

    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits give a uniform dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.f64()
    }

    /// Returns a uniform integer in `[0, n)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        // Lemire-style rejection on the widening multiply.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "bad range [{lo}, {hi}]");
        lo + self.below(hi - lo + 1)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.f64() < p
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive: {mean}"
        );
        // Inverse-CDF; (1 - f64()) avoids ln(0).
        -mean * (1.0 - self.f64()).ln()
    }

    /// Samples a standard normal via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.f64(); // (0, 1]: safe for ln
        let u2: f64 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Samples a log-normal distribution parameterised by the *target*
    /// arithmetic mean and standard deviation of the resulting values.
    ///
    /// This is the heavy-tailed interarrival model used to match the paper's
    /// Table 3 statistics (mean ≪ σ ≪ max).
    ///
    /// # Panics
    ///
    /// Panics if `mean` or `std` is not finite and positive.
    pub fn lognormal_mean_std(&mut self, mean: f64, std: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "mean must be positive: {mean}"
        );
        assert!(std.is_finite() && std > 0.0, "std must be positive: {std}");
        let variance_ratio = (std / mean).powi(2);
        let sigma2 = (1.0 + variance_ratio).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        (mu + sigma2.sqrt() * self.standard_normal()).exp()
    }
}

/// A Zipf-like discrete distribution over `0..n`, used for file popularity.
///
/// Rank `k` (0-based) is drawn with probability proportional to
/// `1 / (k + 1)^s`.
///
/// # Examples
///
/// ```
/// use mobistore_sim::rng::{SimRng, Zipf};
///
/// let mut rng = SimRng::seed_from_u64(7);
/// let zipf = Zipf::new(100, 1.0);
/// let x = zipf.sample(&mut rng);
/// assert!(x < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` items with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        assert!(s.is_finite() && s >= 0.0, "bad Zipf exponent: {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Returns the number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns true if the distribution has exactly one item.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("NaN in CDF"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcg_is_deterministic_per_seed() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(1);
        let mut c = SimRng::seed_from_u64(2);
        let xs: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..8).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn streams_differ() {
        let mut a = SimRng::seed_with_stream(1, 10);
        let mut b = SimRng::seed_with_stream(1, 11);
        assert_ne!(
            (0..4).map(|_| a.next_u32()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u32()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut counts = [0u32; 5];
        for _ in 0..50_000 {
            counts[rng.below(5) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket should get 10k ± a generous tolerance.
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn range_inclusive_hits_bounds() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..1_000 {
            match rng.range_inclusive(3, 6) {
                3 => saw_lo = true,
                6 => saw_hi = true,
                x => assert!((3..=6).contains(&x)),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed_from_u64(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn lognormal_matches_target_moments() {
        let mut rng = SimRng::seed_from_u64(7);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.lognormal_mean_std(0.5, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
        // Heavy tail: variance estimate is noisy, allow wide tolerance.
        assert!((var.sqrt() - 2.0).abs() < 0.5, "std {}", var.sqrt());
    }

    #[test]
    fn zipf_is_monotone_decreasing_in_rank() {
        let mut rng = SimRng::seed_from_u64(8);
        let zipf = Zipf::new(10, 1.0);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 must dominate rank 9 by roughly the 10:1 Zipf ratio.
        assert!(counts[0] > counts[9] * 5, "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let mut rng = SimRng::seed_from_u64(9);
        let zipf = Zipf::new(4, 0.0);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(10);
        assert!(!(0..100).any(|_| rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
