//! The `synth` workload — an exact reimplementation of §4.1's recipe.
//!
//! *"The trace consists of 6 Mbytes of 32-Kbyte files, where ⅞ of the
//! accesses go to ⅛ of the data. Operations are divided 60% reads, 35%
//! writes, 5% erases. An erase operation deletes an entire file; the next
//! write to the file writes an entire 32-Kbyte unit. Otherwise 40% of
//! accesses are 0.5 Kbytes in size, 40% are between 0.5 Kbytes and
//! 16 Kbytes, and 20% are between 16 Kbytes and 32 Kbytes. The interarrival
//! time between operations was modeled as a bimodal distribution with 90%
//! of accesses having a uniform distribution with a mean of 10 ms and the
//! remaining accesses taking 20 ms plus a value that is exponentially
//! distributed with a mean of 3 s."*
//!
//! The hot-and-cold split follows the Sprite LFS evaluation the paper
//! cites.

use mobistore_sim::rng::SimRng;
use mobistore_sim::time::{SimDuration, SimTime};
use mobistore_sim::units::KIB;
use mobistore_trace::layout::FileLayout;
use mobistore_trace::record::{FileId, FileRecord, Op, Trace};

/// Parameters of the synthetic workload; [`SynthSpec::paper`] gives §4.1's
/// values.
#[derive(Debug, Clone)]
pub struct SynthSpec {
    /// Total dataset size in bytes (paper: 6 Mbytes).
    pub dataset_bytes: u64,
    /// File size in bytes (paper: 32 Kbytes).
    pub file_bytes: u64,
    /// Fraction of accesses that go to the hot set (paper: 7/8).
    pub hot_access_fraction: f64,
    /// Fraction of the data that is hot (paper: 1/8).
    pub hot_data_fraction: f64,
    /// Operation mix: probability of a read (paper: 0.60).
    pub read_fraction: f64,
    /// Probability of an erase (paper: 0.05); writes take the remainder.
    pub erase_fraction: f64,
    /// Number of operations to generate.
    pub operations: usize,
    /// Block size for the resulting disk-level trace (DOS sectors).
    pub block_size: u64,
}

impl SynthSpec {
    /// The paper's configuration with a caller-chosen length.
    pub fn paper(operations: usize) -> Self {
        SynthSpec {
            dataset_bytes: 6 * 1024 * KIB,
            file_bytes: 32 * KIB,
            hot_access_fraction: 7.0 / 8.0,
            hot_data_fraction: 1.0 / 8.0,
            read_fraction: 0.60,
            erase_fraction: 0.05,
            operations: operations.max(1),
            block_size: 512,
        }
    }
}

/// Generates the file-level records of the synthetic workload.
pub fn generate_records(spec: &SynthSpec, seed: u64) -> Vec<FileRecord> {
    let files = (spec.dataset_bytes / spec.file_bytes).max(1);
    let hot_files = ((files as f64 * spec.hot_data_fraction).round() as u64).clamp(1, files);
    let mut rng = SimRng::seed_with_stream(seed, 0x531);
    generate_inner(spec, files, hot_files, &mut rng)
}

/// Generates the synthetic workload as a disk-level [`Trace`].
///
/// # Examples
///
/// ```
/// use mobistore_workload::synth::{generate, SynthSpec};
///
/// let trace = generate(&SynthSpec::paper(1000), 42);
/// // A few draws (reads of deleted files, duplicate erases) emit nothing.
/// assert!(trace.len() >= 900);
/// ```
pub fn generate(spec: &SynthSpec, seed: u64) -> Trace {
    let records = generate_records(spec, seed);
    let files = (spec.dataset_bytes / spec.file_bytes).max(1);
    let mut layout = FileLayout::new(spec.block_size);
    // All files are the same 32-Kbyte size; reserve them up front so
    // partial first accesses do not relocate (deletions still trim).
    for f in 0..files {
        layout.reserve(FileId(f), spec.file_bytes);
    }
    let mut trace = Trace::new(spec.block_size);
    for rec in &records {
        for op in layout.apply(rec) {
            trace.push(op);
        }
    }
    trace
}

fn generate_inner(
    spec: &SynthSpec,
    files: u64,
    hot_files: u64,
    rng: &mut SimRng,
) -> Vec<FileRecord> {
    let mut records = Vec::with_capacity(spec.operations);
    let mut deleted = vec![false; files as usize];
    let mut now = SimTime::ZERO;

    for _ in 0..spec.operations {
        now += interarrival(rng);
        // Hot-and-cold file choice: 7/8 of accesses to the 1/8 hot files.
        let file = if rng.chance(spec.hot_access_fraction) {
            rng.below(hot_files)
        } else {
            hot_files + rng.below(files - hot_files)
        };

        let op_draw = rng.f64();
        if op_draw < spec.erase_fraction {
            if !deleted[file as usize] {
                deleted[file as usize] = true;
                records.push(FileRecord {
                    time: now,
                    op: Op::Delete,
                    file: FileId(file),
                    offset: 0,
                    size: 0,
                });
            }
            continue;
        }
        let is_read = op_draw < spec.erase_fraction + spec.read_fraction;
        if deleted[file as usize] {
            if is_read {
                // Nothing to read; the paper's recipe only recreates files
                // on write. Skip silently (keeps the mix close to 60/35/5).
                continue;
            }
            // The next write to an erased file writes the whole unit.
            deleted[file as usize] = false;
            records.push(FileRecord {
                time: now,
                op: Op::Write,
                file: FileId(file),
                offset: 0,
                size: spec.file_bytes,
            });
            continue;
        }

        let size = access_size(spec, rng);
        let max_offset = spec.file_bytes - size;
        // Block-aligned offsets keep the disk-level trace tidy.
        let offset = if max_offset == 0 {
            0
        } else {
            rng.below(max_offset / 512 + 1) * 512
        };
        records.push(FileRecord {
            time: now,
            op: if is_read { Op::Read } else { Op::Write },
            file: FileId(file),
            offset,
            size,
        });
    }
    records
}

/// §4.1's access-size distribution.
fn access_size(spec: &SynthSpec, rng: &mut SimRng) -> u64 {
    let draw = rng.f64();
    if draw < 0.4 {
        KIB / 2
    } else if draw < 0.8 {
        // (0.5, 16] Kbytes, continuous, rounded up to a 512-byte sector.
        let bytes = rng.uniform(0.5 * KIB as f64, 16.0 * KIB as f64);
        round_sector(bytes).min(spec.file_bytes)
    } else {
        let bytes = rng.uniform(16.0 * KIB as f64, 32.0 * KIB as f64);
        round_sector(bytes).min(spec.file_bytes)
    }
}

fn round_sector(bytes: f64) -> u64 {
    ((bytes / 512.0).ceil() as u64).max(1) * 512
}

/// §4.1's bimodal interarrival distribution.
fn interarrival(rng: &mut SimRng) -> SimDuration {
    if rng.chance(0.9) {
        // Uniform with a mean of 10 ms: U[0, 20 ms].
        SimDuration::from_secs_f64(rng.uniform(0.0, 0.020))
    } else {
        SimDuration::from_secs_f64(0.020 + rng.exponential(3.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobistore_trace::stats::TraceStats;

    #[test]
    fn dataset_is_192_files() {
        let spec = SynthSpec::paper(10);
        assert_eq!(spec.dataset_bytes / spec.file_bytes, 192);
        // 1/8 of 192 = 24 hot files.
        assert_eq!((192.0_f64 * spec.hot_data_fraction).round() as u64, 24);
    }

    #[test]
    fn operation_mix_matches_recipe() {
        let records = generate_records(&SynthSpec::paper(50_000), 1);
        let n = records.len() as f64;
        let reads = records.iter().filter(|r| r.op == Op::Read).count() as f64;
        let writes = records.iter().filter(|r| r.op == Op::Write).count() as f64;
        let erases = records.iter().filter(|r| r.op == Op::Delete).count() as f64;
        // Skipped reads-of-deleted and duplicate erases shift the mix a
        // little; keep generous bands around 60/35/5.
        assert!((reads / n - 0.60).abs() < 0.05, "reads {}", reads / n);
        assert!((writes / n - 0.35).abs() < 0.05, "writes {}", writes / n);
        assert!(erases / n < 0.07, "erases {}", erases / n);
    }

    #[test]
    fn hot_files_receive_most_accesses() {
        let records = generate_records(&SynthSpec::paper(50_000), 2);
        let hot = records.iter().filter(|r| r.file.0 < 24).count() as f64;
        let frac = hot / records.len() as f64;
        assert!((frac - 0.875).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn interarrival_mean_is_bimodal() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| interarrival(&mut rng).as_secs_f64()).sum();
        let mean = total / n as f64;
        // 0.9 x 10 ms + 0.1 x (20 ms + 3 s) = 0.311 s.
        assert!((mean - 0.311).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn sizes_respect_band_limits() {
        let spec = SynthSpec::paper(20_000);
        let records = generate_records(&spec, 4);
        let mut small = 0u32;
        for r in &records {
            if r.op == Op::Delete {
                continue;
            }
            assert!(r.size >= 512 && r.size <= 32 * KIB, "size {}", r.size);
            assert!(r.offset + r.size <= spec.file_bytes, "overrun");
            if r.size == 512 {
                small += 1;
            }
        }
        // Roughly 40% of non-delete accesses are 0.5 KB (whole-file
        // rewrites after erases dilute this slightly).
        let frac = f64::from(small) / records.iter().filter(|r| r.op != Op::Delete).count() as f64;
        assert!((0.3..0.5).contains(&frac), "0.5K fraction {frac}");
    }

    #[test]
    fn write_after_erase_is_whole_file() {
        let records = generate_records(&SynthSpec::paper(50_000), 5);
        let mut deleted = std::collections::HashSet::new();
        let mut recreations = 0;
        for r in &records {
            match r.op {
                Op::Delete => {
                    deleted.insert(r.file);
                }
                Op::Write if deleted.remove(&r.file) => {
                    assert_eq!(r.size, 32 * KIB, "recreation must write the whole unit");
                    assert_eq!(r.offset, 0);
                    recreations += 1;
                }
                _ => {}
            }
        }
        assert!(recreations > 10, "recipe exercises recreation");
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = SynthSpec::paper(1000);
        let a = generate(&spec, 9);
        let b = generate(&spec, 9);
        let c = generate(&spec, 10);
        assert_eq!(a.ops, b.ops);
        assert_ne!(a.ops, c.ops);
    }

    #[test]
    fn trace_fits_on_a_10mb_device() {
        // §4.1: the synthetic dataset fits the 10-Mbyte flash devices.
        let trace = generate(&SynthSpec::paper(30_000), 6);
        let stats = TraceStats::measure(&trace);
        assert!(
            stats.distinct_kbytes <= 7 * 1024,
            "{} KB",
            stats.distinct_kbytes
        );
        assert!(trace.blocks_spanned() * 512 <= 10 * 1024 * KIB);
    }
}
