//! Micro-benches on the simulator's building blocks: how fast the
//! substrate itself runs (operations per second of simulated storage),
//! plus the §5.3 and ablation experiments and the parallel executor.

use std::hint::black_box;

use mobistore_bench::Harness;
use mobistore_core::config::SystemConfig;
use mobistore_core::simulator::simulate;
use mobistore_device::params::{cu140_datasheet, intel_datasheet, sdp5_datasheet};
use mobistore_experiments::{ablations, async_cleaning, flash_card_config, Scale};
use mobistore_sim::exec;
use mobistore_workload::Workload;

fn main() {
    let h = Harness::from_args();

    let trace = Workload::Mac.generate_scaled(0.05, 1);
    let ops = trace.len();
    let disk_cfg = SystemConfig::disk(cu140_datasheet());
    if let Some(mean) = h.bench("simulator_ops_per_sec/disk", || {
        black_box(simulate(&disk_cfg, &trace))
    }) {
        println!(
            "    {:>40} {:.0} sim-ops/s",
            "",
            ops as f64 / mean.as_secs_f64()
        );
    }
    let fdisk_cfg = SystemConfig::flash_disk(sdp5_datasheet());
    h.bench("simulator_ops_per_sec/flash_disk", || {
        black_box(simulate(&fdisk_cfg, &trace))
    });
    let card_cfg = flash_card_config(intel_datasheet(), &trace, 0.8);
    h.bench("simulator_ops_per_sec/flash_card", || {
        black_box(simulate(&card_cfg, &trace))
    });

    for workload in Workload::ALL {
        h.bench(&format!("workload_generation/{}", workload.name()), || {
            black_box(workload.generate_scaled(0.05, 1))
        });
    }

    h.bench("section_5_3_async_cleaning/mac", || {
        black_box(async_cleaning::run_row(Workload::Mac, Scale::quick()))
    });

    h.bench("ablations/cleaning_policies", || {
        black_box(ablations::cleaning_policies(Scale::quick()))
    });
    h.bench("ablations/spin_down_sweep", || {
        black_box(ablations::spin_down_sweep(Scale::quick()))
    });

    // The executor itself: per-item overhead on trivial work.
    let items: Vec<u64> = (0..10_000).collect();
    h.bench("exec/parallel_map_overhead_10k", || {
        black_box(exec::parallel_map(&items, |&x| {
            x.wrapping_mul(2_654_435_761)
        }))
    });
}
