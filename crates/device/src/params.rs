//! Device parameter database.
//!
//! Every scalar that appears in the paper's Table 2 ("Manufacturers'
//! specifications for three storage devices") or in the hardware
//! measurements of §3 is reproduced here verbatim. A handful of parameters
//! the paper relies on but does not tabulate (standby power, spin-down
//! duration, DRAM/SRAM chip power) are named constants with documented
//! provenance; changing them moves absolute joule counts but none of the
//! orderings or ratios the paper reports.
//!
//! Table 4 is keyed by *(device, parameter source)* pairs — e.g.
//! "cu140 measured" vs "cu140 datasheet" — so each constructor here carries
//! the same label as its Table 4 row.

use mobistore_sim::energy::Watts;
use mobistore_sim::time::SimDuration;
use mobistore_sim::units::{Bandwidth, KIB, MIB};

/// Parameters of a magnetic hard disk.
#[derive(Debug, Clone)]
pub struct DiskParams {
    /// Human-readable label matching the Table 4 row.
    pub name: &'static str,
    /// Average seek time, paid when an access touches a different file than
    /// the previous access (§4.2's seek assumption).
    pub avg_seek: SimDuration,
    /// Average rotational latency, paid on every transfer (§4.2).
    pub avg_rotation: SimDuration,
    /// Media transfer rate for reads.
    pub read_bandwidth: Bandwidth,
    /// Media transfer rate for writes.
    pub write_bandwidth: Bandwidth,
    /// Time to spin the platters up from standby.
    pub spin_up_time: SimDuration,
    /// Time to spin the platters down; a request arriving mid-spin-down
    /// waits for it to finish before the disk can spin up again (§1: disks
    /// "take seconds to spin up and down").
    pub spin_down_time: SimDuration,
    /// Power while transferring or seeking.
    pub active_power: Watts,
    /// Power while spinning idle.
    pub idle_power: Watts,
    /// Power while spun down.
    pub standby_power: Watts,
    /// Power during spin-up.
    pub spin_up_power: Watts,
    /// Power during spin-down.
    pub spin_down_power: Watts,
}

/// Western Digital Caviar Ultralite CU140, datasheet values (Table 2).
///
/// Table 2 gives: R/W latency 25.7 ms, throughput 2125 Kbytes/s, spin-up
/// 1000 ms, power 1.75 W active / 0.7 W idle / 3.0 W spin-up. The 25.7 ms
/// random-access overhead is split into a 17.4 ms average seek plus the
/// 8.3 ms average rotational latency of a 3600 rpm spindle.
pub fn cu140_datasheet() -> DiskParams {
    DiskParams {
        name: "cu140 datasheet",
        avg_seek: SimDuration::from_micros(17_400),
        avg_rotation: SimDuration::from_micros(8_300),
        read_bandwidth: Bandwidth::from_kib_per_s(2125.0),
        write_bandwidth: Bandwidth::from_kib_per_s(2125.0),
        spin_up_time: SimDuration::from_millis(1000),
        spin_down_time: SimDuration::from_millis(2500),
        active_power: Watts(1.75),
        idle_power: Watts(0.7),
        standby_power: Watts(0.015),
        spin_up_power: Watts(3.0),
        spin_down_power: Watts(0.7),
    }
}

/// Caviar Ultralite CU140 with effective rates from the §3 micro-benchmarks
/// (Table 1): 543 Kbytes/s large-file reads, 231 Kbytes/s large-file writes;
/// the small-file numbers imply a slightly larger per-operation overhead
/// than the datasheet's 25.7 ms, reflecting DOS file-system costs.
pub fn cu140_measured() -> DiskParams {
    DiskParams {
        name: "cu140 measured",
        avg_seek: SimDuration::from_micros(19_000),
        avg_rotation: SimDuration::from_micros(8_300),
        read_bandwidth: Bandwidth::from_kib_per_s(543.0),
        write_bandwidth: Bandwidth::from_kib_per_s(231.0),
        spin_up_time: SimDuration::from_millis(1000),
        spin_down_time: SimDuration::from_millis(2500),
        active_power: Watts(1.75),
        idle_power: Watts(0.7),
        standby_power: Watts(0.015),
        spin_up_power: Watts(3.0),
        spin_down_power: Watts(0.7),
    }
}

/// Hewlett-Packard Kittyhawk C3013A 20-Mbyte disk, datasheet values.
///
/// The Kittyhawk is a 1.3-inch drive: slow media (≈ 930 Kbytes/s), a long
/// effective average access (≈ 45 ms seek + 5.6 ms at 5400 rpm — the
/// Table 4 kh read means sit ~4× above the cu140's, fixing the effective
/// access the paper's simulator used), a 1.1 s spin-up, and — being
/// engineered for fast spin cycling — a short 0.5 s spin-down (its Table 4
/// maximum responses are ≈ 1.6 s, i.e. wind-down + spin-up). Its spinning
/// power is slightly above the CU140's, which is what makes its Table 4
/// energy land a little higher.
pub fn kh_datasheet() -> DiskParams {
    DiskParams {
        name: "kh datasheet",
        avg_seek: SimDuration::from_micros(45_000),
        avg_rotation: SimDuration::from_micros(5_600),
        read_bandwidth: Bandwidth::from_kib_per_s(930.0),
        write_bandwidth: Bandwidth::from_kib_per_s(930.0),
        spin_up_time: SimDuration::from_millis(1100),
        spin_down_time: SimDuration::from_millis(500),
        active_power: Watts(1.65),
        idle_power: Watts(0.75),
        standby_power: Watts(0.08),
        spin_up_power: Watts(2.17),
        spin_down_power: Watts(0.75),
    }
}

/// How a flash disk emulator schedules erasure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErasePolicy {
    /// Erasure is coupled with each write, as in the SunDisk SDP5/SDP10:
    /// the quoted write bandwidth already includes the erase.
    OnDemand,
    /// Erasure runs asynchronously during idle periods (SDP5A, §5.3):
    /// pre-erased sectors are written at the fast rate; writes that outrun
    /// the cleaner fall back to erase-then-write.
    Asynchronous,
}

/// Parameters of a flash disk emulator (block interface).
#[derive(Debug, Clone)]
pub struct FlashDiskParams {
    /// Human-readable label matching the Table 4 row.
    pub name: &'static str,
    /// Per-operation controller overhead.
    pub access_latency: SimDuration,
    /// Read transfer rate.
    pub read_bandwidth: Bandwidth,
    /// Erase-coupled write transfer rate (the rate of `OnDemand` writes).
    pub write_bandwidth: Bandwidth,
    /// Rate at which sectors are erased (used by `Asynchronous` mode).
    pub erase_bandwidth: Bandwidth,
    /// Write rate into pre-erased sectors (used by `Asynchronous` mode).
    pub pre_erased_write_bandwidth: Bandwidth,
    /// Spare capacity the device can hold pre-erased, as the pool for
    /// asynchronous cleaning.
    pub spare_pool_bytes: u64,
    /// Power while reading, writing, or erasing.
    pub active_power: Watts,
    /// Power while idle (PCMCIA sleep).
    pub idle_power: Watts,
    /// Erase scheduling.
    pub erase_policy: ErasePolicy,
}

/// SunDisk SDP10 10-Mbyte flash disk, effective rates from the §3
/// micro-benchmarks (Table 1): 410 Kbytes/s large-file reads, 40 Kbytes/s
/// large-file writes; 1.5 ms access latency and 0.36 W from Table 2.
pub fn sdp10_measured() -> FlashDiskParams {
    FlashDiskParams {
        name: "sdp10 measured",
        access_latency: SimDuration::from_micros(1_500),
        read_bandwidth: Bandwidth::from_kib_per_s(410.0),
        write_bandwidth: Bandwidth::from_kib_per_s(40.0),
        // The SDP10 has no asynchronous mode; these fields are unused under
        // `OnDemand` but set to the device's physical rates.
        erase_bandwidth: Bandwidth::from_kib_per_s(75.0),
        pre_erased_write_bandwidth: Bandwidth::from_kib_per_s(75.0),
        spare_pool_bytes: 0,
        active_power: Watts(0.36),
        idle_power: Watts(0.0005),
        erase_policy: ErasePolicy::OnDemand,
    }
}

/// SunDisk SDP10 10-Mbyte flash disk, datasheet values (Table 2): reads at
/// 600 Kbytes/s, erase-coupled writes at 50 Kbytes/s, 1.5 ms latency,
/// 0.36 W.
pub fn sdp10_datasheet() -> FlashDiskParams {
    FlashDiskParams {
        name: "sdp10 datasheet",
        access_latency: SimDuration::from_micros(1_500),
        read_bandwidth: Bandwidth::from_kib_per_s(600.0),
        write_bandwidth: Bandwidth::from_kib_per_s(50.0),
        erase_bandwidth: Bandwidth::from_kib_per_s(75.0),
        pre_erased_write_bandwidth: Bandwidth::from_kib_per_s(75.0),
        spare_pool_bytes: 0,
        active_power: Watts(0.36),
        idle_power: Watts(0.0005),
        erase_policy: ErasePolicy::OnDemand,
    }
}

/// SunDisk SDP5 5-volt flash disk, datasheet values (§4.2 notes the
/// datasheet simulations use the newer SDP5/SDP5A): reads at 600 Kbytes/s
/// with 1.5 ms latency (Table 2); synchronous writes erase at 150 Kbytes/s
/// then write at 400 Kbytes/s (§5.3), a combined ≈ 109 Kbytes/s.
pub fn sdp5_datasheet() -> FlashDiskParams {
    FlashDiskParams {
        name: "sdp5 datasheet",
        access_latency: SimDuration::from_micros(1_500),
        read_bandwidth: Bandwidth::from_kib_per_s(600.0),
        write_bandwidth: Bandwidth::from_kib_per_s(sync_erase_write_rate(150.0, 400.0)),
        erase_bandwidth: Bandwidth::from_kib_per_s(150.0),
        pre_erased_write_bandwidth: Bandwidth::from_kib_per_s(400.0),
        spare_pool_bytes: 0,
        active_power: Watts(0.36),
        idle_power: Watts(0.0005),
        erase_policy: ErasePolicy::OnDemand,
    }
}

/// SunDisk SDP5A: the SDP5 with asynchronous pre-erasure enabled (§5.3),
/// with a 512-Kbyte spare pool held pre-erased.
pub fn sdp5a_datasheet() -> FlashDiskParams {
    FlashDiskParams {
        name: "sdp5a datasheet (async)",
        spare_pool_bytes: 512 * KIB,
        erase_policy: ErasePolicy::Asynchronous,
        ..sdp5_datasheet()
    }
}

/// Combined rate of an erase-then-write at the given rates (Kbytes/s).
fn sync_erase_write_rate(erase_kib_s: f64, write_kib_s: f64) -> f64 {
    1.0 / (1.0 / erase_kib_s + 1.0 / write_kib_s)
}

/// Parameters of a byte-accessible flash memory card.
#[derive(Debug, Clone)]
pub struct FlashCardParams {
    /// Human-readable label matching the Table 4 row.
    pub name: &'static str,
    /// Per-operation software overhead (file-system code path).
    pub access_latency: SimDuration,
    /// Read transfer rate.
    pub read_bandwidth: Bandwidth,
    /// Write transfer rate into pre-erased memory.
    pub write_bandwidth: Bandwidth,
    /// Raw card read rate used for *internal* cleaning copies; foreground
    /// reads pay `read_bandwidth`, which for "measured" parameter sets
    /// includes file-system software the cleaner does not run.
    pub copy_read_bandwidth: Bandwidth,
    /// Raw card write rate for internal cleaning copies.
    pub copy_write_bandwidth: Bandwidth,
    /// Fixed time to erase one segment, regardless of size (§2: 1.6 s for
    /// 64 or 128 Kbytes on the Series 2).
    pub erase_time: SimDuration,
    /// Size of one erasure segment in bytes.
    pub segment_size: u64,
    /// Power while reading, writing, or erasing.
    pub active_power: Watts,
    /// Power while idle.
    pub idle_power: Watts,
}

/// Intel Series 2 flash memory card, datasheet values (Table 2): zero
/// access latency, 9765 Kbytes/s reads, 214 Kbytes/s writes, 1.6 s erase,
/// 0.47 W in every active mode. Figure 2 simulates 128-Kbyte segments.
pub fn intel_datasheet() -> FlashCardParams {
    FlashCardParams {
        name: "Intel flash card datasheet",
        access_latency: SimDuration::ZERO,
        read_bandwidth: Bandwidth::from_kib_per_s(9765.0),
        write_bandwidth: Bandwidth::from_kib_per_s(214.0),
        copy_read_bandwidth: Bandwidth::from_kib_per_s(9765.0),
        copy_write_bandwidth: Bandwidth::from_kib_per_s(214.0),
        erase_time: SimDuration::from_millis(1600),
        segment_size: 128 * KIB,
        active_power: Watts(0.47),
        idle_power: Watts(0.0005),
    }
}

/// Intel Series 2 card as measured through MFFS 2.00 on the OmniBook (§3):
/// reads deliver ≈ 500 Kbytes/s once decompression and file-system overhead
/// are paid; writes degrade to ≈ 40 Kbytes/s (Table 1's small-file writes,
/// before the large-file anomaly makes them worse still).
pub fn intel_measured() -> FlashCardParams {
    FlashCardParams {
        name: "Intel flash card measured",
        access_latency: SimDuration::from_micros(500),
        read_bandwidth: Bandwidth::from_kib_per_s(500.0),
        write_bandwidth: Bandwidth::from_kib_per_s(40.0),
        // Cleaning copies run inside the card at raw speeds; the measured
        // rates above are the MFFS software path that foreground requests
        // take.
        copy_read_bandwidth: Bandwidth::from_kib_per_s(9765.0),
        copy_write_bandwidth: Bandwidth::from_kib_per_s(214.0),
        erase_time: SimDuration::from_millis(1600),
        segment_size: 128 * KIB,
        active_power: Watts(0.47),
        idle_power: Watts(0.0005),
    }
}

/// Intel Series 2+ card (§2, §7): the 16-Mbit generation erases a block in
/// 300 ms and guarantees 1,000,000 erasures per block. Included as the
/// "newer technology" configuration the conclusions point to.
pub fn intel_series2plus_datasheet() -> FlashCardParams {
    FlashCardParams {
        name: "Intel Series 2+ datasheet",
        erase_time: SimDuration::from_millis(300),
        ..intel_datasheet()
    }
}

/// Parameters of the DRAM buffer cache.
#[derive(Debug, Clone)]
pub struct DramParams {
    /// Human-readable label.
    pub name: &'static str,
    /// Copy bandwidth for cache fills and hits (CPU-bound on a 25-MHz
    /// 386SXLV; ≈ 25 Mbytes/s).
    pub bandwidth: Bandwidth,
    /// Per-access overhead.
    pub access_latency: SimDuration,
    /// Power per Mbyte while being accessed.
    pub active_power_per_mib: Watts,
    /// Power per Mbyte while holding data (refresh); DRAM pays this for the
    /// whole simulation, which is why §5.4 finds extra DRAM can cost energy.
    pub idle_power_per_mib: Watts,
}

/// NEC µPD4216160 16-Mbit DRAM (Table 2's companion datasheet \[17\]).
///
/// 2 Mbytes per chip; ≈ 0.35 W per chip active and ≈ 50 mW per chip of
/// refresh/standby draw, i.e. 0.175 W and 0.025 W per Mbyte.
pub fn dram_nec() -> DramParams {
    DramParams {
        name: "NEC uPD4216160 DRAM",
        bandwidth: Bandwidth::from_bytes_per_s(25.0 * MIB as f64),
        access_latency: SimDuration::from_micros(2),
        active_power_per_mib: Watts(0.175),
        idle_power_per_mib: Watts(0.025),
    }
}

/// Parameters of the battery-backed SRAM write buffer.
#[derive(Debug, Clone)]
pub struct SramParams {
    /// Human-readable label.
    pub name: &'static str,
    /// Copy bandwidth (55 ns per byte access on the µPD43256B ≈ 17 Mbytes/s).
    pub bandwidth: Bandwidth,
    /// Per-access overhead.
    pub access_latency: SimDuration,
    /// Power while being accessed.
    pub active_power: Watts,
    /// Battery-backed retention power (§5.5: "SRAM consumes significant
    /// energy itself" while active; retention draw is small).
    pub idle_power_per_kib: Watts,
}

/// NEC µPD43256B 32K×8-bit SRAM, 55 ns access time (§5.5, ref \[18\]).
pub fn sram_nec() -> SramParams {
    SramParams {
        name: "NEC uPD43256B SRAM",
        bandwidth: Bandwidth::from_bytes_per_s(1e9 / 55.0),
        access_latency: SimDuration::from_nanos(500),
        active_power: Watts(0.25),
        idle_power_per_kib: Watts(0.000_002),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cu140_matches_table2() {
        let p = cu140_datasheet();
        // 25.7 ms random-access overhead, split seek + rotation.
        assert_eq!((p.avg_seek + p.avg_rotation).as_millis_f64(), 25.7);
        assert_eq!(p.read_bandwidth.kib_per_s(), 2125.0);
        assert_eq!(p.spin_up_time, SimDuration::from_secs(1));
        assert_eq!(p.active_power, Watts(1.75));
        assert_eq!(p.idle_power, Watts(0.7));
        assert_eq!(p.spin_up_power, Watts(3.0));
    }

    #[test]
    fn sdp5_sync_write_rate_combines_erase_and_write() {
        let p = sdp5_datasheet();
        // 1/(1/150 + 1/400) = 109.09... Kbytes/s.
        assert!((p.write_bandwidth.kib_per_s() - 109.0909).abs() < 0.01);
        assert_eq!(p.erase_policy, ErasePolicy::OnDemand);
    }

    #[test]
    fn sdp5a_differs_only_in_erase_policy_and_pool() {
        let sync = sdp5_datasheet();
        let asyn = sdp5a_datasheet();
        assert_eq!(asyn.erase_policy, ErasePolicy::Asynchronous);
        assert!(asyn.spare_pool_bytes > 0);
        assert_eq!(asyn.read_bandwidth, sync.read_bandwidth);
        assert_eq!(asyn.erase_bandwidth.kib_per_s(), 150.0);
        assert_eq!(asyn.pre_erased_write_bandwidth.kib_per_s(), 400.0);
    }

    #[test]
    fn intel_matches_table2() {
        let p = intel_datasheet();
        assert_eq!(p.access_latency, SimDuration::ZERO);
        assert_eq!(p.read_bandwidth.kib_per_s(), 9765.0);
        assert_eq!(p.write_bandwidth.kib_per_s(), 214.0);
        assert_eq!(p.erase_time, SimDuration::from_millis(1600));
        assert_eq!(p.active_power, Watts(0.47));
    }

    #[test]
    fn series2plus_erases_faster() {
        let old = intel_datasheet();
        let new = intel_series2plus_datasheet();
        assert!(new.erase_time < old.erase_time);
        assert_eq!(new.erase_time, SimDuration::from_millis(300));
    }

    #[test]
    fn measured_devices_are_slower_than_datasheet() {
        assert!(cu140_measured().read_bandwidth < cu140_datasheet().read_bandwidth);
        assert!(sdp10_measured().write_bandwidth < sdp5_datasheet().write_bandwidth);
        assert!(intel_measured().write_bandwidth < intel_datasheet().write_bandwidth);
    }

    #[test]
    fn sram_access_is_55ns_per_byte() {
        let p = sram_nec();
        let t = p.bandwidth.transfer_time(1);
        assert_eq!(t.as_nanos(), 55);
    }
}
