//! `trace-tool` — generate, inspect, and validate mobistore traces.
//!
//! ```text
//! trace-tool gen <mac|dos|hp|synth> [--scale F] [--seed N] [-o FILE]
//! trace-tool stats <FILE>       # Table 3-style characteristics
//! trace-tool head <FILE> [N]    # first N operations, human-readable
//! trace-tool validate <FILE>    # parse + consistency checks
//! ```
//!
//! Traces use the text format of `mobistore::trace::io` (one operation per
//! line), so they diff, grep, and archive cleanly.

use std::fs;
use std::process::ExitCode;

use mobistore::trace::io::{read_text, write_text};
use mobistore::trace::record::Trace;
use mobistore::trace::stats::{split_warm, TraceStats};
use mobistore::Workload;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => gen(&args[1..]),
        Some("stats") => with_trace(&args[1..], print_stats),
        Some("head") => head(&args[1..]),
        Some("validate") => with_trace(&args[1..], |t| {
            println!(
                "ok: {} operations, block size {}, span {} blocks",
                t.len(),
                t.block_size,
                t.blocks_spanned()
            );
        }),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace-tool gen <mac|dos|hp|synth> [--scale F] [--seed N] [-o FILE]\n  \
         trace-tool stats <FILE>\n  trace-tool head <FILE> [N]\n  trace-tool validate <FILE>"
    );
    ExitCode::from(2)
}

fn gen(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let workload = match name.as_str() {
        "mac" => Workload::Mac,
        "dos" => Workload::Dos,
        "hp" => Workload::Hp,
        "synth" => Workload::Synth,
        other => {
            eprintln!("unknown workload {other}");
            return usage();
        }
    };
    let mut scale = 1.0f64;
    let mut seed = 1994u64;
    let mut out: Option<String> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if (0.0..=1.0).contains(&v) && v > 0.0 => scale = v,
                _ => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "-o" | "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let trace = workload.generate_scaled(scale, seed);
    let text = write_text(&trace);
    match out {
        Some(path) => {
            if let Err(e) = fs::write(&path, &text) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} operations to {path}", trace.len());
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}

fn with_trace(args: &[String], f: impl FnOnce(&Trace)) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match read_text(&text) {
        Ok(trace) => {
            f(&trace);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_stats(trace: &Trace) {
    let (_, measured) = split_warm(trace, 10);
    let s = TraceStats::measure(&measured);
    println!("operations           : {}", trace.len());
    println!("duration             : {}", trace.duration());
    println!("block size           : {} bytes", trace.block_size);
    println!("post-warm statistics (90% of operations, as in the paper):");
    println!("  distinct Kbytes    : {}", s.distinct_kbytes);
    println!("  fraction of reads  : {:.3}", s.fraction_reads);
    println!("  mean read size     : {:.2} blocks", s.mean_read_blocks);
    println!("  mean write size    : {:.2} blocks", s.mean_write_blocks);
    println!(
        "  interarrival       : mean {:.3}s  sigma {:.2}s  max {:.1}s",
        s.interarrival.mean, s.interarrival.std, s.interarrival.max
    );
}

fn head(args: &[String]) -> ExitCode {
    let n: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(10);
    with_trace(args, |trace| {
        for op in trace.ops.iter().take(n) {
            println!(
                "{:>14}  {:<5}  lbn {:<8} blocks {:<4} file {}",
                op.time.to_string(),
                format!("{:?}", op.kind).to_lowercase(),
                op.lbn,
                op.blocks,
                op.file
            );
        }
    })
}
