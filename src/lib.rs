//! # mobistore
//!
//! A full Rust reproduction of **"Storage Alternatives for Mobile
//! Computers"** (Fred Douglis, Ramón Cáceres, Frans Kaashoek, Kai Li,
//! Brian Marsh, Joshua A. Tauber — OSDI 1994).
//!
//! The paper compares three storage organisations for mobile computers —
//! magnetic hard disk, flash disk emulator, and flash memory card, each
//! behind a DRAM buffer cache — using hardware micro-benchmarks and
//! trace-driven simulation. This workspace reimplements the entire
//! experimental apparatus; this crate is the facade that re-exports every
//! layer:
//!
//! * [`sim`] — deterministic simulation substrate (time, energy, RNG,
//!   statistics);
//! * [`trace`] — trace records, file-to-block preprocessing, Table 3
//!   statistics;
//! * [`device`] — device models and the Table 2 parameter database;
//! * [`cache`] — DRAM buffer cache and battery-backed SRAM write buffer;
//! * [`flash`] — flash-card segment management, cleaning, endurance;
//! * [`core`] — the storage-alternatives simulator ([`SystemConfig`],
//!   [`simulate`], [`Metrics`]);
//! * [`workload`] — the four §4.1 workload generators;
//! * [`fsmodel`] — the OmniBook/DOS/MFFS testbed models behind Table 1
//!   and Figures 1 and 3;
//! * [`experiments`] — runners that regenerate every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use mobistore::core::config::SystemConfig;
//! use mobistore::core::simulator::simulate;
//! use mobistore::device::params::{cu140_datasheet, intel_datasheet};
//! use mobistore::workload::Workload;
//!
//! // Generate a 2%-scale mac-like workload and compare disk vs flash.
//! let trace = Workload::Mac.generate_scaled(0.02, 42);
//! let disk = simulate(&SystemConfig::disk(cu140_datasheet()), &trace);
//! let card = simulate(&SystemConfig::flash_card(intel_datasheet()), &trace);
//! assert!(card.energy.get() < disk.energy.get());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mobistore_cache as cache;
pub use mobistore_core as core;
pub use mobistore_device as device;
pub use mobistore_experiments as experiments;
pub use mobistore_flash as flash;
pub use mobistore_fsmodel as fsmodel;
pub use mobistore_sim as sim;
pub use mobistore_trace as trace;
pub use mobistore_workload as workload;

pub use mobistore_core::{simulate, Metrics, SystemConfig};
pub use mobistore_workload::Workload;
