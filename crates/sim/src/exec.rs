//! A std-only parallel execution layer for embarrassingly parallel
//! simulation sweeps.
//!
//! Every experiment in this reproduction evaluates a pure function
//! (`simulate(&SystemConfig, &Trace)`) at many independent points — DRAM
//! sizes, utilizations, device × trace grids. [`parallel_map`] fans those
//! points out over a scoped-thread worker pool and returns results **in
//! input order**, so parallel runs are bit-identical to serial runs.
//!
//! The worker count comes from, in priority order:
//!
//! 1. [`set_jobs`] (the `repro` binary's `--jobs N` flag);
//! 2. the `MOBISTORE_JOBS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! With one job, [`parallel_map`] degenerates to an inline loop on the
//! calling thread — no threads are spawned at all. Panics in workers are
//! propagated to the caller by [`std::thread::scope`].
//!
//! No external dependencies: `std::thread::scope` + atomics only.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Process-wide override for the worker count (0 = unset).
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for every subsequent [`parallel_map`] call
/// in this process. `--jobs 1` forces fully serial, inline execution.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn set_jobs(n: usize) {
    assert!(n > 0, "job count must be positive");
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count [`parallel_map`] will use: the [`set_jobs`] override
/// if set, else `MOBISTORE_JOBS`, else the machine's available
/// parallelism (1 if that cannot be determined).
pub fn jobs() -> usize {
    let over = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    static ENV_JOBS: OnceLock<Option<usize>> = OnceLock::new();
    let env = *ENV_JOBS.get_or_init(|| {
        std::env::var("MOBISTORE_JOBS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
    });
    env.unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Applies `f` to every item, in parallel over [`jobs`] workers, and
/// returns the results in input order.
///
/// Work is distributed dynamically (an atomic next-item counter), so
/// heterogeneous item costs — a 95%-utilization sweep point next to a 40%
/// one — still load-balance. `f` must be pure for parallel runs to equal
/// serial runs; every caller in this workspace satisfies that because
/// `simulate` is a pure function of its inputs.
///
/// # Panics
///
/// Propagates the first panic raised by `f` on any worker.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = jobs().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    // `Mutex<Option<R>>` rather than `OnceLock<R>`: it is `Sync` for any
    // `R: Send`, and each slot is touched exactly once so the lock is
    // never contended.
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Workers inherit the caller's op-attribution counter so a target's
    // ops/sec stays correct when its sweeps fan out across threads.
    let prof_ctx = crate::prof::current_context();
    std::thread::scope(|scope| {
        let (next, slots, f) = (&next, &slots, &f);
        for _ in 0..workers {
            let prof_ctx = prof_ctx.clone();
            scope.spawn(move || {
                crate::prof::set_context(prof_ctx);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let result = f(item);
                    *slots[i].lock().expect("slot poisoned") = Some(result);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let doubled = parallel_map(&items, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn balances_heterogeneous_work() {
        // Items of wildly different cost still come back in order.
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, |&x| {
            let spins = if x % 7 == 0 { 10_000 } else { 10 };
            (0..spins).fold(x, |acc, _| acc.wrapping_mul(0x9e37_79b9).wrapping_add(1));
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            parallel_map(&[1u32, 2, 3, 4, 5, 6, 7, 8], |&x| {
                if x == 5 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn jobs_is_positive() {
        assert!(jobs() >= 1);
    }
}
