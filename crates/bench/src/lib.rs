//! Criterion benches for mobistore; see `benches/`.
