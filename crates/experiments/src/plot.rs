//! ASCII line plots, so `repro` can draw the paper's figures in a
//! terminal.
//!
//! The renderer draws multiple series on one canvas with distinct glyphs,
//! a labelled y-range, and a legend — enough to eyeball the shapes the
//! reproduction targets (Figure 1's linear MFFS climb, Figure 2's
//! utilization knee, Figure 3's decay).

/// One named series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points; x need not be uniform.
    pub points: Vec<(f64, f64)>,
}

/// Glyphs assigned to series in order.
const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Renders series onto a `width`×`height` character canvas with axes.
///
/// # Panics
///
/// Panics if `width` or `height` is smaller than 8 (nothing useful fits).
///
/// # Examples
///
/// ```
/// use mobistore_experiments::plot::{render, Series};
///
/// let s = Series { label: "line".into(), points: (0..10).map(|i| (i as f64, i as f64)).collect() };
/// let out = render("demo", "x", "y", &[s], 40, 10);
/// assert!(out.contains("demo"));
/// assert!(out.contains('*'));
/// ```
pub fn render(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[Series],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 8 && height >= 8, "canvas too small");
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');

    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    if y_max == y_min {
        y_max = y_min + 1.0;
    }

    let mut canvas = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let col = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row; // Row 0 is the top.
            canvas[row.min(height - 1)][col.min(width - 1)] = glyph;
        }
    }

    let y_top = format_sig(y_max);
    let y_bottom = format_sig(y_min);
    let margin = y_top.len().max(y_bottom.len()).max(y_label.len());
    for (i, row) in canvas.iter().enumerate() {
        let tag = if i == 0 {
            &y_top
        } else if i == height - 1 {
            &y_bottom
        } else if i == height / 2 {
            y_label
        } else {
            ""
        };
        out.push_str(&format!("{tag:>margin$} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>margin$} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>margin$}  {:<w$}{}\n",
        "",
        format_sig(x_min),
        format_sig(x_max),
        w = width.saturating_sub(format_sig(x_max).len()),
    ));
    out.push_str(&format!("{:>margin$}  ({x_label})\n", ""));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "{:>margin$}  {} {}\n",
            "",
            GLYPHS[si % GLYPHS.len()],
            s.label
        ));
    }
    out
}

/// Formats a number with ~3 significant digits for axis labels.
fn format_sig(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(label: &str, slope: f64) -> Series {
        Series {
            label: label.into(),
            points: (0..20)
                .map(|i| (f64::from(i), slope * f64::from(i)))
                .collect(),
        }
    }

    #[test]
    fn renders_axes_and_legend() {
        let out = render(
            "t",
            "cumulative KB",
            "ms",
            &[line("a", 1.0), line("b", 2.0)],
            50,
            12,
        );
        assert!(out.starts_with("t\n"));
        assert!(out.contains("(cumulative KB)"));
        assert!(out.contains("* a"));
        assert!(out.contains("o b"));
        assert!(out.contains("38.0"), "y max label: {out}");
    }

    #[test]
    fn rising_line_occupies_the_diagonal() {
        let out = render("t", "x", "y", &[line("a", 1.0)], 40, 10);
        let rows: Vec<&str> = out.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(rows.len(), 10);
        // Top row holds the largest point; bottom row the smallest.
        assert!(rows[0].contains('*'));
        assert!(rows[9].contains('*'));
    }

    #[test]
    fn empty_series_say_so() {
        let out = render("t", "x", "y", &[], 40, 10);
        assert!(out.contains("no data"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = Series {
            label: "flat".into(),
            points: vec![(0.0, 5.0), (1.0, 5.0)],
        };
        let out = render("t", "x", "y", &[s], 40, 10);
        assert!(out.contains('*'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_canvas_rejected() {
        let _ = render("t", "x", "y", &[], 4, 4);
    }
}
