//! Statistical workload generators for the `mac`, `dos`, and `hp` traces.
//!
//! The original traces are proprietary (PowerBook instrumentation, Kester
//! Li's Berkeley DOS traces, the Ruemmler/Wilkes HP-UX traces). Table 3
//! publishes the moments the simulation results depend on: duration,
//! distinct Kbytes touched, read fraction, block size, mean transfer sizes,
//! and the interarrival mean/σ/max. Each [`TraceSpec`] reproduces those
//! statistics:
//!
//! * interarrival times are log-normal, parameterised by the published
//!   mean and σ and truncated at the published maximum — a log-normal with
//!   those two moments lands remarkably close to each trace's published
//!   maximum, which supports the choice;
//! * transfer sizes are geometric with the published mean;
//! * file popularity is Zipf-like, giving the locality a DRAM cache needs;
//! * `dos` includes deletions, `mac` and `hp` do not (Table 3);
//! * `hp` is a disk-level trace below the buffer cache, so simulations
//!   must use a zero-sized DRAM cache (§4.1) — the spec records that.

use mobistore_sim::rng::{SimRng, Zipf};
use mobistore_sim::time::{SimDuration, SimTime};
use mobistore_sim::units::KIB;
use mobistore_trace::layout::FileLayout;
use mobistore_trace::record::{FileId, FileRecord, Op, Trace};

/// The interarrival-time model for a trace.
#[derive(Debug, Clone, Copy)]
pub enum Interarrival {
    /// A log-normal with the published arithmetic mean and σ, truncated at
    /// the published maximum.
    Lognormal {
        /// Arithmetic mean in seconds.
        mean_s: f64,
        /// Standard deviation in seconds.
        std_s: f64,
        /// Truncation point in seconds.
        max_s: f64,
    },
    /// A bursty two-phase mixture: most gaps are short exponentials
    /// (activity bursts), a small fraction are long heavy-tailed pauses.
    /// This is the structure of the `hp` trace — its mean (11.1 s) is far
    /// above its median, and Table 4's hp disk responses show spin-ups are
    /// rare relative to operations, which only a bursty process produces.
    Bursty {
        /// Mean of the short (burst) gaps in seconds.
        short_mean_s: f64,
        /// Probability that a gap is a long pause.
        long_prob: f64,
        /// Mean of the long pauses in seconds.
        long_mean_s: f64,
        /// Standard deviation of the long pauses.
        long_std_s: f64,
        /// Truncation point in seconds.
        max_s: f64,
    },
}

impl Interarrival {
    /// Draws one gap in seconds.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Interarrival::Lognormal {
                mean_s,
                std_s,
                max_s,
            } => rng.lognormal_mean_std(mean_s, std_s).min(max_s),
            Interarrival::Bursty {
                short_mean_s,
                long_prob,
                long_mean_s,
                long_std_s,
                max_s,
            } => {
                if rng.chance(long_prob) {
                    rng.lognormal_mean_std(long_mean_s, long_std_s).min(max_s)
                } else {
                    rng.exponential(short_mean_s).min(max_s)
                }
            }
        }
    }

    /// The model's arithmetic mean in seconds (before truncation).
    pub fn mean_s(&self) -> f64 {
        match *self {
            Interarrival::Lognormal { mean_s, .. } => mean_s,
            Interarrival::Bursty {
                short_mean_s,
                long_prob,
                long_mean_s,
                ..
            } => (1.0 - long_prob) * short_mean_s + long_prob * long_mean_s,
        }
    }
}

/// A statistical description of one trace, mirroring Table 3.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    /// Trace name (Table 3 column).
    pub name: &'static str,
    /// Wall-clock duration to generate.
    pub duration: SimDuration,
    /// Block size in bytes.
    pub block_size: u64,
    /// Distinct Kbytes the trace should touch.
    pub distinct_kbytes: u64,
    /// Fraction of accesses that are reads.
    pub fraction_reads: f64,
    /// Mean read size in blocks.
    pub mean_read_blocks: f64,
    /// Mean write size in blocks.
    pub mean_write_blocks: f64,
    /// The interarrival-time model.
    pub interarrival: Interarrival,
    /// Fraction of operations that delete a file (0 disables deletions).
    pub delete_fraction: f64,
    /// Mean file size in bytes (controls how distinct bytes accumulate).
    pub mean_file_bytes: u64,
    /// Zipf exponent for file popularity (0 = uniform).
    pub zipf_exponent: f64,
    /// Probability that a read revisits a recently-touched file region.
    /// Real file-level traces re-read heavily — this is what gives the
    /// paper's traces their high DRAM hit rates — while the Table 3
    /// moments are unaffected (rerun sizes draw from the same
    /// distributions, and revisits add no distinct bytes).
    pub rerun_read_probability: f64,
    /// Probability that a write overwrites a recently-touched region;
    /// kept low, since Table 3's distinct-byte counts show writes mostly
    /// produce fresh data.
    pub rerun_write_probability: f64,
    /// True if the trace sits below the buffer cache and must be simulated
    /// with no DRAM (§4.1's note about `hp`).
    pub below_buffer_cache: bool,
}

impl TraceSpec {
    /// The `mac` trace: Macintosh PowerBook Duo 230 file-level trace
    /// (Table 3: 3.5 h, 22 000 distinct KB, 50% reads, 1 KB blocks, reads
    /// 1.3 / writes 1.2 blocks, interarrival 0.078 s / σ 0.57 / max 90.8 s,
    /// no deletions).
    pub fn mac() -> Self {
        TraceSpec {
            name: "mac",
            duration: SimDuration::from_secs(12_600),
            block_size: KIB,
            distinct_kbytes: 22_000,
            fraction_reads: 0.50,
            mean_read_blocks: 1.3,
            mean_write_blocks: 1.2,
            interarrival: Interarrival::Lognormal {
                mean_s: 0.078,
                std_s: 0.57,
                max_s: 90.8,
            },
            delete_fraction: 0.0,
            mean_file_bytes: 24 * KIB,
            zipf_exponent: 0.80,
            rerun_read_probability: 0.90,
            rerun_write_probability: 0.30,
            below_buffer_cache: false,
        }
    }

    /// The `dos` trace: Kester Li's IBM PC / Windows 3.1 file-level traces
    /// (Table 3: 1.5 h, 16 300 distinct KB, 24% reads, 0.5 KB blocks, reads
    /// 3.8 / writes 3.4 blocks, interarrival 0.528 s / σ 10.8 / max 713 s,
    /// with deletions).
    pub fn dos() -> Self {
        TraceSpec {
            name: "dos",
            duration: SimDuration::from_secs(5_400),
            block_size: 512,
            distinct_kbytes: 16_300,
            fraction_reads: 0.24,
            mean_read_blocks: 3.8,
            mean_write_blocks: 3.4,
            interarrival: Interarrival::Bursty {
                short_mean_s: 0.12,
                long_prob: 0.025,
                long_mean_s: 16.5,
                long_std_s: 55.0,
                max_s: 713.0,
            },
            delete_fraction: 0.02,
            mean_file_bytes: 24 * KIB,
            zipf_exponent: 0.20,
            rerun_read_probability: 0.90,
            rerun_write_probability: 0.10,
            below_buffer_cache: false,
        }
    }

    /// The `hp` trace: Ruemmler & Wilkes' HP-UX disk-level trace (Table 3:
    /// 4.4 days, 32 000 distinct KB, 38% reads, 1 KB blocks, reads 4.3 /
    /// writes 6.2 blocks, interarrival 11.1 s / σ 112.3 / max 30 min, no
    /// deletions; below the buffer cache).
    pub fn hp() -> Self {
        TraceSpec {
            name: "hp",
            duration: SimDuration::from_days(4) + SimDuration::from_hours(10),
            block_size: KIB,
            distinct_kbytes: 32_000,
            fraction_reads: 0.38,
            mean_read_blocks: 4.3,
            mean_write_blocks: 6.2,
            // 98% of gaps are sub-second burst activity; 2% are long
            // pauses averaging ~9 minutes. This reproduces Table 3's
            // mean 11.1 s / σ 112.3 / max 30 min *and* the rarity of
            // spin-ups behind Table 4's hp disk responses.
            interarrival: Interarrival::Bursty {
                short_mean_s: 0.22,
                long_prob: 0.02,
                long_mean_s: 545.0,
                long_std_s: 450.0,
                max_s: 30.0 * 60.0,
            },
            delete_fraction: 0.0,
            mean_file_bytes: 32 * KIB,
            zipf_exponent: 0.60,
            rerun_read_probability: 0.20,
            rerun_write_probability: 0.10,
            below_buffer_cache: true,
        }
    }

    /// Scales the duration (and hence operation count) by `fraction`,
    /// keeping every per-operation statistic; used by tests and benches
    /// that cannot afford the full trace.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn scaled(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "bad scale {fraction}");
        self.duration = self.duration.mul_f64(fraction);
        // Distinct bytes shrink sub-linearly with trace length (coverage
        // saturates); the 3/4 power keeps short traces from being absurdly
        // dense or sparse.
        self.distinct_kbytes = ((self.distinct_kbytes as f64) * fraction.powf(0.75)).round() as u64;
        self
    }

    /// Expected number of operations.
    pub fn expected_ops(&self) -> u64 {
        (self.duration.as_secs_f64() / self.interarrival.mean_s()) as u64
    }
}

/// The file-level records of a generated trace, plus the per-file sizes
/// needed to lay files out without growth relocations.
#[derive(Debug, Clone)]
pub struct GeneratedRecords {
    /// The records in time order.
    pub records: Vec<FileRecord>,
    /// `sizes[f]` is the byte size of `FileId(f)`.
    pub sizes: Vec<u64>,
}

/// Generates the file-level records for a spec.
pub fn generate_records(spec: &TraceSpec, seed: u64) -> GeneratedRecords {
    let files = (spec.distinct_kbytes * KIB / spec.mean_file_bytes).max(4);
    let zipf = Zipf::new(files as usize, spec.zipf_exponent);
    let mut rng = SimRng::seed_with_stream(seed, fxhash(spec.name));

    // File sizes: exponential-ish around the mean, at least one block.
    let sizes: Vec<u64> = (0..files)
        .map(|_| {
            let bytes = rng
                .exponential(spec.mean_file_bytes as f64)
                .max(spec.block_size as f64);
            (bytes / spec.block_size as f64).ceil() as u64 * spec.block_size
        })
        .collect();

    let mut records = Vec::with_capacity(spec.expected_ops() as usize + 16);
    let mut deleted = vec![false; files as usize];
    let mut now = SimTime::ZERO;
    let end = SimTime::ZERO + spec.duration;

    // Re-reference history: recent accesses eligible for rerun.
    let mut history: Vec<(FileId, u64, u64)> = Vec::with_capacity(HISTORY);
    #[allow(clippy::let_and_return)]
    let mut history_at = 0usize;

    while now < end {
        let gap = spec.interarrival.sample(&mut rng);
        now += SimDuration::from_secs_f64(gap);
        if now >= end {
            break;
        }

        let draw = rng.f64();
        if draw < spec.delete_fraction {
            let file = zipf.sample(&mut rng) as u64;
            if !deleted[file as usize] {
                deleted[file as usize] = true;
                records.push(FileRecord {
                    time: now,
                    op: Op::Delete,
                    file: FileId(file),
                    offset: 0,
                    size: 0,
                });
            }
            continue;
        }
        let is_read = draw < spec.delete_fraction + spec.fraction_reads;
        let op = if is_read { Op::Read } else { Op::Write };

        // Rerun locality: revisit a recently-touched file region. Reads
        // re-reference heavily (the source of the traces' DRAM hit rates);
        // writes mostly produce fresh data (the source of Table 3's
        // distinct bytes).
        let rerun_p = if is_read {
            spec.rerun_read_probability
        } else {
            spec.rerun_write_probability
        };
        let mut target: Option<(FileId, u64, u64)> = None;
        if !history.is_empty() && rng.chance(rerun_p) {
            let entry = history[rng.below(history.len() as u64) as usize];
            if !deleted[entry.0 .0 as usize] {
                target = Some(entry);
            }
        }
        let (file, offset, size) = match target {
            // Rerun revisits the region exactly, so a re-read of a recent
            // write hits the cache in full.
            Some(entry) => entry,
            None => {
                let f = zipf.sample(&mut rng) as u64;
                if deleted[f as usize] {
                    if is_read {
                        // Nothing to read from a deleted file.
                        continue;
                    }
                    deleted[f as usize] = false;
                }
                let file_blocks = sizes[f as usize] / spec.block_size;
                let mean_blocks = if is_read {
                    spec.mean_read_blocks
                } else {
                    spec.mean_write_blocks
                };
                let size_blocks = geometric_blocks(&mut rng, mean_blocks)
                    .min(file_blocks)
                    .max(1);
                let max_off_blocks = file_blocks - size_blocks;
                let offset_blocks = if max_off_blocks == 0 {
                    0
                } else {
                    rng.below(max_off_blocks + 1)
                };
                (
                    FileId(f),
                    offset_blocks * spec.block_size,
                    size_blocks * spec.block_size,
                )
            }
        };
        records.push(FileRecord {
            time: now,
            op,
            file,
            offset,
            size,
        });
        // Keep a bounded window of rerun candidates.
        if history.len() < HISTORY {
            history.push((file, offset, size));
        } else {
            history[history_at] = (file, offset, size);
            history_at = (history_at + 1) % HISTORY;
        }
        let _ = &history;
    }
    GeneratedRecords { records, sizes }
}

/// Rerun-candidate window size.
const HISTORY: usize = 64;

/// Generates a disk-level [`Trace`] for a spec.
///
/// File extents are pre-reserved at each file's full size, so partial
/// first accesses do not trigger growth relocations (the paper's
/// preprocessing had complete file-size information too).
///
/// # Examples
///
/// ```
/// use mobistore_workload::tracegen::{generate, TraceSpec};
///
/// let trace = generate(&TraceSpec::dos().scaled(0.01), 7);
/// assert!(!trace.is_empty());
/// assert_eq!(trace.block_size, 512);
/// ```
pub fn generate(spec: &TraceSpec, seed: u64) -> Trace {
    let generated = generate_records(spec, seed);
    let mut layout = FileLayout::new(spec.block_size);
    for (f, &bytes) in generated.sizes.iter().enumerate() {
        layout.reserve(FileId(f as u64), bytes);
    }
    let mut trace = Trace::new(spec.block_size);
    for rec in &generated.records {
        for op in layout.apply(rec) {
            trace.push(op);
        }
        // A delete releases the extent; reserve it again at full size so
        // the file's eventual rewrite cannot trigger growth relocations.
        if rec.op == Op::Delete {
            layout.reserve(rec.file, generated.sizes[rec.file.0 as usize]);
        }
    }
    trace
}

/// A transfer size in blocks, geometric with the given mean (so size 1 is
/// the mode, as in real file traces).
fn geometric_blocks(rng: &mut SimRng, mean: f64) -> u64 {
    debug_assert!(mean >= 1.0);
    if mean <= 1.0 {
        return 1;
    }
    // Geometric on {1, 2, ...} with success probability p has mean 1/p.
    let p = 1.0 / mean;
    let u = 1.0 - rng.f64(); // (0, 1]
    let k = (u.ln() / (1.0 - p).ln()).floor() as u64 + 1;
    k.min(1 << 20)
}

/// A tiny deterministic string hash to derive per-trace RNG streams.
fn fxhash(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobistore_trace::stats::TraceStats;

    /// Shared tolerance check: |actual - target| / target < tol.
    fn close(actual: f64, target: f64, tol: f64, what: &str) {
        let rel = (actual - target).abs() / target;
        assert!(
            rel < tol,
            "{what}: actual {actual:.4}, target {target:.4}, rel err {rel:.2}"
        );
    }

    #[test]
    fn geometric_mean_converges() {
        let mut rng = SimRng::seed_from_u64(1);
        let n = 100_000;
        let total: u64 = (0..n).map(|_| geometric_blocks(&mut rng, 3.8)).sum();
        close(total as f64 / n as f64, 3.8, 0.05, "geometric mean");
    }

    #[test]
    fn mac_statistics_match_table3() {
        let spec = TraceSpec::mac().scaled(0.10);
        let trace = generate(&spec, 11);
        let s = TraceStats::measure(&trace);
        close(s.fraction_reads, 0.50, 0.10, "mac read fraction");
        close(s.mean_read_blocks, 1.3, 0.15, "mac read size");
        close(s.mean_write_blocks, 1.2, 0.15, "mac write size");
        close(s.interarrival.mean, 0.078, 0.20, "mac interarrival mean");
        assert!(s.interarrival.max <= 90.8 + 1e-9);
        assert_eq!(s.block_size_kbytes, 1.0);
    }

    #[test]
    fn dos_statistics_match_table3() {
        // Half scale: the bursty interarrival mixture (2.5% long pauses)
        // needs a few hundred pause samples before its mean stabilises.
        let spec = TraceSpec::dos().scaled(0.5);
        let trace = generate(&spec, 12);
        let s = TraceStats::measure(&trace);
        close(s.fraction_reads, 0.24, 0.15, "dos read fraction");
        close(s.mean_read_blocks, 3.8, 0.20, "dos read size");
        close(s.mean_write_blocks, 3.4, 0.20, "dos write size");
        close(s.interarrival.mean, 0.528, 0.30, "dos interarrival mean");
        assert_eq!(s.block_size_kbytes, 0.5);
    }

    #[test]
    fn hp_statistics_match_table3() {
        let spec = TraceSpec::hp().scaled(0.10);
        let trace = generate(&spec, 13);
        let s = TraceStats::measure(&trace);
        close(s.fraction_reads, 0.38, 0.15, "hp read fraction");
        close(s.mean_read_blocks, 4.3, 0.20, "hp read size");
        close(s.mean_write_blocks, 6.2, 0.20, "hp write size");
        close(s.interarrival.mean, 11.1, 0.30, "hp interarrival mean");
        assert!(TraceSpec::hp().below_buffer_cache);
    }

    #[test]
    fn distinct_bytes_land_near_target() {
        let spec = TraceSpec::mac().scaled(0.10);
        let trace = generate(&spec, 14);
        let s = TraceStats::measure(&trace);
        close(
            s.distinct_kbytes as f64,
            spec.distinct_kbytes as f64,
            0.5,
            "mac distinct KB",
        );
    }

    #[test]
    fn only_dos_deletes() {
        let dos = generate(&TraceSpec::dos().scaled(0.05), 15);
        let mac = generate(&TraceSpec::mac().scaled(0.02), 15);
        use mobistore_trace::record::DiskOpKind;
        assert!(dos.ops.iter().any(|op| op.kind == DiskOpKind::Trim));
        assert!(!mac.ops.iter().any(|op| op.kind == DiskOpKind::Trim));
    }

    #[test]
    fn deterministic_per_seed_and_name() {
        let spec = TraceSpec::dos().scaled(0.02);
        let a = generate(&spec, 3);
        let b = generate(&spec, 3);
        let c = generate(&spec, 4);
        assert_eq!(a.ops, b.ops);
        assert_ne!(a.ops, c.ops);
    }

    #[test]
    fn duration_respected() {
        let spec = TraceSpec::mac().scaled(0.05);
        let trace = generate(&spec, 5);
        assert!(trace.duration() <= spec.duration);
        assert!(trace.duration().as_secs_f64() > spec.duration.as_secs_f64() * 0.5);
    }

    #[test]
    #[should_panic(expected = "bad scale")]
    fn zero_scale_rejected() {
        let _ = TraceSpec::mac().scaled(0.0);
    }
}
