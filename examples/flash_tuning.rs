//! Flash-card tuning explorer: utilization and cleaning policy.
//!
//! §5.2's central finding is that storage utilization drives flash-card
//! energy, response, and endurance. This example sweeps utilization on a
//! chosen workload and compares cleaning policies, printing the trade-off
//! table a system designer would want.
//!
//! ```text
//! cargo run --release --example flash_tuning [mac|dos|hp|synth] [scale]
//! ```

use mobistore::core::simulator::simulate;
use mobistore::device::params::intel_datasheet;
use mobistore::experiments::flash_card_config;
use mobistore::flash::store::VictimPolicy;
use mobistore::Workload;

fn main() {
    let mut args = std::env::args().skip(1);
    let workload = match args.next().as_deref() {
        Some("dos") => Workload::Dos,
        Some("hp") => Workload::Hp,
        Some("synth") => Workload::Synth,
        _ => Workload::Mac,
    };
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.05);

    println!(
        "Workload: {} at {:.0}% scale\n",
        workload.name(),
        scale * 100.0
    );
    let trace = workload.generate_scaled(scale, 7);
    let dram = if workload.below_buffer_cache() {
        0
    } else {
        2 * 1024 * 1024
    };

    println!("-- Utilization sweep (greedy cleaning) --");
    println!(
        "{:>6} {:>11} {:>13} {:>10} {:>12} {:>10}",
        "util%", "energy(J)", "wr mean(ms)", "erasures", "clean waits", "max wear"
    );
    for util in [0.40, 0.60, 0.80, 0.90, 0.95] {
        let cfg = flash_card_config(intel_datasheet(), &trace, util).with_dram(dram);
        let m = simulate(&cfg, &trace);
        let fc = m.flash_card.expect("flash card");
        let wear = m.wear.expect("wear");
        println!(
            "{:>6.0} {:>11.1} {:>13.3} {:>10} {:>12} {:>10}",
            util * 100.0,
            m.energy.get(),
            m.write_response_ms.mean,
            fc.erasures,
            fc.cleaning_waits,
            wear.max_erase
        );
    }

    println!("\n-- Cleaning policy at 90% utilization --");
    println!(
        "{:>26} {:>11} {:>13} {:>10}",
        "policy", "energy(J)", "wr mean(ms)", "erasures"
    );
    for (name, policy) in [
        ("greedy min-utilization", VictimPolicy::GreedyMinLive),
        ("FIFO", VictimPolicy::Fifo),
        ("cost-benefit (LFS/eNVy)", VictimPolicy::CostBenefit),
    ] {
        let cfg = flash_card_config(intel_datasheet(), &trace, 0.90)
            .with_dram(dram)
            .with_victim_policy(policy);
        let m = simulate(&cfg, &trace);
        println!(
            "{:>26} {:>11.1} {:>13.3} {:>10}",
            name,
            m.energy.get(),
            m.write_response_ms.mean,
            m.flash_card.expect("flash card").erasures
        );
    }

    println!(
        "\nAt 100,000 erase cycles per segment (the Series 2 guarantee), the\n\
         highest-worn segment's count above bounds the card's service life."
    );
}
