//! §1/§7 — battery-life extension from storage energy savings.
//!
//! The paper: flash saves 59–86% (flash disk) or ~90% (flash card) of the
//! disk file system's energy; with storage at 20–54% of total system
//! energy [13, 14], that extends battery life by ~22% at the low end and
//! up to 20–100% overall. This runner derives the savings from the actual
//! Table 4 simulations and applies the battery model.

use std::fmt;

use mobistore_core::battery::{
    battery_extension, savings_fraction, STORAGE_SHARE_HIGH, STORAGE_SHARE_LOW,
};
use mobistore_workload::Workload;

use crate::table4::{run_part, DeviceConfig, Table4Part};
use crate::Scale;

/// Battery extension derived from one trace's simulations.
#[derive(Debug, Clone)]
pub struct BatteryRow {
    /// Which trace.
    pub workload: Workload,
    /// Flash-disk (SDP5) energy saving vs the cu140 (fraction).
    pub flash_disk_savings: f64,
    /// Flash-card (Intel datasheet) energy saving vs the cu140 (fraction).
    pub flash_card_savings: f64,
    /// Battery extension for the card at the 20% storage share.
    pub card_extension_low_share: f64,
    /// Battery extension for the card at the 54% storage share.
    pub card_extension_high_share: f64,
}

/// The battery-life experiment.
#[derive(Debug, Clone)]
pub struct Battery {
    /// One row per trace.
    pub rows: Vec<BatteryRow>,
}

/// Derives battery extensions from fresh Table 4 runs.
pub fn run(scale: Scale) -> Battery {
    let rows = Workload::TABLE4
        .iter()
        .map(|&w| from_part(&run_part(w, scale)))
        .collect();
    Battery { rows }
}

/// Derives one row from an existing Table 4 part.
pub fn from_part(part: &Table4Part) -> BatteryRow {
    let disk = part.row(DeviceConfig::Cu140Datasheet).energy.get();
    let sdp = part.row(DeviceConfig::Sdp5Datasheet).energy.get();
    let card = part.row(DeviceConfig::IntelDatasheet).energy.get();
    let flash_disk_savings = savings_fraction(disk, sdp.min(disk));
    let flash_card_savings = savings_fraction(disk, card.min(disk));
    BatteryRow {
        workload: part.workload,
        flash_disk_savings,
        flash_card_savings,
        card_extension_low_share: battery_extension(STORAGE_SHARE_LOW, flash_card_savings),
        card_extension_high_share: battery_extension(STORAGE_SHARE_HIGH, flash_card_savings),
    }
}

impl fmt::Display for Battery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Battery life (paper: flash disk saves 59-86%, card ~90% -> +20-100% life)"
        )?;
        writeln!(
            f,
            "{:<8} {:>16} {:>16} {:>14} {:>14}",
            "trace", "fdisk savings", "card savings", "ext @20% shr", "ext @54% shr"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>15.0}% {:>15.0}% {:>13.0}% {:>13.0}%",
                r.workload.name(),
                r.flash_disk_savings * 100.0,
                r.flash_card_savings * 100.0,
                r.card_extension_low_share * 100.0,
                r.card_extension_high_share * 100.0,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_land_in_paper_band() {
        let part = run_part(Workload::Mac, Scale::quick());
        let row = from_part(&part);
        // Paper: flash disk saves 59-86% of disk energy; the card ~90%
        // (at quick scale the card's cleaning sees less locality, so allow
        // a wider band).
        assert!(
            (0.4..0.95).contains(&row.flash_disk_savings),
            "{}",
            row.flash_disk_savings
        );
        assert!(
            (0.5..1.0).contains(&row.flash_card_savings),
            "{}",
            row.flash_card_savings
        );
        // Extension ordering follows the share.
        assert!(row.card_extension_high_share > row.card_extension_low_share);
        // Low-share extension should be in the tens of percent (the
        // paper's 22% headline band, loosely).
        assert!(
            (0.05..0.35).contains(&row.card_extension_low_share),
            "{}",
            row.card_extension_low_share
        );
    }

    #[test]
    fn renders() {
        let b = Battery {
            rows: vec![from_part(&run_part(Workload::Mac, Scale::quick()))],
        };
        assert!(b.to_string().contains("card savings"));
    }
}
