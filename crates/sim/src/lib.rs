//! Discrete-event simulation substrate for the `mobistore` reproduction of
//! *Storage Alternatives for Mobile Computers* (Douglis et al., OSDI '94).
//!
//! This crate holds the domain-independent pieces every other crate builds
//! on:
//!
//! * [`time`] — an integer-nanosecond simulated clock ([`time::SimTime`],
//!   [`time::SimDuration`]);
//! * [`energy`] — joule/watt units and the per-category [`energy::EnergyMeter`];
//! * [`units`] — byte sizes and [`units::Bandwidth`] (Kbytes/s, as in the
//!   paper);
//! * [`stats`] — streaming mean/max/σ ([`stats::OnlineStats`]) matching the
//!   columns of the paper's Table 4;
//! * [`rng`] — a deterministic PCG32 generator and the distribution samplers
//!   (exponential, log-normal, Zipf) used by the workload generators;
//! * [`ec`] — GF(2^8) Reed-Solomon erasure coding ([`ec::ReedSolomon`]):
//!   systematic Vandermonde `k+m` codes over fixed-size shards, the math
//!   behind the erasure-coded device arrays;
//! * [`exec`] — a scoped-thread worker pool ([`exec::parallel_map`]) that
//!   fans independent simulation points out across cores while preserving
//!   input order, so parallel results are bit-identical to serial ones;
//! * [`fault`] — seeded, deterministic fault injection ([`fault::FaultPlan`])
//!   for transient write/erase failures, permanent bad blocks, and
//!   power-failure schedules;
//! * [`fleet`] — hash-range sharding of a user population onto simulated
//!   devices ([`fleet::FleetConfig`], [`fleet::FleetPlan`]), with one
//!   dedicated RNG stream per shard so fleet results are independent of
//!   worker count and of which other shards run;
//! * [`hist`] — log-bucketed latency histograms ([`hist::Histogram`]) with
//!   deterministic p50/p90/p99/p99.9 queries;
//! * [`integrity`] — seeded, wear-coupled bit-error injection and ECC
//!   classification ([`integrity::IntegrityPlan`]): raw errors grow with
//!   erase count and retention time, verdicts split into corrected /
//!   retried / uncorrectable;
//! * [`obs`] — structured sim-time event tracing ([`obs::Event`],
//!   [`obs::Observer`]); the default [`obs::NoopObserver`] monomorphises
//!   away entirely;
//! * [`span`] — sim-time interval tracing ([`span::Span`]) on the same
//!   observer channel, exported as Chrome trace-event JSON
//!   ([`span::chrome_trace_json`]) viewable in Perfetto;
//! * [`prof`] — host-time self-profiling: named-phase wall-clock timers
//!   ([`prof::Profiler`]) and the process-wide simulated-op counter
//!   behind every `ops/sec` figure;
//! * [`crashcheck`] — the differential crash-consistency shadow model
//!   ([`crashcheck::ShadowModel`]): a device-independent oracle of legal
//!   post-crash block contents, with typed [`crashcheck::Violation`]s.
//!
//! Everything is deterministic: integer time plus a seeded RNG make each
//! experiment reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crashcheck;
pub mod ec;
pub mod energy;
pub mod exec;
pub mod fault;
pub mod fleet;
pub mod hist;
pub mod integrity;
pub mod obs;
pub mod prof;
pub mod rng;
pub mod span;
pub mod stats;
pub mod time;
pub mod units;

pub use crashcheck::{ShadowModel, Violation};
pub use ec::ReedSolomon;
pub use energy::{EnergyMeter, Joules, Watts};
pub use fault::{FaultConfig, FaultPlan};
pub use fleet::{FleetConfig, FleetPlan, FleetShard, Mix};
pub use hist::{Histogram, LatencyRecorder, Percentiles};
pub use integrity::{IntegrityConfig, IntegrityPlan, ReadVerdict};
pub use obs::{CounterRegistry, Event, NoopObserver, Observer};
pub use rng::SimRng;
pub use span::{Span, SpanKind};
pub use stats::{OnlineStats, Summary};
pub use time::{SimDuration, SimTime};
pub use units::{Bandwidth, KIB, MIB};
