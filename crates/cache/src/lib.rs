//! Memory-hierarchy components for the `mobistore` reproduction of
//! *Storage Alternatives for Mobile Computers* (Douglis et al., OSDI '94).
//!
//! * [`dram::BufferCache`] — the DRAM buffer cache every configuration
//!   includes (§2), write-through by default per §4.2, with the write-back
//!   ablation;
//! * [`sram::SramWriteBuffer`] — the battery-backed SRAM write buffer that
//!   lets small writes proceed without spinning up the disk (§2, §5.5);
//! * [`lru::LruSet`] — the O(1) LRU machinery under the cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dram;
pub mod lru;
pub mod sram;

pub use dram::{BufferCache, CacheStats, Evicted, WritePolicy};
pub use sram::{SramStats, SramWriteBuffer};

/// A typed cache-layer failure, replacing the historical `panic!` paths.
///
/// The panicking constructors ([`BufferCache::new`],
/// [`SramWriteBuffer::new`], [`SramWriteBuffer::absorb`]) remain as thin
/// wrappers over the fallible `try_*` variants and format the same
/// messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheError {
    /// A cache was configured with a zero block size.
    ZeroBlockSize,
    /// The configured capacity cannot hold one complete block.
    Undersized {
        /// Configured capacity in bytes.
        capacity_bytes: u64,
        /// Configured block size in bytes.
        block_size: u64,
    },
    /// An absorb would overflow the SRAM write buffer; callers must check
    /// [`SramWriteBuffer::fits`] and flush first.
    Overflow {
        /// Blocks already buffered.
        buffered: usize,
        /// New blocks the absorb would add.
        incoming: usize,
        /// The buffer's capacity in blocks.
        capacity: usize,
    },
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            CacheError::ZeroBlockSize => write!(f, "block size must be positive"),
            CacheError::Undersized {
                capacity_bytes,
                block_size,
            } => write!(
                f,
                "cache smaller than one block ({capacity_bytes} bytes, {block_size}-byte blocks)"
            ),
            CacheError::Overflow {
                buffered,
                incoming,
                capacity,
            } => write!(
                f,
                "SRAM overflow: flush before absorbing ({buffered} buffered + {incoming} \
                 incoming > {capacity} capacity)"
            ),
        }
    }
}

impl std::error::Error for CacheError {}
