#!/usr/bin/env bash
# Times the full repro pipeline serial (--jobs 1) vs parallel (all cores)
# and writes the results to BENCH_repro.json in the repo root.
#
# Usage: scripts/bench_repro.sh [scale] [seed]
set -euo pipefail

cd "$(dirname "$0")/.."

SCALE="${1:-0.05}"
SEED="${2:-1994}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"

cargo build --release --workspace >/dev/null
REPRO=target/release/repro

now_ms() { date +%s%3N; }

run() { # run <jobs> <outfile> -> prints elapsed ms
    local jobs="$1" out="$2"
    local t0 t1
    t0=$(now_ms)
    "$REPRO" --scale "$SCALE" --seed "$SEED" --jobs "$jobs" >"$out" 2>/dev/null
    t1=$(now_ms)
    echo $((t1 - t0))
}

echo "benching repro --scale $SCALE --seed $SEED (parallel jobs=$JOBS)..." >&2

SERIAL_OUT="$(mktemp)"
PARALLEL_OUT="$(mktemp)"
SERIAL_MS=$(run 1 "$SERIAL_OUT")
PARALLEL_MS=$(run "$JOBS" "$PARALLEL_OUT")

if cmp -s "$SERIAL_OUT" "$PARALLEL_OUT"; then
    IDENTICAL=true
else
    IDENTICAL=false
fi
rm -f "$SERIAL_OUT" "$PARALLEL_OUT"

SPEEDUP=$(awk "BEGIN { printf \"%.2f\", $SERIAL_MS / $PARALLEL_MS }")

cat > BENCH_repro.json <<EOF
{
  "benchmark": "repro --scale $SCALE --seed $SEED",
  "cores": $JOBS,
  "serial_ms": $SERIAL_MS,
  "parallel_ms": $PARALLEL_MS,
  "speedup": $SPEEDUP,
  "output_identical": $IDENTICAL
}
EOF

cat BENCH_repro.json
