#!/usr/bin/env sh
# Regenerates the golden snapshot fixtures under tests/golden/.
#
# Run after an *intentional* output change, then review the diff:
#   scripts/update_golden.sh && git diff tests/golden
set -eu

cd "$(dirname "$0")/.."

cargo build --release --workspace

for target in table1 table2 table3 table4 figure1 figure2 figure3 figure4 figure5 crashcheck integrity fleet profile durability; do
    echo "# rendering $target" >&2
    ./target/release/repro --scale 0.02 --seed 1994 "$target" \
        2>/dev/null > "tests/golden/$target.txt"
done

# The chaos fleet fixture: injected panics quarantine shards, so the
# run *succeeds with reduced coverage* and exits 8 by design — anything
# else (a real failure, or chaos silently not firing) aborts the update.
echo "# rendering fleet (chaos)" >&2
rc=0
./target/release/repro --scale 0.02 --seed 1994 --chaos-panic-rate 0.5 fleet \
    2>/dev/null > "tests/golden/fleet_chaos.txt" || rc=$?
if [ "$rc" -ne 8 ]; then
    echo "error: chaos fleet render expected exit 8 (quarantined), got $rc" >&2
    exit 1
fi

echo "# fixtures updated; review with: git diff tests/golden" >&2
