//! Deterministic fault injection.
//!
//! Real mobile storage fails: Intel Series 2 cards shipped with factory
//! bad-block maps and grew new bad segments as erasure cycles accumulated,
//! SunDisk parts retried transiently-failed program operations, and MFFS
//! had to replay its log after a power loss mid-compaction. A simulator
//! that never fails devices reproduces only the sunny half of the paper's
//! trade-off space.
//!
//! [`FaultPlan`] is a seeded source of fault decisions, driven by
//! [`SimRng`](crate::rng::SimRng) so that a `(seed, stream)` pair fully
//! determines every injected fault. Device models own their plan, which
//! makes runs reproducible and parallel-safe by construction: two
//! simulations built from the same [`FaultConfig`] inject identical fault
//! schedules regardless of worker count, and a zero-rate plan draws no
//! random numbers at all, so it is bit-for-bit indistinguishable from a
//! fault-free build.
//!
//! Three fault classes are modeled:
//!
//! * **transient write failures** — a program operation fails verify and is
//!   retried after a backoff (service time and energy grow accordingly);
//! * **erase failures** — transient ones retry the erase pulse; a fraction
//!   escalate to *permanent* failures that retire the segment into a
//!   bad-block map, shrinking effective capacity;
//! * **power failures** — exponentially-distributed whole-system power
//!   losses that truncate in-flight cleaning and force a recovery scan
//!   (FAT replay on the magnetic disk, log scan plus orphaned-segment
//!   reclaim on the flash card).

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// RNG stream selector for device-level (write/erase) fault draws.
const DEVICE_FAULT_STREAM: u64 = 0x000f_a017_0001;
/// RNG stream selector for the power-failure schedule.
const POWER_FAULT_STREAM: u64 = 0x000f_a017_0002;
/// RNG stream selector for whole-device permanent-death instants.
const DEVICE_DEATH_STREAM: u64 = 0x000f_a017_0003;

/// Rates and costs of injected faults. All rates default to zero, which
/// injects nothing and reproduces the fault-free simulator byte for byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a write request experiences a transient failure
    /// and must be retried (drawn once per retry attempt, so failures are
    /// geometrically distributed up to [`max_retries`](Self::max_retries)).
    pub write_fail_rate: f64,
    /// Probability that a segment erasure fails on the first pulse.
    pub erase_fail_rate: f64,
    /// Probability that a failed erasure is *permanent*: the segment is
    /// retired into the bad-block map instead of being retried.
    pub permanent_rate: f64,
    /// Upper bound on transient retries per operation; a real controller
    /// gives up and remaps, we simply stop charging extra time.
    pub max_retries: u32,
    /// Fixed delay the controller waits before each retry attempt.
    pub retry_backoff: SimDuration,
    /// Mean interval between power failures (exponentially distributed);
    /// `None` disables power-fail injection.
    pub power_fail_mean: Option<SimDuration>,
    /// Bytes of file-allocation-table metadata the magnetic disk rescans
    /// on recovery (synchronous-FAT replay after an unclean shutdown).
    pub fat_scan_bytes: u64,
    /// Whole-device permanent deaths per device-hour (exponentially
    /// distributed first-arrival per array child). Zero disables death
    /// injection and draws nothing. Only erasure-coded arrays consult
    /// this; lone devices have no redundancy to recover with.
    pub death_rate: f64,
    /// Seed for the fault streams. Independent from the workload seed so
    /// the same trace can be replayed under different fault schedules.
    pub seed: u64,
}

impl FaultConfig {
    /// A configuration that injects nothing.
    pub fn none() -> Self {
        FaultConfig {
            write_fail_rate: 0.0,
            erase_fail_rate: 0.0,
            permanent_rate: 0.0,
            max_retries: 3,
            retry_backoff: SimDuration::from_micros(250),
            power_fail_mean: None,
            fat_scan_bytes: 128 * 1024,
            death_rate: 0.0,
            seed: 0,
        }
    }

    /// A symmetric transient-fault configuration: write and erase failures
    /// at `rate`, 10% of erase failures permanent.
    pub fn with_rate(rate: f64, seed: u64) -> Self {
        FaultConfig {
            write_fail_rate: rate,
            erase_fail_rate: rate,
            permanent_rate: 0.1,
            seed,
            ..FaultConfig::none()
        }
    }

    /// Adds a power-failure schedule with the given mean interval.
    pub fn with_power_failures(mut self, mean: SimDuration) -> Self {
        self.power_fail_mean = Some(mean);
        self
    }

    /// Adds a whole-device death rate (deaths per device-hour).
    pub fn with_death_rate(mut self, rate: f64) -> Self {
        self.death_rate = rate;
        self
    }

    /// True if this configuration can never inject anything.
    pub fn is_quiet(&self) -> bool {
        self.write_fail_rate == 0.0
            && self.erase_fail_rate == 0.0
            && self.power_fail_mean.is_none()
            && self.death_rate == 0.0
    }

    /// Validates rates; called by plan constructors.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]` or non-finite.
    fn validate(&self) {
        for (name, r) in [
            ("write_fail_rate", self.write_fail_rate),
            ("erase_fail_rate", self.erase_fail_rate),
            ("permanent_rate", self.permanent_rate),
        ] {
            assert!(
                r.is_finite() && (0.0..=1.0).contains(&r),
                "{name} out of range: {r}"
            );
        }
        assert!(
            self.death_rate.is_finite() && self.death_rate >= 0.0,
            "death_rate out of range: {}",
            self.death_rate
        );
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// The outcome of one segment-erase attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EraseOutcome {
    /// The erasure succeeded first try.
    Clean,
    /// The erasure succeeded after this many retried pulses.
    Retried(u32),
    /// The segment failed permanently and must be retired.
    Permanent,
}

/// A deterministic stream of device-fault decisions.
///
/// # Examples
///
/// ```
/// use mobistore_sim::fault::{FaultConfig, FaultPlan};
///
/// let mut a = FaultPlan::new(FaultConfig::with_rate(0.5, 42));
/// let mut b = FaultPlan::new(FaultConfig::with_rate(0.5, 42));
/// let xs: Vec<u32> = (0..32).map(|_| a.write_retries()).collect();
/// let ys: Vec<u32> = (0..32).map(|_| b.write_retries()).collect();
/// assert_eq!(xs, ys, "same seed, same fault schedule");
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    rng: SimRng,
}

impl FaultPlan {
    /// Creates a plan over the device-fault stream of `config.seed`.
    ///
    /// # Panics
    ///
    /// Panics if any rate in `config` is outside `[0, 1]`.
    pub fn new(config: FaultConfig) -> Self {
        config.validate();
        FaultPlan {
            rng: SimRng::seed_with_stream(config.seed, DEVICE_FAULT_STREAM),
            config,
        }
    }

    /// A plan that injects nothing (and draws nothing).
    pub fn quiet() -> Self {
        FaultPlan::new(FaultConfig::none())
    }

    /// Returns the configuration the plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Draws the number of transient failures a write suffers before
    /// succeeding, in `0..=max_retries`. Zero-rate plans return 0 without
    /// consuming randomness.
    pub fn write_retries(&mut self) -> u32 {
        let rate = self.config.write_fail_rate;
        if rate == 0.0 {
            return 0;
        }
        let mut n = 0;
        while n < self.config.max_retries && self.rng.chance(rate) {
            n += 1;
        }
        n
    }

    /// Draws the outcome of a segment erasure. Zero-rate plans return
    /// [`EraseOutcome::Clean`] without consuming randomness.
    pub fn erase_outcome(&mut self) -> EraseOutcome {
        let rate = self.config.erase_fail_rate;
        if rate == 0.0 || !self.rng.chance(rate) {
            return EraseOutcome::Clean;
        }
        if self.config.permanent_rate > 0.0 && self.rng.chance(self.config.permanent_rate) {
            return EraseOutcome::Permanent;
        }
        // First pulse failed; each further pulse fails with the same rate.
        let mut n = 1;
        while n < self.config.max_retries && self.rng.chance(rate) {
            n += 1;
        }
        EraseOutcome::Retried(n)
    }
}

/// A deterministic schedule of power-failure instants.
///
/// Separate from [`FaultPlan`] (and on its own RNG stream) so that the
/// power-failure timeline does not shift when device-level fault rates
/// change, and vice versa.
#[derive(Debug, Clone)]
pub struct PowerFailSchedule {
    mean: SimDuration,
    rng: SimRng,
    next_at: f64,
}

impl PowerFailSchedule {
    /// Builds the schedule from `config`, or `None` if power failures are
    /// disabled.
    pub fn from_config(config: &FaultConfig) -> Option<Self> {
        let mean = config.power_fail_mean?;
        assert!(!mean.is_zero(), "power-fail mean interval must be positive");
        let mut sched = PowerFailSchedule {
            mean,
            rng: SimRng::seed_with_stream(config.seed, POWER_FAULT_STREAM),
            next_at: 0.0,
        };
        sched.advance();
        Some(sched)
    }

    /// The instant of the next power failure, in seconds of simulated time.
    pub fn next_at_secs(&self) -> f64 {
        self.next_at
    }

    /// Consumes the pending failure and schedules the one after it.
    pub fn advance(&mut self) {
        self.next_at += self.rng.exponential(self.mean.as_secs_f64());
    }
}

/// A deterministic schedule of whole-device permanent deaths for an
/// erasure-coded array's children.
///
/// Each child's death instant is an independent exponential first-arrival
/// at [`FaultConfig::death_rate`] deaths per device-hour, drawn in child
/// order from a dedicated RNG stream so the schedule is a pure function
/// of `(seed, child index)` — independent of worker count, op order, and
/// the write/erase/power fault streams. A zero rate draws nothing, so a
/// death-free array is bit-for-bit identical to one built without the
/// schedule.
#[derive(Debug, Clone)]
pub struct DeathSchedule {
    deaths: Vec<Option<SimTime>>,
}

impl DeathSchedule {
    /// Draws a death instant for each of `devices` children.
    ///
    /// # Panics
    ///
    /// Panics if any rate in `config` is out of range.
    pub fn new(config: &FaultConfig, devices: usize) -> Self {
        config.validate();
        let deaths = if config.death_rate == 0.0 {
            vec![None; devices]
        } else {
            let mut rng = SimRng::seed_with_stream(config.seed, DEVICE_DEATH_STREAM);
            let mean_secs = 3600.0 / config.death_rate;
            (0..devices)
                .map(|_| Some(SimTime::from_secs_f64(rng.exponential(mean_secs))))
                .collect()
        };
        DeathSchedule { deaths }
    }

    /// A schedule in which nothing ever dies.
    pub fn quiet(devices: usize) -> Self {
        DeathSchedule {
            deaths: vec![None; devices],
        }
    }

    /// Builds a schedule from explicit per-device death instants. Test
    /// and torture harnesses inject exact loss patterns (e.g. precisely
    /// `m` deaths) this way instead of hunting for a seed.
    pub fn explicit(deaths: Vec<Option<SimTime>>) -> Self {
        DeathSchedule { deaths }
    }

    /// The death instant of `device`, or `None` if it never dies.
    pub fn death_of(&self, device: usize) -> Option<SimTime> {
        self.deaths.get(device).copied().flatten()
    }

    /// True if `device` has died at or before `at`.
    pub fn dead_by(&self, device: usize, at: SimTime) -> bool {
        matches!(self.death_of(device), Some(d) if d <= at)
    }

    /// Number of children covered by the schedule.
    pub fn len(&self) -> usize {
        self.deaths.len()
    }

    /// True if the schedule covers no children.
    pub fn is_empty(&self) -> bool {
        self.deaths.is_empty()
    }

    /// Devices dead at or before `at`, in child order.
    pub fn dead_at(&self, at: SimTime) -> Vec<usize> {
        (0..self.deaths.len())
            .filter(|&i| self.dead_by(i, at))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires() {
        let mut plan = FaultPlan::quiet();
        for _ in 0..1_000 {
            assert_eq!(plan.write_retries(), 0);
            assert_eq!(plan.erase_outcome(), EraseOutcome::Clean);
        }
        assert!(plan.config().is_quiet());
        assert!(PowerFailSchedule::from_config(&FaultConfig::none()).is_none());
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig::with_rate(0.3, 7).with_power_failures(SimDuration::from_secs(100));
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        for _ in 0..256 {
            assert_eq!(a.write_retries(), b.write_retries());
            assert_eq!(a.erase_outcome(), b.erase_outcome());
        }
        let mut pa = PowerFailSchedule::from_config(&cfg).unwrap();
        let mut pb = PowerFailSchedule::from_config(&cfg).unwrap();
        for _ in 0..64 {
            assert_eq!(pa.next_at_secs(), pb.next_at_secs());
            pa.advance();
            pb.advance();
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlan::new(FaultConfig::with_rate(0.3, 1));
        let mut b = FaultPlan::new(FaultConfig::with_rate(0.3, 2));
        let xs: Vec<u32> = (0..64).map(|_| a.write_retries()).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.write_retries()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn retry_rate_tracks_configuration() {
        let mut plan = FaultPlan::new(FaultConfig::with_rate(0.01, 3));
        let fails: u32 = (0..100_000).map(|_| plan.write_retries()).sum();
        // Expected ~1000 transient failures at a 1% rate.
        assert!((600..1500).contains(&fails), "fails {fails}");
    }

    #[test]
    fn erase_outcomes_cover_all_classes() {
        let mut plan = FaultPlan::new(FaultConfig {
            erase_fail_rate: 0.5,
            permanent_rate: 0.2,
            ..FaultConfig::none()
        });
        let mut clean = 0;
        let mut retried = 0;
        let mut permanent = 0;
        for _ in 0..10_000 {
            match plan.erase_outcome() {
                EraseOutcome::Clean => clean += 1,
                EraseOutcome::Retried(n) => {
                    assert!(n >= 1 && n <= plan.config().max_retries);
                    retried += 1;
                }
                EraseOutcome::Permanent => permanent += 1,
            }
        }
        assert!(clean > 4_000, "clean {clean}");
        assert!(retried > 3_000, "retried {retried}");
        // ~50% fail x ~20% of those permanent = ~10%.
        assert!((500..1_500).contains(&permanent), "permanent {permanent}");
    }

    #[test]
    fn power_failures_are_exponential_with_mean() {
        let cfg =
            FaultConfig::with_rate(0.0, 11).with_power_failures(SimDuration::from_secs(1_000));
        let mut sched = PowerFailSchedule::from_config(&cfg).unwrap();
        let mut last = 0.0;
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += sched.next_at_secs() - last;
            last = sched.next_at_secs();
            sched.advance();
        }
        let mean = sum / n as f64;
        assert!((mean - 1_000.0).abs() < 50.0, "mean interval {mean}");
    }

    #[test]
    fn quiet_death_schedule_draws_nothing() {
        let sched = DeathSchedule::new(&FaultConfig::none(), 6);
        assert_eq!(sched.len(), 6);
        for i in 0..6 {
            assert_eq!(sched.death_of(i), None);
            assert!(!sched.dead_by(i, SimTime::from_secs_f64(1e9)));
        }
        assert!(sched.dead_at(SimTime::from_secs_f64(1e9)).is_empty());
    }

    #[test]
    fn death_schedule_is_deterministic_and_seed_sensitive() {
        let cfg = FaultConfig::none().with_death_rate(2.0);
        let a = DeathSchedule::new(&FaultConfig { seed: 9, ..cfg }, 8);
        let b = DeathSchedule::new(&FaultConfig { seed: 9, ..cfg }, 8);
        let c = DeathSchedule::new(&FaultConfig { seed: 10, ..cfg }, 8);
        let at: Vec<_> = (0..8).map(|i| a.death_of(i)).collect();
        let bt: Vec<_> = (0..8).map(|i| b.death_of(i)).collect();
        let ct: Vec<_> = (0..8).map(|i| c.death_of(i)).collect();
        assert_eq!(at, bt);
        assert_ne!(at, ct);
        assert!(at.iter().all(|t| t.is_some()));
    }

    #[test]
    fn death_rate_sets_the_mean() {
        // 1 death per device-hour => mean first-arrival of 3600 s.
        let cfg = FaultConfig {
            death_rate: 1.0,
            seed: 5,
            ..FaultConfig::none()
        };
        let sched = DeathSchedule::new(&cfg, 10_000);
        let mean = (0..10_000)
            .map(|i| sched.death_of(i).unwrap().as_secs_f64())
            .sum::<f64>()
            / 10_000.0;
        assert!((mean - 3600.0).abs() < 150.0, "mean death time {mean}");
        assert!(!cfg.is_quiet());
    }

    #[test]
    fn dead_by_respects_the_instant() {
        let cfg = FaultConfig {
            death_rate: 4.0,
            seed: 3,
            ..FaultConfig::none()
        };
        let sched = DeathSchedule::new(&cfg, 4);
        for i in 0..4 {
            let t = sched.death_of(i).unwrap();
            assert!(sched.dead_by(i, t));
            assert!(!sched.dead_by(i, t - SimDuration::from_nanos(1)));
        }
    }

    #[test]
    #[should_panic(expected = "death_rate out of range")]
    fn death_rate_is_validated() {
        let _ = DeathSchedule::new(
            &FaultConfig {
                death_rate: -1.0,
                ..FaultConfig::none()
            },
            2,
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rates_are_validated() {
        let _ = FaultPlan::new(FaultConfig {
            write_fail_rate: 1.5,
            ..FaultConfig::none()
        });
    }
}
