//! Property-based tests on the core data structures and invariants.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use mobistore::cache::lru::LruSet;
use mobistore::device::params::intel_datasheet;
use mobistore::device::QueueDiscipline;
use mobistore::flash::store::{CleanerMode, FlashCardConfig, FlashCardStore, VictimPolicy};
use mobistore::sim::rng::SimRng;
use mobistore::sim::stats::OnlineStats;
use mobistore::sim::time::{SimDuration, SimTime};
use mobistore::trace::layout::FileLayout;
use mobistore::trace::record::{DiskOpKind, FileId, FileRecord, Op};

// ---------------------------------------------------------------------
// LRU: model-check against a naive Vec-based reference.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum LruOp {
    Insert(u64),
    Touch(u64),
    Remove(u64),
    PopLru,
}

fn lru_op() -> impl Strategy<Value = LruOp> {
    prop_oneof![
        (0u64..32).prop_map(LruOp::Insert),
        (0u64..32).prop_map(LruOp::Touch),
        (0u64..32).prop_map(LruOp::Remove),
        Just(LruOp::PopLru),
    ]
}

/// A straightforward reference: most-recent at the front.
#[derive(Default)]
struct NaiveLru {
    cap: usize,
    items: Vec<u64>,
}

impl NaiveLru {
    fn touch(&mut self, k: u64) -> bool {
        if let Some(i) = self.items.iter().position(|&x| x == k) {
            let k = self.items.remove(i);
            self.items.insert(0, k);
            true
        } else {
            false
        }
    }
    fn insert(&mut self, k: u64) -> Option<u64> {
        if self.touch(k) {
            return None;
        }
        let evicted = if self.items.len() == self.cap { self.items.pop() } else { None };
        self.items.insert(0, k);
        evicted
    }
    fn remove(&mut self, k: u64) -> bool {
        if let Some(i) = self.items.iter().position(|&x| x == k) {
            self.items.remove(i);
            true
        } else {
            false
        }
    }
    fn pop_lru(&mut self) -> Option<u64> {
        self.items.pop()
    }
}

proptest! {
    #[test]
    fn lru_matches_reference(cap in 1usize..12, ops in prop::collection::vec(lru_op(), 0..200)) {
        let mut real = LruSet::new(cap);
        let mut model = NaiveLru { cap, items: Vec::new() };
        for op in ops {
            match op {
                LruOp::Insert(k) => prop_assert_eq!(real.insert(k), model.insert(k)),
                LruOp::Touch(k) => prop_assert_eq!(real.touch(k), model.touch(k)),
                LruOp::Remove(k) => prop_assert_eq!(real.remove(k), model.remove(k)),
                LruOp::PopLru => prop_assert_eq!(real.pop_lru(), model.pop_lru()),
            }
            prop_assert_eq!(real.len(), model.items.len());
            let order: Vec<u64> = real.iter_mru().collect();
            prop_assert_eq!(&order, &model.items, "MRU order diverged");
        }
    }
}

// ---------------------------------------------------------------------
// Flash card: random workloads keep every internal invariant, and the
// live-block map matches a reference set.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum CardOp {
    Write { lbn: u64, blocks: u8 },
    Trim { lbn: u64, blocks: u8 },
    Read { lbn: u64, blocks: u8 },
    Idle { ms: u32 },
}

fn card_op() -> impl Strategy<Value = CardOp> {
    prop_oneof![
        3 => (0u64..600, 1u8..8).prop_map(|(lbn, blocks)| CardOp::Write { lbn, blocks }),
        1 => (0u64..600, 1u8..8).prop_map(|(lbn, blocks)| CardOp::Trim { lbn, blocks }),
        1 => (0u64..600, 1u8..4).prop_map(|(lbn, blocks)| CardOp::Read { lbn, blocks }),
        1 => (1u32..5_000).prop_map(|ms| CardOp::Idle { ms }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn flash_card_invariants_hold(
        preload in 0u64..600,
        ops in prop::collection::vec(card_op(), 0..150),
    ) {
        // 16 segments x 128 KB at 1-KB blocks = 2048 blocks.
        let mut card = FlashCardStore::new(FlashCardConfig {
            params: intel_datasheet(),
            block_size: 1024,
            capacity_bytes: 2 * 1024 * 1024,
            mode: CleanerMode::Background,
            victim_policy: VictimPolicy::GreedyMinLive,
            queueing: QueueDiscipline::Fifo,
        });
        card.preload_aged(1000..1000 + preload);
        let mut model: HashSet<u64> = (1000..1000 + preload).collect();

        let mut now = SimTime::ZERO;
        for op in ops {
            match op {
                CardOp::Write { lbn, blocks } => {
                    let svc = card.write(now, lbn, u32::from(blocks));
                    prop_assert!(svc.end >= svc.start);
                    now = now.max(svc.end);
                    model.extend(lbn..lbn + u64::from(blocks));
                }
                CardOp::Trim { lbn, blocks } => {
                    card.trim(lbn, u32::from(blocks));
                    for b in lbn..lbn + u64::from(blocks) {
                        model.remove(&b);
                    }
                }
                CardOp::Read { lbn, blocks } => {
                    let svc = card.read(now, lbn, u32::from(blocks));
                    now = now.max(svc.end);
                }
                CardOp::Idle { ms } => now += SimDuration::from_millis(u64::from(ms)),
            }
            card.check_invariants();
            prop_assert_eq!(card.live_blocks(), model.len() as u64);
            prop_assert!(card.live_blocks() + card.free_blocks() <= card.capacity_blocks());
        }
        // Energy is finite and non-negative.
        prop_assert!(card.energy().get() >= 0.0);
        prop_assert!(card.energy().get().is_finite());
    }
}

// ---------------------------------------------------------------------
// Flash disk: the asynchronous cleaner conserves sectors — everything
// written becomes garbage, and garbage only ever turns into pre-erased
// pool space.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum FdOp {
    Write { kib: u8 },
    Read { kib: u8 },
    Idle { ms: u16 },
}

fn fd_op() -> impl Strategy<Value = FdOp> {
    prop_oneof![
        2 => (1u8..64).prop_map(|kib| FdOp::Write { kib }),
        1 => (1u8..64).prop_map(|kib| FdOp::Read { kib }),
        2 => (1u16..10_000).prop_map(|ms| FdOp::Idle { ms }),
    ]
}

proptest! {
    #[test]
    fn flash_disk_pool_is_conserved(ops in prop::collection::vec(fd_op(), 0..100)) {
        use mobistore::device::flashdisk::FlashDisk;
        use mobistore::device::params::sdp5a_datasheet;
        use mobistore::device::Dir;

        let params = sdp5a_datasheet();
        let initial_pool = params.spare_pool_bytes;
        let mut fd = FlashDisk::new(params);
        let mut now = SimTime::ZERO;
        let mut written = 0u64;
        for op in ops {
            match op {
                FdOp::Write { kib } => {
                    let bytes = u64::from(kib) * 1024;
                    let svc = fd.access(now, Dir::Write, bytes);
                    now = svc.end;
                    written += bytes;
                }
                FdOp::Read { kib } => {
                    let svc = fd.access(now, Dir::Read, u64::from(kib) * 1024);
                    now = svc.end;
                }
                FdOp::Idle { ms } => now += SimDuration::from_millis(u64::from(ms)),
            }
            // Conservation: pool + outstanding garbage = initial pool +
            // everything ever written (each write both consumes erased
            // space and creates equal garbage). The pool alone can never
            // exceed that bound.
            let c = fd.counters();
            prop_assert_eq!(c.bytes_written, written);
            prop_assert!(fd.erased_pool() <= initial_pool + written);
            prop_assert!(c.bytes_pre_erased + c.bytes_erased_on_demand == written);
            prop_assert!(fd.energy().get() >= 0.0 && fd.energy().get().is_finite());
        }
        // After enough idle time, all garbage is reclaimed. Pool-backed
        // writes return their sectors to the pool (conservation), while
        // deficit writes erased fresh sectors inline, growing the erased
        // population by exactly the on-demand bytes.
        fd.finish(now + SimDuration::from_hours(1));
        let c = fd.counters();
        prop_assert_eq!(fd.erased_pool(), initial_pool + c.bytes_erased_on_demand);
    }
}

// ---------------------------------------------------------------------
// File layout: no two live files ever own the same block.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum LayoutOp {
    Access { file: u64, read: bool, offset_kb: u16, size_kb: u16 },
    Delete { file: u64 },
}

fn layout_op() -> impl Strategy<Value = LayoutOp> {
    prop_oneof![
        4 => (0u64..12, any::<bool>(), 0u16..64, 1u16..32)
            .prop_map(|(file, read, offset_kb, size_kb)| LayoutOp::Access { file, read, offset_kb, size_kb }),
        1 => (0u64..12).prop_map(|file| LayoutOp::Delete { file }),
    ]
}

proptest! {
    #[test]
    fn layout_never_aliases_files(ops in prop::collection::vec(layout_op(), 0..120)) {
        let mut layout = FileLayout::new(1024);
        // block -> owning file, from the emitted write/trim stream.
        let mut owner: HashMap<u64, u64> = HashMap::new();
        let mut t = 0u64;
        for op in ops {
            t += 1;
            let rec = match op {
                LayoutOp::Access { file, read, offset_kb, size_kb } => FileRecord {
                    time: SimTime::from_nanos(t),
                    op: if read { Op::Read } else { Op::Write },
                    file: FileId(file),
                    offset: u64::from(offset_kb) * 1024,
                    size: u64::from(size_kb) * 1024,
                },
                LayoutOp::Delete { file } => FileRecord {
                    time: SimTime::from_nanos(t),
                    op: Op::Delete,
                    file: FileId(file),
                    offset: 0,
                    size: 0,
                },
            };
            for disk_op in layout.apply(&rec) {
                let range = disk_op.lbn..disk_op.lbn + u64::from(disk_op.blocks);
                match disk_op.kind {
                    DiskOpKind::Trim => {
                        for b in range {
                            owner.remove(&b);
                        }
                    }
                    DiskOpKind::Read | DiskOpKind::Write => {
                        for b in range {
                            if let Some(&prev) = owner.get(&b) {
                                prop_assert_eq!(prev, disk_op.file.0,
                                    "block {} owned by f{} but accessed by f{}", b, prev, disk_op.file.0);
                            } else {
                                owner.insert(b, disk_op.file.0);
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// OnlineStats: streaming moments match the two-pass computation; merge
// equals concatenation.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn online_stats_match_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..300), split in 0usize..300) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.population_std() - var.sqrt()).abs() <= 1e-5 * var.sqrt().max(1.0));

        let split = split.min(xs.len());
        let (mut left, mut right) = (OnlineStats::new(), OnlineStats::new());
        for &x in &xs[..split] {
            left.record(x);
        }
        for &x in &xs[split..] {
            right.record(x);
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), s.count());
        prop_assert!((left.mean() - s.mean()).abs() <= 1e-6 * s.mean().abs().max(1.0));
        prop_assert_eq!(left.max(), s.max());
        prop_assert_eq!(left.min(), s.min());
    }
}

// ---------------------------------------------------------------------
// Time arithmetic: durations form a sane ordered monoid.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn duration_arithmetic_is_consistent(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40) {
        let (da, db) = (SimDuration::from_nanos(a), SimDuration::from_nanos(b));
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db).saturating_sub(db), da);
        prop_assert_eq!(da.max(db).min(da.min(db)), da.min(db));
        let t = SimTime::from_nanos(a);
        prop_assert_eq!((t + db) - db, t);
        prop_assert_eq!((t + db) - t, db);
    }

    #[test]
    fn rng_streams_reproduce(seed in any::<u64>(), n in 1usize..64) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..n {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        // Uniform sampling stays in range.
        for _ in 0..n {
            let x = a.below(17);
            prop_assert!(x < 17);
        }
    }
}
