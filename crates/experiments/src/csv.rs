//! CSV renderings of the experiment results, for external plotting.
//!
//! Each function returns the full file contents (header + rows); the
//! `repro --csv DIR` flag writes them to disk. Numbers use enough digits
//! to round-trip the shapes; the text tables remain the primary artifact.

use std::fmt::Write as _;

use mobistore_core::metrics::Metrics;

use crate::figure2::{Figure2, UTILIZATIONS};
use crate::figure4::{Figure4, DRAM_BYTES};
use crate::figure5::{Figure5, SRAM_BYTES};
use crate::table4::Table4;

/// The per-metrics columns shared by all CSVs.
const METRIC_COLUMNS: &str =
    "energy_j,read_mean_ms,read_max_ms,read_sd_ms,write_mean_ms,write_max_ms,write_sd_ms";

fn metric_cells(m: &Metrics) -> String {
    format!(
        "{:.4},{:.5},{:.4},{:.4},{:.5},{:.4},{:.4}",
        m.energy.get(),
        m.read_response_ms.mean,
        m.read_response_ms.max,
        m.read_response_ms.std,
        m.write_response_ms.mean,
        m.write_response_ms.max,
        m.write_response_ms.std,
    )
}

/// Table 4 as CSV: one row per (trace, device configuration).
pub fn table4_csv(t: &Table4) -> String {
    let mut out = format!("trace,config,{METRIC_COLUMNS}\n");
    for part in &t.parts {
        for row in &part.rows {
            let _ = writeln!(
                out,
                "{},{},{}",
                part.workload.name(),
                quote(&row.name),
                metric_cells(row)
            );
        }
    }
    out
}

/// Figure 2 as CSV: one row per (trace, utilization).
pub fn figure2_csv(f: &Figure2) -> String {
    let mut out = format!("trace,utilization,{METRIC_COLUMNS},erasures,cleaning_waits\n");
    for curve in &f.curves {
        for (u, m) in UTILIZATIONS.iter().zip(&curve.points) {
            let fc = m.flash_card.expect("flash card backend");
            let _ = writeln!(
                out,
                "{},{:.2},{},{},{}",
                curve.workload.name(),
                u,
                metric_cells(m),
                fc.erasures,
                fc.cleaning_waits
            );
        }
    }
    out
}

/// Figure 4 as CSV: one row per (configuration, DRAM size).
pub fn figure4_csv(f: &Figure4) -> String {
    let mut out = format!("config,dram_bytes,{METRIC_COLUMNS},overall_mean_ms\n");
    for curve in &f.curves {
        for (d, m) in DRAM_BYTES.iter().zip(&curve.points) {
            let _ = writeln!(
                out,
                "{},{},{},{:.5}",
                quote(&curve.label),
                d,
                metric_cells(m),
                m.overall_response_ms.mean
            );
        }
    }
    out
}

/// Figure 5 as CSV: one row per (trace, SRAM size), with normalized
/// columns.
pub fn figure5_csv(f: &Figure5) -> String {
    let mut out = format!("trace,sram_bytes,{METRIC_COLUMNS},energy_norm,write_norm\n");
    for curve in &f.curves {
        let ne = curve.normalized_energy();
        let nw = curve.normalized_write_response();
        for ((s, m), (e, w)) in SRAM_BYTES.iter().zip(&curve.points).zip(ne.iter().zip(&nw)) {
            let _ = writeln!(
                out,
                "{},{},{},{:.5},{:.5}",
                curve.workload.name(),
                s,
                metric_cells(m),
                e,
                w
            );
        }
    }
    out
}

/// Quotes a field if it contains a comma.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{figure2, figure4, figure5, table4, Scale};
    use mobistore_workload::Workload;

    #[test]
    fn table4_csv_shape() {
        let t = Table4 {
            parts: vec![table4::run_part(Workload::Dos, Scale::quick())],
        };
        let csv = table4_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 7, "header + 7 configs");
        assert!(lines[0].starts_with("trace,config,energy_j"));
        assert!(lines[1].starts_with("dos,"));
        // Every data row has the same number of fields as the header.
        let fields = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), fields, "{l}");
        }
    }

    #[test]
    fn figure2_csv_shape() {
        let f = Figure2 {
            curves: vec![figure2::run_curve(Workload::Dos, Scale::quick())],
        };
        let csv = figure2_csv(&f);
        assert_eq!(csv.lines().count(), 1 + UTILIZATIONS.len());
        assert!(csv.contains("cleaning_waits"));
    }

    #[test]
    fn figure4_and_5_csv_shape() {
        let f4 = figure4::run(Scale::quick());
        let csv4 = figure4_csv(&f4);
        assert_eq!(csv4.lines().count(), 1 + 6 * DRAM_BYTES.len());

        let f5 = Figure5 {
            curves: vec![figure5::run_curve(Workload::Mac, Scale::quick())],
        };
        let csv5 = figure5_csv(&f5);
        assert_eq!(csv5.lines().count(), 1 + SRAM_BYTES.len());
        // The no-SRAM row is normalized to exactly 1.
        assert!(csv5.lines().nth(1).unwrap().ends_with("1.00000,1.00000"));
    }

    #[test]
    fn quoting() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
