//! Erasure-coded array durability — the `repro durability` target.
//!
//! The paper's devices are lone points of failure: a dead device is data
//! loss, full stop. This experiment replays the four workloads against
//! Reed-Solomon `k+m` [`ArrayDevice`](mobistore_device::ArrayDevice)
//! arrays under a sweep of permanent whole-device death rates, reporting
//! per cell the storage overhead the geometry costs, the degraded reads
//! it served from survivors (with their p99), rebuild counts and time,
//! the window of vulnerability (sim time spent below full redundancy),
//! and data-loss events (deaths past `m` with no spare left). A final
//! fleet-mix cell draws its child devices from the fleet target's device
//! mix, so "a population of users on arrays" composes with the fleet
//! machinery.
//!
//! Everything is seeded: every cell's death schedule is a pure function
//! of `(durability seed, cell coordinates)`, cells run through
//! [`parallel_map`] in a fixed order, and a zero-death-rate array loses
//! nothing — so the report is byte-identical at any `--jobs` count.

use std::fmt;

use mobistore_core::config::SystemConfig;
use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::simulate;
use mobistore_device::array::ChildClass;
use mobistore_sim::exec::parallel_map;
use mobistore_sim::fault::FaultConfig;
use mobistore_sim::fleet::splitmix64;
use mobistore_workload::Workload;

use crate::fleet::device_mix;
use crate::{shared_trace, Scale};

/// The GF(2^8) codec's hard shard ceiling: a stripe can spread over at
/// most 255 devices.
pub const MAX_SHARDS: usize = 255;

/// Salt mixed into every per-cell death-schedule seed.
const DEATH_SALT: u64 = 0x00d0_0dea_d5ee_d000;

/// Salt for the fleet-mix cell's child-class draws.
const MIX_SALT: u64 = 0x5afe_a88a_0000_00ec;

/// Parameters of the durability sweep (the `--ec`, `--death-rates`,
/// `--rebuild-rate`, and `--durability-seed` flags).
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// `k+m` array geometries to sweep, one grid slice each.
    pub geometries: Vec<(usize, usize)>,
    /// Expected permanent whole-device deaths per device-hour, one sweep
    /// point each (0 injects nothing).
    pub death_rates: Vec<f64>,
    /// Background rebuild pacing, stripes per second.
    pub rebuild_rate: f64,
    /// Seed for the death schedules (independent of the workload seed).
    pub seed: u64,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            geometries: vec![(2, 1), (4, 2), (8, 2)],
            death_rates: vec![0.0, 4.0],
            rebuild_rate: 128.0,
            seed: 1994,
        }
    }
}

/// One sweep cell: a workload on one `k+m` geometry at one death rate.
#[derive(Debug, Clone)]
pub struct DurabilityCell {
    /// Which trace.
    pub workload: Workload,
    /// Data shards per stripe.
    pub k: usize,
    /// Parity shards per stripe.
    pub m: usize,
    /// Device deaths per device-hour.
    pub rate: f64,
    /// True for the fleet-mix cell (children drawn from the fleet device
    /// mix instead of a homogeneous flash-disk array).
    pub fleet_mix: bool,
    /// The full simulation metrics (exported via `--metrics-out`).
    pub metrics: Metrics,
}

impl DurabilityCell {
    /// The geometry's storage overhead: raw capacity per usable byte.
    pub fn overhead(&self) -> f64 {
        (self.k + self.m) as f64 / self.k as f64
    }
}

/// The durability experiment: the homogeneous sweep grid plus the
/// fleet-mix cell.
#[derive(Debug, Clone)]
pub struct Durability {
    /// The options the sweep ran with.
    pub options: DurabilityOptions,
    /// Workload-major, geometry-mid, rate-minor cells.
    pub cells: Vec<DurabilityCell>,
    /// The fleet-mix composition cell.
    pub mix: DurabilityCell,
}

impl Durability {
    /// All metrics rows, grid first, for the `--metrics-out` export.
    pub fn metrics_rows(&self) -> Vec<Metrics> {
        self.cells
            .iter()
            .chain(std::iter::once(&self.mix))
            .map(|c| c.metrics.clone())
            .collect()
    }
}

/// A cell's death-schedule seed: a pure function of the durability seed
/// and the cell's coordinates, so the schedule survives any re-ordering
/// of the sweep grid.
fn cell_seed(seed: u64, k: usize, m: usize, rate: f64, workload_idx: usize, mix: bool) -> u64 {
    let mut h = splitmix64(seed ^ DEATH_SALT);
    h = splitmix64(h ^ ((k as u64) << 32) ^ m as u64);
    h = splitmix64(h ^ rate.to_bits());
    splitmix64(h ^ workload_idx as u64 ^ (u64::from(mix) << 63))
}

/// Children for the fleet-mix cell: `n` classes drawn from the fleet
/// target's weighted device mix, mapped onto array child classes.
fn mix_children(n: usize, seed: u64) -> Vec<ChildClass> {
    let mix = device_mix();
    (0..n as u64)
        .map(|slot| match mix.pick(splitmix64(seed ^ MIX_SALT ^ slot)) {
            "cu140-disk" => ChildClass::HardDisk,
            "sdp5-flashdisk" => ChildClass::FlashDisk,
            "intel-card" => ChildClass::FlashCard,
            other => panic!("unknown device class {other}"),
        })
        .collect()
}

/// Builds one cell's system configuration.
fn cell_config(
    k: usize,
    m: usize,
    children: Vec<ChildClass>,
    rate: f64,
    options: &DurabilityOptions,
    fault_seed: u64,
    workload: Workload,
) -> SystemConfig {
    let dram = if workload.below_buffer_cache() {
        0
    } else {
        2 * 1024 * 1024
    };
    SystemConfig::array(k, m, children)
        .with_rebuild_rate(options.rebuild_rate)
        .with_dram(dram)
        .with_faults(FaultConfig::with_rate(0.0, fault_seed).with_death_rate(rate))
}

/// Runs the sweep: every workload × every geometry × every death rate on
/// homogeneous flash-disk arrays, plus the fleet-mix cell.
pub fn run(scale: Scale, options: &DurabilityOptions) -> Durability {
    let mut grid: Vec<(usize, Workload, usize, usize, f64)> = Vec::new();
    for (wi, &w) in Workload::ALL.iter().enumerate() {
        for &(k, m) in &options.geometries {
            for &rate in &options.death_rates {
                grid.push((wi, w, k, m, rate));
            }
        }
    }
    let cells = parallel_map(&grid, |&(wi, workload, k, m, rate)| {
        let trace = shared_trace(workload, scale);
        let children = vec![ChildClass::FlashDisk; k + m];
        let seed = cell_seed(options.seed, k, m, rate, wi, false);
        let cfg = cell_config(k, m, children, rate, options, seed, workload);
        let mut metrics = simulate(&cfg, &trace);
        metrics.name = format!("{}/array-{k}+{m} rate={}", workload.name(), fmt_rate(rate));
        DurabilityCell {
            workload,
            k,
            m,
            rate,
            fleet_mix: false,
            metrics,
        }
    });
    // The fleet-mix composition cell: the widest geometry, the hottest
    // death rate, children drawn from the fleet device mix.
    let &(k, m) = options
        .geometries
        .last()
        .expect("durability sweep needs at least one geometry");
    let rate = options.death_rates.iter().copied().fold(0.0f64, f64::max);
    let workload = Workload::Mac;
    let wi = Workload::ALL
        .iter()
        .position(|w| *w == workload)
        .expect("mac is a workload");
    let trace = shared_trace(workload, scale);
    let seed = cell_seed(options.seed, k, m, rate, wi, true);
    let children = mix_children(k + m, options.seed);
    let cfg = cell_config(k, m, children, rate, options, seed, workload);
    let mut metrics = simulate(&cfg, &trace);
    metrics.name = format!(
        "{}/fleetmix-{k}+{m} rate={}",
        workload.name(),
        fmt_rate(rate)
    );
    let mix = DurabilityCell {
        workload,
        k,
        m,
        rate,
        fleet_mix: true,
        metrics,
    };
    Durability {
        options: options.clone(),
        cells,
        mix,
    }
}

/// Formats a death rate compactly (`0`, `4`, `0.5`, ...).
fn fmt_rate(rate: f64) -> String {
    if rate == rate.trunc() {
        format!("{rate:.0}")
    } else {
        format!("{rate}")
    }
}

/// Formats one cell's report row.
fn cell_row(f: &mut fmt::Formatter<'_>, label: &str, c: &DurabilityCell) -> fmt::Result {
    let a = c.metrics.array.expect("array backend counters");
    writeln!(
        f,
        "{label:<9} {:>5} {:>5} {:>8.2} {:>10.1} {:>6} {:>7} {:>8.2} {:>8} {:>8.1} {:>8.1} {:>5} {:>6}",
        format!("{}+{}", c.k, c.m),
        fmt_rate(c.rate),
        c.overhead(),
        c.metrics.energy.get(),
        a.device_deaths,
        a.degraded_reads,
        c.metrics.degraded_read_latency.percentiles_ms().p99,
        a.rebuilds_completed,
        a.rebuild_time.as_secs_f64(),
        a.vulnerability.as_secs_f64(),
        a.data_loss_events,
        a.read_only_rejections,
    )
}

impl fmt::Display for Durability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Durability: Reed-Solomon k+m arrays under permanent device-death \
             injection, one hot spare, rebuild {} stripes/s, death seed {}",
            fmt_rate(self.options.rebuild_rate),
            self.options.seed
        )?;
        writeln!(
            f,
            "Rates are expected whole-device deaths per device-hour; overhead is \
             raw capacity per usable byte; vulnerability is sim time spent below \
             full redundancy."
        )?;
        writeln!(
            f,
            "{:<9} {:>5} {:>5} {:>8} {:>10} {:>6} {:>7} {:>8} {:>8} {:>8} {:>8} {:>5} {:>6}",
            "trace",
            "geom",
            "rate",
            "overhd",
            "energy(J)",
            "deaths",
            "degrd",
            "p99(ms)",
            "rebuilds",
            "rbld(s)",
            "vuln(s)",
            "loss",
            "ro_rej"
        )?;
        for c in &self.cells {
            cell_row(f, c.workload.name(), c)?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "Fleet mix: one array whose children are drawn from the fleet \
             target's device mix (disk/flash-disk/flash-card), composing \
             arrays with the fleet population model:"
        )?;
        cell_row(f, &format!("{}*", self.mix.workload.name()), &self.mix)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> DurabilityOptions {
        DurabilityOptions {
            geometries: vec![(2, 1), (3, 2)],
            death_rates: vec![0.0, 60.0],
            rebuild_rate: 64.0,
            seed: 7,
        }
    }

    #[test]
    fn sweep_covers_workloads_geometries_and_rates() {
        let r = run(Scale::quick(), &opts());
        assert_eq!(r.cells.len(), Workload::ALL.len() * 2 * 2);
        assert!(r.mix.fleet_mix);
        // Zero-rate cells lose nothing and never degrade.
        for c in r.cells.iter().filter(|c| c.rate == 0.0) {
            let a = c.metrics.array.expect("array counters");
            assert_eq!(a.device_deaths, 0, "{}", c.metrics.name);
            assert_eq!(a.degraded_reads, 0, "{}", c.metrics.name);
            assert_eq!(a.data_loss_events, 0, "{}", c.metrics.name);
        }
        // The hot rate kills something somewhere across the grid.
        let deaths: u64 = r
            .cells
            .iter()
            .filter(|c| c.rate > 0.0)
            .map(|c| c.metrics.array.expect("array counters").device_deaths)
            .sum();
        assert!(deaths > 0, "no device deaths at rate 60");
        let rendered = format!("{r}");
        assert!(rendered.contains("Durability"));
        assert!(rendered.contains("Fleet mix"));
        assert!(rendered.contains("vuln(s)"));
        assert_eq!(r.metrics_rows().len(), r.cells.len() + 1);
    }

    #[test]
    fn sweep_is_deterministic() {
        let o = opts();
        let a = format!("{}", run(Scale::quick(), &o));
        let b = format!("{}", run(Scale::quick(), &o));
        assert_eq!(a, b);
    }

    #[test]
    fn overhead_is_the_geometry_ratio() {
        let r = run(
            Scale::quick(),
            &DurabilityOptions {
                geometries: vec![(4, 2)],
                death_rates: vec![0.0],
                rebuild_rate: 128.0,
                seed: 1,
            },
        );
        assert!(r.cells.iter().all(|c| (c.overhead() - 1.5).abs() < 1e-12));
    }

    #[test]
    fn mix_children_follow_the_fleet_mix() {
        let children = mix_children(16, 1994);
        assert_eq!(children.len(), 16);
        // All three fleet device classes should appear in a 16-wide draw.
        for class in [
            ChildClass::HardDisk,
            ChildClass::FlashDisk,
            ChildClass::FlashCard,
        ] {
            assert!(children.contains(&class), "missing {}", class.name());
        }
    }
}
