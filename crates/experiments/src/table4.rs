//! Table 4(a)–(c) — energy and response time per device per trace.
//!
//! §5.1: seven device configurations (cu140 measured/datasheet, kh
//! datasheet, sdp10 measured, sdp5 datasheet, Intel card
//! measured/datasheet) replay each trace with a 2-Mbyte DRAM cache (`mac`,
//! `dos`; none for `hp`), a 5 s spin-down, SRAM write buffers on the
//! disks, and flash 80% utilized.
//!
//! The shapes the paper reports, asserted in the tests and audited in
//! `EXPERIMENTS.md`:
//!
//! * disks consume roughly an order of magnitude more energy than flash;
//! * flash reads are 3–6× faster than disk reads; flash-card datasheet
//!   reads are fastest;
//! * buffered disk writes beat flash writes by ≥ 4×;
//! * maximum disk responses reach seconds (spin-up + wind-down), far above
//!   any flash maximum;
//! * the *measured* Intel card underperforms the flash disk on writes,
//!   while the *datasheet* card beats everything but the buffered disks.

use std::fmt;

use mobistore_core::config::SystemConfig;
use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::simulate;
use mobistore_device::params::{
    cu140_datasheet, cu140_measured, intel_datasheet, intel_measured, kh_datasheet, sdp10_measured,
    sdp5_datasheet,
};
use mobistore_sim::exec::parallel_map;
use mobistore_trace::record::Trace;
use mobistore_workload::Workload;

use crate::{flash_card_config, shared_trace, Scale};

/// Which of the seven Table 4 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceConfig {
    /// cu140, measured rates.
    Cu140Measured,
    /// cu140, datasheet rates.
    Cu140Datasheet,
    /// Kittyhawk, datasheet rates.
    KhDatasheet,
    /// SunDisk SDP10, measured rates.
    Sdp10Measured,
    /// SunDisk SDP5, datasheet rates.
    Sdp5Datasheet,
    /// Intel card, measured rates.
    IntelMeasured,
    /// Intel card, datasheet rates.
    IntelDatasheet,
}

impl DeviceConfig {
    /// The seven rows, in the paper's order.
    pub const ALL: [DeviceConfig; 7] = [
        DeviceConfig::Cu140Measured,
        DeviceConfig::Cu140Datasheet,
        DeviceConfig::KhDatasheet,
        DeviceConfig::Sdp10Measured,
        DeviceConfig::Sdp5Datasheet,
        DeviceConfig::IntelMeasured,
        DeviceConfig::IntelDatasheet,
    ];

    /// Builds the system configuration for this row, sized for `trace`.
    pub fn system(self, trace: &Trace, dram_bytes: u64) -> SystemConfig {
        let cfg = match self {
            DeviceConfig::Cu140Measured => SystemConfig::disk(cu140_measured()),
            DeviceConfig::Cu140Datasheet => SystemConfig::disk(cu140_datasheet()),
            DeviceConfig::KhDatasheet => SystemConfig::disk(kh_datasheet()),
            DeviceConfig::Sdp10Measured => SystemConfig::flash_disk(sdp10_measured()),
            DeviceConfig::Sdp5Datasheet => SystemConfig::flash_disk(sdp5_datasheet()),
            DeviceConfig::IntelMeasured => flash_card_config(intel_measured(), trace, 0.80),
            DeviceConfig::IntelDatasheet => flash_card_config(intel_datasheet(), trace, 0.80),
        };
        cfg.with_dram(dram_bytes)
    }

    /// True for the magnetic-disk rows.
    pub fn is_disk(self) -> bool {
        matches!(
            self,
            DeviceConfig::Cu140Measured | DeviceConfig::Cu140Datasheet | DeviceConfig::KhDatasheet
        )
    }
}

/// Results for one trace (one sub-table of Table 4).
#[derive(Debug, Clone)]
pub struct Table4Part {
    /// Which trace.
    pub workload: Workload,
    /// One metrics row per device configuration, in `DeviceConfig::ALL`
    /// order.
    pub rows: Vec<Metrics>,
}

/// The regenerated Table 4.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Parts (a) `mac`, (b) `dos`, (c) `hp`.
    pub parts: Vec<Table4Part>,
}

/// Runs one sub-table, the seven device rows in parallel.
pub fn run_part(workload: Workload, scale: Scale) -> Table4Part {
    let trace = shared_trace(workload, scale);
    // §4.1/§4.2: 2-Mbyte DRAM for mac and dos, none for hp.
    let dram = if workload.below_buffer_cache() {
        0
    } else {
        2 * 1024 * 1024
    };
    let rows = parallel_map(&DeviceConfig::ALL, |&dev| {
        let cfg = dev.system(&trace, dram);
        let mut m = simulate(&cfg, &trace);
        m.name = cfg.name.clone();
        m
    });
    Table4Part { workload, rows }
}

/// Runs all three sub-tables.
pub fn run(scale: Scale) -> Table4 {
    Table4 {
        parts: Workload::TABLE4
            .iter()
            .map(|&w| run_part(w, scale))
            .collect(),
    }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for part in &self.parts {
            writeln!(f, "Table 4 ({} trace):", part.workload.name())?;
            writeln!(f, "{}", Metrics::table4_header())?;
            for row in &part.rows {
                writeln!(f, "{}", row.table4_row())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

impl Table4Part {
    /// Returns the row for one device configuration.
    pub fn row(&self, dev: DeviceConfig) -> &Metrics {
        let idx = DeviceConfig::ALL
            .iter()
            .position(|&d| d == dev)
            .expect("known config");
        &self.rows[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared quick run for all shape assertions (generation dominates
    /// the cost).
    fn mac_part() -> Table4Part {
        run_part(Workload::Mac, Scale::quick())
    }

    #[test]
    fn shapes_match_paper_on_mac() {
        let part = mac_part();
        let disk = part.row(DeviceConfig::Cu140Datasheet);
        let kh = part.row(DeviceConfig::KhDatasheet);
        let sdp = part.row(DeviceConfig::Sdp5Datasheet);
        let card = part.row(DeviceConfig::IntelDatasheet);

        // Flash saves energy by a large factor vs both disks. (At this
        // abbreviated scale the flash-card cleaner sees less overwrite
        // locality than in the full trace, so we assert the card beats the
        // disks rather than every flash disk; the full-scale run in
        // EXPERIMENTS.md shows the paper's complete ordering.)
        assert!(
            sdp.energy.get() * 3.0 < disk.energy.get(),
            "sdp {:?} disk {:?}",
            sdp.energy,
            disk.energy
        );
        assert!(
            card.energy.get() * 2.0 < disk.energy.get(),
            "card {:?} disk {:?}",
            card.energy,
            disk.energy
        );
        // Kittyhawk consumes at least as much as the cu140 and responds
        // more slowly.
        assert!(kh.energy.get() >= disk.energy.get() * 0.9);
        assert!(kh.read_response_ms.mean > disk.read_response_ms.mean);
        // Flash reads beat disk reads; card reads beat flash-disk reads.
        assert!(sdp.read_response_ms.mean < disk.read_response_ms.mean);
        assert!(card.read_response_ms.mean < sdp.read_response_ms.mean);
        // Buffered disk writes beat flash writes clearly (paper: "mean
        // write response is a minimum of four times worse"; the quick
        // scale sees more SRAM overflow flushes, so assert 2x here and
        // audit the 4x at full scale in EXPERIMENTS.md).
        assert!(disk.write_response_ms.mean * 2.0 < sdp.write_response_ms.mean);
        // Flash worst-case responses never exceed the disk's (at full
        // scale the disk maxima reach seconds via wind-down + spin-up;
        // the 2% quick trace may contain no long-enough idle gap, so the
        // absolute threshold is audited in EXPERIMENTS.md instead).
        assert!(sdp.read_response_ms.max <= disk.read_response_ms.max);
    }

    #[test]
    fn measured_card_writes_worse_than_flash_disk() {
        // §5.1: "its write performance is worse than the simulated write
        // performance based on the SunDisk sdp10".
        let part = mac_part();
        let card_measured = part.row(DeviceConfig::IntelMeasured);
        let sdp10 = part.row(DeviceConfig::Sdp10Measured);
        assert!(card_measured.write_response_ms.mean > sdp10.write_response_ms.mean * 0.8);
    }

    #[test]
    fn hp_runs_without_dram() {
        let part = run_part(Workload::Hp, Scale::quick());
        assert!(part.rows.iter().all(|m| m.cache.is_none()));
    }

    #[test]
    fn renders_three_parts() {
        let t = Table4 {
            parts: vec![mac_part()],
        };
        let text = t.to_string();
        assert!(text.contains("mac trace"));
        assert!(text.contains("cu140 datasheet"));
    }
}
