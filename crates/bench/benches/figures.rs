//! Wall-clock benches regenerating each paper figure.

use std::hint::black_box;

use mobistore_bench::Harness;
use mobistore_experiments::{figure1, figure2, figure3, figure4, figure5, Scale};
use mobistore_workload::Workload;

fn main() {
    let h = Harness::from_args();
    h.bench("figure1_write_latency_curves", || black_box(figure1::run()));
    h.bench("figure2_utilization_sweep/dos", || {
        black_box(figure2::run_curve(Workload::Dos, Scale::quick()))
    });
    h.bench("figure3_overwrite_throughput/three_live_levels", || {
        black_box(figure3::run_with_steps(4))
    });
    h.bench("figure4_dram_flash_sweep/dos", || {
        black_box(figure4::run(Scale::quick()))
    });
    h.bench("figure5_sram_sweep/mac", || {
        black_box(figure5::run_curve(Workload::Mac, Scale::quick()))
    });
}
