//! Online summary statistics.
//!
//! Table 4 of the paper reports mean, maximum, and standard deviation of
//! read/write response times; Table 3 reports the same moments for trace
//! interarrival times. [`OnlineStats`] computes all of these in one streaming
//! pass using Welford's numerically stable algorithm.

use core::fmt;

/// Streaming mean / max / min / standard deviation.
///
/// # Examples
///
/// ```
/// use mobistore_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.max(), 9.0);
/// assert!((s.population_std() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn record(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// combination).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Returns the number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Returns the sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Returns the largest observation, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Returns the smallest observation, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Returns the population standard deviation (σ, dividing by *n*), or 0
    /// if fewer than two observations were recorded.
    pub fn population_std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Returns the sample standard deviation (dividing by *n − 1*), or 0 if
    /// fewer than two observations were recorded.
    pub fn sample_std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }

    /// Returns a frozen [`Summary`] of the current state.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            max: self.max(),
            min: self.min(),
            std: self.population_std(),
            sum: self.sum,
        }
    }
}

/// A frozen snapshot of [`OnlineStats`], convenient for result tables.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest observation.
    pub max: f64,
    /// Smallest observation.
    pub min: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Sum of observations.
    pub sum: f64,
}

impl Summary {
    /// Merges another frozen summary into this one, as if the two sample
    /// streams had been concatenated: counts and sums add, min/max
    /// combine, the mean comes from the combined sum, and σ from the
    /// Chan et al. parallel combination of the reconstructed second
    /// moments. Every operation is written symmetrically (IEEE addition
    /// and multiplication commute), so `a.merge(b)` and `b.merge(a)`
    /// produce bit-identical results; merging an empty summary is an
    /// identity.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let total = n1 + n2;
        let delta = self.mean - other.mean;
        let m2 = (self.std * self.std * n1 + other.std * other.std * n2)
            + delta * delta * (n1 * n2 / total);
        self.count += other.count;
        self.sum += other.sum;
        self.mean = self.sum / total;
        self.std = (m2 / total).sqrt();
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.2}, max {:.1}, sigma {:.1} (n={})",
            self.mean, self.max, self.std, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.population_std(), 0.0);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.record(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.max(), 3.5);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.population_std(), 0.0);
        assert_eq!(s.sum(), 3.5);
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64).collect();
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.population_std() - var.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i % 17) as f64 * 0.25).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..200] {
            left.record(x);
        }
        for &x in &xs[200..] {
            right.record(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.population_std() - whole.population_std()).abs() < 1e-9);
        assert_eq!(left.max(), whole.max());
        assert_eq!(left.min(), whole.min());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.record(1.0);
        a.record(2.0);
        let before = a.summary();
        a.merge(&OnlineStats::new());
        assert_eq!(a.summary(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn summary_merge_matches_online_merge() {
        let xs: Vec<f64> = (0..300).map(|i| ((i * 13) % 47) as f64 * 0.5).collect();
        let mut whole = OnlineStats::new();
        let (mut left, mut right) = (OnlineStats::new(), OnlineStats::new());
        for &x in &xs {
            whole.record(x);
        }
        for &x in &xs[..120] {
            left.record(x);
        }
        for &x in &xs[120..] {
            right.record(x);
        }
        let mut merged = left.summary();
        merged.merge(&right.summary());
        let expect = whole.summary();
        assert_eq!(merged.count, expect.count);
        assert_eq!(merged.max, expect.max);
        assert_eq!(merged.min, expect.min);
        assert!((merged.mean - expect.mean).abs() < 1e-9);
        assert!((merged.std - expect.std).abs() < 1e-9);
        // Bit-exact commutativity: the formula is written symmetrically.
        let mut ab = left.summary();
        ab.merge(&right.summary());
        let mut ba = right.summary();
        ba.merge(&left.summary());
        assert_eq!(ab, ba);
        // Empty merges are identities on both sides.
        let mut id = expect;
        id.merge(&Summary::default());
        assert_eq!(id, expect);
        let mut from_empty = Summary::default();
        from_empty.merge(&expect);
        assert_eq!(from_empty, expect);
    }

    #[test]
    fn sample_std_uses_n_minus_one() {
        let mut s = OnlineStats::new();
        s.record(1.0);
        s.record(3.0);
        assert_eq!(s.population_std(), 1.0);
        assert!((s.sample_std() - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_observation_panics() {
        let mut s = OnlineStats::new();
        s.record(f64::NAN);
    }
}
