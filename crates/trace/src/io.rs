//! Plain-text (de)serialisation of disk-level traces.
//!
//! The format is one operation per line:
//!
//! ```text
//! # mobistore trace v1 block_size=1024
//! 0 write 0 4 1
//! 1000000 read 0 2 1
//! ```
//!
//! Fields: `time_ns kind lbn blocks file_id`, space-separated. Lines
//! beginning with `#` are comments, except the mandatory header carrying the
//! block size. The format exists so generated workloads can be archived and
//! replayed outside the library (e.g. by the `repro` binary's `--dump`
//! mode).

use std::fmt::Write as _;

use mobistore_sim::time::SimTime;

use crate::record::{DiskOp, DiskOpKind, FileId, Trace};

/// An error produced when parsing a textual trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Serialises a trace to the v1 text format.
pub fn write_text(trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# mobistore trace v1 block_size={}", trace.block_size);
    for op in &trace.ops {
        let kind = match op.kind {
            DiskOpKind::Read => "read",
            DiskOpKind::Write => "write",
            DiskOpKind::Trim => "trim",
        };
        let _ = writeln!(
            out,
            "{} {} {} {} {}",
            op.time.as_nanos(),
            kind,
            op.lbn,
            op.blocks,
            op.file.0
        );
    }
    out
}

/// Parses a trace from the v1 text format.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line on any malformed
/// input, missing header, or out-of-order timestamps.
pub fn read_text(text: &str) -> Result<Trace, ParseError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| ParseError {
        line: 1,
        message: "empty input".into(),
    })?;
    let block_size = parse_header(header).ok_or_else(|| ParseError {
        line: 1,
        message: format!("bad header: {header:?}"),
    })?;

    let mut trace = Trace::new(block_size);
    let mut last_time = 0u64;
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        let op = (|| -> Option<DiskOp> {
            let time: u64 = fields.next()?.parse().ok()?;
            let kind = match fields.next()? {
                "read" => DiskOpKind::Read,
                "write" => DiskOpKind::Write,
                "trim" => DiskOpKind::Trim,
                _ => return None,
            };
            let lbn: u64 = fields.next()?.parse().ok()?;
            let blocks: u32 = fields.next()?.parse().ok()?;
            let file: u64 = fields.next()?.parse().ok()?;
            if fields.next().is_some() {
                return None;
            }
            Some(DiskOp {
                time: SimTime::from_nanos(time),
                kind,
                lbn,
                blocks,
                file: FileId(file),
            })
        })()
        .ok_or_else(|| ParseError {
            line: lineno,
            message: format!("malformed record: {line:?}"),
        })?;

        if op.time.as_nanos() < last_time {
            return Err(ParseError {
                line: lineno,
                message: "timestamps not sorted".into(),
            });
        }
        last_time = op.time.as_nanos();
        trace.push(op);
    }
    Ok(trace)
}

fn parse_header(header: &str) -> Option<u64> {
    let rest = header.strip_prefix("# mobistore trace v1 block_size=")?;
    rest.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new(512);
        t.push(DiskOp {
            time: SimTime::from_nanos(10),
            kind: DiskOpKind::Write,
            lbn: 3,
            blocks: 2,
            file: FileId(7),
        });
        t.push(DiskOp {
            time: SimTime::from_nanos(20),
            kind: DiskOpKind::Trim,
            lbn: 3,
            blocks: 2,
            file: FileId(7),
        });
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let text = write_text(&t);
        let back = read_text(&text).unwrap();
        assert_eq!(back.block_size, t.block_size);
        assert_eq!(back.ops, t.ops);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# mobistore trace v1 block_size=1024\n\n# a comment\n5 read 0 1 0\n";
        let t = read_text(text).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.block_size, 1024);
    }

    #[test]
    fn missing_header_is_error() {
        let err = read_text("5 read 0 1 0\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn malformed_record_names_line() {
        let text = "# mobistore trace v1 block_size=1024\n5 scribble 0 1 0\n";
        let err = read_text(text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("malformed"));
    }

    #[test]
    fn extra_fields_rejected() {
        let text = "# mobistore trace v1 block_size=1024\n5 read 0 1 0 99\n";
        assert!(read_text(text).is_err());
    }

    #[test]
    fn unsorted_times_rejected() {
        let text = "# mobistore trace v1 block_size=1024\n5 read 0 1 0\n4 read 0 1 0\n";
        let err = read_text(text).unwrap_err();
        assert!(err.message.contains("sorted"));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(read_text("").is_err());
    }
}
