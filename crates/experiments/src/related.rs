//! Related-work cross-checks (§6).
//!
//! §6 summarises Wu & Zwaenepoel's eNVy result: *"at a utilization of
//! 80%, 45% of the time is spent erasing or copying data within flash,
//! while performance was severely degraded at higher utilizations."*
//! Our flash-card store tracks time per state, so the same quantity is
//! directly measurable: this runner drives the card with an eNVy-style
//! transaction workload (small uniform random overwrites, no locality —
//! TPC-A touches accounts uniformly) and reports the cleaning duty cycle
//! across utilizations.

use std::fmt;

use mobistore_device::params::intel_datasheet;
use mobistore_device::QueueDiscipline;
use mobistore_flash::store::{CleanerMode, FlashCardConfig, FlashCardStore, VictimPolicy};
use mobistore_sim::rng::SimRng;
use mobistore_sim::time::{SimDuration, SimTime};
use mobistore_sim::units::MIB;

use crate::Scale;

/// One utilization point of the eNVy-style experiment.
#[derive(Debug, Clone)]
pub struct EnvyPoint {
    /// Storage utilization.
    pub utilization: f64,
    /// Fraction of busy time spent cleaning (copying + erasing).
    pub cleaning_fraction: f64,
    /// Mean write response in milliseconds.
    pub write_mean_ms: f64,
    /// Writes that stalled on the cleaner.
    pub cleaning_waits: u64,
}

/// The §6 eNVy cross-check.
#[derive(Debug, Clone)]
pub struct EnvyCheck {
    /// Points across utilizations.
    pub points: Vec<EnvyPoint>,
}

/// Utilizations swept (eNVy quotes 80%; it degrades "severely" above).
pub const UTILIZATIONS: [f64; 4] = [0.60, 0.80, 0.90, 0.95];

/// Runs the uniform-overwrite transaction workload at each utilization.
pub fn run(scale: Scale) -> EnvyCheck {
    let writes = ((200_000.0 * scale.fraction) as u64).max(2_000);
    let points = UTILIZATIONS
        .iter()
        .map(|&utilization| {
            // A 16-MB card of 1-KB blocks (128 segments): big enough for
            // stable statistics, small enough to stay fast.
            let mut card = FlashCardStore::new(FlashCardConfig {
                params: intel_datasheet(),
                block_size: 1024,
                capacity_bytes: 16 * MIB,
                mode: CleanerMode::Background,
                victim_policy: VictimPolicy::GreedyMinLive,
                queueing: QueueDiscipline::Fifo,
            });
            let live = (card.capacity_blocks() as f64 * utilization) as u64;
            card.preload_aged(0..live);

            // Uniform random overwrites, back-to-back with small think
            // time — a transaction-processing shape with no locality for
            // the cleaner to exploit (eNVy's TPC-A).
            let mut rng = SimRng::seed_with_stream(scale.seed, 0xe11);
            let mut now = SimTime::ZERO;
            let mut response = mobistore_sim::stats::OnlineStats::new();
            for _ in 0..writes {
                now += SimDuration::from_micros(500);
                let svc = card.write(now, rng.below(live), 1);
                response.record((svc.end - now).as_millis_f64());
                now = svc.end;
            }
            card.finish(now);

            let meter = card.meter();
            let clean = meter.category_time("clean").as_secs_f64();
            let active = meter.category_time("active").as_secs_f64();
            let busy = clean + active;
            EnvyPoint {
                utilization,
                cleaning_fraction: if busy > 0.0 { clean / busy } else { 0.0 },
                write_mean_ms: response.mean(),
                cleaning_waits: card.counters().cleaning_waits,
            }
        })
        .collect();
    EnvyCheck { points }
}

impl fmt::Display for EnvyCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Section 6 cross-check (eNVy): uniform-overwrite transactions on the flash card"
        )?;
        writeln!(
            f,
            "(eNVy: at 80% utilization, 45% of time erasing/copying; worse above)"
        )?;
        writeln!(
            f,
            "{:>6} {:>18} {:>14} {:>12}",
            "util%", "cleaning time %", "wr mean (ms)", "stalls"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>6.0} {:>18.1} {:>14.3} {:>12}",
                p.utilization * 100.0,
                p.cleaning_fraction * 100.0,
                p.write_mean_ms,
                p.cleaning_waits,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleaning_dominates_busy_time_at_high_utilization() {
        let check = run(Scale::quick());
        let at = |u: f64| {
            check
                .points
                .iter()
                .find(|p| (p.utilization - u).abs() < 1e-9)
                .expect("utilization point")
        };
        // The eNVy shape: substantial cleaning share at 80%, far more at
        // 95%, with severe write degradation.
        assert!(
            at(0.80).cleaning_fraction > 0.3,
            "{}",
            at(0.80).cleaning_fraction
        );
        assert!(at(0.95).cleaning_fraction > at(0.80).cleaning_fraction);
        assert!(at(0.95).write_mean_ms > 2.0 * at(0.60).write_mean_ms);
        // Cleaning share is a fraction.
        for p in &check.points {
            assert!((0.0..=1.0).contains(&p.cleaning_fraction));
        }
    }

    #[test]
    fn renders() {
        assert!(run(Scale::quick()).to_string().contains("cleaning time %"));
    }
}
