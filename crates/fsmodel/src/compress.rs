//! Software compression (DoubleSpace, Stacker, MFFS built-in).
//!
//! §3: the CU140 and SDP10 could run with DoubleSpace and Stacker; MFFS
//! 2.00 compresses always. The compressible corpus was the first 2 Kbytes
//! of *Moby-Dick* repeated, "obtaining compression ratios around 50%";
//! completely random data does not compress, and reads of uncompressible
//! data skip the decompression step entirely ("about twice the bandwidth",
//! §3).

use mobistore_sim::time::SimDuration;
use mobistore_sim::units::Bandwidth;

/// The two data classes the paper's benchmarks distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataClass {
    /// Completely random bytes: incompressible; reads skip decompression.
    Random,
    /// The repeated Moby-Dick text: compresses ~2:1.
    Compressible,
}

/// A software compressor model: a ratio plus CPU throughput on the
/// OmniBook's 25-MHz 386SXLV.
#[derive(Debug, Clone)]
pub struct Compressor {
    /// Output/input size ratio for compressible data (paper: ≈ 0.5).
    pub ratio: f64,
    /// Compression throughput (input bytes per second).
    pub compress_bw: Bandwidth,
    /// Decompression throughput (output bytes per second).
    pub decompress_bw: Bandwidth,
}

impl Compressor {
    /// Creates a compressor.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is outside `(0, 1]`.
    pub fn new(ratio: f64, compress_bw: Bandwidth, decompress_bw: Bandwidth) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio out of range: {ratio}");
        Compressor {
            ratio,
            compress_bw,
            decompress_bw,
        }
    }

    /// Bytes that reach the device after compression.
    pub fn stored_bytes(&self, bytes: u64, class: DataClass) -> u64 {
        match class {
            DataClass::Random => bytes,
            DataClass::Compressible => ((bytes as f64 * self.ratio).ceil() as u64).max(1),
        }
    }

    /// CPU time to compress `bytes` of input; the compressor always runs,
    /// even on data that turns out incompressible.
    pub fn compress_time(&self, bytes: u64) -> SimDuration {
        self.compress_bw.transfer_time(bytes)
    }

    /// CPU time to decompress back to `bytes` of output; random data skips
    /// the step (§3).
    pub fn decompress_time(&self, bytes: u64, class: DataClass) -> SimDuration {
        match class {
            DataClass::Random => SimDuration::ZERO,
            DataClass::Compressible => self.decompress_bw.transfer_time(bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp() -> Compressor {
        Compressor::new(
            0.5,
            Bandwidth::from_kib_per_s(250.0),
            Bandwidth::from_kib_per_s(500.0),
        )
    }

    #[test]
    fn ratio_applies_to_compressible_only() {
        let c = comp();
        assert_eq!(c.stored_bytes(4096, DataClass::Compressible), 2048);
        assert_eq!(c.stored_bytes(4096, DataClass::Random), 4096);
        assert_eq!(c.stored_bytes(1, DataClass::Compressible), 1, "never zero");
    }

    #[test]
    fn random_reads_skip_decompression() {
        let c = comp();
        assert_eq!(
            c.decompress_time(4096, DataClass::Random),
            SimDuration::ZERO
        );
        assert!(c.decompress_time(4096, DataClass::Compressible) > SimDuration::ZERO);
    }

    #[test]
    fn compression_always_costs_cpu() {
        let c = comp();
        let t = c.compress_time(250 * 1024);
        assert_eq!(t, SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_ratio_rejected() {
        let _ = Compressor::new(
            1.5,
            Bandwidth::from_kib_per_s(1.0),
            Bandwidth::from_kib_per_s(1.0),
        );
    }
}
