//! A minimal, dependency-free wall-clock bench harness.
//!
//! The build environment has no registry access, so these benches use a
//! small std-only timing loop instead of criterion: each bench warms up
//! once, then runs a fixed number of timed iterations and reports
//! min/mean/max wall-clock per iteration. Run with
//! `cargo bench -p mobistore-bench [-- <name filter>]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A group of named benches sharing a filter taken from the command line.
pub struct Harness {
    filter: Option<String>,
    iterations: usize,
}

impl Harness {
    /// Builds a harness, reading an optional name filter from `argv` (any
    /// argument not starting with `-`) and an iteration count from
    /// `MOBISTORE_BENCH_ITERS` (default 10).
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let iterations = std::env::var("MOBISTORE_BENCH_ITERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n: &usize| n > 0)
            .unwrap_or(10);
        Harness { filter, iterations }
    }

    /// Times `f`, printing one line of per-iteration statistics. Returns
    /// the mean iteration time (or `None` if filtered out).
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) -> Option<Duration> {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return None;
            }
        }
        black_box(f()); // warm-up: populate caches, page in code
        let mut samples = Vec::with_capacity(self.iterations);
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(f());
            samples.push(start.elapsed());
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{name:<44} {:>10.3} ms/iter (min {:.3}, max {:.3}, n={})",
            mean.as_secs_f64() * 1e3,
            min.as_secs_f64() * 1e3,
            max.as_secs_f64() * 1e3,
            samples.len(),
        );
        Some(mean)
    }
}
