//! Machine-readable metrics export (`repro --metrics-out`).
//!
//! Serializes the [`Metrics`] rows collected by the rendered targets into
//! one versioned JSON document (schema tag [`METRICS_SCHEMA`]). The JSON
//! is hand-rolled — the workspace is std-only — and deterministic: keys
//! are emitted in a fixed order, counters come from a sorted
//! [`CounterRegistry`](mobistore_sim::obs::CounterRegistry), every
//! duration is integer sim-time nanoseconds, and floats go through one
//! finite-guarded formatter. Targets run through
//! [`parallel_map`](mobistore_sim::exec::parallel_map) in request order,
//! so the document is byte-identical at any `--jobs` count.

use std::fmt::Write as _;

use mobistore_core::metrics::Metrics;
use mobistore_sim::hist::{Histogram, Percentiles};
use mobistore_sim::stats::Summary;

use crate::Scale;

/// Version tag carried in the document's `schema` field. Bump on any
/// incompatible layout change.
pub const METRICS_SCHEMA: &str = "mobistore-metrics/1";

/// Version tag of the per-target `fleet` block the `fleet` target emits.
pub const FLEET_SCHEMA: &str = "mobistore-fleet/1";

/// Version tag of the `repro throughput` JSON document
/// ([`crate::throughput::Throughput::to_json`]).
pub const THROUGHPUT_SCHEMA: &str = "mobistore-throughput/1";

/// Version tag of the per-target `durability` block the `durability`
/// target emits.
pub const DURABILITY_SCHEMA: &str = "mobistore-durability/1";

/// Durability sweep parameters, embedded in the `durability` target's
/// entry as a versioned `durability` object so consumers can re-derive
/// the sweep grid.
#[derive(Debug, Clone)]
pub struct DurabilityInfo {
    /// The `k+m` geometries the sweep ran.
    pub geometries: Vec<(usize, usize)>,
    /// The device-death rates the sweep ran.
    pub death_rates: Vec<f64>,
    /// Background rebuild pacing, stripes per second.
    pub rebuild_rate: f64,
    /// The death-schedule seed.
    pub seed: u64,
}

/// Fleet sharding parameters plus the supervisor's quarantine ledger,
/// embedded in the `fleet` target's entry as a versioned `fleet` object
/// so consumers can re-derive the shard map and know exactly which
/// shards the rollups cover.
#[derive(Debug, Clone)]
pub struct FleetInfo {
    /// Number of shards the fleet ran.
    pub shards: u32,
    /// User population hashed onto the shards.
    pub population: u64,
    /// The fleet seed.
    pub seed: u64,
    /// Shards that completed; every rollup covers exactly these.
    pub survivors: u32,
    /// `(shard, attempts, cause)` for each quarantined shard, in index
    /// order.
    pub quarantined: Vec<(u32, u32, String)>,
}

/// One target's contribution to the export document.
#[derive(Debug, Clone, Copy)]
pub struct TargetExport<'a> {
    /// Target name.
    pub target: &'a str,
    /// The metrics rows the target produced.
    pub rows: &'a [Metrics],
    /// Fleet block, set only by the `fleet` target.
    pub fleet: Option<&'a FleetInfo>,
    /// Durability block, set only by the `durability` target.
    pub durability: Option<&'a DurabilityInfo>,
}

/// Formats a float for JSON: plain shortest-roundtrip decimal, with
/// non-finite values clamped to 0 (JSON has no NaN/Infinity).
pub(crate) fn jnum(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_owned()
    }
}

/// Escapes a string for a JSON string literal.
pub(crate) fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One latency block: moments from the `Summary`, percentiles from the
/// log-bucketed histogram.
fn latency_json(summary: &Summary, hist: &Histogram) -> String {
    let Percentiles {
        p50,
        p90,
        p99,
        p999,
    } = hist.percentiles_ms();
    let min = if summary.count == 0 { 0.0 } else { summary.min };
    let max = if summary.count == 0 { 0.0 } else { summary.max };
    format!(
        "{{\"count\":{},\"mean_ms\":{},\"min_ms\":{},\"max_ms\":{},\"std_ms\":{},\
         \"p50_ms\":{},\"p90_ms\":{},\"p99_ms\":{},\"p999_ms\":{}}}",
        summary.count,
        jnum(summary.mean),
        jnum(min),
        jnum(max),
        jnum(summary.std),
        jnum(p50),
        jnum(p90),
        jnum(p99),
        jnum(p999),
    )
}

/// Serializes one metrics row.
fn row_json(m: &Metrics) -> String {
    let mut s = String::with_capacity(512);
    let _ = write!(
        s,
        "{{\"name\":{},\"energy_j\":{},\"duration_ns\":{},\"mean_power_w\":{}",
        jstr(&m.name),
        jnum(m.energy.get()),
        m.duration.as_nanos(),
        jnum(m.mean_power_w()),
    );
    let _ = write!(
        s,
        ",\"read\":{},\"write\":{},\"overall\":{}",
        latency_json(&m.read_response_ms, &m.read_latency),
        latency_json(&m.write_response_ms, &m.write_latency),
        latency_json(&m.overall_response_ms, &m.overall_latency),
    );
    s.push_str(",\"states\":[");
    for (i, (state, energy, dur)) in m.backend_states.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"state\":{},\"energy_j\":{},\"time_ns\":{}}}",
            jstr(state),
            jnum(energy.get()),
            dur.as_nanos()
        );
    }
    s.push(']');
    let _ = write!(s, ",\"counters\":{}", m.counters().to_json());
    s.push('}');
    s
}

/// Serializes the whole document: one entry per rendered target, in
/// request order, each carrying the metrics rows that target produced
/// (empty for targets that report derived values only) plus, for the
/// `fleet` target, its versioned [`FleetInfo`] block.
pub fn metrics_json(scale: Scale, targets: &[TargetExport<'_>]) -> String {
    let mut s = String::with_capacity(4096);
    let _ = write!(
        s,
        "{{\"schema\":{},\"scale\":{},\"seed\":{},\"targets\":[",
        jstr(METRICS_SCHEMA),
        jnum(scale.fraction),
        scale.seed
    );
    for (i, entry) in targets.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"target\":{}", jstr(entry.target));
        if let Some(fleet) = entry.fleet {
            let _ = write!(
                s,
                ",\"fleet\":{{\"schema\":{},\"shards\":{},\"population\":{},\"seed\":{}",
                jstr(FLEET_SCHEMA),
                fleet.shards,
                fleet.population,
                fleet.seed
            );
            let coverage = f64::from(fleet.survivors) / f64::from(fleet.shards.max(1));
            let _ = write!(
                s,
                ",\"survivors\":{},\"coverage\":{}",
                fleet.survivors,
                jnum(coverage)
            );
            let _ = write!(
                s,
                ",\"quarantined\":{{\"count\":{},\"shards\":[",
                fleet.quarantined.len()
            );
            for (j, (shard, _, _)) in fleet.quarantined.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{shard}");
            }
            s.push_str("],\"causes\":[");
            for (j, (shard, attempts, cause)) in fleet.quarantined.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"shard\":{shard},\"attempts\":{attempts},\"cause\":{}}}",
                    jstr(cause)
                );
            }
            s.push_str("]}}");
        }
        if let Some(d) = entry.durability {
            let _ = write!(
                s,
                ",\"durability\":{{\"schema\":{}",
                jstr(DURABILITY_SCHEMA)
            );
            s.push_str(",\"geometries\":[");
            for (j, (k, m)) in d.geometries.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&jstr(&format!("{k}+{m}")));
            }
            s.push_str("],\"death_rates\":[");
            for (j, rate) in d.death_rates.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&jnum(*rate));
            }
            let _ = write!(
                s,
                "],\"rebuild_rate\":{},\"seed\":{}}}",
                jnum(d.rebuild_rate),
                d.seed
            );
        }
        s.push_str(",\"rows\":[");
        for (j, row) in entry.rows.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&row_json(row));
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobistore_core::simulator::simulate;
    use mobistore_device::params::sdp5_datasheet;
    use mobistore_sim::time::SimTime;
    use mobistore_trace::record::{DiskOp, DiskOpKind, FileId, Trace};

    fn metrics() -> Metrics {
        let mut trace = Trace::new(1024);
        for i in 0..40 {
            trace.push(DiskOp {
                time: SimTime::from_secs_f64(i as f64 * 0.05),
                kind: if i % 2 == 0 {
                    DiskOpKind::Write
                } else {
                    DiskOpKind::Read
                },
                lbn: i % 8,
                blocks: 1,
                file: FileId(0),
            });
        }
        let mut m = simulate(
            &mobistore_core::config::SystemConfig::flash_disk(sdp5_datasheet()),
            &trace,
        );
        m.name = "test/flash".into();
        m
    }

    #[test]
    fn document_carries_schema_rows_and_percentiles() {
        let m = metrics();
        let doc = metrics_json(
            Scale::quick(),
            &[TargetExport {
                target: "observe",
                rows: std::slice::from_ref(&m),
                fleet: None,
                durability: None,
            }],
        );
        assert!(doc.starts_with("{\"schema\":\"mobistore-metrics/1\""));
        assert!(doc.contains("\"target\":\"observe\""));
        assert!(doc.contains("\"name\":\"test/flash\""));
        for field in [
            "p50_ms", "p90_ms", "p99_ms", "p999_ms", "counters", "states",
        ] {
            assert!(doc.contains(field), "missing {field}");
        }
        // Balanced braces/brackets (cheap well-formedness check; the CI jq
        // script does the real validation).
        assert_eq!(
            doc.matches('{').count(),
            doc.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn strings_and_nonfinite_floats_are_sanitized() {
        assert_eq!(jstr("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(jnum(f64::INFINITY), "0");
        assert_eq!(jnum(f64::NAN), "0");
        assert_eq!(jnum(1.5), "1.5");
    }

    #[test]
    fn empty_target_list_is_valid() {
        let doc = metrics_json(
            Scale::quick(),
            &[TargetExport {
                target: "table1",
                rows: &[],
                fleet: None,
                durability: None,
            }],
        );
        assert!(doc.contains("\"target\":\"table1\",\"rows\":[]"));
    }

    #[test]
    fn fleet_block_is_versioned_and_placed_in_its_target() {
        let info = FleetInfo {
            shards: 64,
            population: 512,
            seed: 1994,
            survivors: 64,
            quarantined: Vec::new(),
        };
        let doc = metrics_json(
            Scale::quick(),
            &[TargetExport {
                target: "fleet",
                rows: &[],
                fleet: Some(&info),
                durability: None,
            }],
        );
        assert!(doc.contains(
            "\"target\":\"fleet\",\"fleet\":{\"schema\":\"mobistore-fleet/1\",\
             \"shards\":64,\"population\":512,\"seed\":1994,\
             \"survivors\":64,\"coverage\":1,\
             \"quarantined\":{\"count\":0,\"shards\":[],\"causes\":[]}}"
        ));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    }

    #[test]
    fn fleet_block_carries_the_quarantine_ledger() {
        let info = FleetInfo {
            shards: 64,
            population: 512,
            seed: 1994,
            survivors: 62,
            quarantined: vec![
                (7, 3, "chaos: injected panic (shard 7 attempt 2)".into()),
                (40, 3, "index out of bounds".into()),
            ],
        };
        let doc = metrics_json(
            Scale::quick(),
            &[TargetExport {
                target: "fleet",
                rows: &[],
                fleet: Some(&info),
                durability: None,
            }],
        );
        assert!(doc.contains("\"survivors\":62,\"coverage\":0.96875"));
        assert!(doc.contains("\"quarantined\":{\"count\":2,\"shards\":[7,40]"));
        assert!(doc.contains(
            "{\"shard\":7,\"attempts\":3,\
             \"cause\":\"chaos: injected panic (shard 7 attempt 2)\"}"
        ));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn durability_block_is_versioned_and_placed_in_its_target() {
        let info = DurabilityInfo {
            geometries: vec![(2, 1), (4, 2)],
            death_rates: vec![0.0, 4.0],
            rebuild_rate: 128.0,
            seed: 1994,
        };
        let doc = metrics_json(
            Scale::quick(),
            &[TargetExport {
                target: "durability",
                rows: &[],
                fleet: None,
                durability: Some(&info),
            }],
        );
        assert!(doc.contains(
            "\"target\":\"durability\",\"durability\":{\
             \"schema\":\"mobistore-durability/1\",\
             \"geometries\":[\"2+1\",\"4+2\"],\"death_rates\":[0,4],\
             \"rebuild_rate\":128,\"seed\":1994}"
        ));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }
}
