//! Figure 3 — measured OmniBook throughput vs cumulative Mbytes written.
//!
//! §5.2: a 10-Mbyte Intel card holds 1, 9, or 9.5 Mbytes of live data;
//! the benchmark overwrites 20 × 1 Mbyte of randomly-selected live data in
//! 4-Kbyte requests, reporting throughput per 1-Mbyte step. Published
//! shapes: throughput drops with cumulative data for *all* curves (MFFS
//! overhead), and drops much faster with more live data (cleaning).

use std::fmt;

use mobistore_device::params::intel_datasheet;
use mobistore_fsmodel::compress::DataClass;
use mobistore_fsmodel::mffs::{FlashCardTestbed, MffsParams};
use mobistore_sim::rng::SimRng;
use mobistore_sim::time::SimDuration;
use mobistore_sim::units::{KIB, MIB};

/// The live-data amounts, in Mbytes (the paper's three curves).
pub const LIVE_MB: [f64; 3] = [1.0, 9.0, 9.5];

/// One Figure 3 curve.
#[derive(Debug, Clone)]
pub struct Figure3Curve {
    /// Live data in Mbytes.
    pub live_mb: f64,
    /// Throughput (Kbytes/s) for each 1-Mbyte step.
    pub throughput_kib_s: Vec<f64>,
}

/// The regenerated Figure 3.
#[derive(Debug, Clone)]
pub struct Figure3 {
    /// One curve per live-data amount.
    pub curves: Vec<Figure3Curve>,
}

const CHUNK: u64 = 4 * KIB;
/// Cumulative data written per curve, in Mbytes (the paper's x-axis).
const TOTAL_MB: u64 = 20;

/// Runs the experiment at a reduced or full length. `steps` caps the
/// number of 1-Mbyte rounds (the paper's 20).
pub fn run_with_steps(steps: u64) -> Figure3 {
    let curves = LIVE_MB
        .iter()
        .map(|&live_mb| {
            let mut tb = FlashCardTestbed::new(intel_datasheet(), 10 * MIB, MffsParams::mffs2());
            let live_bytes = (live_mb * MIB as f64) as u64;
            let handle = tb.install_live_data(live_bytes);
            let mut rng = SimRng::seed_from_u64(live_mb.to_bits());
            let mut throughput = Vec::with_capacity(steps as usize);
            for _ in 0..steps {
                let mut elapsed = SimDuration::ZERO;
                let writes = MIB / CHUNK;
                for _ in 0..writes {
                    let offset = rng.below(live_bytes / CHUNK) * CHUNK;
                    elapsed += tb.overwrite_chunk(handle, offset, CHUNK, DataClass::Compressible);
                }
                throughput.push(MIB as f64 / 1024.0 / elapsed.as_secs_f64());
            }
            Figure3Curve {
                live_mb,
                throughput_kib_s: throughput,
            }
        })
        .collect();
    Figure3 { curves }
}

/// Runs the full 20-Mbyte experiment.
pub fn run() -> Figure3 {
    run_with_steps(TOTAL_MB)
}

impl Figure3 {
    /// Renders Figure 3 — throughput vs cumulative Mbytes — as an ASCII
    /// plot.
    pub fn plot(&self) -> String {
        let series: Vec<crate::plot::Series> = self
            .curves
            .iter()
            .map(|c| crate::plot::Series {
                label: format!("{} MB live", c.live_mb),
                points: c
                    .throughput_kib_s
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| ((i + 1) as f64, t))
                    .collect(),
            })
            .collect();
        crate::plot::render(
            "Figure 3: overwrite throughput vs cumulative Mbytes (10-MB card)",
            "cumulative MB",
            "KB/s",
            &series,
            72,
            18,
        )
    }
}

impl fmt::Display for Figure3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3: overwrite throughput (KB/s) on a 10-MB Intel card"
        )?;
        write!(f, "{:<14}", "cumulative MB")?;
        for c in &self.curves {
            write!(f, " {:>12}", format!("{} MB live", c.live_mb))?;
        }
        writeln!(f)?;
        let steps = self.curves[0].throughput_kib_s.len();
        for i in 0..steps {
            write!(f, "{:<14}", i + 1)?;
            for c in &self.curves {
                write!(f, " {:>12.1}", c.throughput_kib_s[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_drops_with_cumulative_data() {
        // "The drop in throughput over the course of the experiment is
        // apparent for all three configurations."
        let fig = run_with_steps(6);
        for c in &fig.curves {
            let first = c.throughput_kib_s[0];
            let last = *c.throughput_kib_s.last().unwrap();
            assert!(last < first, "{} MB live: {first} -> {last}", c.live_mb);
        }
    }

    #[test]
    fn more_live_data_is_slower() {
        // "throughput decreased much faster with increased space
        // utilization."
        let fig = run_with_steps(4);
        let last = |i: usize| *fig.curves[i].throughput_kib_s.last().unwrap();
        assert!(last(0) > last(1), "1 MB {} vs 9 MB {}", last(0), last(1));
        assert!(last(1) >= last(2), "9 MB {} vs 9.5 MB {}", last(1), last(2));
        // The nearly-full card collapses early: its *first* step is already
        // slower than the sparse card's.
        assert!(fig.curves[2].throughput_kib_s[0] < fig.curves[0].throughput_kib_s[0]);
    }

    #[test]
    fn magnitudes_are_tens_of_kib_s() {
        // Paper's y-axis spans 0–25 KB/s.
        let fig = run_with_steps(3);
        for c in &fig.curves {
            for &t in &c.throughput_kib_s {
                assert!(t < 80.0, "{} MB live: {t}", c.live_mb);
            }
        }
    }

    #[test]
    fn renders() {
        let text = run_with_steps(2).to_string();
        assert!(text.contains("9.5 MB live"));
    }
}
