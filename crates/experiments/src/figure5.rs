//! Figure 5 — normalized energy and write response vs SRAM size.
//!
//! §5.5: the cu140 with a 5 s spin-down and 0 / 32 / 512 / 1024 Kbytes of
//! battery-backed SRAM, per trace, normalized to the no-SRAM case.
//! Published shapes: 32 Kbytes improves mean write response by ≥ 20× for
//! `mac` and `dos` (a smaller factor for `hp`), larger buffers add little
//! except for `hp`; energy falls by a much smaller fraction (21% `mac`,
//! 15% `dos`, 4% `hp`).

use std::fmt;

use mobistore_core::config::SystemConfig;
use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::simulate;
use mobistore_device::params::cu140_datasheet;
use mobistore_sim::exec::parallel_map;
use mobistore_workload::Workload;

use crate::{shared_trace, Scale};

/// The SRAM sweep points, in bytes.
pub const SRAM_BYTES: [u64; 4] = [0, 32 * 1024, 512 * 1024, 1024 * 1024];

/// One trace's sweep.
#[derive(Debug, Clone)]
pub struct Figure5Curve {
    /// Which trace.
    pub workload: Workload,
    /// Metrics per SRAM size, in `SRAM_BYTES` order.
    pub points: Vec<Metrics>,
}

/// The regenerated Figure 5.
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// One curve per trace.
    pub curves: Vec<Figure5Curve>,
}

/// Runs the sweep for all three traces.
pub fn run(scale: Scale) -> Figure5 {
    Figure5 {
        curves: Workload::TABLE4
            .iter()
            .map(|&w| run_curve(w, scale))
            .collect(),
    }
}

/// Runs the sweep for one trace, all SRAM points in parallel.
pub fn run_curve(workload: Workload, scale: Scale) -> Figure5Curve {
    let trace = shared_trace(workload, scale);
    let dram = if workload.below_buffer_cache() {
        0
    } else {
        2 * 1024 * 1024
    };
    let points = parallel_map(&SRAM_BYTES, |&sram| {
        let cfg = SystemConfig::disk(cu140_datasheet())
            .with_dram(dram)
            .with_sram(sram);
        let mut m = simulate(&cfg, &trace);
        m.name = format!("{} sram={}KB", workload.name(), sram / 1024);
        m
    });
    Figure5Curve { workload, points }
}

impl Figure5Curve {
    /// Energy at each point normalized to the no-SRAM point.
    pub fn normalized_energy(&self) -> Vec<f64> {
        let base = self.points[0].energy.get();
        self.points.iter().map(|m| m.energy.get() / base).collect()
    }

    /// Mean write response normalized to the no-SRAM point.
    pub fn normalized_write_response(&self) -> Vec<f64> {
        let base = self.points[0].write_response_ms.mean;
        self.points
            .iter()
            .map(|m| m.write_response_ms.mean / base)
            .collect()
    }
}

impl fmt::Display for Figure5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 5: cu140 + SRAM write buffer, normalized to no SRAM"
        )?;
        writeln!(
            f,
            "{:<8} {:>8} {:>14} {:>14} {:>18}",
            "trace", "SRAM KB", "energy (norm)", "write (norm)", "write mean (ms)"
        )?;
        for c in &self.curves {
            let ne = c.normalized_energy();
            let nw = c.normalized_write_response();
            for (i, &sram) in SRAM_BYTES.iter().enumerate() {
                writeln!(
                    f,
                    "{:<8} {:>8} {:>14.3} {:>14.3} {:>18.3}",
                    c.workload.name(),
                    sram / 1024,
                    ne[i],
                    nw[i],
                    c.points[i].write_response_ms.mean
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sram_slashes_write_response() {
        // §5.5: a 32-KB buffer improves average write response by a factor
        // of 20 or more for mac.
        let c = run_curve(Workload::Mac, Scale::quick());
        let nw = c.normalized_write_response();
        assert!(nw[1] < 0.1, "32KB point {} (want < 0.1)", nw[1]);
        // Larger buffers add little beyond 32 KB.
        assert!(nw[3] < 0.2);
    }

    #[test]
    fn sram_cuts_energy_modestly() {
        // §5.5: 21% energy for mac — "much less dramatic" than response.
        let c = run_curve(Workload::Mac, Scale::quick());
        let ne = c.normalized_energy();
        assert!(ne[1] < 1.0, "energy must not rise: {}", ne[1]);
        assert!(ne[1] > 0.5, "but the saving is modest: {}", ne[1]);
    }

    #[test]
    fn renders() {
        let fig = Figure5 {
            curves: vec![run_curve(Workload::Dos, Scale::quick())],
        };
        let text = fig.to_string();
        assert!(text.contains("SRAM KB"));
    }
}
