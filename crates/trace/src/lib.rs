//! Trace infrastructure for the `mobistore` reproduction of *Storage
//! Alternatives for Mobile Computers* (Douglis et al., OSDI '94).
//!
//! The paper drives its simulator with four traces (`mac`, `dos`, `hp`,
//! `synth`, §4.1). This crate provides:
//!
//! * [`record`] — file-level records and disk-level operations;
//! * [`layout`] — the file-to-block preprocessor that converts file-level
//!   traces into disk-level traces, as the paper's preprocessing step did;
//! * [`stats`] — the Table 3 characterisation statistics plus the 10%
//!   warm-up split;
//! * [`io`] — a plain-text archive format for generated traces.
//!
//! The workload generators that *produce* these traces live in the
//! `mobistore-workload` crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod layout;
pub mod record;
pub mod stats;

pub use layout::FileLayout;
pub use record::{DiskOp, DiskOpKind, FileId, FileRecord, Op, Trace};
pub use stats::{split_warm, TraceStats};
