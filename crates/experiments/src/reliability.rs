//! Reliability under injected faults — the fault-rate sweep behind the
//! `repro reliability` target.
//!
//! The paper's devices never fail; real ones did. Intel Series 2 cards
//! shipped with bad-block maps and retired further segments as erasures
//! accumulated, SunDisk controllers retried transiently-failed program
//! pulses, and MFFS replayed its log after power loss mid-compaction.
//! This experiment replays the four workloads against the flash card
//! under a sweep of transient write/erase fault rates (with a fraction of
//! erase failures escalating to permanent segment retirement) plus an
//! exponential power-failure schedule, and against the magnetic disk
//! under the same power-failure schedule (its recovery is a
//! synchronous-FAT replay scan).
//!
//! Everything is seeded: the same `(scale, fault seed)` pair reproduces
//! the same fault schedule at any worker count, and a zero rate with no
//! power failures reproduces the fault-free results byte for byte.

use std::fmt;

use mobistore_core::config::SystemConfig;
use mobistore_core::metrics::FaultTotals;
use mobistore_core::simulator::simulate;
use mobistore_device::params::{cu140_datasheet, intel_datasheet};
use mobistore_sim::energy::Joules;
use mobistore_sim::exec::parallel_map;
use mobistore_sim::fault::FaultConfig;
use mobistore_sim::time::SimDuration;
use mobistore_workload::Workload;

use crate::{flash_card_config, shared_trace, Scale};

/// Parameters of the reliability sweep (the `--fault-*` flags).
#[derive(Debug, Clone)]
pub struct ReliabilityOptions {
    /// Transient write/erase fault rates to sweep.
    pub rates: Vec<f64>,
    /// Mean interval between power failures; `None` disables them.
    pub power_interval: Option<SimDuration>,
    /// Seed for the fault streams (independent of the workload seed).
    pub fault_seed: u64,
}

impl Default for ReliabilityOptions {
    fn default() -> Self {
        ReliabilityOptions {
            rates: vec![0.0, 1e-4, 1e-3],
            power_interval: Some(SimDuration::from_secs(600)),
            fault_seed: 1994,
        }
    }
}

impl ReliabilityOptions {
    /// The fault configuration for one sweep point.
    fn fault_config(&self, rate: f64) -> FaultConfig {
        let cfg = FaultConfig::with_rate(rate, self.fault_seed);
        match self.power_interval {
            Some(mean) => cfg.with_power_failures(mean),
            None => cfg,
        }
    }
}

/// One flash-card sweep point: a workload at one fault rate.
#[derive(Debug, Clone)]
pub struct CardPoint {
    /// Which trace.
    pub workload: Workload,
    /// The transient write/erase fault rate.
    pub rate: f64,
    /// Total energy over the measured portion.
    pub energy: Joules,
    /// Mean write response in milliseconds.
    pub write_mean_ms: f64,
    /// Fault and recovery counters.
    pub faults: FaultTotals,
    /// Total segment erasures (cleaning pressure).
    pub erasures: u64,
}

/// One magnetic-disk point: a workload under power failures only.
#[derive(Debug, Clone)]
pub struct DiskPoint {
    /// Which trace.
    pub workload: Workload,
    /// Total energy over the measured portion.
    pub energy: Joules,
    /// Fault and recovery counters.
    pub faults: FaultTotals,
}

/// The reliability experiment: flash-card rate sweep plus disk recovery.
#[derive(Debug, Clone)]
pub struct Reliability {
    /// The options the sweep ran with.
    pub options: ReliabilityOptions,
    /// Workload-major, rate-minor flash-card points.
    pub card: Vec<CardPoint>,
    /// One disk point per workload (empty when power failures are off).
    pub disk: Vec<DiskPoint>,
}

/// Runs the sweep: every workload × every fault rate on the flash card
/// (in parallel), plus each workload on the magnetic disk under the
/// power-failure schedule alone.
pub fn run(scale: Scale, options: &ReliabilityOptions) -> Reliability {
    let mut points: Vec<(Workload, f64)> = Vec::new();
    for w in Workload::ALL {
        for &rate in &options.rates {
            points.push((w, rate));
        }
    }
    let card = parallel_map(&points, |&(workload, rate)| {
        let trace = shared_trace(workload, scale);
        let dram = if workload.below_buffer_cache() {
            0
        } else {
            2 * 1024 * 1024
        };
        let cfg = flash_card_config(intel_datasheet(), &trace, 0.80)
            .with_dram(dram)
            .with_faults(options.fault_config(rate));
        let m = simulate(&cfg, &trace);
        CardPoint {
            workload,
            rate,
            energy: m.energy,
            write_mean_ms: m.write_response_ms.mean,
            faults: m.fault_totals(),
            erasures: m.wear.map_or(0, |w| w.total),
        }
    });
    let disk = if options.power_interval.is_some() {
        parallel_map(&Workload::ALL, |&workload| {
            let trace = shared_trace(workload, scale);
            let dram = if workload.below_buffer_cache() {
                0
            } else {
                2 * 1024 * 1024
            };
            let cfg = SystemConfig::disk(cu140_datasheet())
                .with_dram(dram)
                .with_faults(options.fault_config(0.0));
            let m = simulate(&cfg, &trace);
            DiskPoint {
                workload,
                energy: m.energy,
                faults: m.fault_totals(),
            }
        })
    } else {
        Vec::new()
    };
    Reliability {
        options: options.clone(),
        card,
        disk,
    }
}

/// Formats a fault rate compactly (`0`, `1e-4`, ...).
fn fmt_rate(rate: f64) -> String {
    if rate == 0.0 {
        "0".to_owned()
    } else {
        format!("{rate:.0e}")
    }
}

impl fmt::Display for Reliability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let interval = match self.options.power_interval {
            Some(d) => format!("power failures every {:.0} s (mean)", d.as_secs_f64()),
            None => "no power failures".to_owned(),
        };
        writeln!(
            f,
            "Reliability: fault-rate sweep on the Intel flash card, {interval}, \
             fault seed {}",
            self.options.fault_seed
        )?;
        writeln!(
            f,
            "{:<7} {:>6} {:>10} {:>8} {:>8} {:>8} {:>8} {:>6} {:>9} {:>9}",
            "trace",
            "rate",
            "energy(J)",
            "wr(ms)",
            "retry-w",
            "retry-e",
            "retired",
            "pfail",
            "recov(ms)",
            "erasures"
        )?;
        for p in &self.card {
            writeln!(
                f,
                "{:<7} {:>6} {:>10.1} {:>8.2} {:>8} {:>8} {:>8} {:>6} {:>9.1} {:>9}",
                p.workload.name(),
                fmt_rate(p.rate),
                p.energy.get(),
                p.write_mean_ms,
                p.faults.write_retries,
                p.faults.erase_retries,
                p.faults.segments_retired,
                p.faults.power_failures,
                p.faults.recovery_time.as_millis_f64(),
                p.erasures,
            )?;
        }
        if !self.disk.is_empty() {
            writeln!(f)?;
            writeln!(
                f,
                "Magnetic disk (cu140) under the same power-failure schedule \
                 (synchronous-FAT replay on recovery):"
            )?;
            writeln!(
                f,
                "{:<7} {:>10} {:>6} {:>9}",
                "trace", "energy(J)", "pfail", "recov(ms)"
            )?;
            for p in &self.disk {
                writeln!(
                    f,
                    "{:<7} {:>10.1} {:>6} {:>9.1}",
                    p.workload.name(),
                    p.energy.get(),
                    p.faults.power_failures,
                    p.faults.recovery_time.as_millis_f64(),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_workloads_and_rates() {
        let opts = ReliabilityOptions {
            rates: vec![0.0, 1e-3],
            power_interval: Some(SimDuration::from_secs(300)),
            fault_seed: 7,
        };
        let r = run(Scale::quick(), &opts);
        assert_eq!(r.card.len(), Workload::ALL.len() * 2);
        assert_eq!(r.disk.len(), Workload::ALL.len());
        // Zero-rate points inject no device faults.
        for p in r.card.iter().filter(|p| p.rate == 0.0) {
            assert_eq!(p.faults.write_retries, 0);
            assert_eq!(p.faults.erase_retries, 0);
            assert_eq!(p.faults.segments_retired, 0);
        }
        // The non-zero rate injects something somewhere across the sweep.
        let injected: u64 = r
            .card
            .iter()
            .filter(|p| p.rate > 0.0)
            .map(|p| p.faults.write_retries + p.faults.erase_retries)
            .sum();
        assert!(injected > 0, "no faults injected at 1e-3");
        let rendered = format!("{r}");
        assert!(rendered.contains("Reliability"));
        assert!(rendered.contains("1e-3"));
    }

    #[test]
    fn sweep_is_deterministic() {
        let opts = ReliabilityOptions::default();
        let a = format!("{}", run(Scale::quick(), &opts));
        let b = format!("{}", run(Scale::quick(), &opts));
        assert_eq!(a, b);
    }

    #[test]
    fn disabled_power_failures_skip_disk_rows() {
        let opts = ReliabilityOptions {
            rates: vec![0.0],
            power_interval: None,
            fault_seed: 1,
        };
        let r = run(Scale::quick(), &opts);
        assert!(r.disk.is_empty());
        assert!(!format!("{r}").contains("Magnetic disk"));
    }
}
