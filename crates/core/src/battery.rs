//! Battery-life modelling.
//!
//! §1: "the storage subsystem can consume 20–54% of total system energy
//! \[13, 14\], so these energy savings can as much as double battery
//! lifetime". §7: flash can save 90% of the disk file system's energy,
//! "extending battery life by 20–100%". The abstract quotes a 22%
//! extension for the representative case.
//!
//! The model: if storage is a fraction `s` of total system energy and the
//! replacement storage system saves a fraction `r` of that, total energy
//! drops to `1 − s·r`, so battery life scales by `1 / (1 − s·r)`.

/// The low end of the storage share of system energy reported by [13, 14].
pub const STORAGE_SHARE_LOW: f64 = 0.20;
/// The high end of the storage share of system energy reported by [13, 14].
pub const STORAGE_SHARE_HIGH: f64 = 0.54;

/// Returns the battery-life extension factor (e.g. `0.22` for +22%) when
/// storage is `storage_share` of system energy and the new storage system
/// saves `savings` of the storage energy.
///
/// # Panics
///
/// Panics unless both fractions are within `[0, 1]` (a full `1.0 × 1.0`
/// combination — storage being all the energy and saving all of it — is
/// rejected as it implies infinite life).
///
/// # Examples
///
/// ```
/// use mobistore_core::battery::battery_extension;
///
/// // Storage at 20% of system energy, 90% of it saved: ~22% more battery.
/// let ext = battery_extension(0.20, 0.90);
/// assert!((ext - 0.2195).abs() < 0.001);
/// ```
pub fn battery_extension(storage_share: f64, savings: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&storage_share),
        "share out of range: {storage_share}"
    );
    assert!(
        (0.0..=1.0).contains(&savings),
        "savings out of range: {savings}"
    );
    let reduced = storage_share * savings;
    assert!(reduced < 1.0, "total energy cannot reach zero");
    1.0 / (1.0 - reduced) - 1.0
}

/// Returns the energy savings fraction of `new` relative to `old`
/// (e.g. `0.9` when the new system uses a tenth of the energy).
///
/// # Panics
///
/// Panics if `old` is not positive or `new` is negative or exceeds `old`.
pub fn savings_fraction(old_joules: f64, new_joules: f64) -> f64 {
    assert!(old_joules > 0.0, "baseline energy must be positive");
    assert!(
        (0.0..=old_joules).contains(&new_joules),
        "new energy {new_joules} outside [0, {old_joules}]"
    );
    1.0 - new_joules / old_joules
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_22_percent() {
        // Abstract: "These energy savings can translate into a 22%
        // extension of battery life" — 20% share, ~90% saved.
        let ext = battery_extension(STORAGE_SHARE_LOW, 0.90);
        assert!((0.21..0.23).contains(&ext), "{ext}");
    }

    #[test]
    fn paper_doubling_at_high_share() {
        // §1: savings "can as much as double battery lifetime" — 54% share,
        // ~93% saved gives ~2x.
        let ext = battery_extension(STORAGE_SHARE_HIGH, 0.93);
        assert!(ext > 0.95, "{ext}");
    }

    #[test]
    fn conclusion_range_20_to_100_percent() {
        // §7: the flash card saves ~90% of disk energy, extending battery
        // life by 20-100% across the reported share range.
        let low = battery_extension(STORAGE_SHARE_LOW, 0.90);
        let high = battery_extension(STORAGE_SHARE_HIGH, 0.90);
        assert!((0.18..=0.25).contains(&low), "{low}");
        assert!((0.90..=1.10).contains(&high), "{high}");
    }

    #[test]
    fn zero_savings_means_zero_extension() {
        assert_eq!(battery_extension(0.5, 0.0), 0.0);
        assert_eq!(battery_extension(0.0, 1.0), 0.0);
    }

    #[test]
    fn savings_fraction_basics() {
        assert_eq!(savings_fraction(100.0, 10.0), 0.9);
        assert_eq!(savings_fraction(100.0, 100.0), 0.0);
        assert_eq!(savings_fraction(100.0, 0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "zero")]
    fn full_saving_of_everything_panics() {
        let _ = battery_extension(1.0, 1.0);
    }
}
