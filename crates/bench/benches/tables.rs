//! Wall-clock benches regenerating each paper table.
//!
//! These measure the cost of the reproduction itself (workload generation
//! plus simulation), one bench per table, at an abbreviated scale so the
//! whole suite stays minutes-long. Run with
//! `cargo bench -p mobistore-bench`.

use std::hint::black_box;

use mobistore_bench::Harness;
use mobistore_experiments::{table1, table2, table3, table4, Scale};
use mobistore_workload::Workload;

fn main() {
    let h = Harness::from_args();
    h.bench("table1_microbenchmarks", || black_box(table1::run()));
    h.bench("table2_device_specs", || black_box(table2::run()));
    h.bench("table3_trace_characteristics", || {
        black_box(table3::run(Scale::quick()))
    });
    for workload in Workload::TABLE4 {
        h.bench(&format!("table4/{}", workload.name()), || {
            black_box(table4::run_part(workload, Scale::quick()))
        });
    }
}
