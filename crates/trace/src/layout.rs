//! File-to-block preprocessing.
//!
//! §4.1: *"The traces were preprocessed to convert file-level accesses into
//! disk-level operations, by associating a unique disk location with each
//! file."* [`FileLayout`] performs that conversion: the first access to a
//! file allocates it a contiguous block extent; later accesses translate
//! `(offset, size)` into block ranges within the extent; deletions release
//! the extent (emitting a [`DiskOpKind::Trim`]) so the space can be reused,
//! which is how the `dos` trace exercises flash-card cleaning.

use std::collections::HashMap;

use crate::record::{DiskOp, DiskOpKind, FileId, FileRecord, Op, Trace};

/// Maximum file size accepted by the layout, as a sanity bound (1 GB of
/// blocks would indicate a corrupt trace).
const MAX_FILE_BLOCKS: u64 = 1 << 30;

/// An allocated extent.
#[derive(Clone, Copy, Debug)]
struct Extent {
    start: u64,
    blocks: u64,
}

/// Maps file-level records onto a flat logical block space.
///
/// Allocation is first-fit over a free list of extents released by
/// deletions, falling back to a bump pointer. Files that grow beyond their
/// current extent are relocated (their old extent is freed); this mirrors
/// the simple allocator the paper describes, which makes no attempt at
/// optimal placement (§4.2 notes the simulator compensates with an
/// average-seek assumption).
///
/// # Examples
///
/// ```
/// use mobistore_sim::time::SimTime;
/// use mobistore_trace::layout::FileLayout;
/// use mobistore_trace::record::{FileId, FileRecord, Op};
///
/// let mut layout = FileLayout::new(1024);
/// let ops = layout.apply(&FileRecord {
///     time: SimTime::ZERO,
///     op: Op::Write,
///     file: FileId(1),
///     offset: 0,
///     size: 4096,
/// });
/// assert_eq!(ops.len(), 1);
/// assert_eq!(ops[0].blocks, 4);
/// ```
#[derive(Debug)]
pub struct FileLayout {
    block_size: u64,
    extents: HashMap<FileId, Extent>,
    /// Free extents, kept sorted by start block for deterministic first-fit.
    free: Vec<Extent>,
    next_block: u64,
}

impl FileLayout {
    /// Creates an empty layout over blocks of `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        FileLayout {
            block_size,
            extents: HashMap::new(),
            free: Vec::new(),
            next_block: 0,
        }
    }

    /// Returns the block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Returns the high-water mark of the block space (blocks ever
    /// allocated, including currently free ones).
    pub fn blocks_used(&self) -> u64 {
        self.next_block
    }

    /// Pre-allocates an extent for `file` covering `bytes`, without
    /// emitting any disk operation.
    ///
    /// Workload generators that know each file's final size call this up
    /// front so later partial accesses never trigger a growth relocation
    /// (real preprocessing knew file sizes too). Re-reserving a file that
    /// already has a sufficient extent is a no-op.
    pub fn reserve(&mut self, file: FileId, bytes: u64) {
        let blocks = self.blocks_for(bytes.max(1));
        assert!(blocks <= MAX_FILE_BLOCKS, "file too large: {blocks} blocks");
        match self.extents.get(&file) {
            Some(ext) if ext.blocks >= blocks => {}
            Some(&old) => {
                self.release(old);
                let ext = self.allocate(blocks);
                self.extents.insert(file, ext);
            }
            None => {
                let ext = self.allocate(blocks);
                self.extents.insert(file, ext);
            }
        }
    }

    /// Translates one file-level record into disk-level operations.
    ///
    /// Most records produce exactly one [`DiskOp`]; a write that grows a
    /// file produces a trim of the old extent plus the write at the new
    /// location; a delete of an unknown file produces nothing.
    ///
    /// # Panics
    ///
    /// Panics if the record implies an absurd file size (corrupt trace).
    pub fn apply(&mut self, rec: &FileRecord) -> Vec<DiskOp> {
        match rec.op {
            Op::Delete => self.delete(rec),
            Op::Read | Op::Write => self.access(rec),
        }
    }

    /// Converts a whole file-level trace into a disk-level [`Trace`].
    pub fn convert<'a>(
        block_size: u64,
        records: impl IntoIterator<Item = &'a FileRecord>,
    ) -> Trace {
        let mut layout = FileLayout::new(block_size);
        let mut trace = Trace::new(block_size);
        for rec in records {
            for op in layout.apply(rec) {
                trace.push(op);
            }
        }
        trace
    }

    fn blocks_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.block_size).max(1)
    }

    fn access(&mut self, rec: &FileRecord) -> Vec<DiskOp> {
        let needed_end = self.blocks_for(rec.offset + rec.size.max(1));
        assert!(
            needed_end <= MAX_FILE_BLOCKS,
            "file too large: {} blocks",
            needed_end
        );

        let mut out = Vec::with_capacity(2);
        let extent = match self.extents.get(&rec.file).copied() {
            Some(ext) if ext.blocks >= needed_end => ext,
            Some(old) => {
                // File grew beyond its extent: relocate, freeing the old
                // space. The old blocks become dead (trim) — on flash this
                // is what creates cleanable garbage.
                self.release(old);
                out.push(DiskOp {
                    time: rec.time,
                    kind: DiskOpKind::Trim,
                    lbn: old.start,
                    blocks: clamp_u32(old.blocks),
                    file: rec.file,
                });
                let ext = self.allocate(needed_end);
                self.extents.insert(rec.file, ext);
                ext
            }
            None => {
                let ext = self.allocate(needed_end);
                self.extents.insert(rec.file, ext);
                ext
            }
        };

        let first = rec.offset / self.block_size;
        let last = self.blocks_for(rec.offset + rec.size.max(1));
        let kind = if rec.op == Op::Read {
            DiskOpKind::Read
        } else {
            DiskOpKind::Write
        };
        out.push(DiskOp {
            time: rec.time,
            kind,
            lbn: extent.start + first,
            blocks: clamp_u32(last - first),
            file: rec.file,
        });
        out
    }

    fn delete(&mut self, rec: &FileRecord) -> Vec<DiskOp> {
        match self.extents.remove(&rec.file) {
            Some(ext) => {
                self.release(ext);
                vec![DiskOp {
                    time: rec.time,
                    kind: DiskOpKind::Trim,
                    lbn: ext.start,
                    blocks: clamp_u32(ext.blocks),
                    file: rec.file,
                }]
            }
            None => Vec::new(),
        }
    }

    fn allocate(&mut self, blocks: u64) -> Extent {
        // First-fit over the free list.
        if let Some(i) = self.free.iter().position(|e| e.blocks >= blocks) {
            let slot = self.free[i];
            if slot.blocks == blocks {
                self.free.remove(i);
            } else {
                self.free[i] = Extent {
                    start: slot.start + blocks,
                    blocks: slot.blocks - blocks,
                };
            }
            return Extent {
                start: slot.start,
                blocks,
            };
        }
        let ext = Extent {
            start: self.next_block,
            blocks,
        };
        self.next_block += blocks;
        ext
    }

    fn release(&mut self, ext: Extent) {
        // Insert keeping the list sorted by start, coalescing neighbours.
        let pos = self.free.partition_point(|e| e.start < ext.start);
        self.free.insert(pos, ext);
        // Coalesce with successor first (indices stay valid), then
        // predecessor.
        if pos + 1 < self.free.len()
            && self.free[pos].start + self.free[pos].blocks == self.free[pos + 1].start
        {
            self.free[pos].blocks += self.free[pos + 1].blocks;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].start + self.free[pos - 1].blocks == self.free[pos].start {
            self.free[pos - 1].blocks += self.free[pos].blocks;
            self.free.remove(pos);
        }
    }
}

fn clamp_u32(x: u64) -> u32 {
    u32::try_from(x).expect("block count exceeds u32")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobistore_sim::time::SimTime;

    fn rec(op: Op, file: u64, offset: u64, size: u64) -> FileRecord {
        FileRecord {
            time: SimTime::ZERO,
            op,
            file: FileId(file),
            offset,
            size,
        }
    }

    #[test]
    fn first_access_allocates_contiguously() {
        let mut l = FileLayout::new(1024);
        let a = l.apply(&rec(Op::Write, 1, 0, 2048));
        let b = l.apply(&rec(Op::Write, 2, 0, 1024));
        assert_eq!(a[0].lbn, 0);
        assert_eq!(a[0].blocks, 2);
        assert_eq!(b[0].lbn, 2);
        assert_eq!(b[0].blocks, 1);
    }

    #[test]
    fn offset_translates_within_extent() {
        let mut l = FileLayout::new(1024);
        l.apply(&rec(Op::Write, 1, 0, 8192)); // blocks 0..8
        let ops = l.apply(&rec(Op::Read, 1, 3072, 2048)); // blocks 3..5
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].lbn, 3);
        assert_eq!(ops[0].blocks, 2);
        assert_eq!(ops[0].kind, DiskOpKind::Read);
    }

    #[test]
    fn partial_block_rounds_up() {
        let mut l = FileLayout::new(1024);
        let ops = l.apply(&rec(Op::Write, 1, 0, 1)); // 1 byte -> 1 block
        assert_eq!(ops[0].blocks, 1);
        // Crosses into block 1, which also grows the 1-block file: the
        // relocation emits a trim first, then the 2-block write.
        let ops = l.apply(&rec(Op::Write, 1, 1000, 100));
        let write = ops.last().unwrap();
        assert_eq!(ops[0].kind, DiskOpKind::Trim);
        assert_eq!(write.blocks, 2);
    }

    #[test]
    fn zero_size_read_touches_one_block() {
        let mut l = FileLayout::new(1024);
        let ops = l.apply(&rec(Op::Read, 9, 0, 0));
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].blocks, 1);
    }

    #[test]
    fn delete_frees_space_for_reuse() {
        let mut l = FileLayout::new(1024);
        l.apply(&rec(Op::Write, 1, 0, 4096)); // blocks 0..4
        l.apply(&rec(Op::Write, 2, 0, 1024)); // block 4
        let del = l.apply(&rec(Op::Delete, 1, 0, 0));
        assert_eq!(del.len(), 1);
        assert_eq!(del[0].kind, DiskOpKind::Trim);
        assert_eq!(del[0].lbn, 0);
        assert_eq!(del[0].blocks, 4);
        // New file reuses the freed extent (first fit).
        let ops = l.apply(&rec(Op::Write, 3, 0, 2048));
        assert_eq!(ops[0].lbn, 0);
        assert_eq!(l.blocks_used(), 5, "no new space consumed");
    }

    #[test]
    fn delete_unknown_file_is_noop() {
        let mut l = FileLayout::new(1024);
        assert!(l.apply(&rec(Op::Delete, 42, 0, 0)).is_empty());
    }

    #[test]
    fn growth_relocates_and_trims_old_extent() {
        let mut l = FileLayout::new(1024);
        l.apply(&rec(Op::Write, 1, 0, 1024)); // block 0
        l.apply(&rec(Op::Write, 2, 0, 1024)); // block 1 pins the bump pointer
        let ops = l.apply(&rec(Op::Write, 1, 0, 4096)); // file 1 grows to 4 blocks
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].kind, DiskOpKind::Trim);
        assert_eq!(ops[0].lbn, 0);
        assert_eq!(ops[1].kind, DiskOpKind::Write);
        assert_eq!(ops[1].lbn, 2, "relocated past file 2");
        assert_eq!(ops[1].blocks, 4);
    }

    #[test]
    fn free_list_coalesces() {
        let mut l = FileLayout::new(1024);
        l.apply(&rec(Op::Write, 1, 0, 1024)); // block 0
        l.apply(&rec(Op::Write, 2, 0, 1024)); // block 1
        l.apply(&rec(Op::Write, 3, 0, 1024)); // block 2
        l.apply(&rec(Op::Delete, 1, 0, 0));
        l.apply(&rec(Op::Delete, 3, 0, 0));
        l.apply(&rec(Op::Delete, 2, 0, 0)); // bridges 0 and 2
                                            // All three blocks are one free extent now; a 3-block file fits at 0.
        let ops = l.apply(&rec(Op::Write, 4, 0, 3072));
        assert_eq!(ops[0].lbn, 0);
        assert_eq!(l.blocks_used(), 3);
    }

    #[test]
    fn reserve_prevents_growth_relocation() {
        let mut l = FileLayout::new(1024);
        l.reserve(FileId(1), 8192);
        // A small first access followed by a larger one stays in place.
        let a = l.apply(&rec(Op::Write, 1, 0, 1024));
        let b = l.apply(&rec(Op::Write, 1, 4096, 4096));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1, "no trim emitted");
        assert_eq!(b[0].lbn, a[0].lbn + 4);
        // Re-reserving smaller or equal is a no-op.
        l.reserve(FileId(1), 1024);
        assert_eq!(l.blocks_used(), 8);
    }

    #[test]
    fn reserve_can_grow_before_access() {
        let mut l = FileLayout::new(1024);
        l.reserve(FileId(1), 1024);
        l.reserve(FileId(2), 1024);
        l.reserve(FileId(1), 4096); // relocates silently
        let ops = l.apply(&rec(Op::Read, 1, 3072, 1024));
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].lbn, 2 + 3, "new extent after file 2");
    }

    #[test]
    fn convert_builds_time_ordered_trace() {
        let recs = vec![
            FileRecord {
                time: SimTime::from_nanos(1),
                op: Op::Write,
                file: FileId(1),
                offset: 0,
                size: 2048,
            },
            FileRecord {
                time: SimTime::from_nanos(2),
                op: Op::Read,
                file: FileId(1),
                offset: 0,
                size: 1024,
            },
            FileRecord {
                time: SimTime::from_nanos(3),
                op: Op::Delete,
                file: FileId(1),
                offset: 0,
                size: 0,
            },
        ];
        let trace = FileLayout::convert(1024, &recs);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.ops[2].kind, DiskOpKind::Trim);
    }
}
