//! The `repro throughput` target — wall-clock throughput
//! accountability.
//!
//! Measures how many **simulated** operations per **host** second the
//! simulator sustains: each cell of the observe grid, plus one small
//! fleet cell, runs `warmup` unmeasured repetitions followed by `reps`
//! timed ones, and reports the median wall-clock alongside ops/sec and
//! ns/op. Ops are attributed through a [`mobistore_sim::prof`] context
//! counter (which [`parallel_map`](mobistore_sim::exec::parallel_map)
//! propagates into its workers), so the fleet cell's fan-out still
//! credits the right denominator even when other targets run
//! concurrently in the same process.
//!
//! This target is **on demand only** — never part of the default target
//! list — because its stdout carries wall-clock numbers and would break
//! the byte-identity contract the default targets keep. The JSON export
//! ([`Throughput::to_json`], schema
//! [`THROUGHPUT_SCHEMA`](crate::export::THROUGHPUT_SCHEMA)) lands in
//! `BENCH_repro.json` via `scripts/bench_repro.sh`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use mobistore_core::simulator::simulate;
use mobistore_sim::prof;

use crate::export::{jnum, jstr, THROUGHPUT_SCHEMA};
use crate::fleet::{self, FleetOptions};
use crate::observe::{cell_config, DEVICES, WORKLOADS};
use crate::{shared_trace, Scale};

/// The fleet cell's shard count (kept small: the cell exists to price
/// the sharded fan-out path, not to benchmark a 10k fleet).
const FLEET_SHARDS: u32 = 16;

/// `repro throughput` parameters.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputOptions {
    /// Timed repetitions per cell (the report takes their median).
    pub reps: u32,
    /// Unmeasured warm-up repetitions per cell.
    pub warmup: u32,
}

impl Default for ThroughputOptions {
    fn default() -> Self {
        ThroughputOptions { reps: 5, warmup: 1 }
    }
}

/// One measured cell.
#[derive(Debug, Clone)]
pub struct ThroughputCell {
    /// Cell label (`workload/device`, or `fleet/<shards>x<users>`).
    pub name: String,
    /// Simulated operations one repetition replays.
    pub ops: u64,
    /// Median wall-clock per repetition, nanoseconds.
    pub median_ns: u64,
    /// Simulated operations per host second, at the median.
    pub ops_per_sec: f64,
    /// Host nanoseconds per simulated operation, at the median.
    pub ns_per_op: f64,
}

/// The throughput run.
#[derive(Debug, Clone)]
pub struct Throughput {
    /// Timed repetitions per cell.
    pub reps: u32,
    /// Warm-up repetitions per cell.
    pub warmup: u32,
    /// Grid cells first, the fleet cell last.
    pub cells: Vec<ThroughputCell>,
}

/// Times `f` with warmup + median-of-reps, attributing simulated ops to
/// a dedicated context counter.
fn measure(name: String, opts: &ThroughputOptions, mut f: impl FnMut()) -> ThroughputCell {
    let reps = opts.reps.max(1);
    let ctr = Arc::new(AtomicU64::new(0));
    let mut times = Vec::with_capacity(reps as usize);
    prof::with_context(ctr.clone(), || {
        for _ in 0..opts.warmup {
            f();
        }
        ctr.store(0, Ordering::Relaxed);
        for _ in 0..reps {
            let t0 = Instant::now();
            f();
            times.push(t0.elapsed());
        }
    });
    let ops = ctr.load(Ordering::Relaxed) / u64::from(reps);
    times.sort_unstable();
    let median_ns = times[times.len() / 2].as_nanos() as u64;
    let ops_per_sec = if median_ns == 0 {
        0.0
    } else {
        ops as f64 * 1e9 / median_ns as f64
    };
    let ns_per_op = if ops == 0 {
        0.0
    } else {
        median_ns as f64 / ops as f64
    };
    ThroughputCell {
        name,
        ops,
        median_ns,
        ops_per_sec,
        ns_per_op,
    }
}

/// Runs the harness: every observe-grid cell, then one fleet cell.
pub fn run(scale: Scale, opts: &ThroughputOptions) -> Throughput {
    let mut cells = Vec::new();
    for workload in WORKLOADS {
        for device in DEVICES {
            let trace = shared_trace(workload, scale);
            let cfg = cell_config(workload, device, &trace);
            cells.push(measure(
                format!("{}/{}", workload.name(), device.name()),
                opts,
                || {
                    simulate(&cfg, &trace);
                },
            ));
        }
    }
    let fleet_opts = FleetOptions {
        shards: FLEET_SHARDS,
        population: FleetOptions::default_population(FLEET_SHARDS),
        seed: scale.seed,
        ..FleetOptions::default()
    };
    cells.push(measure(
        format!("fleet/{}x{}", fleet_opts.shards, fleet_opts.population),
        opts,
        || {
            fleet::run(scale, &fleet_opts).expect("quiet fleet cell cannot fail");
        },
    ));
    Throughput {
        reps: opts.reps.max(1),
        warmup: opts.warmup,
        cells,
    }
}

impl Throughput {
    /// The `mobistore-throughput/1` JSON document `bench_repro.sh`
    /// embeds into `BENCH_repro.json`.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"schema\":{},\"reps\":{},\"warmup\":{},\"cells\":[",
            jstr(THROUGHPUT_SCHEMA),
            self.reps,
            self.warmup
        );
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"cell\":{},\"ops\":{},\"median_ns\":{},\
                 \"ops_per_sec\":{},\"ns_per_op\":{}}}",
                jstr(&c.name),
                c.ops,
                c.median_ns,
                jnum(c.ops_per_sec),
                jnum(c.ns_per_op)
            ));
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Throughput harness: median of {} reps after {} warmup \
             (wall-clock — on-demand target, never golden-pinned)",
            self.reps, self.warmup
        )?;
        writeln!(
            f,
            "  {:<20} {:>10} {:>12} {:>14} {:>10}",
            "cell", "ops", "median_ms", "sim_ops/sec", "ns/op"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "  {:<20} {:>10} {:>12.3} {:>14.0} {:>10.1}",
                c.name,
                c.ops,
                c.median_ns as f64 / 1e6,
                c.ops_per_sec,
                c.ns_per_op
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ThroughputOptions {
        ThroughputOptions { reps: 1, warmup: 0 }
    }

    #[test]
    fn harness_measures_grid_and_fleet_cells() {
        let t = run(Scale::quick(), &tiny());
        assert_eq!(t.cells.len(), WORKLOADS.len() * DEVICES.len() + 1);
        for cell in &t.cells {
            assert!(cell.ops > 0, "{}: zero ops", cell.name);
            assert!(cell.ops_per_sec > 0.0, "{}", cell.name);
            assert!(cell.ns_per_op > 0.0, "{}", cell.name);
        }
        assert!(t.cells.last().unwrap().name.starts_with("fleet/"));
        let rendered = format!("{t}");
        assert!(rendered.contains("sim_ops/sec"));
        assert!(rendered.contains("mac/cu140-disk"));
    }

    #[test]
    fn json_export_is_versioned_and_balanced() {
        let t = run(Scale::quick(), &tiny());
        let doc = t.to_json();
        assert!(doc.starts_with("{\"schema\":\"mobistore-throughput/1\""));
        assert!(doc.contains("\"reps\":1"));
        assert!(doc.contains("\"cell\":\"mac/cu140-disk\""));
        assert!(doc.contains("\"ops_per_sec\":"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
    }

    #[test]
    fn zero_reps_clamps_to_one() {
        let t = run(Scale::quick(), &ThroughputOptions { reps: 0, warmup: 0 });
        assert_eq!(t.reps, 1);
        assert!(t.cells.iter().all(|c| c.ops > 0));
    }
}
