//! Span-tracing properties: every collected span is a valid sim-time
//! interval, op spans are monotone in sim time, the Chrome trace
//! document's lanes are disjoint (the renderer's packing contract), and
//! the whole `--trace-out` artifact is byte-identical across `--jobs`
//! counts.
//!
//! The jobs-1-vs-jobs-4 comparison is one `#[test]` on purpose:
//! `exec::set_jobs` is process-global and the default harness runs tests
//! concurrently, so splitting the serial and parallel halves would race
//! on the worker-count override.

use mobistore::experiments::render::{render_target, RenderOptions};
use mobistore::experiments::Scale;
use mobistore::sim::exec;
use mobistore::sim::span::{chrome_trace_json, Span, TRACE_SCHEMA};

fn span_options() -> RenderOptions {
    RenderOptions {
        collect_spans: true,
        ..RenderOptions::default()
    }
}

/// Renders `observe` with span collection and returns the per-cell span
/// streams plus the serialized `--trace-out` document.
fn render_trace() -> (Vec<(String, Vec<Span>)>, String) {
    let r = render_target("observe", Scale::quick(), &span_options());
    let doc = chrome_trace_json(&r.span_processes);
    (r.span_processes, doc)
}

#[test]
fn trace_export_is_byte_identical_across_job_counts() {
    exec::set_jobs(1);
    let (_, doc1) = render_trace();

    exec::set_jobs(4);
    let (_, doc4) = render_trace();

    assert_eq!(doc1, doc4, "trace document differs across job counts");
}

#[test]
fn spans_are_valid_intervals_and_ops_are_monotone() {
    let (processes, _) = render_trace();
    assert_eq!(processes.len(), 6, "one process per observe cell");
    for (cell, spans) in &processes {
        assert!(!spans.is_empty(), "{cell}: no spans");
        let mut last_op_start = None;
        for span in spans {
            assert!(span.end >= span.start, "{cell}: inverted span {span:?}");
            // Ops are processed in trace order, so their spans' starts
            // (issue times) are non-decreasing in emission order.
            if span.kind.track() == "ops" {
                if let Some(prev) = last_op_start {
                    assert!(span.start >= prev, "{cell}: op spans not monotone");
                }
                last_op_start = Some(span.start);
            }
        }
        let tracks: Vec<&str> = spans.iter().map(|s| s.kind.track()).collect();
        assert!(tracks.contains(&"ops"), "{cell}: no op spans");
        assert!(tracks.contains(&"device"), "{cell}: no device spans");
    }
}

/// One "X" event pulled back out of the rendered document.
struct TraceEvent {
    pid: u64,
    tid: u64,
    ts_ns: u64,
    dur_ns: u64,
}

/// Parses Chrome's fixed 3-decimal microsecond values back to integer
/// nanoseconds.
fn us_to_ns(s: &str) -> u64 {
    let (whole, frac) = s.split_once('.').expect("3-decimal microseconds");
    assert_eq!(frac.len(), 3, "ts/dur must have exactly 3 decimals: {s}");
    whole.parse::<u64>().unwrap() * 1_000 + frac.parse::<u64>().unwrap()
}

/// Extracts a numeric field like `"tid":42` from one serialized event.
fn field<'a>(ev: &'a str, key: &str) -> &'a str {
    let start = ev.find(key).unwrap_or_else(|| panic!("no {key} in {ev}")) + key.len();
    let rest = &ev[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated {key} in {ev}"));
    &rest[..end]
}

#[test]
fn rendered_lanes_are_disjoint_and_document_is_versioned() {
    let (_, doc) = render_trace();
    assert!(
        doc.starts_with(&format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"displayTimeUnit\":\"ns\",\"traceEvents\":["
        )),
        "document header drifted"
    );
    assert_eq!(doc.matches('{').count(), doc.matches('}').count());
    assert_eq!(doc.matches('[').count(), doc.matches(']').count());

    // Pull every complete ("X") event back out of the document.
    let events: Vec<TraceEvent> = doc
        .split("{\"name\":")
        .filter(|chunk| chunk.contains("\"ph\":\"X\""))
        .map(|chunk| TraceEvent {
            pid: field(chunk, "\"pid\":").parse().unwrap(),
            tid: field(chunk, "\"tid\":").parse().unwrap(),
            ts_ns: us_to_ns(field(chunk, "\"ts\":")),
            dur_ns: us_to_ns(field(chunk, "\"dur\":")),
        })
        .collect();
    assert!(
        events.len() > 100,
        "suspiciously few events: {}",
        events.len()
    );

    // Within each (process, lane), events must be disjoint and ordered:
    // that is exactly the well-nestedness contract the greedy packing
    // promises Perfetto.
    let mut lane_cursor: std::collections::BTreeMap<(u64, u64), u64> =
        std::collections::BTreeMap::new();
    for ev in &events {
        let cursor = lane_cursor.entry((ev.pid, ev.tid)).or_insert(0);
        assert!(
            ev.ts_ns >= *cursor,
            "lane (pid {}, tid {}) overlaps at {} ns",
            ev.pid,
            ev.tid,
            ev.ts_ns
        );
        *cursor = ev.ts_ns + ev.dur_ns;
    }
}
