//! Memory-hierarchy components for the `mobistore` reproduction of
//! *Storage Alternatives for Mobile Computers* (Douglis et al., OSDI '94).
//!
//! * [`dram::BufferCache`] — the DRAM buffer cache every configuration
//!   includes (§2), write-through by default per §4.2, with the write-back
//!   ablation;
//! * [`sram::SramWriteBuffer`] — the battery-backed SRAM write buffer that
//!   lets small writes proceed without spinning up the disk (§2, §5.5);
//! * [`lru::LruSet`] — the O(1) LRU machinery under the cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dram;
pub mod lru;
pub mod sram;

pub use dram::{BufferCache, CacheStats, Evicted, WritePolicy};
pub use sram::{SramStats, SramWriteBuffer};
