//! Golden snapshot tests: the rendered output of every table and figure
//! at `--scale 0.02 --seed 1994` is committed under `tests/golden/`, so a
//! refactor that silently shifts a paper number fails here instead of
//! landing unnoticed. A zero-rate fault plan must reproduce these bytes
//! exactly — the fixtures double as the fault-injection no-op proof.
//!
//! After an intentional output change, regenerate the fixtures with
//! `scripts/update_golden.sh` and review the diff like any other code.

use mobistore::experiments::render::{render_target, RenderOptions};
use mobistore::experiments::Scale;
use mobistore::sim::fleet::ChaosConfig;

/// The targets with committed fixtures: the paper's tables and figures,
/// plus the crash-consistency torture sweep (a quiet fault plan — its
/// fixture doubles as proof the sweep is deterministic end to end) and
/// the bit-error integrity sweep (whose zero-rate rows double as proof
/// that a quiet integrity plan draws no randomness) and the 64-shard
/// fleet run (whose merged percentiles pin the metric-merge semantics)
/// and the host profile's simulation counts (whose ops/events/spans
/// columns pin the observer's event and span cardinalities — wall-clock
/// stays on stderr, so the fixture is stable) and the erasure-coded
/// durability sweep (whose zero-death-rate rows double as proof that a
/// quiet death schedule draws no randomness).
const GOLDEN_TARGETS: [&str; 14] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "crashcheck",
    "integrity",
    "fleet",
    "profile",
    "durability",
];

fn fixture_path(target: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{target}.txt"))
}

#[test]
fn rendered_targets_match_golden_fixtures() {
    let opts = RenderOptions::default();
    let mut failures = Vec::new();
    for target in GOLDEN_TARGETS {
        let path = fixture_path(target);
        let expect = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        let got = render_target(target, Scale::quick(), &opts).text;
        if got != expect {
            failures.push(target);
            // Print a small diff context for the first mismatching line.
            for (i, (g, e)) in got.lines().zip(expect.lines()).enumerate() {
                if g != e {
                    eprintln!("{target}: first mismatch at line {}:", i + 1);
                    eprintln!("  expected: {e}");
                    eprintln!("  rendered: {g}");
                    break;
                }
            }
            if got.lines().count() != expect.lines().count() {
                eprintln!(
                    "{target}: line count {} vs fixture {}",
                    got.lines().count(),
                    expect.lines().count()
                );
            }
        }
    }
    assert!(
        failures.is_empty(),
        "output drifted from tests/golden fixtures for {failures:?}; if the \
         change is intentional, run scripts/update_golden.sh and commit the diff"
    );
}

/// The 15th fixture: the fleet target under injected chaos panics. Pins
/// the supervisor's quarantine section — which shards a 0.5 panic rate
/// quarantines at seed 1994, their retry accounting, the coverage line,
/// and that the survivor rollups stay byte-stable when their neighbours
/// panic. (The quiet `fleet.txt` fixture above proves the section is
/// absent from clean runs.)
#[test]
fn chaos_fleet_matches_golden_fixture() {
    let mut opts = RenderOptions::default();
    opts.fleet.chaos = ChaosConfig {
        panic_rate: 0.5,
        fail_point: None,
    };
    let path = fixture_path("fleet_chaos");
    let expect = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    let got = render_target("fleet", Scale::quick(), &opts).text;
    if got != expect {
        for (i, (g, e)) in got.lines().zip(expect.lines()).enumerate() {
            if g != e {
                eprintln!("fleet_chaos: first mismatch at line {}:", i + 1);
                eprintln!("  expected: {e}");
                eprintln!("  rendered: {g}");
                break;
            }
        }
    }
    assert_eq!(
        got, expect,
        "chaos fleet output drifted from tests/golden/fleet_chaos.txt; if \
         intentional, run scripts/update_golden.sh and commit the diff"
    );
    assert!(got.contains("quarantined:"), "fixture lost its ledger");
}
