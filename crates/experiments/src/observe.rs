//! The `repro observe` target — per-device state residency and latency
//! percentiles over a workload × device grid.
//!
//! This is the observability subsystem's showcase: each cell replays one
//! workload against one device with a live [`Observer`] attached,
//! collecting event counts (and, when requested, the full JSONL event
//! stream) alongside the usual [`Metrics`]. A small injected-fault load
//! plus a power-failure schedule is enabled so the fault and recovery
//! events appear in the stream even at quick scales.
//!
//! Determinism: every cell's event stream is produced by a
//! single-threaded simulation and stamped with sim time only; cells are
//! dispatched through [`parallel_map`], which returns results in request
//! order, so the rendered report and the concatenated JSONL stream are
//! byte-identical at any `--jobs` count.

use std::fmt;

use mobistore_core::config::SystemConfig;
use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::{simulate_observed, RunOptions};
use mobistore_device::params::{cu140_datasheet, intel_datasheet, sdp5_datasheet};
use mobistore_sim::exec::parallel_map;
use mobistore_sim::fault::FaultConfig;
use mobistore_sim::hist::{Histogram, Percentiles};
use mobistore_sim::obs::{CounterRegistry, Event, Observer};
use mobistore_sim::span::Span;
use mobistore_sim::stats::Summary;
use mobistore_sim::time::SimDuration;
use mobistore_workload::Workload;

use crate::{flash_card_config, shared_trace, Scale};

/// Transient write/erase fault rate injected into the flash-card cells.
const FAULT_RATE: f64 = 0.02;
/// Mean interval between injected power failures.
const POWER_FAIL_INTERVAL: SimDuration = SimDuration::from_secs(120);
/// Seed for the fault streams (independent of the workload seed).
const FAULT_SEED: u64 = 1994;

/// The devices in the grid, in report order (shared with the `profile`
/// and `throughput` targets so all three walk the same cells).
pub(crate) const DEVICES: [ObserveDevice; 3] = [
    ObserveDevice::Cu140Disk,
    ObserveDevice::Sdp5FlashDisk,
    ObserveDevice::IntelCard,
];

/// The workloads in the grid, in report order.
pub(crate) const WORKLOADS: [Workload; 2] = [Workload::Mac, Workload::Dos];

/// One device column of the observe grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserveDevice {
    /// The cu140 magnetic disk (spin-down, SRAM write buffer).
    Cu140Disk,
    /// The SDP5 flash disk emulator.
    Sdp5FlashDisk,
    /// The Intel flash card (cleaning, 80% utilized).
    IntelCard,
}

impl ObserveDevice {
    /// Stable lowercase label used in reports and JSONL context fields.
    pub fn name(self) -> &'static str {
        match self {
            ObserveDevice::Cu140Disk => "cu140-disk",
            ObserveDevice::Sdp5FlashDisk => "sdp5-flashdisk",
            ObserveDevice::IntelCard => "intel-card",
        }
    }
}

/// An observer that counts events and optionally serializes each one as a
/// JSONL line prefixed with the cell's workload/device context, and
/// optionally keeps every sim-time span (the `--trace-out` payload).
struct Collector {
    counts: CounterRegistry,
    jsonl: Option<String>,
    prefix: String,
    spans: Option<Vec<Span>>,
}

impl Observer for Collector {
    fn record(&mut self, event: &Event) {
        self.counts.add(event.name(), 1);
        if let Some(buf) = &mut self.jsonl {
            buf.push('{');
            buf.push_str(&self.prefix);
            buf.push_str(&event.json_fields());
            buf.push_str("}\n");
        }
    }

    fn span(&mut self, span: &Span) {
        if let Some(spans) = &mut self.spans {
            spans.push(*span);
        }
    }
}

/// One workload × device cell.
#[derive(Debug, Clone)]
pub struct ObserveCell {
    /// Which trace.
    pub workload: Workload,
    /// Which device.
    pub device: ObserveDevice,
    /// The cell's simulation results (histograms included).
    pub metrics: Metrics,
    /// Event counts keyed by [`Event::name`].
    pub event_counts: CounterRegistry,
    /// The cell's JSONL event stream, when collection was requested.
    pub events_jsonl: Option<String>,
    /// The cell's sim-time spans, when span collection was requested.
    pub spans: Option<Vec<Span>>,
}

/// The observe grid.
#[derive(Debug, Clone)]
pub struct Observe {
    /// Workload-major, device-minor cells.
    pub cells: Vec<ObserveCell>,
}

impl Observe {
    /// Concatenates every cell's JSONL stream in grid order, or `None`
    /// when event collection was off.
    pub fn events_jsonl(&self) -> Option<String> {
        let mut out = String::new();
        let mut any = false;
        for cell in &self.cells {
            if let Some(s) = &cell.events_jsonl {
                out.push_str(s);
                any = true;
            }
        }
        any.then_some(out)
    }

    /// One `(process name, spans)` pair per cell for
    /// [`mobistore_sim::span::chrome_trace_json`], or `None` when span
    /// collection was off.
    pub fn span_processes(&self) -> Option<Vec<(String, Vec<Span>)>> {
        let procs: Vec<(String, Vec<Span>)> = self
            .cells
            .iter()
            .filter_map(|cell| {
                cell.spans.as_ref().map(|spans| {
                    (
                        format!("{} x {}", cell.workload.name(), cell.device.name()),
                        spans.clone(),
                    )
                })
            })
            .collect();
        (!procs.is_empty()).then_some(procs)
    }
}

/// Builds the system configuration for one cell.
pub(crate) fn cell_config(
    workload: Workload,
    device: ObserveDevice,
    trace: &mobistore_trace::record::Trace,
) -> SystemConfig {
    let fault =
        FaultConfig::with_rate(FAULT_RATE, FAULT_SEED).with_power_failures(POWER_FAIL_INTERVAL);
    let dram = if workload.below_buffer_cache() {
        0
    } else {
        2 * 1024 * 1024
    };
    let cfg = match device {
        ObserveDevice::Cu140Disk => SystemConfig::disk(cu140_datasheet()),
        ObserveDevice::Sdp5FlashDisk => SystemConfig::flash_disk(sdp5_datasheet()),
        ObserveDevice::IntelCard => flash_card_config(intel_datasheet(), trace, 0.80),
    };
    cfg.with_dram(dram).with_faults(fault)
}

/// Runs the grid; `collect_events` additionally captures every cell's
/// JSONL event stream (the `--events-out` payload) and `collect_spans`
/// captures every cell's sim-time spans (the `--trace-out` payload).
pub fn run(scale: Scale, collect_events: bool, collect_spans: bool) -> Observe {
    let mut grid: Vec<(Workload, ObserveDevice)> = Vec::new();
    for w in WORKLOADS {
        for d in DEVICES {
            grid.push((w, d));
        }
    }
    let cells = parallel_map(&grid, |&(workload, device)| {
        let trace = shared_trace(workload, scale);
        let cfg = cell_config(workload, device, &trace);
        let mut obs = Collector {
            counts: CounterRegistry::new(),
            jsonl: collect_events.then(String::new),
            prefix: format!(
                "\"workload\":\"{}\",\"device\":\"{}\",",
                workload.name(),
                device.name()
            ),
            spans: collect_spans.then(Vec::new),
        };
        let mut metrics = simulate_observed(&cfg, &trace, RunOptions::default(), &mut obs);
        metrics.name = format!("{}/{}", workload.name(), device.name());
        ObserveCell {
            workload,
            device,
            metrics,
            event_counts: obs.counts,
            events_jsonl: obs.jsonl,
            spans: obs.spans,
        }
    });
    Observe { cells }
}

/// Formats one latency row: count, mean, percentiles, max.
fn latency_row(
    f: &mut fmt::Formatter<'_>,
    label: &str,
    summary: &Summary,
    hist: &Histogram,
) -> fmt::Result {
    let Percentiles {
        p50,
        p90,
        p99,
        p999,
    } = hist.percentiles_ms();
    writeln!(
        f,
        "  {label:<8} {:>8} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.1}",
        summary.count, summary.mean, p50, p90, p99, p999, summary.max
    )
}

impl fmt::Display for Observe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Observability report: state residency and latency percentiles \
             (fault rate {FAULT_RATE}, power failures every {:.0} s mean, \
             fault seed {FAULT_SEED})",
            POWER_FAIL_INTERVAL.as_secs_f64()
        )?;
        for cell in &self.cells {
            writeln!(f)?;
            writeln!(f, "== {} x {} ==", cell.workload.name(), cell.device.name())?;
            let m = &cell.metrics;
            writeln!(
                f,
                "  energy {:.1} J over {:.1} s ({:.3} W mean)",
                m.energy.get(),
                m.duration.as_secs_f64(),
                m.mean_power_w()
            )?;
            let span = m.duration.as_secs_f64();
            if span > 0.0 && !m.backend_states.is_empty() {
                write!(f, "  state residency:")?;
                for (state, _, dur) in &m.backend_states {
                    write!(f, " {state} {:.1}%", 100.0 * dur.as_secs_f64() / span)?;
                }
                writeln!(f)?;
            }
            writeln!(
                f,
                "  {:<8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "latency", "n", "mean", "p50", "p90", "p99", "p99.9", "max"
            )?;
            latency_row(f, "read", &m.read_response_ms, &m.read_latency)?;
            latency_row(f, "write", &m.write_response_ms, &m.write_latency)?;
            latency_row(f, "all", &m.overall_response_ms, &m.overall_latency)?;
            write!(f, "  events:")?;
            for (name, count) in cell.event_counts.iter() {
                write!(f, " {name}={count}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_workloads_and_devices() {
        let o = run(Scale::quick(), false, false);
        assert_eq!(o.cells.len(), WORKLOADS.len() * DEVICES.len());
        assert!(o.events_jsonl().is_none());
        assert!(o.span_processes().is_none());
        for cell in &o.cells {
            assert!(cell.metrics.energy.get() > 0.0, "{}", cell.metrics.name);
            assert!(cell.event_counts.get("op_issued") > 0);
            assert_eq!(
                cell.event_counts.get("op_issued"),
                cell.event_counts.get("op_completed")
            );
        }
        let rendered = format!("{o}");
        assert!(rendered.contains("p99.9"));
        assert!(rendered.contains("state residency"));
        assert!(rendered.contains("mac x cu140-disk"));
    }

    #[test]
    fn event_stream_covers_required_event_families() {
        let o = run(Scale::quick(), true, false);
        let events = o.events_jsonl().expect("collection was on");
        for needle in [
            "\"event\":\"op_issued\"",
            "\"event\":\"op_completed\"",
            "\"event\":\"cache_read\"",
            "\"event\":\"disk_spin_up\"",
            "\"event\":\"disk_spin_down\"",
            "\"event\":\"flash_clean_start\"",
            "\"event\":\"flash_clean_end\"",
            "\"event\":\"fault_injected\"",
            "\"event\":\"power_fail\"",
            "\"event\":\"recovery_end\"",
        ] {
            assert!(events.contains(needle), "missing {needle}");
        }
        // Every line is context-prefixed and sim-time-stamped.
        for line in events.lines().take(50) {
            assert!(line.starts_with("{\"workload\":\""), "{line}");
            assert!(line.contains("\"t_ns\":"), "{line}");
        }
    }

    #[test]
    fn report_is_deterministic() {
        let a = format!("{}", run(Scale::quick(), false, false));
        let b = format!("{}", run(Scale::quick(), false, true));
        assert_eq!(a, b, "span collection must not perturb the report");
    }

    #[test]
    fn span_collection_covers_op_and_device_phases() {
        let o = run(Scale::quick(), false, true);
        let procs = o.span_processes().expect("span collection was on");
        assert_eq!(procs.len(), WORKLOADS.len() * DEVICES.len());
        let names: Vec<&str> = procs
            .iter()
            .flat_map(|(_, spans)| spans.iter().map(|s| s.kind.name()))
            .collect();
        for needle in [
            "op/read",
            "op/write",
            "cache_lookup",
            "disk_seek",
            "cleaning",
        ] {
            assert!(names.contains(&needle), "missing span {needle}");
        }
    }
}
