//! The crash-consistency torture driver.
//!
//! [`torture`] replays a trace prefix against a backend and injects a
//! power failure at every selected operation boundary — plus torn
//! mid-operation crashes on odd boundaries — then runs the device's
//! recovery and checks the recovered state:
//!
//! * on the **flash card**, a differential [`ShadowModel`] mirrors every
//!   write and trim; after each crash the recovered `(lbn, generation)`
//!   mapping must be a legal post-crash state (acknowledged writes
//!   survive, the in-flight write is old/new/absent, nothing is
//!   resurrected), the block census must still partition capacity,
//!   retired segments must stay retired, and an interrupted cleaning pass
//!   must leave no block mapped into its victim segment (copy-before-
//!   erase makes cleaning atomic);
//! * on the **magnetic disk** and **flash disk**, which recover behind
//!   their controllers, the driver checks the accounting story: every
//!   crash is counted, recovery time accrues monotonically, and the
//!   device serves requests again after the scan.
//!
//! Crash instants are drawn deterministically from the torture seed, one
//! RNG stream per crash point, so a boundary crash lands anywhere in the
//! inter-op gap — including mid-cleaning and mid-erase, because the
//! card's `settle` truncates the background job at the crash instant.
//! The whole sweep is pure simulation: same seed, same report.

use std::collections::BTreeSet;

use mobistore_device::array::ArrayDevice;
use mobistore_device::disk::MagneticDisk;
use mobistore_device::flashdisk::FlashDisk;
use mobistore_device::{DeviceError, Dir};
use mobistore_flash::store::{FlashCardConfig, FlashCardStore};
use mobistore_sim::crashcheck::{ShadowModel, Violation};
use mobistore_sim::fault::DeathSchedule;
use mobistore_sim::obs::{Event, NoopObserver, Observer};
use mobistore_sim::rng::SimRng;
use mobistore_sim::time::{SimDuration, SimTime};
use mobistore_trace::record::{DiskOp, DiskOpKind, Trace};

use crate::config::{BackendConfig, SystemConfig};

/// How many operation boundaries receive an injected crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoints {
    /// Crash at every op boundary in the (capped) trace prefix.
    Exhaustive,
    /// Crash at this many boundaries, spread evenly across the prefix.
    Sampled(usize),
}

/// Options controlling a torture sweep.
#[derive(Debug, Clone, Copy)]
pub struct TortureOptions {
    /// Cap on trace operations replayed per crash point (the flash-card
    /// sweep rebuilds the device for every crash point, so the sweep is
    /// O(crash points × ops)). Truncation is reported, never silent.
    pub max_ops: usize,
    /// Crash-point sweep density.
    pub crash_points: CrashPoints,
    /// Seed for the crash-instant jitter streams.
    pub seed: u64,
    /// Test-only: silently drop this logical block from the flash card's
    /// map after every recovery — a deliberately broken recovery that the
    /// device's own invariants cannot see. Exists to prove the shadow
    /// model has teeth; leave `None` for real checking.
    pub sabotage_lbn: Option<u64>,
}

impl Default for TortureOptions {
    fn default() -> Self {
        TortureOptions {
            max_ops: 192,
            crash_points: CrashPoints::Sampled(24),
            seed: 0x1994,
            sabotage_lbn: None,
        }
    }
}

/// The outcome of one torture sweep on one configuration.
#[derive(Debug, Clone)]
pub struct TortureReport {
    /// The configuration's label.
    pub name: String,
    /// Which backend kind was tortured.
    pub device: &'static str,
    /// Crash points actually injected.
    pub crashes: u64,
    /// Crashes injected mid-write (the op was torn, never acknowledged).
    pub mid_op_crashes: u64,
    /// Crashes that struck while a cleaning job was in flight.
    pub mid_cleaning_crashes: u64,
    /// Recovery scans that completed.
    pub recoveries: u64,
    /// Total operations replayed across all crash points.
    pub ops_replayed: u64,
    /// Trace operations dropped by the `max_ops` cap.
    pub truncated_ops: u64,
    /// Blocks the device reported uncorrectable during the sweep (the
    /// integrity model's one permitted loss: typed, never silent). The
    /// shadow excuses exactly these blocks and no others.
    pub uncorrectable_blocks: u64,
    /// Every check failure, rendered with its crash-point context. Empty
    /// means the device survived the sweep.
    pub violations: Vec<String>,
}

impl TortureReport {
    /// True if no check failed anywhere in the sweep.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs the torture sweep appropriate for `config`'s backend.
pub fn torture(config: &SystemConfig, trace: &Trace, opts: &TortureOptions) -> TortureReport {
    match &config.backend {
        BackendConfig::Disk { .. } => torture_disk(config, trace, opts),
        BackendConfig::FlashDisk { .. } => torture_flash_disk(config, trace, opts),
        BackendConfig::FlashCard { .. } => torture_flash_card(config, trace, opts),
        BackendConfig::Array { .. } => torture_array(config, trace, opts),
    }
}

/// The op-boundary indices to crash at, in ascending order.
fn select_points(n: usize, density: CrashPoints) -> Vec<usize> {
    match density {
        CrashPoints::Exhaustive => (0..n).collect(),
        CrashPoints::Sampled(c) if c >= n => (0..n).collect(),
        CrashPoints::Sampled(0) => Vec::new(),
        CrashPoints::Sampled(c) => {
            // Alternate the parity of consecutive samples: odd boundaries
            // are where the driver tears writes mid-op, and an even stride
            // (e.g. 24 samples of 192 ops) would otherwise never pick one.
            let points: BTreeSet<usize> = (0..c)
                .map(|i| {
                    let p = i * n / c;
                    if i % 2 == 1 && p.is_multiple_of(2) {
                        (p + 1).min(n - 1)
                    } else {
                        p
                    }
                })
                .collect();
            points.into_iter().collect()
        }
    }
}

/// A crash instant strictly before op `k` issues, jittered uniformly into
/// the gap after the previous op's issue time.
fn boundary_crash_instant(ops: &[DiskOp], k: usize, rng: &mut SimRng) -> SimTime {
    let prev = if k == 0 {
        SimTime::ZERO
    } else {
        ops[k - 1].time
    };
    let gap = ops[k].time.saturating_since(prev).as_nanos();
    if gap == 0 {
        prev
    } else {
        prev + SimDuration::from_nanos(rng.below(gap))
    }
}

/// Collects every block the flash card reports uncorrectable (via the
/// typed [`Event::UncorrectableRead`] stream), so the driver can mirror
/// the *reported* loss into the shadow model. Reported loss is a legal
/// outcome of the integrity model; silent loss never is.
#[derive(Default)]
struct UncorrectableCollector {
    fresh: Vec<u64>,
}

impl Observer for UncorrectableCollector {
    fn record(&mut self, event: &Event) {
        if let Event::UncorrectableRead { lbn, .. } = event {
            self.fresh.push(*lbn);
        }
    }
}

/// Applies every freshly-reported uncorrectable block to the shadow (the
/// host was told the data is gone, so its absence is now expected) and
/// the excused set used by the verifier.
fn drain_reported(
    obs: &mut UncorrectableCollector,
    shadow: &mut ShadowModel,
    reported: &mut BTreeSet<u64>,
    report: &mut TortureReport,
) {
    for lbn in obs.fresh.drain(..) {
        if reported.insert(lbn) {
            report.uncorrectable_blocks += 1;
        }
        shadow.trim(lbn, 1);
    }
}

fn working_set(ops: &[DiskOp]) -> Vec<u64> {
    let mut blocks: Vec<u64> = ops
        .iter()
        .filter(|op| op.kind != DiskOpKind::Trim)
        .flat_map(|op| op.lbn..op.lbn + u64::from(op.blocks))
        .collect();
    blocks.sort_unstable();
    blocks.dedup();
    blocks
}

/// The differential flash-card sweep: a fresh card (and shadow) per crash
/// point, full replay to the boundary, crash, recovery, verification,
/// then replay of the remainder with a final consistency check.
pub fn torture_flash_card(
    config: &SystemConfig,
    trace: &Trace,
    opts: &TortureOptions,
) -> TortureReport {
    let BackendConfig::FlashCard {
        params,
        capacity_bytes,
        mode,
        victim_policy,
        ..
    } = &config.backend
    else {
        panic!("torture_flash_card needs a flash-card configuration");
    };
    let card_config = FlashCardConfig {
        params: params.clone(),
        block_size: trace.block_size,
        capacity_bytes: *capacity_bytes,
        mode: *mode,
        victim_policy: *victim_policy,
        queueing: config.queueing,
    };

    let n = trace.ops.len().min(opts.max_ops);
    let ops = &trace.ops[..n];
    let working = working_set(ops);
    let mut report = TortureReport {
        name: config.name.clone(),
        device: "flash card",
        crashes: 0,
        mid_op_crashes: 0,
        mid_cleaning_crashes: 0,
        recoveries: 0,
        ops_replayed: 0,
        truncated_ops: (trace.ops.len() - n) as u64,
        uncorrectable_blocks: 0,
        violations: Vec::new(),
    };

    for k in select_points(n, opts.crash_points) {
        let mut rng = SimRng::seed_with_stream(opts.seed, k as u64);
        let mut obs = UncorrectableCollector::default();
        let mut reported: BTreeSet<u64> = BTreeSet::new();
        let mut card = match FlashCardStore::try_new(card_config.clone()) {
            Ok(card) => card
                .with_faults(config.fault)
                .with_integrity(config.integrity),
            Err(e) => {
                report.violations.push(format!("cannot build card: {e}"));
                return report;
            }
        };
        let mut shadow = ShadowModel::new();
        if working.len() as u64 > card.capacity_blocks() {
            report.violations.push(format!(
                "working set ({} blocks) exceeds card capacity ({} blocks)",
                working.len(),
                card.capacity_blocks()
            ));
            return report;
        }
        // Mirror the aged preload: the card stamps generations in
        // iteration order, and so does the shadow.
        card.preload_aged(working.iter().copied());
        for &lbn in &working {
            shadow.write(lbn, 1);
        }

        // Replay everything before the crash point, fully acknowledged.
        let mut aborted = false;
        for op in &ops[..k] {
            if !replay_card_op(
                &mut card,
                &mut shadow,
                &mut obs,
                &mut reported,
                op,
                &mut report,
                k,
            ) {
                aborted = true;
                break;
            }
            report.ops_replayed += 1;
        }
        if aborted {
            continue;
        }

        // Crash: torn mid-write on odd boundaries (only a prefix of the
        // op's blocks reaches media), otherwise jittered into the
        // preceding inter-op gap — which lands some crashes mid-cleaning
        // and mid-erase, since settle truncates the background job.
        let mid_op = k % 2 == 1 && ops[k].kind == DiskOpKind::Write;
        let crash_at = if mid_op {
            let op = &ops[k];
            shadow.begin_write(op.lbn, op.blocks);
            let prefix = op.blocks / 2;
            if prefix > 0 {
                let torn = card.try_write_obs(op.time, op.lbn, prefix, &mut obs);
                drain_reported(&mut obs, &mut shadow, &mut reported, &mut report);
                if let Err(e) = torn {
                    report
                        .violations
                        .push(format!("crash point {k}: unexpected write failure: {e}"));
                    continue;
                }
            }
            report.mid_op_crashes += 1;
            op.time + SimDuration::from_nanos(1 + rng.below(1_000_000))
        } else {
            boundary_crash_instant(ops, k, &mut rng)
        };

        let bad_before = card.bad_segments();
        let victim = card.cleaning_victim();
        if victim.is_some() {
            report.mid_cleaning_crashes += 1;
        }
        report.crashes += 1;
        card.power_fail_obs(crash_at, &mut obs);
        drain_reported(&mut obs, &mut shadow, &mut reported, &mut report);
        report.recoveries += 1;
        if let Some(lbn) = opts.sabotage_lbn {
            card.sabotage_lose_block(lbn);
        }

        // Verify the recovered state against the shadow and the device's
        // structural invariants.
        let snap: Vec<(u64, u64)> = card
            .snapshot()
            .iter()
            .map(|e| (e.lbn, e.generation))
            .collect();
        let ctx = format!(
            "crash point {k}{} at t={:.6}s",
            if mid_op { " (mid-op)" } else { "" },
            crash_at.as_secs_f64()
        );
        for v in shadow.verify_with_uncorrectable(&snap, &reported) {
            report.violations.push(format!("{ctx}: {v}"));
        }
        check_card_structure(
            &card,
            &shadow,
            mid_op,
            &bad_before,
            victim,
            &ctx,
            &mut report.violations,
        );

        // Resolve the torn write from what actually survived, re-align
        // the generation counters, and drain the rest of the trace.
        shadow.observe_recovery(&snap);
        shadow.resync_generations(card.next_generation());
        let resume = k + usize::from(mid_op);
        let mut aborted = false;
        for op in &ops[resume..] {
            if !replay_card_op(
                &mut card,
                &mut shadow,
                &mut obs,
                &mut reported,
                op,
                &mut report,
                k,
            ) {
                aborted = true;
                break;
            }
            report.ops_replayed += 1;
        }
        if aborted {
            continue;
        }

        let snap: Vec<(u64, u64)> = card
            .snapshot()
            .iter()
            .map(|e| (e.lbn, e.generation))
            .collect();
        let ctx = format!("crash point {k}, after draining the trace");
        for v in shadow.verify_with_uncorrectable(&snap, &reported) {
            report.violations.push(format!("{ctx}: {v}"));
        }
        card.check_invariants();
    }
    report
}

/// Replays one fully-acknowledged op against card and shadow, mirroring
/// any uncorrectable blocks the card reports along the way (scrub passes
/// and read-path drops surface through `obs`). Returns false (after
/// recording a violation) if the device refused the write.
fn replay_card_op(
    card: &mut FlashCardStore,
    shadow: &mut ShadowModel,
    obs: &mut UncorrectableCollector,
    reported: &mut BTreeSet<u64>,
    op: &DiskOp,
    report: &mut TortureReport,
    crash_point: usize,
) -> bool {
    match op.kind {
        DiskOpKind::Read => {
            // An uncorrectable result is a *reported* loss: legal, and
            // already mirrored into the shadow by the drain below.
            let _ = card.try_read_obs(op.time, op.lbn, op.blocks, obs);
            drain_reported(obs, shadow, reported, report);
        }
        DiskOpKind::Write => {
            shadow.begin_write(op.lbn, op.blocks);
            let res = card.try_write_obs(op.time, op.lbn, op.blocks, obs);
            // Scrubbing during the write's settle may have dropped old
            // copies; apply those before acknowledging the new write.
            drain_reported(obs, shadow, reported, report);
            match res {
                Ok(_) => shadow.ack_write(),
                Err(e @ DeviceError::ReadOnly { .. }) => {
                    report.violations.push(format!(
                        "crash point {crash_point}: card refused a write during replay: {e}"
                    ));
                    return false;
                }
                Err(e) => {
                    report
                        .violations
                        .push(format!("crash point {crash_point}: write failed: {e}"));
                    return false;
                }
            }
        }
        DiskOpKind::Trim => {
            card.trim_obs(op.time, op.lbn, op.blocks, obs);
            drain_reported(obs, shadow, reported, report);
            shadow.trim(op.lbn, op.blocks);
        }
    }
    true
}

/// Structural post-recovery checks that go beyond per-block contents.
fn check_card_structure(
    card: &FlashCardStore,
    shadow: &ShadowModel,
    mid_op: bool,
    bad_before: &[u32],
    victim: Option<u32>,
    ctx: &str,
    violations: &mut Vec<String>,
) {
    let census = card.census();
    if census.total() != card.capacity_blocks() {
        violations.push(format!(
            "{ctx}: {}",
            Violation::CensusImbalance {
                total: census.total(),
                capacity: card.capacity_blocks(),
            }
        ));
    }
    // With a write in flight the recovered live count is legitimately
    // ambiguous (never-acked blocks may or may not have reached media),
    // so the exact comparison applies only to boundary crashes.
    if !mid_op && census.live != shadow.live_blocks() {
        violations.push(format!(
            "{ctx}: {}",
            Violation::LiveCountMismatch {
                device: census.live,
                shadow: shadow.live_blocks(),
            }
        ));
    }
    let bad_after = card.bad_segments();
    for &seg in bad_before {
        if !bad_after.contains(&seg) {
            violations.push(format!(
                "{ctx}: {}",
                Violation::RetirementRegressed { segment: seg }
            ));
        }
    }
    // Copy-before-erase: recovery completes an interrupted cleaning pass,
    // so no block may still map into the victim segment.
    if let Some(victim) = victim {
        let still = card
            .snapshot()
            .iter()
            .filter(|e| e.segment == victim)
            .count() as u64;
        if still > 0 {
            violations.push(format!(
                "{ctx}: {}",
                Violation::CleaningNotAtomic {
                    victim,
                    still_in_victim: still,
                }
            ));
        }
    }
}

/// The differential erasure-coded-array sweep: a fresh array (and shadow)
/// per crash point, with exactly `m` permanent child deaths injected on a
/// fixed schedule spread across the replayed window. The oracle's core
/// claim is that no tolerated loss pattern can lose acknowledged data:
/// after every crash and at the end of every drain, the decoded
/// `(lbn, generation)` mapping must verify against the shadow, with only
/// *reported* losses excused — a sabotaged survivor shard is still a
/// violation.
pub fn torture_array(config: &SystemConfig, trace: &Trace, opts: &TortureOptions) -> TortureReport {
    let BackendConfig::Array {
        k,
        m,
        children,
        spares,
        rebuild_rate,
    } = &config.backend
    else {
        panic!("torture_array needs an ec-array configuration");
    };

    let n = trace.ops.len().min(opts.max_ops);
    let ops = &trace.ops[..n];
    let working = working_set(ops);
    let mut report = TortureReport {
        name: config.name.clone(),
        device: "ec-array",
        crashes: 0,
        mid_op_crashes: 0,
        mid_cleaning_crashes: 0,
        recoveries: 0,
        ops_replayed: 0,
        truncated_ops: (trace.ops.len() - n) as u64,
        uncorrectable_blocks: 0,
        violations: Vec::new(),
    };

    // Exactly `m` children die, spread across both the child set and the
    // replayed window — the worst loss pattern the geometry claims to
    // tolerate.
    let span_ns = ops
        .last()
        .map_or(0, |op| op.time.saturating_since(SimTime::ZERO).as_nanos());
    let mut deaths: Vec<Option<SimTime>> = vec![None; children.len()];
    for d in 0..*m {
        let child = d * children.len() / *m;
        let at = span_ns * (d as u64 + 1) / (*m as u64 + 1);
        deaths[child] = Some(SimTime::from_nanos(at));
    }

    for k_point in select_points(n, opts.crash_points) {
        let mut rng = SimRng::seed_with_stream(opts.seed, k_point as u64);
        let mut obs = UncorrectableCollector::default();
        let mut reported: BTreeSet<u64> = BTreeSet::new();
        let mut arr = ArrayDevice::new(*k, *m, children, trace.block_size)
            .with_queueing(config.queueing)
            .with_deaths(DeathSchedule::explicit(deaths.clone()))
            .with_spares(*spares)
            .with_rebuild_rate(*rebuild_rate);
        let mut shadow = ShadowModel::new();
        // Mirror the preload: the array stamps generations in iteration
        // order, and so does the shadow.
        arr.preload(working.iter().copied());
        for &lbn in &working {
            shadow.write(lbn, 1);
        }

        // Replay everything before the crash point, fully acknowledged.
        let mut aborted = false;
        for op in &ops[..k_point] {
            if !replay_array_op(
                &mut arr,
                &mut shadow,
                &mut obs,
                &mut reported,
                op,
                &mut report,
                k_point,
            ) {
                aborted = true;
                break;
            }
            report.ops_replayed += 1;
        }
        if aborted {
            continue;
        }

        // Crash: torn mid-write on odd boundaries (only a prefix of the
        // op's blocks reaches the stripes), otherwise jittered into the
        // preceding inter-op gap — which lands some crashes mid-rebuild,
        // since settle paces the background reconstruction.
        let mid_op = k_point % 2 == 1 && ops[k_point].kind == DiskOpKind::Write;
        let crash_at = if mid_op {
            let op = &ops[k_point];
            shadow.begin_write(op.lbn, op.blocks);
            let prefix = op.blocks / 2;
            if prefix > 0 {
                let torn = arr.try_write_obs(op.time, op.lbn, prefix, &mut obs);
                drain_reported(&mut obs, &mut shadow, &mut reported, &mut report);
                if let Err(e) = torn {
                    report.violations.push(format!(
                        "crash point {k_point}: unexpected write failure: {e}"
                    ));
                    continue;
                }
            }
            report.mid_op_crashes += 1;
            op.time + SimDuration::from_nanos(1 + rng.below(1_000_000))
        } else {
            boundary_crash_instant(ops, k_point, &mut rng)
        };

        if arr.lost_children() > 0 {
            report.mid_cleaning_crashes += 1;
        }
        report.crashes += 1;
        arr.power_fail_obs(crash_at, &mut obs);
        drain_reported(&mut obs, &mut shadow, &mut reported, &mut report);
        report.recoveries += 1;
        if let Some(lbn) = opts.sabotage_lbn {
            arr.sabotage_corrupt(lbn);
        }

        // Verify the recovered state against the shadow: with at most `m`
        // losses every acked block must decode, so any unreadable block
        // that was never reported is silent loss.
        let ctx = format!(
            "crash point {k_point}{} at t={:.6}s",
            if mid_op { " (mid-op)" } else { "" },
            crash_at.as_secs_f64()
        );
        if arr.is_failed() {
            report
                .violations
                .push(format!("{ctx}: array failed under {} tolerated deaths", m));
        }
        for lbn in arr.unreadable_blocks() {
            if !reported.contains(&lbn) {
                report
                    .violations
                    .push(format!("{ctx}: block {lbn} unreadable but never reported"));
            }
        }
        let snap = arr.snapshot();
        for v in shadow.verify_with_uncorrectable(&snap, &reported) {
            report.violations.push(format!("{ctx}: {v}"));
        }

        // Resolve the torn write from what actually survived, re-align
        // the generation counters, and drain the rest of the trace.
        shadow.observe_recovery(&snap);
        shadow.resync_generations(arr.next_generation());
        let resume = k_point + usize::from(mid_op);
        let mut aborted = false;
        for op in &ops[resume..] {
            if !replay_array_op(
                &mut arr,
                &mut shadow,
                &mut obs,
                &mut reported,
                op,
                &mut report,
                k_point,
            ) {
                aborted = true;
                break;
            }
            report.ops_replayed += 1;
        }
        if aborted {
            continue;
        }

        let snap = arr.snapshot();
        let ctx = format!("crash point {k_point}, after draining the trace");
        for v in shadow.verify_with_uncorrectable(&snap, &reported) {
            report.violations.push(format!("{ctx}: {v}"));
        }
    }
    report
}

/// Replays one fully-acknowledged op against array and shadow, mirroring
/// any blocks the array reports unreconstructable along the way. Returns
/// false (after recording a violation) if the array refused the write —
/// with at most `m` tolerated deaths a write must never fail.
fn replay_array_op(
    arr: &mut ArrayDevice,
    shadow: &mut ShadowModel,
    obs: &mut UncorrectableCollector,
    reported: &mut BTreeSet<u64>,
    op: &DiskOp,
    report: &mut TortureReport,
    crash_point: usize,
) -> bool {
    match op.kind {
        DiskOpKind::Read => {
            // A reported reconstruction failure is a *reported* loss:
            // legal, and mirrored into the shadow by the drain below.
            let _ = arr.try_read_obs(op.time, op.lbn, op.blocks, obs);
            drain_reported(obs, shadow, reported, report);
        }
        DiskOpKind::Write => {
            shadow.begin_write(op.lbn, op.blocks);
            let res = arr.try_write_obs(op.time, op.lbn, op.blocks, obs);
            drain_reported(obs, shadow, reported, report);
            match res {
                Ok(_) => shadow.ack_write(),
                Err(e) => {
                    report
                        .violations
                        .push(format!("crash point {crash_point}: write failed: {e}"));
                    return false;
                }
            }
        }
        DiskOpKind::Trim => {
            arr.trim(op.lbn, op.blocks);
            shadow.trim(op.lbn, op.blocks);
        }
    }
    true
}

/// The magnetic-disk sweep: one pass over the trace, crashing before each
/// selected op; the disk recovers behind its controller (spin-up plus
/// synchronous-FAT replay), so the checks are on the accounting story.
pub fn torture_disk(config: &SystemConfig, trace: &Trace, opts: &TortureOptions) -> TortureReport {
    let BackendConfig::Disk {
        params,
        spin_down,
        seek_model,
    } = &config.backend
    else {
        panic!("torture_disk needs a magnetic-disk configuration");
    };
    let mut disk = MagneticDisk::with_policy(params.clone(), *spin_down)
        .with_queueing(config.queueing)
        .with_seek_model(*seek_model);

    let n = trace.ops.len().min(opts.max_ops);
    let ops = &trace.ops[..n];
    let points: BTreeSet<usize> = select_points(n, opts.crash_points).into_iter().collect();
    let fat_bytes = config.fault.fat_scan_bytes;
    let mut report = TortureReport {
        name: config.name.clone(),
        device: "magnetic disk",
        crashes: 0,
        mid_op_crashes: 0,
        mid_cleaning_crashes: 0,
        recoveries: 0,
        ops_replayed: 0,
        truncated_ops: (trace.ops.len() - n) as u64,
        uncorrectable_blocks: 0,
        violations: Vec::new(),
    };

    let mut obs = NoopObserver;
    for (i, op) in ops.iter().enumerate() {
        if points.contains(&i) {
            let mut rng = SimRng::seed_with_stream(opts.seed, i as u64);
            let at = boundary_crash_instant(ops, i, &mut rng);
            let before = disk.counters();
            let svc = disk.power_fail_obs(at, fat_bytes, &mut obs);
            report.crashes += 1;
            report.recoveries += 1;
            let after = disk.counters();
            if after.power_failures != before.power_failures + 1 {
                report
                    .violations
                    .push(format!("crash {i}: power failure not counted"));
            }
            if after.recovery_time < before.recovery_time {
                report
                    .violations
                    .push(format!("crash {i}: recovery time went backwards"));
            }
            if fat_bytes > 0 && after.recovery_time == before.recovery_time {
                report
                    .violations
                    .push(format!("crash {i}: FAT replay charged no recovery time"));
            }
            if svc.end < at {
                report
                    .violations
                    .push(format!("crash {i}: recovery ended before the crash"));
            }
        }
        let dir = match op.kind {
            DiskOpKind::Read => Dir::Read,
            DiskOpKind::Write => Dir::Write,
            DiskOpKind::Trim => {
                report.ops_replayed += 1;
                continue;
            }
        };
        let bytes = op.bytes(trace.block_size);
        let svc = disk.access_at_obs(op.time, dir, bytes, Some(op.file.0), Some(op.lbn), &mut obs);
        if svc.end < op.time {
            report
                .violations
                .push(format!("op {i}: service ended before issue"));
        }
        report.ops_replayed += 1;
    }
    report
}

/// The flash-disk sweep: the controller rescans its spare-pool remap
/// headers on recovery; the checks mirror [`torture_disk`]'s.
pub fn torture_flash_disk(
    config: &SystemConfig,
    trace: &Trace,
    opts: &TortureOptions,
) -> TortureReport {
    let BackendConfig::FlashDisk { params } = &config.backend else {
        panic!("torture_flash_disk needs a flash-disk configuration");
    };
    let mut fd = FlashDisk::new(params.clone()).with_queueing(config.queueing);

    let n = trace.ops.len().min(opts.max_ops);
    let ops = &trace.ops[..n];
    let points: BTreeSet<usize> = select_points(n, opts.crash_points).into_iter().collect();
    let mut report = TortureReport {
        name: config.name.clone(),
        device: "flash disk",
        crashes: 0,
        mid_op_crashes: 0,
        mid_cleaning_crashes: 0,
        recoveries: 0,
        ops_replayed: 0,
        truncated_ops: (trace.ops.len() - n) as u64,
        uncorrectable_blocks: 0,
        violations: Vec::new(),
    };

    let mut obs = NoopObserver;
    for (i, op) in ops.iter().enumerate() {
        if points.contains(&i) {
            let mut rng = SimRng::seed_with_stream(opts.seed, i as u64);
            let at = boundary_crash_instant(ops, i, &mut rng);
            let before = fd.counters();
            let svc = fd.power_fail_obs(at, &mut obs);
            report.crashes += 1;
            report.recoveries += 1;
            let after = fd.counters();
            if after.power_failures != before.power_failures + 1 {
                report
                    .violations
                    .push(format!("crash {i}: power failure not counted"));
            }
            if after.recovery_time <= before.recovery_time {
                report
                    .violations
                    .push(format!("crash {i}: remap rescan charged no recovery time"));
            }
            if svc.end <= at {
                report
                    .violations
                    .push(format!("crash {i}: recovery ended before the crash"));
            }
        }
        let dir = match op.kind {
            DiskOpKind::Read => Dir::Read,
            DiskOpKind::Write => Dir::Write,
            DiskOpKind::Trim => {
                report.ops_replayed += 1;
                continue;
            }
        };
        let bytes = op.bytes(trace.block_size);
        let svc = fd.access_obs(op.time, dir, bytes, &mut obs);
        if svc.end < op.time {
            report
                .violations
                .push(format!("op {i}: service ended before issue"));
        }
        report.ops_replayed += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobistore_device::params::{cu140_datasheet, intel_datasheet, sdp5_datasheet};
    use mobistore_trace::record::FileId;

    const KIB: u64 = 1024;

    /// A write-heavy toy trace over a 36-block working set: enough write
    /// traffic to fill the frontier of a small aged card and force
    /// cleaning during the sweep.
    fn toy_trace(n: u64) -> Trace {
        let mut trace = Trace::new(1024);
        for i in 0..n {
            let (kind, lbn, blocks) = match i % 7 {
                0 | 3 | 5 => (DiskOpKind::Write, (i * 5) % 32, 1 + (i % 4) as u32),
                6 => (DiskOpKind::Trim, (i * 3) % 32, 1),
                _ => (DiskOpKind::Read, (i * 11) % 32, 1),
            };
            trace.push(DiskOp {
                time: SimTime::from_secs_f64(i as f64),
                kind,
                lbn,
                blocks,
                file: FileId(0),
            });
        }
        trace
    }

    fn card_config() -> SystemConfig {
        // 4 segments of 128 KiB: frontier + 2 aged-full + 1 erased
        // reserve, so cleaning starts as soon as the frontier fills.
        SystemConfig::flash_card(intel_datasheet()).with_flash_capacity(4 * 128 * KIB)
    }

    #[test]
    fn exhaustive_card_sweep_finds_no_violations() {
        let trace = toy_trace(160);
        let opts = TortureOptions {
            max_ops: 160,
            crash_points: CrashPoints::Exhaustive,
            ..TortureOptions::default()
        };
        let report = torture_flash_card(&card_config(), &trace, &opts);
        assert!(
            report.passed(),
            "violations: {:#?}",
            &report.violations[..report.violations.len().min(10)]
        );
        assert_eq!(report.crashes, 160);
        assert_eq!(report.recoveries, 160);
        assert!(report.mid_op_crashes > 0, "no torn writes exercised");
        assert!(
            report.mid_cleaning_crashes > 0,
            "no crash struck mid-cleaning; grow the trace"
        );
        assert_eq!(report.truncated_ops, 0);
    }

    #[test]
    fn sabotaged_recovery_is_caught_by_the_shadow() {
        // Silently losing one mapped block after recovery is invisible to
        // the card's own invariants but not to the differential check.
        let trace = toy_trace(40);
        let opts = TortureOptions {
            max_ops: 40,
            crash_points: CrashPoints::Sampled(4),
            sabotage_lbn: Some(2),
            ..TortureOptions::default()
        };
        let report = torture_flash_card(&card_config(), &trace, &opts);
        assert!(!report.passed(), "sabotage went undetected");
        assert!(
            report.violations.iter().any(|v| v.contains("lost write")),
            "wrong violation kind: {:?}",
            report.violations.first()
        );
    }

    #[test]
    fn integrity_enabled_sweep_reports_loss_never_silence() {
        use mobistore_sim::integrity::IntegrityConfig;
        // Wear-coupled bit errors, retention decay, and a fast scrubber,
        // all on top of the crash sweep: blocks get dropped, but every
        // drop is reported, so the shadow finds nothing silent.
        let trace = toy_trace(160);
        let config = card_config().with_integrity(IntegrityConfig {
            base_errors: 7.0,
            retention_per_hour: 4.0,
            scrub_interval: Some(SimDuration::from_secs(20)),
            seed: 7,
            ..IntegrityConfig::none()
        });
        let opts = TortureOptions {
            max_ops: 160,
            crash_points: CrashPoints::Sampled(12),
            ..TortureOptions::default()
        };
        let report = torture_flash_card(&config, &trace, &opts);
        assert!(
            report.passed(),
            "violations: {:#?}",
            &report.violations[..report.violations.len().min(10)]
        );
        assert!(
            report.uncorrectable_blocks > 0,
            "integrity model never dropped a block; raise the rates"
        );
    }

    #[test]
    fn sabotage_is_still_caught_with_integrity_enabled() {
        use mobistore_sim::integrity::IntegrityConfig;
        // The excused set covers exactly the *reported* losses: a block
        // silently dropped by the sabotage hook stays a violation even
        // when the integrity model is live.
        let trace = toy_trace(40);
        let config = card_config().with_integrity(IntegrityConfig {
            base_errors: 2.0,
            seed: 7,
            ..IntegrityConfig::none()
        });
        let opts = TortureOptions {
            max_ops: 40,
            crash_points: CrashPoints::Sampled(4),
            sabotage_lbn: Some(2),
            ..TortureOptions::default()
        };
        let report = torture_flash_card(&config, &trace, &opts);
        assert!(
            !report.passed(),
            "sabotage went undetected with integrity enabled"
        );
    }

    fn array_config() -> SystemConfig {
        use mobistore_device::array::ChildClass;
        SystemConfig::array(
            4,
            2,
            vec![
                ChildClass::FlashCard,
                ChildClass::FlashDisk,
                ChildClass::FlashDisk,
                ChildClass::HardDisk,
                ChildClass::FlashDisk,
                ChildClass::FlashCard,
            ],
        )
    }

    #[test]
    fn array_sweep_survives_crashes_and_tolerated_deaths() {
        // Two of six children die mid-sweep (the full parity budget) and
        // a crash strikes at every sampled boundary; acked writes must
        // still decode everywhere.
        let trace = toy_trace(120);
        let opts = TortureOptions {
            max_ops: 120,
            crash_points: CrashPoints::Sampled(12),
            ..TortureOptions::default()
        };
        let report = torture(&array_config(), &trace, &opts);
        assert_eq!(report.device, "ec-array");
        assert!(
            report.passed(),
            "violations: {:#?}",
            &report.violations[..report.violations.len().min(10)]
        );
        assert_eq!(report.crashes, 12);
        assert_eq!(report.recoveries, 12);
        assert!(report.mid_op_crashes > 0, "no torn writes exercised");
        assert!(
            report.mid_cleaning_crashes > 0,
            "no crash struck while a child was lost; move the deaths"
        );
    }

    #[test]
    fn array_sabotaged_survivor_is_caught_by_the_shadow() {
        // Silently corrupting a surviving shard (or, if the block's own
        // shard is gone, every surviving parity shard) is invisible to
        // the array's bookkeeping but not to the differential check.
        let trace = toy_trace(40);
        let opts = TortureOptions {
            max_ops: 40,
            crash_points: CrashPoints::Sampled(4),
            sabotage_lbn: Some(2),
            ..TortureOptions::default()
        };
        let report = torture_array(&array_config(), &trace, &opts);
        assert!(!report.passed(), "sabotage went undetected");
    }

    #[test]
    fn array_sweep_is_deterministic() {
        let trace = toy_trace(60);
        let opts = TortureOptions {
            max_ops: 60,
            crash_points: CrashPoints::Sampled(6),
            ..TortureOptions::default()
        };
        let a = torture_array(&array_config(), &trace, &opts);
        let b = torture_array(&array_config(), &trace, &opts);
        assert_eq!(a.ops_replayed, b.ops_replayed);
        assert_eq!(a.mid_op_crashes, b.mid_op_crashes);
        assert_eq!(a.uncorrectable_blocks, b.uncorrectable_blocks);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn disk_sweep_accounts_every_crash() {
        let trace = toy_trace(60);
        let mut config = SystemConfig::disk(cu140_datasheet());
        config.fault.fat_scan_bytes = 64 * KIB;
        let opts = TortureOptions {
            max_ops: 60,
            crash_points: CrashPoints::Sampled(8),
            ..TortureOptions::default()
        };
        let report = torture(&config, &trace, &opts);
        assert_eq!(report.device, "magnetic disk");
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.crashes, 8);
        assert_eq!(report.recoveries, 8);
    }

    #[test]
    fn flash_disk_sweep_accounts_every_crash() {
        let trace = toy_trace(60);
        let config = SystemConfig::flash_disk(sdp5_datasheet());
        let opts = TortureOptions {
            max_ops: 60,
            crash_points: CrashPoints::Sampled(8),
            ..TortureOptions::default()
        };
        let report = torture(&config, &trace, &opts);
        assert_eq!(report.device, "flash disk");
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.crashes, 8);
    }

    #[test]
    fn sampled_points_are_spread_and_deduplicated() {
        assert_eq!(select_points(4, CrashPoints::Exhaustive), vec![0, 1, 2, 3]);
        assert_eq!(select_points(4, CrashPoints::Sampled(9)), vec![0, 1, 2, 3]);
        assert_eq!(
            select_points(100, CrashPoints::Sampled(4)),
            vec![0, 25, 50, 75]
        );
        // Even strides still cover odd (mid-op) boundaries.
        assert!(select_points(192, CrashPoints::Sampled(24))
            .iter()
            .any(|p| p % 2 == 1));
        assert!(select_points(10, CrashPoints::Sampled(0)).is_empty());
        assert!(select_points(0, CrashPoints::Exhaustive).is_empty());
    }
}
