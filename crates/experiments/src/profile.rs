//! The `repro profile` target — host-time self-profiling of the
//! simulator's hot paths.
//!
//! Walks the observe grid twice per cell — once unobserved (the
//! `NoopObserver` fast path the default targets run) and once with a
//! counting + span-counting observer — charging wall-clock to four
//! phases via [`Profiler`]: `trace_decode`, `device_dispatch`,
//! `observed_dispatch`, and `metrics_fold`. Comparing
//! `device_dispatch` against `observed_dispatch` bounds the observer
//! overhead empirically.
//!
//! Determinism split: **stdout carries only simulated counts** (ops,
//! events, spans per cell) and is pinned by a golden fixture; the
//! wall-clock phase table is kept out of the rendered text and surfaced
//! through [`Profile::host_report`], which the `repro` binary prints to
//! stderr. Cells run serially (not through `parallel_map`) so each
//! phase's wall-clock is attributed cleanly rather than overlapped.

use std::fmt;

use mobistore_core::metrics::Metrics;
use mobistore_core::simulator::{simulate, simulate_observed, RunOptions};
use mobistore_sim::obs::{CounterRegistry, Event, Observer};
use mobistore_sim::prof::Profiler;
use mobistore_sim::span::Span;
use mobistore_workload::Workload;

use crate::observe::{cell_config, ObserveDevice, DEVICES, WORKLOADS};
use crate::{shared_trace, Scale};

/// Counts events and spans without retaining them: the cheapest real
/// observer, so `observed_dispatch` measures dispatch overhead rather
/// than allocation.
struct CountingCollector {
    counts: CounterRegistry,
    spans: u64,
}

impl Observer for CountingCollector {
    fn record(&mut self, event: &Event) {
        self.counts.add(event.name(), 1);
    }

    fn span(&mut self, _span: &Span) {
        self.spans += 1;
    }
}

/// One profiled cell: deterministic simulation counts only.
#[derive(Debug, Clone)]
pub struct ProfileCell {
    /// Which trace.
    pub workload: Workload,
    /// Which device.
    pub device: ObserveDevice,
    /// Operations the cell replayed.
    pub ops: u64,
    /// Events the observed run recorded.
    pub events: u64,
    /// Sim-time spans the observed run emitted.
    pub spans: u64,
}

/// The profile run: per-cell counts plus the (stderr-only) wall-clock
/// phase table.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Workload-major, device-minor cells.
    pub cells: Vec<ProfileCell>,
    /// Operations across all cells, recomputed through the fold phase.
    pub total_ops: u64,
    host_report: String,
}

impl Profile {
    /// The wall-clock phase table. Nondeterministic by nature — the
    /// `repro` binary prints it to stderr, never stdout.
    pub fn host_report(&self) -> &str {
        &self.host_report
    }
}

/// The profiled host phases, in report order.
pub const PHASES: [&str; 4] = [
    "trace_decode",
    "device_dispatch",
    "observed_dispatch",
    "metrics_fold",
];

/// Runs the profile grid serially, timing each host phase.
pub fn run(scale: Scale) -> Profile {
    let mut prof = Profiler::new();
    let mut cells = Vec::new();
    let mut fold = Metrics::empty("profile/all");
    for workload in WORKLOADS {
        for device in DEVICES {
            // First decode per workload is the real cost; later cells hit
            // the process-wide trace cache, which is exactly what the
            // other targets see too.
            let trace = prof.time("trace_decode", || shared_trace(workload, scale));
            let cfg = cell_config(workload, device, &trace);
            let noop = prof.time("device_dispatch", || simulate(&cfg, &trace));
            let mut obs = CountingCollector {
                counts: CounterRegistry::new(),
                spans: 0,
            };
            let observed = prof.time("observed_dispatch", || {
                simulate_observed(&cfg, &trace, RunOptions::default(), &mut obs)
            });
            assert_eq!(
                noop.overall_response_ms.count, observed.overall_response_ms.count,
                "observer must not change simulation results"
            );
            prof.time("metrics_fold", || fold.merge(&noop));
            cells.push(ProfileCell {
                workload,
                device,
                ops: observed.overall_response_ms.count,
                events: obs.counts.iter().map(|(_, c)| c).sum(),
                spans: obs.spans,
            });
        }
    }
    Profile {
        cells,
        total_ops: fold.overall_response_ms.count,
        host_report: prof.report(),
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Host profile: per-cell simulation counts \
             (wall-clock phase table goes to stderr)"
        )?;
        writeln!(
            f,
            "  {:<24} {:>9} {:>9} {:>9}",
            "cell", "ops", "events", "spans"
        )?;
        for cell in &self.cells {
            writeln!(
                f,
                "  {:<24} {:>9} {:>9} {:>9}",
                format!("{} x {}", cell.workload.name(), cell.device.name()),
                cell.ops,
                cell.events,
                cell.spans
            )?;
        }
        writeln!(
            f,
            "  total {} ops across {} cells; phases: {}",
            self.total_ops,
            self.cells.len(),
            PHASES.join(", ")
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_counts_are_deterministic_and_nonzero() {
        let a = run(Scale::quick());
        let b = run(Scale::quick());
        assert_eq!(a.cells.len(), WORKLOADS.len() * DEVICES.len());
        assert_eq!(format!("{a}"), format!("{b}"));
        for cell in &a.cells {
            assert!(cell.ops > 0);
            assert!(cell.events > cell.ops, "every op records >= 2 events");
            assert!(cell.spans > 0, "observed run must emit spans");
        }
        assert_eq!(a.total_ops, a.cells.iter().map(|c| c.ops).sum::<u64>());
    }

    #[test]
    fn host_report_lists_every_phase() {
        let p = run(Scale::quick());
        for phase in PHASES {
            assert!(p.host_report().contains(phase), "missing {phase}");
        }
        assert!(p.host_report().contains("total"));
        // The wall-clock table never leaks into the deterministic text.
        assert!(!format!("{p}").contains(" s "));
    }
}
