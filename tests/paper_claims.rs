//! Integration tests asserting the paper's headline claims at a moderate
//! scale (10% of each trace). Full-scale values are recorded in
//! `EXPERIMENTS.md`; these tests keep the claims from regressing.

use mobistore::core::battery::{
    battery_extension, savings_fraction, STORAGE_SHARE_HIGH, STORAGE_SHARE_LOW,
};
use mobistore::core::config::SystemConfig;
use mobistore::core::simulator::simulate;
use mobistore::device::params::{
    cu140_datasheet, intel_datasheet, sdp5_datasheet, sdp5a_datasheet,
};
use mobistore::experiments::flash_card_config;
use mobistore::Workload;

const SCALE: f64 = 0.10;
const SEED: u64 = 1994;

fn dram_for(w: Workload) -> u64 {
    if w.below_buffer_cache() {
        0
    } else {
        2 * 1024 * 1024
    }
}

/// Abstract: "flash memory can reduce energy consumption by an order of
/// magnitude, compared to magnetic disk" — even with the aggressive 5 s
/// spin-down the disks get here.
#[test]
fn flash_saves_energy_by_large_factor() {
    for workload in Workload::TABLE4 {
        let trace = workload.generate_scaled(SCALE, SEED);
        let dram = dram_for(workload);
        let disk = simulate(
            &SystemConfig::disk(cu140_datasheet()).with_dram(dram),
            &trace,
        );
        let sdp = simulate(
            &SystemConfig::flash_disk(sdp5_datasheet()).with_dram(dram),
            &trace,
        );
        let ratio = disk.energy.get() / sdp.energy.get();
        // §7: "the flash disk file system can save 59-86% of the energy of
        // the disk file system" — i.e. a 2.4-7x ratio; DRAM baseline
        // included here, so accept anything >= 2.5x.
        assert!(ratio > 2.5, "{}: only {ratio:.1}x", workload.name());
    }
}

/// §7: flash reads are several times faster than disk reads; disk writes
/// through SRAM beat flash writes.
#[test]
fn read_and_write_orderings() {
    for workload in Workload::TABLE4 {
        let trace = workload.generate_scaled(SCALE, SEED);
        let dram = dram_for(workload);
        let disk = simulate(
            &SystemConfig::disk(cu140_datasheet()).with_dram(dram),
            &trace,
        );
        let sdp = simulate(
            &SystemConfig::flash_disk(sdp5_datasheet()).with_dram(dram),
            &trace,
        );
        assert!(
            sdp.read_response_ms.mean * 2.0 < disk.read_response_ms.mean,
            "{}: flash reads {} vs disk {}",
            workload.name(),
            sdp.read_response_ms.mean,
            disk.read_response_ms.mean
        );
        assert!(
            disk.write_response_ms.mean * 4.0 < sdp.write_response_ms.mean,
            "{}: disk writes {} vs flash {}",
            workload.name(),
            disk.write_response_ms.mean,
            sdp.write_response_ms.mean
        );
    }
}

/// Abstract: running flash near capacity (95% vs 40%) increases energy
/// substantially, degrades write response, and accelerates wear.
#[test]
fn utilization_effects_on_mac() {
    let trace = Workload::Mac.generate_scaled(SCALE, SEED);
    let dram = dram_for(Workload::Mac);
    let low = simulate(
        &flash_card_config(intel_datasheet(), &trace, 0.40).with_dram(dram),
        &trace,
    );
    let high = simulate(
        &flash_card_config(intel_datasheet(), &trace, 0.95).with_dram(dram),
        &trace,
    );
    assert!(
        high.energy.get() > low.energy.get() * 1.5,
        "energy {} -> {}",
        low.energy.get(),
        high.energy.get()
    );
    assert!(high.write_response_ms.mean > low.write_response_ms.mean);
    let (wl, wh) = (low.wear.unwrap(), high.wear.unwrap());
    assert!(
        wh.total > wl.total * 2,
        "erasures {} -> {}",
        wl.total,
        wh.total
    );
    assert!(wh.max_erase > wl.max_erase);
}

/// §5.3: asynchronous erasure improves flash-disk write response by a
/// factor of ~2.5 with minimal energy impact.
#[test]
fn asynchronous_cleaning_claim() {
    for workload in Workload::TABLE4 {
        let trace = workload.generate_scaled(SCALE, SEED);
        let dram = dram_for(workload);
        let sync = simulate(
            &SystemConfig::flash_disk(sdp5_datasheet()).with_dram(dram),
            &trace,
        );
        let asynch = simulate(
            &SystemConfig::flash_disk(sdp5a_datasheet()).with_dram(dram),
            &trace,
        );
        let speedup = sync.write_response_ms.mean / asynch.write_response_ms.mean;
        assert!(
            (1.8..4.5).contains(&speedup),
            "{}: write speedup {speedup:.2}",
            workload.name()
        );
        let energy_change = (asynch.energy.get() / sync.energy.get() - 1.0).abs();
        assert!(
            energy_change < 0.05,
            "{}: energy changed {energy_change:.3}",
            workload.name()
        );
    }
}

/// Abstract: the energy savings translate into a ~22% battery-life
/// extension at the 20% storage share, up to ~100% at the 54% share.
#[test]
fn battery_life_claim() {
    let trace = Workload::Mac.generate_scaled(SCALE, SEED);
    let disk = simulate(&SystemConfig::disk(cu140_datasheet()), &trace);
    let card = simulate(&flash_card_config(intel_datasheet(), &trace, 0.80), &trace);
    let savings = savings_fraction(disk.energy.get(), card.energy.get().min(disk.energy.get()));
    assert!(savings > 0.5, "savings {savings:.2}");
    let low = battery_extension(STORAGE_SHARE_LOW, savings);
    let high = battery_extension(STORAGE_SHARE_HIGH, savings);
    assert!(
        (0.08..0.30).contains(&low),
        "extension at 20% share: {low:.2}"
    );
    assert!(high > low * 2.0, "extension at 54% share: {high:.2}");
}

/// §5.5: a 32-Kbyte SRAM write buffer improves mean write response by a
/// factor of 20 or more for mac and dos, and saves energy.
#[test]
fn sram_write_buffer_claim() {
    for workload in [Workload::Mac, Workload::Dos] {
        let trace = workload.generate_scaled(SCALE, SEED);
        let dram = dram_for(workload);
        let without = simulate(
            &SystemConfig::disk(cu140_datasheet())
                .with_dram(dram)
                .with_sram(0),
            &trace,
        );
        let with = simulate(
            &SystemConfig::disk(cu140_datasheet()).with_dram(dram),
            &trace,
        );
        let speedup = without.write_response_ms.mean / with.write_response_ms.mean;
        assert!(speedup > 20.0, "{}: speedup {speedup:.1}", workload.name());
        assert!(
            with.energy.get() < without.energy.get(),
            "{}",
            workload.name()
        );
    }
}

/// §5.4: adding DRAM to the flash card costs energy without appreciable
/// response benefit.
#[test]
fn dram_does_not_pay_off_on_flash() {
    let trace = Workload::Dos.generate_scaled(SCALE, SEED);
    let none = simulate(
        &flash_card_config(intel_datasheet(), &trace, 0.85).with_dram(0),
        &trace,
    );
    let big = simulate(
        &flash_card_config(intel_datasheet(), &trace, 0.85).with_dram(4 * 1024 * 1024),
        &trace,
    );
    assert!(big.energy.get() > none.energy.get());
    // Response may improve a little, but not the order-of-magnitude a disk
    // system would see.
    assert!(big.overall_response_ms.mean > none.overall_response_ms.mean * 0.5);
}
