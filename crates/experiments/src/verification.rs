//! §5.1 — simulator verification against the testbed, on the `synth`
//! workload.
//!
//! The paper ran the 6-Mbyte synthetic trace both on the OmniBook and
//! through the simulator (driven by measured micro-benchmark performance):
//! *"All simulated performance numbers were within a few percent of
//! measured performance, with the exception of flash card reads and Caviar
//! Ultralite cu140 writes"* — testbed flash-card reads were ≈ 4× worse
//! (cleaning + decompression the simulator omits) and testbed cu140 writes
//! ≈ 2× worse (the simulator's optimistic seek assumption).
//!
//! Here the "testbed" is the `mobistore-fsmodel` stack (DOS FS / MFFS
//! models over the devices) and the "simulator" is `mobistore-core` with
//! measured parameters — two independently-built layers replaying the same
//! records.

use std::collections::HashMap;
use std::fmt;

use mobistore_core::config::SystemConfig;
use mobistore_core::simulator::{simulate_with, RunOptions};
use mobistore_device::params::{cu140_measured, intel_measured, sdp10_measured};
use mobistore_fsmodel::compress::DataClass;
use mobistore_fsmodel::mffs::{FileHandle, FlashCardTestbed, MffsParams};
use mobistore_sim::stats::OnlineStats;
use mobistore_sim::units::MIB;
use mobistore_trace::record::{FileId, Op};
use mobistore_workload::synth::{generate_records, SynthSpec};

use crate::{flash_card_config, Scale};

/// One device's simulator-vs-testbed comparison.
#[derive(Debug, Clone)]
pub struct VerifyRow {
    /// Device label.
    pub device: &'static str,
    /// Simulator mean read response (ms).
    pub sim_read_ms: f64,
    /// Testbed mean read response (ms).
    pub testbed_read_ms: f64,
    /// Simulator mean write response (ms).
    pub sim_write_ms: f64,
    /// Testbed mean write response (ms).
    pub testbed_write_ms: f64,
}

impl VerifyRow {
    /// Testbed/simulator read ratio.
    pub fn read_ratio(&self) -> f64 {
        self.testbed_read_ms / self.sim_read_ms
    }

    /// Testbed/simulator write ratio.
    pub fn write_ratio(&self) -> f64 {
        self.testbed_write_ms / self.sim_write_ms
    }
}

/// The §5.1 verification experiment.
#[derive(Debug, Clone)]
pub struct Verification {
    /// One row per device.
    pub rows: Vec<VerifyRow>,
}

/// Runs the verification on a `synth` trace sized by `scale`.
pub fn run(scale: Scale) -> Verification {
    let ops = ((30_000.0 * scale.fraction) as usize).max(500);
    let spec = SynthSpec::paper(ops);
    let records = generate_records(&spec, scale.seed);
    let mut trace = mobistore_workload::synth::generate(&spec, scale.seed);
    // Both sides execute operations back-to-back on the testbed, so the
    // comparison validates per-operation costs: stretch interarrivals so
    // the simulator side sees no queueing either.
    for (i, op) in trace.ops.iter_mut().enumerate() {
        op.time = mobistore_sim::time::SimTime::from_secs_f64(i as f64 * 100.0);
    }

    // Simulator side: measured parameters, no DRAM cache (the OmniBook ran
    // DOS with no buffer cache), no warm-up (the testbed has none either).
    let no_warm = RunOptions {
        warm_percent: 0,
        ..RunOptions::default()
    };
    let sim = |cfg: SystemConfig| simulate_with(&cfg.with_dram(0), &trace, no_warm);
    // §3: the disk spun throughout the benchmarks; no SRAM on the OmniBook.
    let disk_sim = sim(SystemConfig::disk(cu140_measured())
        .with_sram(0)
        .with_spin_down(None));
    let fdisk_sim = sim(SystemConfig::flash_disk(sdp10_measured()));
    let card_sim = sim(flash_card_config(intel_measured(), &trace, 0.60));

    // Testbed side: replay the same file-level records through the
    // fsmodel stacks.
    let (disk_r, disk_w) = replay_disk(&spec, &records);
    let (fdisk_r, fdisk_w) = replay_flash_disk(&spec, &records);
    let (card_r, card_w) = replay_card(&spec, &records);

    Verification {
        rows: vec![
            VerifyRow {
                device: "cu140 (measured)",
                sim_read_ms: disk_sim.read_response_ms.mean,
                testbed_read_ms: disk_r,
                sim_write_ms: disk_sim.write_response_ms.mean,
                testbed_write_ms: disk_w,
            },
            VerifyRow {
                device: "sdp10 (measured)",
                sim_read_ms: fdisk_sim.read_response_ms.mean,
                testbed_read_ms: fdisk_r,
                sim_write_ms: fdisk_sim.write_response_ms.mean,
                testbed_write_ms: fdisk_w,
            },
            VerifyRow {
                device: "Intel card (measured)",
                sim_read_ms: card_sim.read_response_ms.mean,
                testbed_read_ms: card_r,
                sim_write_ms: card_sim.write_response_ms.mean,
                testbed_write_ms: card_w,
            },
        ],
    }
}

/// Replays the records against the DOS-over-cu140 testbed: every access
/// pays file-system overhead plus a real seek (the testbed has no
/// same-file optimism).
fn replay_disk(_spec: &SynthSpec, records: &[mobistore_trace::record::FileRecord]) -> (f64, f64) {
    use mobistore_fsmodel::dosfs::DosFsParams;
    let p = cu140_measured();
    let fs = DosFsParams::disk();
    let mut reads = OnlineStats::new();
    let mut writes = OnlineStats::new();
    for rec in records {
        match rec.op {
            Op::Read => {
                let t = fs.per_chunk_read
                    + p.avg_seek
                    + p.avg_rotation
                    + p.read_bandwidth.transfer_time(rec.size.max(512));
                reads.record(t.as_millis_f64());
            }
            Op::Write => {
                // DOS writes the data, then synchronously updates the FAT
                // and directory entry — a second positioned access the
                // simulator does not model (the source of the paper's
                // ~2x cu140 write divergence).
                let fat_update = p.avg_seek + p.avg_rotation + p.write_bandwidth.transfer_time(512);
                let t = fs.per_chunk_write
                    + p.avg_seek
                    + p.avg_rotation
                    + p.write_bandwidth.transfer_time(rec.size.max(512))
                    + fat_update;
                writes.record(t.as_millis_f64());
            }
            Op::Delete => {}
        }
    }
    (reads.mean(), writes.mean())
}

/// Replays against the DOS-over-sdp10 testbed.
fn replay_flash_disk(
    _spec: &SynthSpec,
    records: &[mobistore_trace::record::FileRecord],
) -> (f64, f64) {
    use mobistore_fsmodel::dosfs::DosFsParams;
    let p = mobistore_device::params::sdp10_datasheet();
    let fs = DosFsParams::flash_disk();
    let mut reads = OnlineStats::new();
    let mut writes = OnlineStats::new();
    for rec in records {
        match rec.op {
            Op::Read => {
                let t = fs.per_chunk_read
                    + p.access_latency
                    + p.read_bandwidth.transfer_time(rec.size.max(512));
                reads.record(t.as_millis_f64());
            }
            Op::Write => {
                let t = fs.per_chunk_write
                    + p.access_latency
                    + p.write_bandwidth.transfer_time(rec.size.max(512));
                writes.record(t.as_millis_f64());
            }
            Op::Delete => {}
        }
    }
    (reads.mean(), writes.mean())
}

/// Replays against the MFFS-over-Intel testbed, with real cleaning,
/// compression, and the file-size anomaly.
fn replay_card(spec: &SynthSpec, records: &[mobistore_trace::record::FileRecord]) -> (f64, f64) {
    let mut tb = FlashCardTestbed::new(intel_measured(), 10 * MIB, MffsParams::mffs2());
    // Install the whole 6-Mbyte dataset up front, as §4.1's workload
    // defines it; deletions release files and rewrites re-install them.
    let dataset_files = (spec.dataset_bytes / spec.file_bytes).max(1);
    let mut handles: HashMap<FileId, FileHandle> = (0..dataset_files)
        .map(|f| (FileId(f), tb.install_live_data(spec.file_bytes)))
        .collect();
    let mut reads = OnlineStats::new();
    let mut writes = OnlineStats::new();
    let class = DataClass::Compressible;
    for rec in records {
        match rec.op {
            Op::Read => {
                if let Some(&h) = handles.get(&rec.file) {
                    let t = tb.read_chunk(
                        h,
                        rec.offset.min(spec.file_bytes - rec.size.max(512)),
                        rec.size.max(512),
                        class,
                    );
                    reads.record(t.as_millis_f64());
                }
            }
            Op::Write => {
                match handles.get(&rec.file) {
                    Some(&h) => {
                        let offset = rec.offset.min(spec.file_bytes - rec.size.max(512));
                        let t = tb.overwrite_chunk(h, offset, rec.size.max(512), class);
                        writes.record(t.as_millis_f64());
                    }
                    None => {
                        // §4.1: the next write to an erased file writes the
                        // entire 32-Kbyte unit — a timed whole-file append.
                        let h = tb.create_file();
                        let t = tb.append_chunk(h, spec.file_bytes, class);
                        handles.insert(rec.file, h);
                        writes.record(t.as_millis_f64());
                    }
                }
            }
            Op::Delete => {
                if let Some(h) = handles.remove(&rec.file) {
                    tb.delete_file(h);
                }
            }
        }
    }
    (reads.mean(), writes.mean())
}

impl fmt::Display for Verification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Section 5.1: simulator vs testbed model on the synth workload"
        )?;
        writeln!(
            f,
            "{:<24} {:>10} {:>10} {:>7} {:>10} {:>10} {:>7}",
            "device", "sim rd ms", "tb rd ms", "ratio", "sim wr ms", "tb wr ms", "ratio"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<24} {:>10.2} {:>10.2} {:>7.2} {:>10.2} {:>10.2} {:>7.2}",
                r.device,
                r.sim_read_ms,
                r.testbed_read_ms,
                r.read_ratio(),
                r.sim_write_ms,
                r.testbed_write_ms,
                r.write_ratio(),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_disk_agrees_disk_writes_and_card_reads_diverge() {
        // The paper's outcome: agreement within a small factor everywhere
        // except flash-card reads (testbed ~4x slower) and cu140 writes
        // (testbed ~2x slower, the simulator's optimistic seeks).
        let v = run(Scale::quick());
        let fdisk = &v.rows[1];
        assert!(
            (0.5..2.0).contains(&fdisk.write_ratio()),
            "sdp10 writes {}",
            fdisk.write_ratio()
        );
        let disk = &v.rows[0];
        assert!(
            disk.write_ratio() > 1.2,
            "cu140 writes should diverge: {}",
            disk.write_ratio()
        );
        let card = &v.rows[2];
        assert!(
            card.read_ratio() > 1.5,
            "card reads should diverge: {}",
            card.read_ratio()
        );
    }

    #[test]
    fn renders() {
        let text = run(Scale::quick()).to_string();
        assert!(text.contains("sim rd ms"));
    }
}
