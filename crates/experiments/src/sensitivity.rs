//! Sensitivity analysis over the undocumented parameters.
//!
//! A handful of constants the paper relies on are absent from Table 2
//! (disk standby power, spin-down duration, DRAM refresh power —
//! `DESIGN.md` §4). This module perturbs each by a factor in both
//! directions and re-checks the paper's headline orderings, supporting the
//! design claim that these constants move absolute joules but not
//! conclusions.

use std::fmt;

use mobistore_core::config::SystemConfig;
use mobistore_core::simulator::simulate;
use mobistore_device::params::{cu140_datasheet, intel_datasheet, sdp5_datasheet};
use mobistore_sim::energy::Watts;
use mobistore_sim::exec::parallel_map;
use mobistore_sim::time::SimDuration;
use mobistore_workload::Workload;

use crate::{flash_card_config, shared_trace, Scale};

/// One perturbation's outcome.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// What was perturbed and how.
    pub variant: String,
    /// Disk system energy (J).
    pub disk_energy: f64,
    /// Flash-disk system energy (J).
    pub flash_disk_energy: f64,
    /// Flash-card system energy (J).
    pub flash_card_energy: f64,
    /// Did the headline ordering (disk ≫ flash) survive?
    pub ordering_holds: bool,
}

/// The sensitivity experiment.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// Baseline plus perturbed rows.
    pub rows: Vec<SensitivityRow>,
}

/// Runs the perturbations on the `mac` workload, one variant per worker.
pub fn run(scale: Scale) -> Sensitivity {
    let trace = shared_trace(Workload::Mac, scale);

    let mut variants = vec![("baseline".to_owned(), SystemConfig::disk(cu140_datasheet()))];
    // Disk standby power x5 and /5 around the documented 15 mW.
    for factor in [0.2, 5.0] {
        let mut params = cu140_datasheet();
        params.standby_power = Watts(params.standby_power.get() * factor);
        variants.push((
            format!("disk standby power x{factor}"),
            SystemConfig::disk(params),
        ));
    }
    // Spin-down duration halved and doubled around the documented 2.5 s.
    for (label, millis) in [("1.25s", 1_250u64), ("5s", 5_000)] {
        let mut params = cu140_datasheet();
        params.spin_down_time = SimDuration::from_millis(millis);
        variants.push((
            format!("disk wind-down {label}"),
            SystemConfig::disk(params),
        ));
    }
    // Spin-up power +-50% around the Table 2 value of 3 W.
    for factor in [0.5, 1.5] {
        let mut params = cu140_datasheet();
        params.spin_up_power = Watts(params.spin_up_power.get() * factor);
        variants.push((
            format!("disk spin-up power x{factor}"),
            SystemConfig::disk(params),
        ));
    }

    // The flash baselines do not vary across disk perturbations; simulate
    // them once each, alongside the disk variants, in the same batch.
    let fdisk = simulate(&SystemConfig::flash_disk(sdp5_datasheet()), &trace)
        .energy
        .get();
    let card = simulate(&flash_card_config(intel_datasheet(), &trace, 0.80), &trace)
        .energy
        .get();
    let rows = parallel_map(&variants, |(variant, disk_cfg)| {
        let disk = simulate(disk_cfg, &trace).energy.get();
        SensitivityRow {
            variant: variant.clone(),
            disk_energy: disk,
            flash_disk_energy: fdisk,
            flash_card_energy: card,
            ordering_holds: disk > 2.0 * fdisk && disk > 1.5 * card,
        }
    });

    Sensitivity { rows }
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Sensitivity of the flash-vs-disk ordering to undocumented constants (mac)"
        )?;
        writeln!(
            f,
            "{:<28} {:>11} {:>13} {:>13} {:>10}",
            "variant", "disk (J)", "flash disk(J)", "flash card(J)", "ordering"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<28} {:>11.0} {:>13.0} {:>13.0} {:>10}",
                r.variant,
                r.disk_energy,
                r.flash_disk_energy,
                r.flash_card_energy,
                if r.ordering_holds { "holds" } else { "BROKEN" },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_survive_every_perturbation() {
        let s = run(Scale::quick());
        assert!(s.rows.len() >= 7);
        for row in &s.rows {
            assert!(
                row.ordering_holds,
                "{}: disk {} fdisk {} card {}",
                row.variant, row.disk_energy, row.flash_disk_energy, row.flash_card_energy
            );
        }
    }

    #[test]
    fn perturbations_do_change_absolute_energy() {
        let s = run(Scale::quick());
        let baseline = s.rows[0].disk_energy;
        // The 5x standby-power variant must move the number (gaps exist at
        // quick scale, even if few).
        let perturbed = s
            .rows
            .iter()
            .find(|r| r.variant.contains("x5"))
            .expect("standby variant")
            .disk_energy;
        assert!(perturbed != baseline, "perturbation had no effect at all");
    }

    #[test]
    fn renders() {
        assert!(run(Scale::quick()).to_string().contains("holds"));
    }
}
