//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale <fraction>] [--seed <n>] [--jobs <n>] [--timings] [targets...]
//! ```
//!
//! Targets: `table1 table2 table3 table4 figure1 figure2 figure3 figure4
//! figure5 async endurance verify battery ablations nextgen sensitivity
//! related` (default: all).
//!
//! Targets run **concurrently** on a worker pool (`--jobs N`, the
//! `MOBISTORE_JOBS` environment variable, or all available cores), with
//! each target's stdout buffered and flushed in request order — so the
//! output is byte-identical to a `--jobs 1` serial run. Workload traces
//! are generated once per process and shared between targets through the
//! `mobistore_workload::cache` trace cache; `--timings` reports per-target
//! wall-clock and the cache's hit/miss summary on stderr.

use std::env;
use std::fmt::Display;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use mobistore_experiments as exp;
use mobistore_experiments::Scale;
use mobistore_sim::exec;

/// Every known target, in the default (paper) order.
const ALL_TARGETS: [&str; 17] = [
    "table1",
    "table2",
    "table3",
    "table4",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "async",
    "endurance",
    "verify",
    "battery",
    "ablations",
    "nextgen",
    "sensitivity",
    "related",
];

fn main() -> ExitCode {
    let started = Instant::now();
    let mut scale = Scale::full();
    let mut targets: Vec<String> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut timings = false;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v > 0.0 && v <= 1.0 => scale.fraction = v,
                _ => return usage("--scale needs a fraction in (0, 1]"),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => scale.seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--jobs" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v > 0 => exec::set_jobs(v),
                _ => return usage("--jobs needs a positive integer"),
            },
            "--timings" => timings = true,
            "--csv" => match args.next() {
                Some(dir) => csv_dir = Some(PathBuf::from(dir)),
                None => return usage("--csv needs a directory"),
            },
            "--help" | "-h" => return usage(""),
            t if !t.starts_with('-') => targets.push(t.to_owned()),
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    if targets.is_empty() {
        targets = ALL_TARGETS.iter().map(|s| (*s).to_owned()).collect();
    }
    if let Some(bad) = targets.iter().find(|t| !ALL_TARGETS.contains(&t.as_str())) {
        return usage(&format!("unknown target {bad}"));
    }

    eprintln!(
        "# mobistore repro: scale {:.2}, seed {}, jobs {}",
        scale.fraction,
        scale.seed,
        exec::jobs()
    );

    // Run all requested targets concurrently, buffering each target's
    // stdout; flushing in request order keeps the combined output
    // byte-identical to a serial run.
    let results: Vec<(String, Duration)> = exec::parallel_map(&targets, |target| {
        eprintln!("# running {target}...");
        let t0 = Instant::now();
        let out = render_target(target, scale, &csv_dir);
        (out, t0.elapsed())
    });

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for (out, _) in &results {
        if lock.write_all(out.as_bytes()).is_err() {
            return ExitCode::from(1);
        }
    }
    drop(lock);

    if timings {
        eprintln!("# timings (jobs={}):", exec::jobs());
        for (target, (_, elapsed)) in targets.iter().zip(&results) {
            eprintln!("#   {target:<12} {:>9.3}s", elapsed.as_secs_f64());
        }
        let c = mobistore_workload::cache::summary();
        eprintln!(
            "# trace cache: {} generated, {} hits, {} entries ({} lookups)",
            c.misses,
            c.hits,
            c.entries,
            c.lookups()
        );
        eprintln!(
            "# total wall-clock: {:.3}s",
            started.elapsed().as_secs_f64()
        );
    }
    ExitCode::SUCCESS
}

/// Runs one target and returns exactly the bytes the serial version
/// printed to stdout for it.
fn render_target(target: &str, scale: Scale, csv_dir: &Option<PathBuf>) -> String {
    let mut out = String::new();
    // Mirrors the old `println!("{}\n", x)`: the value, then a blank line.
    fn p(out: &mut String, x: impl Display) {
        out.push_str(&format!("{x}\n\n"));
    }
    match target {
        "table1" => p(&mut out, exp::table1::run()),
        "table2" => p(&mut out, exp::table2::run()),
        "table3" => p(&mut out, exp::table3::run(scale)),
        "table4" => {
            let t = exp::table4::run(scale);
            p(&mut out, &t);
            write_csv(csv_dir, "table4.csv", &exp::csv::table4_csv(&t));
        }
        "figure1" => {
            let fig = exp::figure1::run();
            p(&mut out, format_args!("{fig}\n{}", fig.plot()));
        }
        "figure2" => {
            let fig = exp::figure2::run(scale);
            p(&mut out, format_args!("{fig}\n{}", fig.plot()));
            write_csv(csv_dir, "figure2.csv", &exp::csv::figure2_csv(&fig));
        }
        "figure3" => {
            let fig = exp::figure3::run();
            p(&mut out, format_args!("{fig}\n{}", fig.plot()));
        }
        "figure4" => {
            let fig = exp::figure4::run(scale);
            p(&mut out, &fig);
            write_csv(csv_dir, "figure4.csv", &exp::csv::figure4_csv(&fig));
        }
        "figure5" => {
            let fig = exp::figure5::run(scale);
            p(&mut out, &fig);
            write_csv(csv_dir, "figure5.csv", &exp::csv::figure5_csv(&fig));
        }
        "async" => p(&mut out, exp::async_cleaning::run(scale)),
        "endurance" => p(&mut out, exp::endurance::run(scale)),
        "verify" => p(&mut out, exp::verification::run(scale)),
        "battery" => p(&mut out, exp::battery::run(scale)),
        "ablations" => {
            p(&mut out, exp::ablations::cleaning_policies(scale));
            p(&mut out, exp::ablations::write_back_cache(scale));
            p(&mut out, exp::ablations::spin_down_sweep(scale));
            p(&mut out, exp::ablations::flash_with_sram(scale));
            p(&mut out, exp::ablations::seek_models(scale));
        }
        "nextgen" => {
            p(
                &mut out,
                exp::next_gen::series2plus(mobistore_workload::Workload::Dos, scale),
            );
            p(&mut out, exp::next_gen::wear_leveling(scale));
            p(
                &mut out,
                exp::next_gen::render_lifetime(&exp::next_gen::lifetime(scale)),
            );
        }
        "sensitivity" => p(&mut out, exp::sensitivity::run(scale)),
        "related" => p(&mut out, exp::related::run(scale)),
        other => unreachable!("target {other} validated in main"),
    }
    out
}

/// Writes one CSV file into the `--csv` directory, if one was given.
fn write_csv(dir: &Option<PathBuf>, name: &str, contents: &str) {
    let Some(dir) = dir else { return };
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match fs::write(&path, contents) {
        Ok(()) => eprintln!("# wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--scale <0..1]] [--seed <n>] [--jobs <n>] [--timings] [--csv <dir>] \
         [table1|table2|table3|table4|figure1|figure2|figure3|figure4|figure5|async|endurance|\
         verify|battery|ablations|nextgen|sensitivity|related ...]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
