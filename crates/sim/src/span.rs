//! Sim-time span tracing and Chrome trace-event export.
//!
//! Where [`crate::obs::Event`] reports instants, a [`Span`] reports an
//! *interval* of simulated time: an op from issue to completion, a disk
//! seek, a flash program, a cleaning pass. Spans ride the same
//! [`Observer`](crate::obs::Observer) channel as events — the trait's
//! `span` method defaults to nothing, so the `NoopObserver` path still
//! monomorphises away and no golden snapshot can change.
//!
//! Spans are emitted as **completed intervals** (start + end in one
//! record, never enter/exit pairs), stamped with sim time only, in the
//! simulator's single-threaded processing order. That makes any
//! serialized span stream byte-identical at every `--jobs` count.
//!
//! [`chrome_trace_json`] renders a set of span streams as a Chrome
//! trace-event JSON document (schema [`TRACE_SCHEMA`]) that loads
//! directly in Perfetto or `chrome://tracing`: one process per
//! simulation cell, one thread group per track (`ops`, `cache`,
//! `device`), with overlapping spans deterministically packed onto
//! extra lanes so every rendered lane is well-nested.

use std::fmt::Write as _;

use crate::obs::OpKind;
use crate::time::{SimDuration, SimTime};

/// Schema tag written at the top of every trace document.
pub const TRACE_SCHEMA: &str = "mobistore-trace/1";

/// What a span measured.
///
/// Payloads are integers only (plus [`OpKind`]), like [`crate::obs::Event`],
/// so serialization is trivially deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A trace operation, issue to completion (queue + service).
    Op {
        /// Operation class.
        kind: OpKind,
        /// First logical block touched.
        lbn: u64,
        /// Number of blocks touched.
        blocks: u32,
    },
    /// The DRAM buffer cache probed and served (part of) a read.
    CacheLookup {
        /// Blocks found in the cache.
        hits: u32,
        /// Blocks that must go to the backend.
        misses: u32,
    },
    /// The magnetic disk moved the arm and waited out rotation.
    DiskSeek,
    /// The magnetic disk transferred data.
    DiskTransfer {
        /// Bytes transferred.
        bytes: u64,
    },
    /// A flash device served a read (including ECC decode time).
    FlashRead {
        /// Bytes read.
        bytes: u64,
    },
    /// A flash device programmed pages.
    FlashProgram {
        /// Bytes programmed.
        bytes: u64,
    },
    /// A flash device erased garbage (the flash disk's background
    /// pre-erase).
    FlashErase {
        /// Bytes erased.
        bytes: u64,
    },
    /// The flash card cleaned a victim segment (copy live + erase).
    Cleaning {
        /// Victim segment index.
        victim: u32,
    },
    /// The background scrubber read one segment.
    Scrub {
        /// Segment scrubbed.
        segment: u32,
    },
    /// Post-power-failure recovery (log scan / FAT replay / spin-up).
    Recovery,
    /// A marginal block read was recovered by bounded read-retry.
    EccRetry {
        /// The block that needed retries.
        lbn: u64,
        /// Retry attempts the recovery cost.
        attempts: u32,
    },
    /// An erasure-coded array decoded a read from survivors after shard
    /// loss (dead child or uncorrectable shard).
    DegradedRead {
        /// The logical block served degraded.
        lbn: u64,
        /// Shards missing from the block's stripe.
        lost: u32,
    },
    /// The array's background reconstructor rebuilt stripes onto a hot
    /// spare.
    Rebuild {
        /// First stripe rebuilt in this batch.
        stripe: u64,
        /// Stripes rebuilt in this batch.
        stripes: u32,
    },
    /// An array write derived and stored parity shards.
    ParityUpdate {
        /// The stripe whose parity was rewritten.
        stripe: u64,
    },
}

impl SpanKind {
    /// Stable snake_case span name (the Chrome event `name`).
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::Op { kind, .. } => match kind {
                OpKind::Read => "op/read",
                OpKind::Write => "op/write",
                OpKind::Trim => "op/trim",
            },
            SpanKind::CacheLookup { .. } => "cache_lookup",
            SpanKind::DiskSeek => "disk_seek",
            SpanKind::DiskTransfer { .. } => "disk_transfer",
            SpanKind::FlashRead { .. } => "flash_read",
            SpanKind::FlashProgram { .. } => "flash_program",
            SpanKind::FlashErase { .. } => "flash_erase",
            SpanKind::Cleaning { .. } => "cleaning",
            SpanKind::Scrub { .. } => "scrub",
            SpanKind::Recovery => "recovery",
            SpanKind::EccRetry { .. } => "ecc_retry",
            SpanKind::DegradedRead { .. } => "degraded_read",
            SpanKind::Rebuild { .. } => "rebuild",
            SpanKind::ParityUpdate { .. } => "parity_update",
        }
    }

    /// The track (rendered thread group) this span belongs to: `"ops"`
    /// for whole operations, `"cache"` for buffer-cache work, `"device"`
    /// for everything the backing device does.
    pub fn track(&self) -> &'static str {
        match self {
            SpanKind::Op { .. } => "ops",
            SpanKind::CacheLookup { .. } => "cache",
            _ => "device",
        }
    }

    /// The span's Chrome `args` object fields (no enclosing braces;
    /// empty for payload-free spans).
    pub fn args_json(&self) -> String {
        let mut s = String::new();
        match *self {
            SpanKind::Op { kind, lbn, blocks } => {
                let _ = write!(
                    s,
                    "\"op\":\"{}\",\"lbn\":{lbn},\"blocks\":{blocks}",
                    kind.name()
                );
            }
            SpanKind::CacheLookup { hits, misses } => {
                let _ = write!(s, "\"hits\":{hits},\"misses\":{misses}");
            }
            SpanKind::DiskSeek | SpanKind::Recovery => {}
            SpanKind::DiskTransfer { bytes }
            | SpanKind::FlashRead { bytes }
            | SpanKind::FlashProgram { bytes }
            | SpanKind::FlashErase { bytes } => {
                let _ = write!(s, "\"bytes\":{bytes}");
            }
            SpanKind::Cleaning { victim } => {
                let _ = write!(s, "\"victim\":{victim}");
            }
            SpanKind::Scrub { segment } => {
                let _ = write!(s, "\"segment\":{segment}");
            }
            SpanKind::EccRetry { lbn, attempts } => {
                let _ = write!(s, "\"lbn\":{lbn},\"attempts\":{attempts}");
            }
            SpanKind::DegradedRead { lbn, lost } => {
                let _ = write!(s, "\"lbn\":{lbn},\"lost\":{lost}");
            }
            SpanKind::Rebuild { stripe, stripes } => {
                let _ = write!(s, "\"stripe\":{stripe},\"stripes\":{stripes}");
            }
            SpanKind::ParityUpdate { stripe } => {
                let _ = write!(s, "\"stripe\":{stripe}");
            }
        }
        s
    }
}

/// One completed interval of simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What the interval measured.
    pub kind: SpanKind,
    /// Interval start (sim time).
    pub start: SimTime,
    /// Interval end (sim time, `>= start`).
    pub end: SimTime,
}

impl Span {
    /// Creates a span.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `end < start`.
    pub fn new(kind: SpanKind, start: SimTime, end: SimTime) -> Self {
        debug_assert!(end >= start, "span ends before it starts: {kind:?}");
        Span { kind, start, end }
    }

    /// The interval's length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// An observer that keeps every span and ignores events (tests, the
/// `profile` target, and `--trace-out` collection).
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder {
    /// Every span, in emission order.
    pub spans: Vec<Span>,
}

impl crate::obs::Observer for SpanRecorder {
    #[inline(always)]
    fn record(&mut self, _event: &crate::obs::Event) {}

    fn span(&mut self, span: &Span) {
        self.spans.push(*span);
    }
}

/// Formats a nanosecond count as Chrome's microsecond `ts`/`dur` value
/// with exactly three decimals — deterministic, no float formatting.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Minimal JSON string escaper for process names.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The fixed rendering order of tracks within a process.
const TRACKS: [&str; 3] = ["ops", "cache", "device"];

/// Renders span streams as a Chrome trace-event JSON document.
///
/// Each `(name, spans)` pair becomes one trace *process* (a simulation
/// cell such as `"mac x cu140-disk"`); within a process, spans are
/// grouped by [`SpanKind::track`] and packed onto lanes (threads): each
/// span goes to the first lane whose previous span ended at or before
/// its start, so every lane's spans are disjoint-or-nested and the
/// packing is a pure function of the span set. Overlap across lanes is
/// real — the simulator's open-loop ops do queue behind each other.
///
/// The document is deterministic byte-for-byte: spans are sorted by
/// `(start, end, name)`, timestamps are integers formatted as fixed
/// 3-decimal microseconds, and the only strings are stable names.
/// Perfetto ignores the extra top-level `schema` key.
pub fn chrome_trace_json(processes: &[(String, Vec<Span>)]) -> String {
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "{{\"schema\":\"{TRACE_SCHEMA}\",\"displayTimeUnit\":\"ns\",\"traceEvents\":["
    );
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&ev);
    };

    for (pi, (name, spans)) in processes.iter().enumerate() {
        let pid = pi + 1;
        push(
            &mut out,
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            ),
        );

        // Deterministic order regardless of emission order: background
        // work (cleaning, pre-erase) is reported at settle time, later
        // than its sim-time start.
        let mut sorted: Vec<&Span> = spans.iter().collect();
        sorted.sort_by_key(|s| (s.start, s.end, s.kind.name()));

        let mut tid = 0usize;
        let mut metadata = Vec::new();
        let mut events = Vec::new();
        for track in TRACKS {
            // Greedy lane packing: first lane whose last span ended by
            // this span's start.
            let mut lane_ends: Vec<SimTime> = Vec::new();
            let mut lane_tids: Vec<usize> = Vec::new();
            for span in sorted.iter().filter(|s| s.kind.track() == track) {
                let lane = match lane_ends.iter().position(|&end| end <= span.start) {
                    Some(lane) => lane,
                    None => {
                        tid += 1;
                        lane_ends.push(SimTime::ZERO);
                        lane_tids.push(tid);
                        let label = if lane_ends.len() == 1 {
                            track.to_owned()
                        } else {
                            format!("{track}/{}", lane_ends.len() - 1)
                        };
                        metadata.push(format!(
                            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{label}\"}}}}"
                        ));
                        lane_ends.len() - 1
                    }
                };
                lane_ends[lane] = span.end.max(lane_ends[lane]);
                let args = span.kind.args_json();
                let mut ev = format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{pid},\"tid\":{}",
                    span.kind.name(),
                    ts_us(span.start.as_nanos()),
                    ts_us(span.duration().as_nanos()),
                    lane_tids[lane]
                );
                if args.is_empty() {
                    ev.push('}');
                } else {
                    let _ = write!(ev, ",\"args\":{{{args}}}}}");
                }
                events.push(ev);
            }
        }
        for m in metadata {
            push(&mut out, m);
        }
        for e in events {
            push(&mut out, e);
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::Observer;

    fn s(kind: SpanKind, start: u64, end: u64) -> Span {
        Span::new(kind, SimTime::from_nanos(start), SimTime::from_nanos(end))
    }

    #[test]
    fn names_and_tracks_are_stable() {
        let op = SpanKind::Op {
            kind: OpKind::Read,
            lbn: 1,
            blocks: 2,
        };
        assert_eq!(op.name(), "op/read");
        assert_eq!(op.track(), "ops");
        assert_eq!(
            SpanKind::CacheLookup { hits: 1, misses: 0 }.track(),
            "cache"
        );
        assert_eq!(SpanKind::DiskSeek.track(), "device");
        assert_eq!(SpanKind::Recovery.args_json(), "");
        assert_eq!(
            SpanKind::EccRetry {
                lbn: 9,
                attempts: 2
            }
            .args_json(),
            "\"lbn\":9,\"attempts\":2"
        );
        let degraded = SpanKind::DegradedRead { lbn: 7, lost: 2 };
        assert_eq!(degraded.name(), "degraded_read");
        assert_eq!(degraded.track(), "device");
        assert_eq!(degraded.args_json(), "\"lbn\":7,\"lost\":2");
        let rebuild = SpanKind::Rebuild {
            stripe: 64,
            stripes: 8,
        };
        assert_eq!(rebuild.name(), "rebuild");
        assert_eq!(rebuild.track(), "device");
        assert_eq!(rebuild.args_json(), "\"stripe\":64,\"stripes\":8");
        let parity = SpanKind::ParityUpdate { stripe: 3 };
        assert_eq!(parity.name(), "parity_update");
        assert_eq!(parity.track(), "device");
        assert_eq!(parity.args_json(), "\"stripe\":3");
    }

    #[test]
    fn ts_is_fixed_three_decimal_microseconds() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(1), "0.001");
        assert_eq!(ts_us(1_500), "1.500");
        assert_eq!(ts_us(2_000_042), "2000.042");
    }

    #[test]
    fn recorder_keeps_spans_in_order() {
        let mut rec = SpanRecorder::default();
        rec.span(&s(SpanKind::DiskSeek, 10, 20));
        rec.span(&s(SpanKind::DiskTransfer { bytes: 512 }, 20, 30));
        assert_eq!(rec.spans.len(), 2);
        assert_eq!(rec.spans[0].duration(), SimDuration::from_nanos(10));
    }

    #[test]
    fn overlapping_spans_pack_onto_separate_lanes() {
        let op = |lbn| SpanKind::Op {
            kind: OpKind::Write,
            lbn,
            blocks: 1,
        };
        // Two overlapping ops need two lanes; the third reuses lane 0.
        let doc = chrome_trace_json(&[(
            "cell".to_owned(),
            vec![s(op(1), 0, 100), s(op(2), 50, 150), s(op(3), 100, 200)],
        )]);
        assert!(doc.starts_with("{\"schema\":\"mobistore-trace/1\""));
        assert!(doc.contains("\"name\":\"ops\""));
        assert!(doc.contains("\"name\":\"ops/1\""));
        assert!(!doc.contains("\"name\":\"ops/2\""));
        // Emission order must not matter.
        let shuffled = chrome_trace_json(&[(
            "cell".to_owned(),
            vec![s(op(3), 100, 200), s(op(1), 0, 100), s(op(2), 50, 150)],
        )]);
        assert_eq!(doc, shuffled);
    }

    #[test]
    fn document_shape_is_chrome_compatible() {
        let doc = chrome_trace_json(&[(
            "mac x disk".to_owned(),
            vec![s(SpanKind::DiskSeek, 1_000, 2_500)],
        )]);
        assert!(doc.contains("\"traceEvents\":["));
        assert!(doc.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"mac x disk\"}}"
        ));
        assert!(doc.contains(
            "{\"name\":\"disk_seek\",\"ph\":\"X\",\"ts\":1.000,\"dur\":1.500,\"pid\":1,\"tid\":1}"
        ));
        assert!(doc.ends_with("]}"));
    }

    #[test]
    fn process_names_are_escaped() {
        let doc = chrome_trace_json(&[("a\"b\\c".to_owned(), Vec::new())]);
        assert!(doc.contains("\"name\":\"a\\\"b\\\\c\""));
    }
}
